//! The §6 *traveler* scenario on Scheme 1.
//!
//! A traveler bulk-loads her medical history once, then retrieves records
//! selectively from anywhere — e.g. a border check of vaccination validity.
//! Updates are rare, searches run over broadband, so Scheme 1's two-round
//! search is acceptable and its constant-time-ish computation shines.
//!
//! ```sh
//! cargo run --release --example phr_traveler
//! ```

use sse_repro::core::scheme1::{InMemoryScheme1Client, Scheme1Config};
use sse_repro::core::types::MasterKey;
use sse_repro::net::latency::LinkProfile;
use sse_repro::phr::system::PhrSystem;
use sse_repro::phr::workload::{generate_records, traveler_profile, PhrEvent};

fn main() {
    let key = MasterKey::from_seed(77);
    let client = InMemoryScheme1Client::new_in_memory(key, Scheme1Config::fast_profile(4096));
    let meter = client.meter();
    let mut phr = PhrSystem::new(client);

    // One-time bulk load of the traveler's history.
    let history = generate_records(200, 42);
    let vaccinations = history
        .iter()
        .filter(|r| matches!(r.kind, sse_repro::phr::record::RecordKind::Vaccination))
        .count();
    phr.add_records(&history).expect("bulk load");
    let load = meter.snapshot();
    println!(
        "bulk-loaded {} records ({} vaccinations) in {} rounds, {:.1} KiB up",
        history.len(),
        vaccinations,
        load.rounds,
        load.bytes_up as f64 / 1024.0
    );

    // At the border: check vaccination records.
    meter.reset();
    let vax = phr.find_by_code("kind:vaccination").expect("search");
    let search = meter.snapshot();
    println!(
        "\nborder check: {} vaccination records retrieved in {} rounds",
        vax.len(),
        search.rounds
    );
    for r in vax.iter().take(5) {
        println!("  record {} day {} codes {:?}", r.id, r.day, r.codes);
    }
    if vax.len() > 5 {
        println!("  ... and {} more", vax.len() - 5);
    }

    // Price the same transcript under different links (Table 1's
    // "communication overhead" made concrete).
    println!("\nsimulated search latency by link profile:");
    for profile in [
        LinkProfile::lan(),
        LinkProfile::broadband(),
        LinkProfile::mobile(),
    ] {
        println!(
            "  {:<10} {:>8.1} ms",
            profile.name,
            profile.simulate(&search).as_secs_f64() * 1000.0
        );
    }

    // Replay a full traveler profile for the record.
    let events = traveler_profile(0, 6, 7);
    let searches = events
        .iter()
        .filter(|e| matches!(e, PhrEvent::Search(_)))
        .count();
    meter.reset();
    phr.run_profile(&events).expect("profile");
    println!(
        "\nreplayed {searches} ad-hoc searches: {} total rounds ({} per search — Table 1: two)",
        meter.snapshot().rounds,
        meter.snapshot().rounds / searches as u64
    );
}
