//! Interactive CLI for the SSE reproduction: drive either scheme from a
//! shell. Commands arrive on stdin, one per line:
//!
//! ```text
//! put <id> <keyword,keyword,...> <text...>   store a document
//! get <keyword>                              search one keyword
//! all <kw1> <kw2> [...]                      conjunctive query (AND)
//! any <kw1> <kw2> [...]                      disjunctive query (OR)
//! stats                                      server + traffic counters
//! help / quit
//! ```
//!
//! ```sh
//! cargo run --release --example cli                 # Scheme 2 (default)
//! cargo run --release --example cli -- scheme1      # Scheme 1
//! printf 'put 0 flu,fever notes\nget fever\nquit\n' | cargo run --release --example cli
//! ```

use sse_repro::core::query::{execute_query, Query};
use sse_repro::core::scheme::SseClientApi;
use sse_repro::core::scheme1::{InMemoryScheme1Client, Scheme1Config};
use sse_repro::core::scheme2::{InMemoryScheme2Client, Scheme2Config};
use sse_repro::core::types::{Document, Keyword, MasterKey};
use sse_repro::net::meter::Meter;
use std::io::{BufRead, Write};

enum AnyClient {
    S1(InMemoryScheme1Client),
    S2(InMemoryScheme2Client),
}

impl AnyClient {
    fn api(&mut self) -> &mut dyn SseClientApi {
        match self {
            AnyClient::S1(c) => c,
            AnyClient::S2(c) => c,
        }
    }

    fn meter(&self) -> Meter {
        match self {
            AnyClient::S1(c) => c.meter(),
            AnyClient::S2(c) => c.meter(),
        }
    }

    fn stats_line(&mut self) -> String {
        match self {
            AnyClient::S1(c) => {
                let s = c.server_mut();
                format!(
                    "scheme1: {} docs, {} unique keywords, tree height {}",
                    s.stored_docs(),
                    s.unique_keywords(),
                    s.tree_height()
                )
            }
            AnyClient::S2(c) => {
                let remaining = c.chain_remaining();
                let s = c.server_mut();
                format!(
                    "scheme2: {} docs, {} unique keywords, tree height {}, \
chain steps {}, chain budget left {}",
                    s.stored_docs(),
                    s.unique_keywords(),
                    s.tree_height(),
                    s.stats().chain_steps,
                    remaining
                )
            }
        }
    }
}

fn main() {
    let scheme = std::env::args().nth(1).unwrap_or_else(|| "scheme2".into());
    let key = MasterKey::generate();
    let mut client = match scheme.as_str() {
        "scheme1" => AnyClient::S1(InMemoryScheme1Client::new_in_memory(
            key,
            Scheme1Config::fast_profile(4096),
        )),
        _ => AnyClient::S2(InMemoryScheme2Client::new_in_memory(
            key,
            Scheme2Config::standard(),
        )),
    };
    println!(
        "sse-repro CLI ({}). Type 'help' for commands.",
        client.api().scheme_name()
    );

    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("> ");
        let _ = out.flush();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts.as_slice() {
            [] => {}
            ["quit" | "exit"] => break,
            ["help"] => {
                println!("put <id> <kw,kw,...> <text...> | get <kw> | all <kw>... | any <kw>... | stats | quit");
            }
            ["put", id, kws, text @ ..] => {
                let Ok(id) = id.parse::<u64>() else {
                    println!("bad id");
                    continue;
                };
                let keywords: Vec<&str> = kws.split(',').filter(|k| !k.is_empty()).collect();
                let doc = Document::new(id, text.join(" ").into_bytes(), keywords);
                match client.api().add_documents(&[doc]) {
                    Ok(()) => println!("stored doc {id}"),
                    Err(e) => println!("error: {e}"),
                }
            }
            ["get", kw] => match client.api().search(&Keyword::new(*kw)) {
                Ok(hits) => {
                    println!("{} hit(s)", hits.len());
                    for (id, data) in hits {
                        println!("  doc {id}: {}", String::from_utf8_lossy(&data));
                    }
                }
                Err(e) => println!("error: {e}"),
            },
            ["all", kws @ ..] if !kws.is_empty() => {
                run_query(&mut client, Query::all_of(kws.iter().copied()));
            }
            ["any", kws @ ..] if !kws.is_empty() => {
                run_query(&mut client, Query::any_of(kws.iter().copied()));
            }
            ["stats"] => {
                println!("{}", client.stats_line());
                let t = client.meter().snapshot();
                println!(
                    "traffic: {} rounds, {} B up, {} B down",
                    t.rounds, t.bytes_up, t.bytes_down
                );
            }
            _ => println!("unknown command; try 'help'"),
        }
    }
}

fn run_query(client: &mut AnyClient, q: Query) {
    let result = match client {
        AnyClient::S1(c) => execute_query(c, &q),
        AnyClient::S2(c) => execute_query(c, &q),
    };
    match result {
        Ok(hits) => {
            println!("{} hit(s)", hits.len());
            for (id, data) in hits {
                println!("  doc {id}: {}", String::from_utf8_lossy(&data));
            }
        }
        Err(e) => println!("error: {e}"),
    }
}
