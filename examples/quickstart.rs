//! Quickstart: store documents under both schemes, search, update, and
//! look at what each operation costs on the wire.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sse_repro::core::scheme1::{InMemoryScheme1Client, Scheme1Config};
use sse_repro::core::scheme2::{InMemoryScheme2Client, Scheme2Config};
use sse_repro::core::types::{Document, Keyword, MasterKey};

fn main() {
    let docs = vec![
        Document::new(
            0,
            b"2024-01-03 consultation notes".to_vec(),
            ["flu", "fever"],
        ),
        Document::new(1, b"2024-01-09 lab results".to_vec(), ["fever"]),
        Document::new(2, b"2024-02-14 prescription".to_vec(), ["migraine"]),
    ];

    println!("=== Scheme 1: computationally efficient, two rounds ===");
    let key = MasterKey::from_seed(2024);
    let mut c1 = InMemoryScheme1Client::new_in_memory(key, Scheme1Config::fast_profile(1024));
    let meter1 = c1.meter();

    c1.store(&docs).expect("store");
    let store_traffic = meter1.snapshot();
    println!(
        "store 3 docs: {} rounds, {} bytes up, {} bytes down",
        store_traffic.rounds, store_traffic.bytes_up, store_traffic.bytes_down
    );

    meter1.reset();
    let hits = c1.search(&Keyword::new("fever")).expect("search");
    let search_traffic = meter1.snapshot();
    println!(
        "search 'fever': {} hits in {} rounds ({} bytes down)",
        hits.len(),
        search_traffic.rounds,
        search_traffic.bytes_down
    );
    for (id, data) in &hits {
        println!("  doc {id}: {}", String::from_utf8_lossy(data));
    }

    // Updating later is the same operation as storing.
    meter1.reset();
    c1.store(&[Document::new(
        3,
        b"2024-03-01 follow-up".to_vec(),
        ["fever"],
    )])
    .expect("update");
    println!(
        "incremental update: {} rounds, {} bytes up (Θ(capacity) bit-array per keyword)",
        meter1.snapshot().rounds,
        meter1.snapshot().bytes_up
    );
    println!(
        "search again: {} hits",
        c1.search(&Keyword::new("fever")).expect("search").len()
    );

    println!();
    println!("=== Scheme 2: communication efficient, one round ===");
    let key = MasterKey::from_seed(2024);
    let mut c2 = InMemoryScheme2Client::new_in_memory(key, Scheme2Config::standard());
    let meter2 = c2.meter();

    c2.store(&docs).expect("store");
    println!(
        "store 3 docs: {} rounds, {} bytes up",
        meter2.snapshot().rounds,
        meter2.snapshot().bytes_up
    );

    meter2.reset();
    let hits = c2.search(&Keyword::new("fever")).expect("search");
    println!(
        "search 'fever': {} hits in {} round(s)",
        hits.len(),
        meter2.snapshot().rounds
    );

    meter2.reset();
    c2.store(&[Document::new(
        3,
        b"2024-03-01 follow-up".to_vec(),
        ["fever"],
    )])
    .expect("update");
    println!(
        "incremental update: {} round(s), {} bytes up (Θ(batch), not Θ(capacity))",
        meter2.snapshot().rounds,
        meter2.snapshot().bytes_up
    );
    let stats = c2.server_mut().stats();
    println!(
        "server chain walk so far: {} steps, {} generations decrypted",
        stats.chain_steps, stats.generations_decrypted
    );
    println!(
        "chain budget remaining: {} of {} counter values",
        c2.chain_remaining(),
        4096
    );
}
