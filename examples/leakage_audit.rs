//! Leakage audit: what do updates reveal, and how well do the §5.7
//! mitigations (batching, fake-update padding) hide it? Plus a live run of
//! the Theorem-1 simulator against real views.
//!
//! ```sh
//! cargo run --release --example leakage_audit
//! ```

use sse_repro::core::leakage::{analyze_updates, batch_documents};
use sse_repro::core::scheme1::Scheme1Config;
use sse_repro::core::security::{
    estimate_advantage, extract_scheme1_view, simulate_view, History, SimulatorParams, Statistic,
    Trace,
};
use sse_repro::core::types::{Keyword, MasterKey};
use sse_repro::phr::workload::{generate_corpus, CorpusConfig};

fn main() {
    // --- Part 1: update leakage vs batching and padding -------------------
    let corpus = generate_corpus(&CorpusConfig {
        docs: 120,
        vocab_size: 400,
        keywords_per_doc: (1, 9),
        payload_bytes: 32,
        ..CorpusConfig::default()
    });

    println!("update leakage (per-document keyword-count inference):");
    println!(
        "{:>10} {:>10} {:>16} {:>18}",
        "batch", "padding", "per-doc MAE", "obs entropy bits"
    );
    for batch in [1usize, 4, 16, 60] {
        let batches = batch_documents(&corpus, batch);
        let plain = analyze_updates(&batches, None);
        println!(
            "{batch:>10} {:>10} {:>16.3} {:>18.3}",
            "none", plain.per_doc_mae, plain.observation_entropy_bits
        );
    }
    let padded = analyze_updates(&batch_documents(&corpus, 1), Some(12));
    println!(
        "{:>10} {:>10} {:>16.3} {:>18.3}  <- every update looks identical",
        1, "pad-to-12", padded.per_doc_mae, padded.observation_entropy_bits
    );

    // --- Part 2: the Theorem-1 simulator in action ------------------------
    let config = Scheme1Config::fast_profile(64);
    let docs = generate_corpus(&CorpusConfig {
        docs: 24,
        vocab_size: 64,
        keywords_per_doc: (2, 4),
        payload_bytes: 48,
        ..CorpusConfig::default()
    });
    let queries = vec![
        Keyword::new("kw-00000"),
        Keyword::new("kw-00001"),
        Keyword::new("kw-00000"),
    ];
    let history = History::new(docs, queries);
    let trace = Trace::from_history(&history);
    let params = SimulatorParams::from_config(&config);

    // The game's probabilities range over Keygen's coins too, so each real
    // trial draws a fresh master key.
    let trials = 40;
    let real: Vec<Vec<u8>> = (0..trials)
        .map(|i| {
            let key = MasterKey::from_seed(9000 + i);
            extract_scheme1_view(&history, &key, config.clone(), i, false).index_bytes_only()
        })
        .collect();
    let simulated: Vec<Vec<u8>> = (0..trials)
        .map(|i| simulate_view(&trace, &params, 1000 + i).index_bytes_only())
        .collect();
    // Null control: two independent simulator populations. Any "advantage"
    // here is pure sampling noise — the floor to compare against.
    let simulated2: Vec<Vec<u8>> = (0..trials)
        .map(|i| simulate_view(&trace, &params, 2000 + i).index_bytes_only())
        .collect();
    let broken: Vec<Vec<u8>> = (0..trials)
        .map(|i| {
            let key = MasterKey::from_seed(9000 + i);
            extract_scheme1_view(&history, &key, config.clone(), i, true).index_bytes_only()
        })
        .collect();

    println!("\ndistinguishing game (Definition 4, empirically):");
    println!(
        "{:<16} {:>18} {:>18} {:>18}",
        "statistic", "noise floor", "adv(real, sim)", "adv(broken, sim)"
    );
    for &stat in Statistic::all() {
        let floor = estimate_advantage(stat, &simulated, &simulated2);
        let honest = estimate_advantage(stat, &real, &simulated);
        let cracked = estimate_advantage(stat, &broken, &simulated);
        println!(
            "{:<16} {:>18.3} {:>18.3} {:>18.3}",
            stat.name(),
            floor.advantage,
            honest.advantage,
            cracked.advantage
        );
    }
    println!("\nTheorem 1 predicts adv(real, sim) ≈ the noise floor; the broken");
    println!("variant (mask disabled) validates that the harness detects leaks.");
}
