//! Serving-layer quickstart: spawn the multi-tenant TCP daemon in-process,
//! run a Scheme 2 client over a real socket, and read the serving stats
//! back over the ADMIN protocol.
//!
//! ```text
//! cargo run --release --example tcp_quickstart
//! ```

use sse_repro::core::scheme2::{Scheme2Client, Scheme2Config};
use sse_repro::core::types::{Document, Keyword, MasterKey};
use sse_repro::server::daemon::{Daemon, ServerConfig};
use sse_repro::server::proto::SchemeId;
use sse_repro::server::transport::TcpTransport;

fn main() {
    // 1. A daemon on an ephemeral port: 4 workers, bounded queue.
    let daemon = Daemon::spawn(ServerConfig::default()).expect("bind");
    let addr = daemon.local_addr();
    println!("daemon listening on {addr}");

    // 2. The existing Scheme 2 client, unchanged — only the transport is
    //    new: hello routes this connection to tenant "clinic"'s database.
    let transport = TcpTransport::connect(addr, "clinic", SchemeId::Scheme2).expect("connect");
    let mut client = Scheme2Client::new_seeded(
        transport,
        MasterKey::from_seed(42),
        Scheme2Config::standard(),
        42,
    );

    client
        .store(&[
            Document::new(0, b"patient A, influenza".to_vec(), ["influenza"]),
            Document::new(
                1,
                b"patient B, influenza + fever".to_vec(),
                ["influenza", "fever"],
            ),
            Document::new(2, b"patient C, fracture".to_vec(), ["fracture"]),
        ])
        .expect("store");
    let hits = client.search(&Keyword::new("influenza")).expect("search");
    println!("search(influenza) over TCP: {} hits", hits.len());
    for (id, payload) in &hits {
        println!("  doc {id}: {}", String::from_utf8_lossy(payload));
    }

    // 3. Serving stats over the same wire protocol.
    let mut admin = TcpTransport::connect(addr, "clinic", SchemeId::Scheme2).expect("connect");
    let stats = admin.admin_stats().expect("stats");
    println!(
        "served {} requests, {} bytes in / {} bytes out, p50 {} ns, p99 {} ns",
        stats.requests_ok, stats.bytes_in, stats.bytes_out, stats.p50_ns, stats.p99_ns
    );

    // 4. Graceful shutdown: drains the queue, joins every thread.
    let report = daemon.shutdown();
    println!(
        "daemon stopped ({} workers, {} connections joined)",
        report.workers_joined, report.connections_joined
    );
}
