//! Durability and concurrency demo: a Scheme 2 server with a WAL-backed
//! document store, run behind a threaded transport, surviving a restart.
//!
//! ```sh
//! cargo run --release --example durable_server
//! ```

use sse_repro::core::scheme2::{Scheme2Client, Scheme2Config, Scheme2Server};
use sse_repro::core::types::{Document, Keyword, MasterKey};
use sse_repro::net::link::{Duplex, MeteredLink};
use sse_repro::net::meter::Meter;

fn main() {
    let dir = std::env::temp_dir().join(format!("sse-durable-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = Scheme2Config::standard().with_chain_length(256);
    let key = MasterKey::from_seed(31);

    // --- Session 1: threaded server, store documents ----------------------
    let server = Scheme2Server::open_durable(config.clone(), &dir).expect("open");
    let meter = Meter::new();
    let (duplex, handle) = Duplex::spawn(server, meter.clone());
    let mut client = Scheme2Client::new_seeded(duplex, key.clone(), config.clone(), 1);

    let docs = vec![
        Document::new(0, b"persisted record zero".to_vec(), ["alpha"]),
        Document::new(1, b"persisted record one".to_vec(), ["alpha", "beta"]),
    ];
    client.store(&docs).expect("store");
    let hits = client.search(&Keyword::new("alpha")).expect("search");
    println!(
        "session 1 (threaded server): stored {} docs, search found {} — {:?} rounds",
        docs.len(),
        hits.len(),
        meter.snapshot().rounds
    );
    // Before hanging up, ask the server to checkpoint its store + index.
    client.request_checkpoint().expect("checkpoint");
    let saved_state = client.state();
    drop(client); // hang up: server thread exits
    handle.join();

    // --- Session 2: reopen from disk — blobs AND index recovered ----------
    let server = Scheme2Server::open_durable(config.clone(), &dir).expect("reopen");
    println!(
        "session 2: server recovered {} blobs and {} keyword entries from disk",
        server.stored_docs(),
        server.unique_keywords()
    );
    let mut client =
        Scheme2Client::new_seeded(MeteredLink::new(server, Meter::new()), key, config, 2);
    client.restore_state(saved_state);

    // No re-indexing needed: the checkpointed index answers immediately.
    let hits = client.search(&Keyword::new("beta")).expect("search");
    println!(
        "session 2: search 'beta' found {} -> {:?}",
        hits.len(),
        hits.iter()
            .map(|(id, d)| format!("doc {id}: {}", String::from_utf8_lossy(d)))
            .collect::<Vec<_>>()
    );

    let _ = std::fs::remove_dir_all(&dir);
}
