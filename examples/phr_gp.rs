//! The §6 *GP* scenario on Scheme 2.
//!
//! A general practitioner retrieves each patient's record before the visit
//! and stores new records after it: updates and searches interleave
//! constantly. Scheme 2 fits: one-round operations, update bandwidth
//! proportional to the new records only, and the interleaving keeps the
//! server's chain walks short (the `l/2x` term of Table 1).
//!
//! ```sh
//! cargo run --release --example phr_gp
//! ```

use sse_repro::core::scheme2::{CtrPolicy, InMemoryScheme2Client, Scheme2Config};
use sse_repro::core::types::MasterKey;
use sse_repro::phr::system::PhrSystem;
use sse_repro::phr::workload::gp_profile;

fn main() {
    let config = Scheme2Config::standard().with_chain_length(4096);
    let key = MasterKey::from_seed(1907);
    let client = InMemoryScheme2Client::new_in_memory(key, config);
    let meter = client.meter();
    let mut phr = PhrSystem::new(client);

    // A working week: 40 visits, 2 record updates per visit.
    let events = gp_profile(40, 2, 11);
    let (stored, searched, hits) = phr.run_profile(&events).expect("profile");
    let traffic = meter.snapshot();

    println!("GP week on Scheme 2:");
    println!("  visits (searches): {searched}");
    println!("  records stored:    {stored}");
    println!("  records retrieved: {hits}");
    println!(
        "  traffic: {} rounds, {:.1} KiB up, {:.1} KiB down",
        traffic.rounds,
        traffic.bytes_up as f64 / 1024.0,
        traffic.bytes_down as f64 / 1024.0
    );

    let client = phr.client_mut();
    let stats = client.server_mut().stats();
    println!("\nserver-side cost profile:");
    println!("  chain-walk steps:        {}", stats.chain_steps);
    println!("  generations decrypted:   {}", stats.generations_decrypted);
    println!(
        "  served from Opt-1 cache: {}",
        stats.generations_from_cache
    );
    println!(
        "  avg walk per search:     {:.1} steps (interleaving keeps x small)",
        stats.chain_steps as f64 / stats.searches.max(1) as f64
    );
    println!(
        "\nchain budget: {} of 4096 counter values left (Opt. 2 policy: {:?})",
        client.chain_remaining(),
        CtrPolicy::OnSearchOnly
    );

    // Contrast: the same week with both optimizations off.
    let base_config = Scheme2Config::base(4096);
    let key = MasterKey::from_seed(1907);
    let client = InMemoryScheme2Client::new_in_memory(key, base_config);
    let mut phr = PhrSystem::new(client);
    phr.run_profile(&gp_profile(40, 2, 11)).expect("profile");
    let stats = phr.client_mut().server_mut().stats();
    println!("\nsame week, optimizations OFF:");
    println!("  chain-walk steps:      {}", stats.chain_steps);
    println!("  generations decrypted: {}", stats.generations_decrypted);
    println!(
        "  chain budget left:     {} (Opt. 2 would have saved counter values)",
        phr.client_mut().chain_remaining()
    );
}
