/root/repo/target/release/examples/gen_safe_prime-aaf7c9b940aa2993.d: crates/primitives/examples/gen_safe_prime.rs

/root/repo/target/release/examples/gen_safe_prime-aaf7c9b940aa2993: crates/primitives/examples/gen_safe_prime.rs

crates/primitives/examples/gen_safe_prime.rs:
