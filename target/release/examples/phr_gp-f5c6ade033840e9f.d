/root/repo/target/release/examples/phr_gp-f5c6ade033840e9f.d: examples/phr_gp.rs

/root/repo/target/release/examples/phr_gp-f5c6ade033840e9f: examples/phr_gp.rs

examples/phr_gp.rs:
