/root/repo/target/release/examples/cli-cb7d0265fe11bc29.d: examples/cli.rs

/root/repo/target/release/examples/cli-cb7d0265fe11bc29: examples/cli.rs

examples/cli.rs:
