/root/repo/target/release/examples/durable_server-6b5d8a643f86cd3b.d: examples/durable_server.rs Cargo.toml

/root/repo/target/release/examples/libdurable_server-6b5d8a643f86cd3b.rmeta: examples/durable_server.rs Cargo.toml

examples/durable_server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
