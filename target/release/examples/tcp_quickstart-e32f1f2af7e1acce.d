/root/repo/target/release/examples/tcp_quickstart-e32f1f2af7e1acce.d: examples/tcp_quickstart.rs

/root/repo/target/release/examples/tcp_quickstart-e32f1f2af7e1acce: examples/tcp_quickstart.rs

examples/tcp_quickstart.rs:
