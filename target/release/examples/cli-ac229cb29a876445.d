/root/repo/target/release/examples/cli-ac229cb29a876445.d: examples/cli.rs Cargo.toml

/root/repo/target/release/examples/libcli-ac229cb29a876445.rmeta: examples/cli.rs Cargo.toml

examples/cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
