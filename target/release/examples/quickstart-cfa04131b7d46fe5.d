/root/repo/target/release/examples/quickstart-cfa04131b7d46fe5.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-cfa04131b7d46fe5: examples/quickstart.rs

examples/quickstart.rs:
