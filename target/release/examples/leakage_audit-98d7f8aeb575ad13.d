/root/repo/target/release/examples/leakage_audit-98d7f8aeb575ad13.d: examples/leakage_audit.rs

/root/repo/target/release/examples/leakage_audit-98d7f8aeb575ad13: examples/leakage_audit.rs

examples/leakage_audit.rs:
