/root/repo/target/release/examples/phr_traveler-6794ad567a6f0c46.d: examples/phr_traveler.rs

/root/repo/target/release/examples/phr_traveler-6794ad567a6f0c46: examples/phr_traveler.rs

examples/phr_traveler.rs:
