/root/repo/target/release/examples/phr_gp-6838ff0ed5421659.d: examples/phr_gp.rs Cargo.toml

/root/repo/target/release/examples/libphr_gp-6838ff0ed5421659.rmeta: examples/phr_gp.rs Cargo.toml

examples/phr_gp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
