/root/repo/target/release/examples/leakage_audit-930b383dfed8ad86.d: examples/leakage_audit.rs Cargo.toml

/root/repo/target/release/examples/libleakage_audit-930b383dfed8ad86.rmeta: examples/leakage_audit.rs Cargo.toml

examples/leakage_audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
