/root/repo/target/release/examples/durable_server-55b333163699bbe9.d: examples/durable_server.rs

/root/repo/target/release/examples/durable_server-55b333163699bbe9: examples/durable_server.rs

examples/durable_server.rs:
