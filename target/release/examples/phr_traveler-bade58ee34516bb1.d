/root/repo/target/release/examples/phr_traveler-bade58ee34516bb1.d: examples/phr_traveler.rs Cargo.toml

/root/repo/target/release/examples/libphr_traveler-bade58ee34516bb1.rmeta: examples/phr_traveler.rs Cargo.toml

examples/phr_traveler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
