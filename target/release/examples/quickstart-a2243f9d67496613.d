/root/repo/target/release/examples/quickstart-a2243f9d67496613.d: examples/quickstart.rs Cargo.toml

/root/repo/target/release/examples/libquickstart-a2243f9d67496613.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
