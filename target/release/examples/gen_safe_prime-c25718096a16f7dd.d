/root/repo/target/release/examples/gen_safe_prime-c25718096a16f7dd.d: crates/primitives/examples/gen_safe_prime.rs Cargo.toml

/root/repo/target/release/examples/libgen_safe_prime-c25718096a16f7dd.rmeta: crates/primitives/examples/gen_safe_prime.rs Cargo.toml

crates/primitives/examples/gen_safe_prime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
