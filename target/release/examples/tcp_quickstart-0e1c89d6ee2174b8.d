/root/repo/target/release/examples/tcp_quickstart-0e1c89d6ee2174b8.d: examples/tcp_quickstart.rs Cargo.toml

/root/repo/target/release/examples/libtcp_quickstart-0e1c89d6ee2174b8.rmeta: examples/tcp_quickstart.rs Cargo.toml

examples/tcp_quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
