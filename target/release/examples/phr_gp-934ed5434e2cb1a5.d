/root/repo/target/release/examples/phr_gp-934ed5434e2cb1a5.d: examples/phr_gp.rs

/root/repo/target/release/examples/phr_gp-934ed5434e2cb1a5: examples/phr_gp.rs

examples/phr_gp.rs:
