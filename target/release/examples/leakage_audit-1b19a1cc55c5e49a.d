/root/repo/target/release/examples/leakage_audit-1b19a1cc55c5e49a.d: examples/leakage_audit.rs

/root/repo/target/release/examples/leakage_audit-1b19a1cc55c5e49a: examples/leakage_audit.rs

examples/leakage_audit.rs:
