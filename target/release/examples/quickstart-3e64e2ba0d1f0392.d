/root/repo/target/release/examples/quickstart-3e64e2ba0d1f0392.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-3e64e2ba0d1f0392: examples/quickstart.rs

examples/quickstart.rs:
