/root/repo/target/release/examples/durable_server-b6276bd3492d5143.d: examples/durable_server.rs

/root/repo/target/release/examples/durable_server-b6276bd3492d5143: examples/durable_server.rs

examples/durable_server.rs:
