/root/repo/target/release/examples/phr_traveler-b1854ef277d1a77c.d: examples/phr_traveler.rs

/root/repo/target/release/examples/phr_traveler-b1854ef277d1a77c: examples/phr_traveler.rs

examples/phr_traveler.rs:
