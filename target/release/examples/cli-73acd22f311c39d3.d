/root/repo/target/release/examples/cli-73acd22f311c39d3.d: examples/cli.rs

/root/repo/target/release/examples/cli-73acd22f311c39d3: examples/cli.rs

examples/cli.rs:
