/root/repo/target/release/deps/sse_serverd-5c137715ffea1c8a.d: crates/server/src/bin/sse-serverd.rs

/root/repo/target/release/deps/sse_serverd-5c137715ffea1c8a: crates/server/src/bin/sse-serverd.rs

crates/server/src/bin/sse-serverd.rs:
