/root/repo/target/release/deps/criterion-2f33e5c8590224f5.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-2f33e5c8590224f5: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
