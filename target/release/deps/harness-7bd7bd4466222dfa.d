/root/repo/target/release/deps/harness-7bd7bd4466222dfa.d: crates/bench/src/bin/harness.rs Cargo.toml

/root/repo/target/release/deps/libharness-7bd7bd4466222dfa.rmeta: crates/bench/src/bin/harness.rs Cargo.toml

crates/bench/src/bin/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
