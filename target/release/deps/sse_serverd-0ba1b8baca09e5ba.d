/root/repo/target/release/deps/sse_serverd-0ba1b8baca09e5ba.d: crates/server/src/bin/sse-serverd.rs Cargo.toml

/root/repo/target/release/deps/libsse_serverd-0ba1b8baca09e5ba.rmeta: crates/server/src/bin/sse-serverd.rs Cargo.toml

crates/server/src/bin/sse-serverd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
