/root/repo/target/release/deps/criterion-d39fa541460b4658.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-d39fa541460b4658.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-d39fa541460b4658.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
