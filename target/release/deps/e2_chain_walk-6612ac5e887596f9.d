/root/repo/target/release/deps/e2_chain_walk-6612ac5e887596f9.d: crates/bench/benches/e2_chain_walk.rs Cargo.toml

/root/repo/target/release/deps/libe2_chain_walk-6612ac5e887596f9.rmeta: crates/bench/benches/e2_chain_walk.rs Cargo.toml

crates/bench/benches/e2_chain_walk.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
