/root/repo/target/release/deps/security_game-d325cf63f21331f5.d: tests/security_game.rs

/root/repo/target/release/deps/security_game-d325cf63f21331f5: tests/security_game.rs

tests/security_game.rs:
