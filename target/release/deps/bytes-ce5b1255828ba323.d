/root/repo/target/release/deps/bytes-ce5b1255828ba323.d: vendor/bytes/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libbytes-ce5b1255828ba323.rmeta: vendor/bytes/src/lib.rs Cargo.toml

vendor/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
