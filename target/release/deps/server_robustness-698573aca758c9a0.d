/root/repo/target/release/deps/server_robustness-698573aca758c9a0.d: crates/core/tests/server_robustness.rs

/root/repo/target/release/deps/server_robustness-698573aca758c9a0: crates/core/tests/server_robustness.rs

crates/core/tests/server_robustness.rs:
