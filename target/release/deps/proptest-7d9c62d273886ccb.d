/root/repo/target/release/deps/proptest-7d9c62d273886ccb.d: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/sample.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs Cargo.toml

/root/repo/target/release/deps/libproptest-7d9c62d273886ccb.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/sample.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs Cargo.toml

vendor/proptest/src/lib.rs:
vendor/proptest/src/arbitrary.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/sample.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
