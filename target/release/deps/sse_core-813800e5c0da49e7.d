/root/repo/target/release/deps/sse_core-813800e5c0da49e7.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/leakage.rs crates/core/src/proto_common.rs crates/core/src/query.rs crates/core/src/scheme.rs crates/core/src/scheme1/mod.rs crates/core/src/scheme1/client.rs crates/core/src/scheme1/protocol.rs crates/core/src/scheme1/server.rs crates/core/src/scheme2/mod.rs crates/core/src/scheme2/client.rs crates/core/src/scheme2/protocol.rs crates/core/src/scheme2/server.rs crates/core/src/security/mod.rs crates/core/src/security/game.rs crates/core/src/security/simulator.rs crates/core/src/security/trace.rs crates/core/src/types.rs

/root/repo/target/release/deps/libsse_core-813800e5c0da49e7.rlib: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/leakage.rs crates/core/src/proto_common.rs crates/core/src/query.rs crates/core/src/scheme.rs crates/core/src/scheme1/mod.rs crates/core/src/scheme1/client.rs crates/core/src/scheme1/protocol.rs crates/core/src/scheme1/server.rs crates/core/src/scheme2/mod.rs crates/core/src/scheme2/client.rs crates/core/src/scheme2/protocol.rs crates/core/src/scheme2/server.rs crates/core/src/security/mod.rs crates/core/src/security/game.rs crates/core/src/security/simulator.rs crates/core/src/security/trace.rs crates/core/src/types.rs

/root/repo/target/release/deps/libsse_core-813800e5c0da49e7.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/leakage.rs crates/core/src/proto_common.rs crates/core/src/query.rs crates/core/src/scheme.rs crates/core/src/scheme1/mod.rs crates/core/src/scheme1/client.rs crates/core/src/scheme1/protocol.rs crates/core/src/scheme1/server.rs crates/core/src/scheme2/mod.rs crates/core/src/scheme2/client.rs crates/core/src/scheme2/protocol.rs crates/core/src/scheme2/server.rs crates/core/src/security/mod.rs crates/core/src/security/game.rs crates/core/src/security/simulator.rs crates/core/src/security/trace.rs crates/core/src/types.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/leakage.rs:
crates/core/src/proto_common.rs:
crates/core/src/query.rs:
crates/core/src/scheme.rs:
crates/core/src/scheme1/mod.rs:
crates/core/src/scheme1/client.rs:
crates/core/src/scheme1/protocol.rs:
crates/core/src/scheme1/server.rs:
crates/core/src/scheme2/mod.rs:
crates/core/src/scheme2/client.rs:
crates/core/src/scheme2/protocol.rs:
crates/core/src/scheme2/server.rs:
crates/core/src/security/mod.rs:
crates/core/src/security/game.rs:
crates/core/src/security/simulator.rs:
crates/core/src/security/trace.rs:
crates/core/src/types.rs:
