/root/repo/target/release/deps/property_based-05bebf89a9722e14.d: tests/property_based.rs

/root/repo/target/release/deps/property_based-05bebf89a9722e14: tests/property_based.rs

tests/property_based.rs:
