/root/repo/target/release/deps/sse_net-58875016fac1ad8f.d: crates/net/src/lib.rs crates/net/src/frame.rs crates/net/src/latency.rs crates/net/src/link.rs crates/net/src/meter.rs crates/net/src/shutdown.rs crates/net/src/wire.rs

/root/repo/target/release/deps/libsse_net-58875016fac1ad8f.rlib: crates/net/src/lib.rs crates/net/src/frame.rs crates/net/src/latency.rs crates/net/src/link.rs crates/net/src/meter.rs crates/net/src/shutdown.rs crates/net/src/wire.rs

/root/repo/target/release/deps/libsse_net-58875016fac1ad8f.rmeta: crates/net/src/lib.rs crates/net/src/frame.rs crates/net/src/latency.rs crates/net/src/link.rs crates/net/src/meter.rs crates/net/src/shutdown.rs crates/net/src/wire.rs

crates/net/src/lib.rs:
crates/net/src/frame.rs:
crates/net/src/latency.rs:
crates/net/src/link.rs:
crates/net/src/meter.rs:
crates/net/src/shutdown.rs:
crates/net/src/wire.rs:
