/root/repo/target/release/deps/sse_storage-a8bf39fed5dfa093.d: crates/storage/src/lib.rs crates/storage/src/crc32.rs crates/storage/src/error.rs crates/storage/src/heap.rs crates/storage/src/page.rs crates/storage/src/store.rs crates/storage/src/wal.rs Cargo.toml

/root/repo/target/release/deps/libsse_storage-a8bf39fed5dfa093.rmeta: crates/storage/src/lib.rs crates/storage/src/crc32.rs crates/storage/src/error.rs crates/storage/src/heap.rs crates/storage/src/page.rs crates/storage/src/store.rs crates/storage/src/wal.rs Cargo.toml

crates/storage/src/lib.rs:
crates/storage/src/crc32.rs:
crates/storage/src/error.rs:
crates/storage/src/heap.rs:
crates/storage/src/page.rs:
crates/storage/src/store.rs:
crates/storage/src/wal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
