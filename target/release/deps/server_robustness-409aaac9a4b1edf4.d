/root/repo/target/release/deps/server_robustness-409aaac9a4b1edf4.d: crates/core/tests/server_robustness.rs Cargo.toml

/root/repo/target/release/deps/libserver_robustness-409aaac9a4b1edf4.rmeta: crates/core/tests/server_robustness.rs Cargo.toml

crates/core/tests/server_robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
