/root/repo/target/release/deps/scheme2_e2e-9ef25482d5025d04.d: tests/scheme2_e2e.rs

/root/repo/target/release/deps/scheme2_e2e-9ef25482d5025d04: tests/scheme2_e2e.rs

tests/scheme2_e2e.rs:
