/root/repo/target/release/deps/property_based-08997fa871ccd151.d: tests/property_based.rs Cargo.toml

/root/repo/target/release/deps/libproperty_based-08997fa871ccd151.rmeta: tests/property_based.rs Cargo.toml

tests/property_based.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
