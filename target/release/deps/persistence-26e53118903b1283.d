/root/repo/target/release/deps/persistence-26e53118903b1283.d: tests/persistence.rs

/root/repo/target/release/deps/persistence-26e53118903b1283: tests/persistence.rs

tests/persistence.rs:
