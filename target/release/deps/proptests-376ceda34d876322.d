/root/repo/target/release/deps/proptests-376ceda34d876322.d: crates/primitives/tests/proptests.rs

/root/repo/target/release/deps/proptests-376ceda34d876322: crates/primitives/tests/proptests.rs

crates/primitives/tests/proptests.rs:
