/root/repo/target/release/deps/sse_repro-5bb6a50dafb71607.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libsse_repro-5bb6a50dafb71607.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
