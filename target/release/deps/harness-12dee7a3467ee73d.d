/root/repo/target/release/deps/harness-12dee7a3467ee73d.d: crates/bench/src/bin/harness.rs

/root/repo/target/release/deps/harness-12dee7a3467ee73d: crates/bench/src/bin/harness.rs

crates/bench/src/bin/harness.rs:
