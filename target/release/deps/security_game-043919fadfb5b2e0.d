/root/repo/target/release/deps/security_game-043919fadfb5b2e0.d: tests/security_game.rs

/root/repo/target/release/deps/security_game-043919fadfb5b2e0: tests/security_game.rs

tests/security_game.rs:
