/root/repo/target/release/deps/sse_load-d6c029141935bf04.d: crates/server/src/bin/sse-load.rs

/root/repo/target/release/deps/sse_load-d6c029141935bf04: crates/server/src/bin/sse-load.rs

crates/server/src/bin/sse-load.rs:
