/root/repo/target/release/deps/proptests-0fcc3c078e965868.d: crates/index/tests/proptests.rs

/root/repo/target/release/deps/proptests-0fcc3c078e965868: crates/index/tests/proptests.rs

crates/index/tests/proptests.rs:
