/root/repo/target/release/deps/sse_repro-fecbd9eb19cb82a0.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libsse_repro-fecbd9eb19cb82a0.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
