/root/repo/target/release/deps/threaded_transport-318e788681d01524.d: tests/threaded_transport.rs

/root/repo/target/release/deps/threaded_transport-318e788681d01524: tests/threaded_transport.rs

tests/threaded_transport.rs:
