/root/repo/target/release/deps/e1_search_scaling-6576e5a5185a4d49.d: crates/bench/benches/e1_search_scaling.rs Cargo.toml

/root/repo/target/release/deps/libe1_search_scaling-6576e5a5185a4d49.rmeta: crates/bench/benches/e1_search_scaling.rs Cargo.toml

crates/bench/benches/e1_search_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
