/root/repo/target/release/deps/harness-a1ba7897bc355bf3.d: crates/bench/src/bin/harness.rs

/root/repo/target/release/deps/harness-a1ba7897bc355bf3: crates/bench/src/bin/harness.rs

crates/bench/src/bin/harness.rs:
