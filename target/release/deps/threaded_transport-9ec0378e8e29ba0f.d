/root/repo/target/release/deps/threaded_transport-9ec0378e8e29ba0f.d: tests/threaded_transport.rs

/root/repo/target/release/deps/threaded_transport-9ec0378e8e29ba0f: tests/threaded_transport.rs

tests/threaded_transport.rs:
