/root/repo/target/release/deps/criterion-89747804b7deb257.d: vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcriterion-89747804b7deb257.rmeta: vendor/criterion/src/lib.rs Cargo.toml

vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
