/root/repo/target/release/deps/sse_phr-b955a4d637390769.d: crates/phr/src/lib.rs crates/phr/src/codes.rs crates/phr/src/record.rs crates/phr/src/system.rs crates/phr/src/workload.rs crates/phr/src/zipf.rs

/root/repo/target/release/deps/libsse_phr-b955a4d637390769.rlib: crates/phr/src/lib.rs crates/phr/src/codes.rs crates/phr/src/record.rs crates/phr/src/system.rs crates/phr/src/workload.rs crates/phr/src/zipf.rs

/root/repo/target/release/deps/libsse_phr-b955a4d637390769.rmeta: crates/phr/src/lib.rs crates/phr/src/codes.rs crates/phr/src/record.rs crates/phr/src/system.rs crates/phr/src/workload.rs crates/phr/src/zipf.rs

crates/phr/src/lib.rs:
crates/phr/src/codes.rs:
crates/phr/src/record.rs:
crates/phr/src/system.rs:
crates/phr/src/workload.rs:
crates/phr/src/zipf.rs:
