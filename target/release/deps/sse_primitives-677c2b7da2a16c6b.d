/root/repo/target/release/deps/sse_primitives-677c2b7da2a16c6b.d: crates/primitives/src/lib.rs crates/primitives/src/aes.rs crates/primitives/src/bignum.rs crates/primitives/src/chacha20.rs crates/primitives/src/ct.rs crates/primitives/src/ctr.rs crates/primitives/src/drbg.rs crates/primitives/src/elgamal.rs crates/primitives/src/error.rs crates/primitives/src/etm.rs crates/primitives/src/hashchain.rs crates/primitives/src/hmac.rs crates/primitives/src/kdf.rs crates/primitives/src/modp.rs crates/primitives/src/prf.rs crates/primitives/src/prg.rs crates/primitives/src/sha256.rs Cargo.toml

/root/repo/target/release/deps/libsse_primitives-677c2b7da2a16c6b.rmeta: crates/primitives/src/lib.rs crates/primitives/src/aes.rs crates/primitives/src/bignum.rs crates/primitives/src/chacha20.rs crates/primitives/src/ct.rs crates/primitives/src/ctr.rs crates/primitives/src/drbg.rs crates/primitives/src/elgamal.rs crates/primitives/src/error.rs crates/primitives/src/etm.rs crates/primitives/src/hashchain.rs crates/primitives/src/hmac.rs crates/primitives/src/kdf.rs crates/primitives/src/modp.rs crates/primitives/src/prf.rs crates/primitives/src/prg.rs crates/primitives/src/sha256.rs Cargo.toml

crates/primitives/src/lib.rs:
crates/primitives/src/aes.rs:
crates/primitives/src/bignum.rs:
crates/primitives/src/chacha20.rs:
crates/primitives/src/ct.rs:
crates/primitives/src/ctr.rs:
crates/primitives/src/drbg.rs:
crates/primitives/src/elgamal.rs:
crates/primitives/src/error.rs:
crates/primitives/src/etm.rs:
crates/primitives/src/hashchain.rs:
crates/primitives/src/hmac.rs:
crates/primitives/src/kdf.rs:
crates/primitives/src/modp.rs:
crates/primitives/src/prf.rs:
crates/primitives/src/prg.rs:
crates/primitives/src/sha256.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
