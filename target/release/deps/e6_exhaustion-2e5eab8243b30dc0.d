/root/repo/target/release/deps/e6_exhaustion-2e5eab8243b30dc0.d: crates/bench/benches/e6_exhaustion.rs Cargo.toml

/root/repo/target/release/deps/libe6_exhaustion-2e5eab8243b30dc0.rmeta: crates/bench/benches/e6_exhaustion.rs Cargo.toml

crates/bench/benches/e6_exhaustion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
