/root/repo/target/release/deps/criterion-78165cb7153c0308.d: vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcriterion-78165cb7153c0308.rmeta: vendor/criterion/src/lib.rs Cargo.toml

vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
