/root/repo/target/release/deps/sse_index-5e5129ff31412be5.d: crates/index/src/lib.rs crates/index/src/bitset.rs crates/index/src/bloom.rs crates/index/src/bptree.rs crates/index/src/postings.rs Cargo.toml

/root/repo/target/release/deps/libsse_index-5e5129ff31412be5.rmeta: crates/index/src/lib.rs crates/index/src/bitset.rs crates/index/src/bloom.rs crates/index/src/bptree.rs crates/index/src/postings.rs Cargo.toml

crates/index/src/lib.rs:
crates/index/src/bitset.rs:
crates/index/src/bloom.rs:
crates/index/src/bptree.rs:
crates/index/src/postings.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
