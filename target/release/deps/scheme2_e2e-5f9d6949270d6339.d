/root/repo/target/release/deps/scheme2_e2e-5f9d6949270d6339.d: tests/scheme2_e2e.rs

/root/repo/target/release/deps/scheme2_e2e-5f9d6949270d6339: tests/scheme2_e2e.rs

tests/scheme2_e2e.rs:
