/root/repo/target/release/deps/sse_index-44d568e1eddd7cc1.d: crates/index/src/lib.rs crates/index/src/bitset.rs crates/index/src/bloom.rs crates/index/src/bptree.rs crates/index/src/postings.rs

/root/repo/target/release/deps/libsse_index-44d568e1eddd7cc1.rlib: crates/index/src/lib.rs crates/index/src/bitset.rs crates/index/src/bloom.rs crates/index/src/bptree.rs crates/index/src/postings.rs

/root/repo/target/release/deps/libsse_index-44d568e1eddd7cc1.rmeta: crates/index/src/lib.rs crates/index/src/bitset.rs crates/index/src/bloom.rs crates/index/src/bptree.rs crates/index/src/postings.rs

crates/index/src/lib.rs:
crates/index/src/bitset.rs:
crates/index/src/bloom.rs:
crates/index/src/bptree.rs:
crates/index/src/postings.rs:
