/root/repo/target/release/deps/sse_storage-eee039161ddd0d52.d: crates/storage/src/lib.rs crates/storage/src/crc32.rs crates/storage/src/error.rs crates/storage/src/heap.rs crates/storage/src/page.rs crates/storage/src/store.rs crates/storage/src/wal.rs

/root/repo/target/release/deps/sse_storage-eee039161ddd0d52: crates/storage/src/lib.rs crates/storage/src/crc32.rs crates/storage/src/error.rs crates/storage/src/heap.rs crates/storage/src/page.rs crates/storage/src/store.rs crates/storage/src/wal.rs

crates/storage/src/lib.rs:
crates/storage/src/crc32.rs:
crates/storage/src/error.rs:
crates/storage/src/heap.rs:
crates/storage/src/page.rs:
crates/storage/src/store.rs:
crates/storage/src/wal.rs:
