/root/repo/target/release/deps/tcp_server-de2c6194a521082e.d: tests/tcp_server.rs Cargo.toml

/root/repo/target/release/deps/libtcp_server-de2c6194a521082e.rmeta: tests/tcp_server.rs Cargo.toml

tests/tcp_server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
