/root/repo/target/release/deps/parking_lot-7064ffbef9bc0913.d: vendor/parking_lot/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libparking_lot-7064ffbef9bc0913.rmeta: vendor/parking_lot/src/lib.rs Cargo.toml

vendor/parking_lot/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
