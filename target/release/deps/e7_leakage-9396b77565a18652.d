/root/repo/target/release/deps/e7_leakage-9396b77565a18652.d: crates/bench/benches/e7_leakage.rs Cargo.toml

/root/repo/target/release/deps/libe7_leakage-9396b77565a18652.rmeta: crates/bench/benches/e7_leakage.rs Cargo.toml

crates/bench/benches/e7_leakage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
