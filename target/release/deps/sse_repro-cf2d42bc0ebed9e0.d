/root/repo/target/release/deps/sse_repro-cf2d42bc0ebed9e0.d: src/lib.rs

/root/repo/target/release/deps/libsse_repro-cf2d42bc0ebed9e0.rlib: src/lib.rs

/root/repo/target/release/deps/libsse_repro-cf2d42bc0ebed9e0.rmeta: src/lib.rs

src/lib.rs:
