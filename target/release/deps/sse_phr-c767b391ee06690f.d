/root/repo/target/release/deps/sse_phr-c767b391ee06690f.d: crates/phr/src/lib.rs crates/phr/src/codes.rs crates/phr/src/record.rs crates/phr/src/system.rs crates/phr/src/workload.rs crates/phr/src/zipf.rs

/root/repo/target/release/deps/sse_phr-c767b391ee06690f: crates/phr/src/lib.rs crates/phr/src/codes.rs crates/phr/src/record.rs crates/phr/src/system.rs crates/phr/src/workload.rs crates/phr/src/zipf.rs

crates/phr/src/lib.rs:
crates/phr/src/codes.rs:
crates/phr/src/record.rs:
crates/phr/src/system.rs:
crates/phr/src/workload.rs:
crates/phr/src/zipf.rs:
