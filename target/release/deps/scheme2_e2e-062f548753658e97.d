/root/repo/target/release/deps/scheme2_e2e-062f548753658e97.d: tests/scheme2_e2e.rs Cargo.toml

/root/repo/target/release/deps/libscheme2_e2e-062f548753658e97.rmeta: tests/scheme2_e2e.rs Cargo.toml

tests/scheme2_e2e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
