/root/repo/target/release/deps/sse_server-4f4d25e2b5443bf2.d: crates/server/src/lib.rs crates/server/src/daemon.rs crates/server/src/histogram.rs crates/server/src/load.rs crates/server/src/proto.rs crates/server/src/stats.rs crates/server/src/tenant.rs crates/server/src/transport.rs Cargo.toml

/root/repo/target/release/deps/libsse_server-4f4d25e2b5443bf2.rmeta: crates/server/src/lib.rs crates/server/src/daemon.rs crates/server/src/histogram.rs crates/server/src/load.rs crates/server/src/proto.rs crates/server/src/stats.rs crates/server/src/tenant.rs crates/server/src/transport.rs Cargo.toml

crates/server/src/lib.rs:
crates/server/src/daemon.rs:
crates/server/src/histogram.rs:
crates/server/src/load.rs:
crates/server/src/proto.rs:
crates/server/src/stats.rs:
crates/server/src/tenant.rs:
crates/server/src/transport.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
