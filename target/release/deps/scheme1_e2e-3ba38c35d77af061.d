/root/repo/target/release/deps/scheme1_e2e-3ba38c35d77af061.d: tests/scheme1_e2e.rs

/root/repo/target/release/deps/scheme1_e2e-3ba38c35d77af061: tests/scheme1_e2e.rs

tests/scheme1_e2e.rs:
