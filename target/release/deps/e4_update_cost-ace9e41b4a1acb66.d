/root/repo/target/release/deps/e4_update_cost-ace9e41b4a1acb66.d: crates/bench/benches/e4_update_cost.rs Cargo.toml

/root/repo/target/release/deps/libe4_update_cost-ace9e41b4a1acb66.rmeta: crates/bench/benches/e4_update_cost.rs Cargo.toml

crates/bench/benches/e4_update_cost.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
