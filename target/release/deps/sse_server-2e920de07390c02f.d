/root/repo/target/release/deps/sse_server-2e920de07390c02f.d: crates/server/src/lib.rs crates/server/src/daemon.rs crates/server/src/histogram.rs crates/server/src/load.rs crates/server/src/proto.rs crates/server/src/stats.rs crates/server/src/tenant.rs crates/server/src/transport.rs

/root/repo/target/release/deps/libsse_server-2e920de07390c02f.rlib: crates/server/src/lib.rs crates/server/src/daemon.rs crates/server/src/histogram.rs crates/server/src/load.rs crates/server/src/proto.rs crates/server/src/stats.rs crates/server/src/tenant.rs crates/server/src/transport.rs

/root/repo/target/release/deps/libsse_server-2e920de07390c02f.rmeta: crates/server/src/lib.rs crates/server/src/daemon.rs crates/server/src/histogram.rs crates/server/src/load.rs crates/server/src/proto.rs crates/server/src/stats.rs crates/server/src/tenant.rs crates/server/src/transport.rs

crates/server/src/lib.rs:
crates/server/src/daemon.rs:
crates/server/src/histogram.rs:
crates/server/src/load.rs:
crates/server/src/proto.rs:
crates/server/src/stats.rs:
crates/server/src/tenant.rs:
crates/server/src/transport.rs:
