/root/repo/target/release/deps/proptest-1ad9d646b8856de8.d: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/sample.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs Cargo.toml

/root/repo/target/release/deps/libproptest-1ad9d646b8856de8.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/sample.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs Cargo.toml

vendor/proptest/src/lib.rs:
vendor/proptest/src/arbitrary.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/sample.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
