/root/repo/target/release/deps/proptests-a97eaabf5d17f9b7.d: crates/index/tests/proptests.rs Cargo.toml

/root/repo/target/release/deps/libproptests-a97eaabf5d17f9b7.rmeta: crates/index/tests/proptests.rs Cargo.toml

crates/index/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
