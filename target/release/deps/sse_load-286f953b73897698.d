/root/repo/target/release/deps/sse_load-286f953b73897698.d: crates/server/src/bin/sse-load.rs Cargo.toml

/root/repo/target/release/deps/libsse_load-286f953b73897698.rmeta: crates/server/src/bin/sse-load.rs Cargo.toml

crates/server/src/bin/sse-load.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
