/root/repo/target/release/deps/cross_scheme-052a1624c9a10586.d: tests/cross_scheme.rs

/root/repo/target/release/deps/cross_scheme-052a1624c9a10586: tests/cross_scheme.rs

tests/cross_scheme.rs:
