/root/repo/target/release/deps/threaded_transport-dabb8ebbc232219b.d: tests/threaded_transport.rs Cargo.toml

/root/repo/target/release/deps/libthreaded_transport-dabb8ebbc232219b.rmeta: tests/threaded_transport.rs Cargo.toml

tests/threaded_transport.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
