/root/repo/target/release/deps/sse_index-466336cd53be42a4.d: crates/index/src/lib.rs crates/index/src/bitset.rs crates/index/src/bloom.rs crates/index/src/bptree.rs crates/index/src/postings.rs

/root/repo/target/release/deps/sse_index-466336cd53be42a4: crates/index/src/lib.rs crates/index/src/bitset.rs crates/index/src/bloom.rs crates/index/src/bptree.rs crates/index/src/postings.rs

crates/index/src/lib.rs:
crates/index/src/bitset.rs:
crates/index/src/bloom.rs:
crates/index/src/bptree.rs:
crates/index/src/postings.rs:
