/root/repo/target/release/deps/proptests-39c3666b636b3888.d: crates/net/tests/proptests.rs Cargo.toml

/root/repo/target/release/deps/libproptests-39c3666b636b3888.rmeta: crates/net/tests/proptests.rs Cargo.toml

crates/net/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
