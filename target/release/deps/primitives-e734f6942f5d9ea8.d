/root/repo/target/release/deps/primitives-e734f6942f5d9ea8.d: crates/bench/benches/primitives.rs Cargo.toml

/root/repo/target/release/deps/libprimitives-e734f6942f5d9ea8.rmeta: crates/bench/benches/primitives.rs Cargo.toml

crates/bench/benches/primitives.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
