/root/repo/target/release/deps/sse_repro-303078a4f2e1a54b.d: src/lib.rs

/root/repo/target/release/deps/sse_repro-303078a4f2e1a54b: src/lib.rs

src/lib.rs:
