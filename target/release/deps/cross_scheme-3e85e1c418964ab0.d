/root/repo/target/release/deps/cross_scheme-3e85e1c418964ab0.d: tests/cross_scheme.rs

/root/repo/target/release/deps/cross_scheme-3e85e1c418964ab0: tests/cross_scheme.rs

tests/cross_scheme.rs:
