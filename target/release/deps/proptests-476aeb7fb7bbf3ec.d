/root/repo/target/release/deps/proptests-476aeb7fb7bbf3ec.d: crates/net/tests/proptests.rs

/root/repo/target/release/deps/proptests-476aeb7fb7bbf3ec: crates/net/tests/proptests.rs

crates/net/tests/proptests.rs:
