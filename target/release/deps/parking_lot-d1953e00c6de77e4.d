/root/repo/target/release/deps/parking_lot-d1953e00c6de77e4.d: vendor/parking_lot/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libparking_lot-d1953e00c6de77e4.rmeta: vendor/parking_lot/src/lib.rs Cargo.toml

vendor/parking_lot/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
