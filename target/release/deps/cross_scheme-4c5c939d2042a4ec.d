/root/repo/target/release/deps/cross_scheme-4c5c939d2042a4ec.d: tests/cross_scheme.rs Cargo.toml

/root/repo/target/release/deps/libcross_scheme-4c5c939d2042a4ec.rmeta: tests/cross_scheme.rs Cargo.toml

tests/cross_scheme.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
