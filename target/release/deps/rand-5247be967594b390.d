/root/repo/target/release/deps/rand-5247be967594b390.d: vendor/rand/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librand-5247be967594b390.rmeta: vendor/rand/src/lib.rs Cargo.toml

vendor/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
