/root/repo/target/release/deps/sse_repro-3ce18747c76860b0.d: src/lib.rs

/root/repo/target/release/deps/libsse_repro-3ce18747c76860b0.rlib: src/lib.rs

/root/repo/target/release/deps/libsse_repro-3ce18747c76860b0.rmeta: src/lib.rs

src/lib.rs:
