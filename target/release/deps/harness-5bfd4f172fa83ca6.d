/root/repo/target/release/deps/harness-5bfd4f172fa83ca6.d: crates/bench/src/bin/harness.rs Cargo.toml

/root/repo/target/release/deps/libharness-5bfd4f172fa83ca6.rmeta: crates/bench/src/bin/harness.rs Cargo.toml

crates/bench/src/bin/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
