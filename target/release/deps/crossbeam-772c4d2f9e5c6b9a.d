/root/repo/target/release/deps/crossbeam-772c4d2f9e5c6b9a.d: vendor/crossbeam/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcrossbeam-772c4d2f9e5c6b9a.rmeta: vendor/crossbeam/src/lib.rs Cargo.toml

vendor/crossbeam/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
