/root/repo/target/release/deps/e8_simulator-70582c5bf6cdbfc3.d: crates/bench/benches/e8_simulator.rs Cargo.toml

/root/repo/target/release/deps/libe8_simulator-70582c5bf6cdbfc3.rmeta: crates/bench/benches/e8_simulator.rs Cargo.toml

crates/bench/benches/e8_simulator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
