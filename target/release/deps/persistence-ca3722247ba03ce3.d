/root/repo/target/release/deps/persistence-ca3722247ba03ce3.d: tests/persistence.rs

/root/repo/target/release/deps/persistence-ca3722247ba03ce3: tests/persistence.rs

tests/persistence.rs:
