/root/repo/target/release/deps/property_based-2c5567642211af5e.d: tests/property_based.rs

/root/repo/target/release/deps/property_based-2c5567642211af5e: tests/property_based.rs

tests/property_based.rs:
