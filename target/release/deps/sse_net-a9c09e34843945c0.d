/root/repo/target/release/deps/sse_net-a9c09e34843945c0.d: crates/net/src/lib.rs crates/net/src/frame.rs crates/net/src/latency.rs crates/net/src/link.rs crates/net/src/meter.rs crates/net/src/shutdown.rs crates/net/src/wire.rs Cargo.toml

/root/repo/target/release/deps/libsse_net-a9c09e34843945c0.rmeta: crates/net/src/lib.rs crates/net/src/frame.rs crates/net/src/latency.rs crates/net/src/link.rs crates/net/src/meter.rs crates/net/src/shutdown.rs crates/net/src/wire.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/frame.rs:
crates/net/src/latency.rs:
crates/net/src/link.rs:
crates/net/src/meter.rs:
crates/net/src/shutdown.rs:
crates/net/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
