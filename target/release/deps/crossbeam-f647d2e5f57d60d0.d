/root/repo/target/release/deps/crossbeam-f647d2e5f57d60d0.d: vendor/crossbeam/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcrossbeam-f647d2e5f57d60d0.rmeta: vendor/crossbeam/src/lib.rs Cargo.toml

vendor/crossbeam/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
