/root/repo/target/release/deps/sse_baselines-4054b70e33bcd074.d: crates/baselines/src/lib.rs crates/baselines/src/curtmola.rs crates/baselines/src/goh.rs crates/baselines/src/naive.rs crates/baselines/src/swp.rs Cargo.toml

/root/repo/target/release/deps/libsse_baselines-4054b70e33bcd074.rmeta: crates/baselines/src/lib.rs crates/baselines/src/curtmola.rs crates/baselines/src/goh.rs crates/baselines/src/naive.rs crates/baselines/src/swp.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/curtmola.rs:
crates/baselines/src/goh.rs:
crates/baselines/src/naive.rs:
crates/baselines/src/swp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
