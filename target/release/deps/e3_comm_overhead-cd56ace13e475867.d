/root/repo/target/release/deps/e3_comm_overhead-cd56ace13e475867.d: crates/bench/benches/e3_comm_overhead.rs Cargo.toml

/root/repo/target/release/deps/libe3_comm_overhead-cd56ace13e475867.rmeta: crates/bench/benches/e3_comm_overhead.rs Cargo.toml

crates/bench/benches/e3_comm_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
