/root/repo/target/release/deps/security_game-9f1b0cdfec37f10a.d: tests/security_game.rs Cargo.toml

/root/repo/target/release/deps/libsecurity_game-9f1b0cdfec37f10a.rmeta: tests/security_game.rs Cargo.toml

tests/security_game.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
