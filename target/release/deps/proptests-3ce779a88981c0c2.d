/root/repo/target/release/deps/proptests-3ce779a88981c0c2.d: crates/storage/tests/proptests.rs

/root/repo/target/release/deps/proptests-3ce779a88981c0c2: crates/storage/tests/proptests.rs

crates/storage/tests/proptests.rs:
