/root/repo/target/release/deps/sse_load-5aae26175f1bf986.d: crates/server/src/bin/sse-load.rs

/root/repo/target/release/deps/sse_load-5aae26175f1bf986: crates/server/src/bin/sse-load.rs

crates/server/src/bin/sse-load.rs:
