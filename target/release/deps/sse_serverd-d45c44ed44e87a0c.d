/root/repo/target/release/deps/sse_serverd-d45c44ed44e87a0c.d: crates/server/src/bin/sse-serverd.rs Cargo.toml

/root/repo/target/release/deps/libsse_serverd-d45c44ed44e87a0c.rmeta: crates/server/src/bin/sse-serverd.rs Cargo.toml

crates/server/src/bin/sse-serverd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
