/root/repo/target/release/deps/sse_phr-95c0ddf7ebc4a129.d: crates/phr/src/lib.rs crates/phr/src/codes.rs crates/phr/src/record.rs crates/phr/src/system.rs crates/phr/src/workload.rs crates/phr/src/zipf.rs Cargo.toml

/root/repo/target/release/deps/libsse_phr-95c0ddf7ebc4a129.rmeta: crates/phr/src/lib.rs crates/phr/src/codes.rs crates/phr/src/record.rs crates/phr/src/system.rs crates/phr/src/workload.rs crates/phr/src/zipf.rs Cargo.toml

crates/phr/src/lib.rs:
crates/phr/src/codes.rs:
crates/phr/src/record.rs:
crates/phr/src/system.rs:
crates/phr/src/workload.rs:
crates/phr/src/zipf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
