/root/repo/target/release/deps/sse_storage-9fd9308bb10b94d7.d: crates/storage/src/lib.rs crates/storage/src/crc32.rs crates/storage/src/error.rs crates/storage/src/heap.rs crates/storage/src/page.rs crates/storage/src/store.rs crates/storage/src/wal.rs

/root/repo/target/release/deps/libsse_storage-9fd9308bb10b94d7.rlib: crates/storage/src/lib.rs crates/storage/src/crc32.rs crates/storage/src/error.rs crates/storage/src/heap.rs crates/storage/src/page.rs crates/storage/src/store.rs crates/storage/src/wal.rs

/root/repo/target/release/deps/libsse_storage-9fd9308bb10b94d7.rmeta: crates/storage/src/lib.rs crates/storage/src/crc32.rs crates/storage/src/error.rs crates/storage/src/heap.rs crates/storage/src/page.rs crates/storage/src/store.rs crates/storage/src/wal.rs

crates/storage/src/lib.rs:
crates/storage/src/crc32.rs:
crates/storage/src/error.rs:
crates/storage/src/heap.rs:
crates/storage/src/page.rs:
crates/storage/src/store.rs:
crates/storage/src/wal.rs:
