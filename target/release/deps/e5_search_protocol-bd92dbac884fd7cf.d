/root/repo/target/release/deps/e5_search_protocol-bd92dbac884fd7cf.d: crates/bench/benches/e5_search_protocol.rs Cargo.toml

/root/repo/target/release/deps/libe5_search_protocol-bd92dbac884fd7cf.rmeta: crates/bench/benches/e5_search_protocol.rs Cargo.toml

crates/bench/benches/e5_search_protocol.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
