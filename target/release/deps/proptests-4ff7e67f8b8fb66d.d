/root/repo/target/release/deps/proptests-4ff7e67f8b8fb66d.d: crates/primitives/tests/proptests.rs Cargo.toml

/root/repo/target/release/deps/libproptests-4ff7e67f8b8fb66d.rmeta: crates/primitives/tests/proptests.rs Cargo.toml

crates/primitives/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
