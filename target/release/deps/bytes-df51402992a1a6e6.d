/root/repo/target/release/deps/bytes-df51402992a1a6e6.d: vendor/bytes/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libbytes-df51402992a1a6e6.rmeta: vendor/bytes/src/lib.rs Cargo.toml

vendor/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
