/root/repo/target/release/deps/sse_bench-089f7b42c947aa1f.d: crates/bench/src/lib.rs crates/bench/src/corpus.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/e1.rs crates/bench/src/experiments/e2.rs crates/bench/src/experiments/e3.rs crates/bench/src/experiments/e4.rs crates/bench/src/experiments/e5.rs crates/bench/src/experiments/e6.rs crates/bench/src/experiments/e7.rs crates/bench/src/experiments/e8.rs crates/bench/src/experiments/t1.rs crates/bench/src/table.rs crates/bench/src/timing.rs

/root/repo/target/release/deps/libsse_bench-089f7b42c947aa1f.rlib: crates/bench/src/lib.rs crates/bench/src/corpus.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/e1.rs crates/bench/src/experiments/e2.rs crates/bench/src/experiments/e3.rs crates/bench/src/experiments/e4.rs crates/bench/src/experiments/e5.rs crates/bench/src/experiments/e6.rs crates/bench/src/experiments/e7.rs crates/bench/src/experiments/e8.rs crates/bench/src/experiments/t1.rs crates/bench/src/table.rs crates/bench/src/timing.rs

/root/repo/target/release/deps/libsse_bench-089f7b42c947aa1f.rmeta: crates/bench/src/lib.rs crates/bench/src/corpus.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/e1.rs crates/bench/src/experiments/e2.rs crates/bench/src/experiments/e3.rs crates/bench/src/experiments/e4.rs crates/bench/src/experiments/e5.rs crates/bench/src/experiments/e6.rs crates/bench/src/experiments/e7.rs crates/bench/src/experiments/e8.rs crates/bench/src/experiments/t1.rs crates/bench/src/table.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/corpus.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/e1.rs:
crates/bench/src/experiments/e2.rs:
crates/bench/src/experiments/e3.rs:
crates/bench/src/experiments/e4.rs:
crates/bench/src/experiments/e5.rs:
crates/bench/src/experiments/e6.rs:
crates/bench/src/experiments/e7.rs:
crates/bench/src/experiments/e8.rs:
crates/bench/src/experiments/t1.rs:
crates/bench/src/table.rs:
crates/bench/src/timing.rs:
