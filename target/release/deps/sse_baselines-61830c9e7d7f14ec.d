/root/repo/target/release/deps/sse_baselines-61830c9e7d7f14ec.d: crates/baselines/src/lib.rs crates/baselines/src/curtmola.rs crates/baselines/src/goh.rs crates/baselines/src/naive.rs crates/baselines/src/swp.rs

/root/repo/target/release/deps/sse_baselines-61830c9e7d7f14ec: crates/baselines/src/lib.rs crates/baselines/src/curtmola.rs crates/baselines/src/goh.rs crates/baselines/src/naive.rs crates/baselines/src/swp.rs

crates/baselines/src/lib.rs:
crates/baselines/src/curtmola.rs:
crates/baselines/src/goh.rs:
crates/baselines/src/naive.rs:
crates/baselines/src/swp.rs:
