/root/repo/target/release/deps/rand-00c7dffc7e9f3814.d: vendor/rand/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librand-00c7dffc7e9f3814.rmeta: vendor/rand/src/lib.rs Cargo.toml

vendor/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
