/root/repo/target/release/deps/sse_baselines-3397274d2e9c0ee5.d: crates/baselines/src/lib.rs crates/baselines/src/curtmola.rs crates/baselines/src/goh.rs crates/baselines/src/naive.rs crates/baselines/src/swp.rs

/root/repo/target/release/deps/libsse_baselines-3397274d2e9c0ee5.rlib: crates/baselines/src/lib.rs crates/baselines/src/curtmola.rs crates/baselines/src/goh.rs crates/baselines/src/naive.rs crates/baselines/src/swp.rs

/root/repo/target/release/deps/libsse_baselines-3397274d2e9c0ee5.rmeta: crates/baselines/src/lib.rs crates/baselines/src/curtmola.rs crates/baselines/src/goh.rs crates/baselines/src/naive.rs crates/baselines/src/swp.rs

crates/baselines/src/lib.rs:
crates/baselines/src/curtmola.rs:
crates/baselines/src/goh.rs:
crates/baselines/src/naive.rs:
crates/baselines/src/swp.rs:
