/root/repo/target/release/deps/sse_serverd-7118b360eeafbbf0.d: crates/server/src/bin/sse-serverd.rs

/root/repo/target/release/deps/sse_serverd-7118b360eeafbbf0: crates/server/src/bin/sse-serverd.rs

crates/server/src/bin/sse-serverd.rs:
