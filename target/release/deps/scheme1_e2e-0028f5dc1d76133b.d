/root/repo/target/release/deps/scheme1_e2e-0028f5dc1d76133b.d: tests/scheme1_e2e.rs

/root/repo/target/release/deps/scheme1_e2e-0028f5dc1d76133b: tests/scheme1_e2e.rs

tests/scheme1_e2e.rs:
