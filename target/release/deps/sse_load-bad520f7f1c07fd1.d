/root/repo/target/release/deps/sse_load-bad520f7f1c07fd1.d: crates/server/src/bin/sse-load.rs Cargo.toml

/root/repo/target/release/deps/libsse_load-bad520f7f1c07fd1.rmeta: crates/server/src/bin/sse-load.rs Cargo.toml

crates/server/src/bin/sse-load.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
