/root/repo/target/release/deps/proptests-c12455b371e772da.d: crates/storage/tests/proptests.rs Cargo.toml

/root/repo/target/release/deps/libproptests-c12455b371e772da.rmeta: crates/storage/tests/proptests.rs Cargo.toml

crates/storage/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
