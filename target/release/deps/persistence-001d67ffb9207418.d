/root/repo/target/release/deps/persistence-001d67ffb9207418.d: tests/persistence.rs Cargo.toml

/root/repo/target/release/deps/libpersistence-001d67ffb9207418.rmeta: tests/persistence.rs Cargo.toml

tests/persistence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
