/root/repo/target/release/deps/sse_repro-ebf2da869f85dc65.d: src/lib.rs

/root/repo/target/release/deps/sse_repro-ebf2da869f85dc65: src/lib.rs

src/lib.rs:
