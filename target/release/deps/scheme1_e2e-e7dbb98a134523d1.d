/root/repo/target/release/deps/scheme1_e2e-e7dbb98a134523d1.d: tests/scheme1_e2e.rs Cargo.toml

/root/repo/target/release/deps/libscheme1_e2e-e7dbb98a134523d1.rmeta: tests/scheme1_e2e.rs Cargo.toml

tests/scheme1_e2e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
