/root/repo/target/release/deps/sse_net-bfd0e94a139a87bf.d: crates/net/src/lib.rs crates/net/src/frame.rs crates/net/src/latency.rs crates/net/src/link.rs crates/net/src/meter.rs crates/net/src/shutdown.rs crates/net/src/wire.rs

/root/repo/target/release/deps/sse_net-bfd0e94a139a87bf: crates/net/src/lib.rs crates/net/src/frame.rs crates/net/src/latency.rs crates/net/src/link.rs crates/net/src/meter.rs crates/net/src/shutdown.rs crates/net/src/wire.rs

crates/net/src/lib.rs:
crates/net/src/frame.rs:
crates/net/src/latency.rs:
crates/net/src/link.rs:
crates/net/src/meter.rs:
crates/net/src/shutdown.rs:
crates/net/src/wire.rs:
