/root/repo/target/release/deps/tcp_server-872c16b629995cb7.d: tests/tcp_server.rs

/root/repo/target/release/deps/tcp_server-872c16b629995cb7: tests/tcp_server.rs

tests/tcp_server.rs:
