//! # sse-repro
//!
//! Umbrella crate for the reproduction of *Adaptively Secure Computationally
//! Efficient Searchable Symmetric Encryption* (Sedghi, van Liesdonk, Doumen,
//! Hartel, Jonker — SDM@VLDB 2010).
//!
//! Re-exports the workspace crates under one roof:
//!
//! * [`core`] — the paper's two schemes and the security harness;
//! * [`primitives`] — the from-scratch cryptographic substrate;
//! * [`index`] — bitsets, the tag B+-tree, posting generations, Bloom
//!   filters;
//! * [`storage`] — the WAL + slotted-page document store;
//! * [`net`] — metered transports and the latency model;
//! * [`baselines`] — SWP, Goh, Curtmola SSE-1, naive;
//! * [`phr`] — the §6 personal-health-record application;
//! * [`server`] — the multi-tenant TCP daemon and load generator.
//!
//! See `examples/quickstart.rs` for a five-minute tour, `DESIGN.md` for the
//! system inventory and `EXPERIMENTS.md` for the paper-vs-measured record.

pub use sse_baselines as baselines;
pub use sse_core as core;
pub use sse_index as index;
pub use sse_net as net;
pub use sse_phr as phr;
pub use sse_primitives as primitives;
pub use sse_server as server;
pub use sse_storage as storage;
