//! Property-based tests for the storage engine: WAL round-trips under
//! arbitrary record streams and torn tails, heap files under arbitrary
//! insert/delete interleavings, and the DocStore against a map oracle.

use proptest::prelude::*;
use sse_storage::heap::HeapFile;
use sse_storage::store::{DocStore, StoreOptions};
use sse_storage::wal::Wal;
use std::collections::BTreeMap;
use std::path::PathBuf;

fn temp_path(tag: &str, case: u64) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "sse-prop-{tag}-{}-{case}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn wal_replays_exactly_what_was_appended(
        records in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..200), 0..40),
        case in any::<u64>(),
    ) {
        let path = temp_path("wal", case);
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path, false).unwrap();
            for r in &records {
                wal.append(r).unwrap();
            }
        }
        prop_assert_eq!(Wal::replay(&path).unwrap(), records);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn wal_truncation_never_yields_garbage(
        records in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..100), 1..20),
        cut in any::<usize>(),
        case in any::<u64>(),
    ) {
        // Cut the file anywhere: replay must return a strict prefix of the
        // appended records, never corrupt data.
        let path = temp_path("walcut", case);
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path, false).unwrap();
            for r in &records {
                wal.append(r).unwrap();
            }
        }
        let bytes = std::fs::read(&path).unwrap();
        let cut = cut % (bytes.len() + 1);
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let replayed = Wal::replay(&path).unwrap();
        prop_assert!(replayed.len() <= records.len());
        prop_assert_eq!(&records[..replayed.len()], &replayed[..]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn heap_handles_arbitrary_insert_delete_interleavings(
        ops in prop::collection::vec((any::<bool>(), prop::collection::vec(any::<u8>(), 0..3000)), 1..60),
    ) {
        let mut heap = HeapFile::new();
        let mut live: Vec<(sse_storage::heap::RecordId, Vec<u8>)> = Vec::new();
        for (i, (delete, data)) in ops.iter().enumerate() {
            if *delete && !live.is_empty() {
                let (rid, _) = live.remove(i % live.len());
                heap.delete(rid).unwrap();
            } else {
                let rid = heap.insert(data).unwrap();
                live.push((rid, data.clone()));
            }
        }
        for (rid, data) in &live {
            prop_assert_eq!(&heap.get(*rid).unwrap(), data);
        }
        // Snapshot round trip preserves all live records.
        let restored = HeapFile::from_bytes(&heap.to_bytes()).unwrap();
        for (rid, data) in &live {
            prop_assert_eq!(&restored.get(*rid).unwrap(), data);
        }
    }

    #[test]
    fn docstore_matches_map_oracle_across_restarts(
        ops in prop::collection::vec(
            (0u8..3, 0u64..20, prop::collection::vec(any::<u8>(), 0..100)), 1..40),
        checkpoint_at in 0usize..40,
        case in any::<u64>(),
    ) {
        let dir = temp_path("store", case);
        let _ = std::fs::remove_dir_all(&dir);
        let mut oracle: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        {
            let mut store = DocStore::open(&dir, StoreOptions::default()).unwrap();
            for (i, (op, id, data)) in ops.iter().enumerate() {
                match op {
                    0 | 2 => {
                        store.put(*id, data).unwrap();
                        oracle.insert(*id, data.clone());
                    }
                    _ => {
                        let expect = oracle.remove(id);
                        let got = store.delete(*id);
                        prop_assert_eq!(expect.is_some(), got.is_ok());
                    }
                }
                if i == checkpoint_at {
                    store.checkpoint().unwrap();
                }
            }
        }
        // Restart and compare against the oracle.
        let store = DocStore::open(&dir, StoreOptions::default()).unwrap();
        prop_assert_eq!(store.len(), oracle.len());
        for (id, data) in &oracle {
            prop_assert_eq!(&store.get(*id).unwrap(), data);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Exhaustive (not sampled) torn-tail check: build a multi-record WAL,
/// then for EVERY byte offset truncate a copy there and reopen. Because
/// the file length is recorded after each append, the expected replay is
/// exact at each cut: all records whose full frame fits, nothing else,
/// and the torn remainder is truncated and accounted byte-for-byte.
#[test]
fn wal_truncated_at_every_byte_offset_recovers_exact_prefix() {
    let path = temp_path("walcut-exhaustive", 0);
    let _ = std::fs::remove_file(&path);
    // Varied sizes on purpose: empty, tiny, and multi-hundred-byte
    // records so cuts land in length fields, CRCs, and bodies alike.
    let records: Vec<Vec<u8>> = [0usize, 1, 7, 64, 256, 3, 130]
        .iter()
        .enumerate()
        .map(|(i, n)| {
            (0..*n)
                .map(|b| (b as u8).wrapping_mul(31).wrapping_add(i as u8))
                .collect()
        })
        .collect();
    // prefix_len[r] = file length once the first r records are durable.
    let mut prefix_len = vec![0u64];
    {
        let mut wal = Wal::open(&path, false).unwrap();
        for r in &records {
            wal.append(r).unwrap();
            prefix_len.push(wal.len_bytes());
        }
    }
    let bytes = std::fs::read(&path).unwrap();
    assert_eq!(bytes.len() as u64, *prefix_len.last().unwrap());

    for cut in 0..=bytes.len() {
        let expected = prefix_len.iter().filter(|&&l| l <= cut as u64).count() - 1;
        std::fs::write(&path, &bytes[..cut]).unwrap();

        // Passive replay sees exactly the fully-framed prefix.
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed.len(), expected, "cut at byte {cut}");
        assert_eq!(&replayed[..], &records[..expected], "cut at byte {cut}");

        // Reopening repairs the log: the torn tail is truncated and
        // accounted, and the log accepts new appends afterwards.
        let mut wal = Wal::open(&path, false).unwrap();
        assert_eq!(
            wal.torn_bytes_truncated(),
            cut as u64 - prefix_len[expected],
            "cut at byte {cut}"
        );
        assert_eq!(wal.len_bytes(), prefix_len[expected], "cut at byte {cut}");
        wal.append(b"post-recovery record").unwrap();
        drop(wal);
        let after = Wal::replay(&path).unwrap();
        assert_eq!(after.len(), expected + 1, "cut at byte {cut}");
        assert_eq!(after.last().unwrap().as_slice(), b"post-recovery record");
    }
    let _ = std::fs::remove_file(&path);
}
