//! Backend conformance suite: one generic test body per storage trait,
//! run against **every** implementation.
//!
//! * [`DocBlobStore`] — `DocStore` (B+-tree-era heap + WAL) and
//!   `LsmDocStore` must behave identically against a map oracle under
//!   random put/delete/checkpoint traces, across clean restarts, and
//!   after a crash at every scheduled write point (durable-on-return:
//!   every acked op survives, the in-flight op is all-or-nothing).
//! * [`KeywordMap`] — `MemKeywordMap`, `BtreeKeywordMap` and
//!   `LsmKeywordMap` must agree with a map oracle on live reads, and the
//!   durable two must reopen to exactly the last acked `flush` (or the
//!   in-flight one if the crash raced it), carrying `last_seq` and the
//!   `meta` blob with it.
//!
//! The generic bodies take an opener closure, so adding a third backend
//! means adding one opener per trait, not a new test suite.

use proptest::prelude::*;
use sse_storage::lsm::{LsmDocStore, LsmKeywordMap};
use sse_storage::store::{DocStore, StoreOptions};
use sse_storage::{BtreeKeywordMap, DocBlobStore, FaultVfs, KeywordMap, RealVfs, Vfs};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

type DocOpener = fn(Arc<dyn Vfs>, &Path) -> sse_storage::error::Result<Box<dyn DocBlobStore>>;
type MapOpener = fn(Arc<dyn Vfs>, &Path) -> sse_storage::error::Result<Box<dyn KeywordMap>>;

fn open_doc_btree(
    vfs: Arc<dyn Vfs>,
    dir: &Path,
) -> sse_storage::error::Result<Box<dyn DocBlobStore>> {
    Ok(Box::new(DocStore::open_with_vfs(
        vfs,
        dir,
        StoreOptions::default(),
    )?))
}

fn open_doc_lsm(
    vfs: Arc<dyn Vfs>,
    dir: &Path,
) -> sse_storage::error::Result<Box<dyn DocBlobStore>> {
    Ok(Box::new(LsmDocStore::open_with_vfs(
        vfs,
        dir,
        StoreOptions::default(),
    )?))
}

fn open_map_btree(
    vfs: Arc<dyn Vfs>,
    dir: &Path,
) -> sse_storage::error::Result<Box<dyn KeywordMap>> {
    Ok(Box::new(BtreeKeywordMap::open(vfs, dir, "conf")?))
}

fn open_map_lsm(vfs: Arc<dyn Vfs>, dir: &Path) -> sse_storage::error::Result<Box<dyn KeywordMap>> {
    Ok(Box::new(LsmKeywordMap::open(vfs, dir, "conf")?))
}

const DOC_OPENERS: [(&str, DocOpener); 2] = [("btree", open_doc_btree), ("lsm", open_doc_lsm)];
const MAP_OPENERS: [(&str, MapOpener); 2] = [("btree", open_map_btree), ("lsm", open_map_lsm)];

fn temp_dir(tag: &str, case: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sse-conf-{tag}-{}-{case}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A 32-byte tag from a one-byte key space (collisions across ops are the
/// interesting case for a keyword map).
fn tag_of(b: u8) -> [u8; 32] {
    [b; 32]
}

// ---------------------------------------------------------------------------
// DocBlobStore conformance
// ---------------------------------------------------------------------------

/// One random doc-store op: `(kind, id, blob)`; kind 0/2 = put, 1 = delete.
type DocOp = (u8, u64, Vec<u8>);

/// Fault-free conformance body: drive the trace with one mid-trace
/// checkpoint, restart, drive the rest, restart again, and compare every
/// observable accessor against the oracle.
fn doc_store_matches_oracle(
    name: &str,
    open: DocOpener,
    ops: &[DocOp],
    checkpoint_at: usize,
    case: u64,
) {
    let dir = temp_dir(&format!("doc-{name}"), case);
    let mut oracle: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    let half = ops.len() / 2;
    for (round, segment) in [&ops[..half], &ops[half..]].into_iter().enumerate() {
        let mut store = open(RealVfs::arc(), &dir).unwrap();
        // Reopen must already agree before this round's ops apply.
        assert_eq!(store.len(), oracle.len(), "{name}: len diverged on reopen");
        for (i, (op, id, data)) in segment.iter().enumerate() {
            if *op == 1 {
                let expect = oracle.remove(id);
                let got = store.delete(*id);
                assert_eq!(expect.is_some(), got.is_ok(), "{name}: delete ack diverged");
            } else {
                store.put(*id, data).unwrap();
                oracle.insert(*id, data.clone());
            }
            if round == 0 && i == checkpoint_at % segment.len().max(1) {
                store.checkpoint().unwrap();
            }
            assert_eq!(
                store.contains(*id),
                oracle.contains_key(id),
                "{name}: contains diverged"
            );
        }
    }
    let store = open(RealVfs::arc(), &dir).unwrap();
    assert_eq!(store.len(), oracle.len(), "{name}: final len diverged");
    assert_eq!(store.is_empty(), oracle.is_empty());
    let mut ids = store.doc_ids();
    ids.sort_unstable();
    let want_ids: Vec<u64> = oracle.keys().copied().collect();
    assert_eq!(ids, want_ids, "{name}: doc_ids diverged");
    for (id, data) in &oracle {
        assert_eq!(&store.get(*id).unwrap(), data, "{name}: get({id}) diverged");
    }
    let got_many = store.get_many(&want_ids);
    assert_eq!(got_many.len(), oracle.len(), "{name}: get_many arity");
    for (id, data) in got_many {
        assert_eq!(
            oracle.get(&id),
            Some(&data),
            "{name}: get_many({id}) diverged"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Crash conformance body: count the trace's write points, then crash at
/// every one. A [`DocBlobStore`] is durable on return, so after recovery
/// through the real filesystem the store must hold exactly the acked
/// prefix of ops — plus, at most, the op in flight when the crash hit.
fn doc_store_crash_sweep(name: &str, open: DocOpener, ops: &[DocOp], seed: u64) {
    // oracle_states[c] = map after the first c ops.
    let mut oracle_states: Vec<BTreeMap<u64, Vec<u8>>> = vec![BTreeMap::new()];
    for (op, id, data) in ops {
        let mut next = oracle_states.last().unwrap().clone();
        if *op == 1 {
            next.remove(id);
        } else {
            next.insert(*id, data.clone());
        }
        oracle_states.push(next);
    }

    let count_dir = temp_dir(&format!("docc-{name}-count"), seed);
    let counting = FaultVfs::counting();
    let stats = counting.stats();
    {
        let mut store = open(Arc::new(counting), &count_dir).unwrap();
        for (i, (op, id, data)) in ops.iter().enumerate() {
            if *op == 1 {
                let _ = store.delete(*id);
            } else {
                store.put(*id, data).unwrap();
            }
            if i == ops.len() / 2 {
                store.checkpoint().unwrap();
            }
        }
    }
    let write_points = stats.writes();
    let _ = std::fs::remove_dir_all(&count_dir);
    assert!(write_points > 0, "{name}: trace scheduled no writes");

    for k in 1..=write_points {
        let dir = temp_dir(&format!("docc-{name}"), seed ^ k);
        let completed = match open(Arc::new(FaultVfs::crashing_at(seed, k)), &dir) {
            Err(_) => 0,
            Ok(mut store) => {
                let mut completed = 0usize;
                for (i, (op, id, data)) in ops.iter().enumerate() {
                    let result = if *op == 1 {
                        // A delete of an absent id is a clean Err even
                        // fault-free; only a *crashed* store stops the run.
                        match store.delete(*id) {
                            Ok(()) => Ok(()),
                            Err(_) if !oracle_states[completed].contains_key(id) => Ok(()),
                            Err(e) => Err(e),
                        }
                    } else {
                        store.put(*id, data)
                    };
                    if result.is_err() {
                        break;
                    }
                    completed += 1;
                    if i == ops.len() / 2 && store.checkpoint().is_err() {
                        break;
                    }
                }
                completed
            }
        };
        let store = open(RealVfs::arc(), &dir).unwrap();
        let observed: BTreeMap<u64, Vec<u8>> = store
            .doc_ids()
            .into_iter()
            .map(|id| (id, store.get(id).unwrap()))
            .collect();
        let lo = &oracle_states[completed];
        let hi = &oracle_states[(completed + 1).min(oracle_states.len() - 1)];
        assert!(
            &observed == lo || &observed == hi,
            "{name}: crash at write {k}: recovered state is not an op-atomic prefix \
             (completed {completed})"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// ---------------------------------------------------------------------------
// KeywordMap conformance
// ---------------------------------------------------------------------------

/// One random keyword-map op: `(kind, tag_byte, value)`; kind 0/3 = put,
/// 1 = delete, 2 = clear (sampled rarely by the generator range).
type MapOp = (u8, u8, Vec<u8>);

/// Advance the map-shaped oracle by one op.
fn advance_oracle(oracle: &mut BTreeMap<[u8; 32], Vec<u8>>, (op, key, value): &MapOp) {
    let tag = tag_of(*key);
    match op {
        1 => {
            oracle.remove(&tag);
        }
        2 => oracle.clear(),
        _ => {
            oracle.insert(tag, value.clone());
        }
    }
}

/// Apply one op to a real map; `false` means the map errored (only a
/// crashed VFS produces that for these infallible-by-contract mutations).
fn apply_to_map(map: &mut dyn KeywordMap, (op, key, value): &MapOp) -> bool {
    let tag = tag_of(*key);
    match op {
        1 => map.delete(&tag).is_ok(),
        2 => map.clear().is_ok(),
        _ => map.put(tag, value.clone()).is_ok(),
    }
}

fn assert_map_matches(name: &str, map: &dyn KeywordMap, oracle: &BTreeMap<[u8; 32], Vec<u8>>) {
    assert_eq!(map.key_count().unwrap(), oracle.len(), "{name}: key_count");
    let mut all = map.iter_all().unwrap();
    all.sort_by_key(|e| e.0);
    let want: Vec<([u8; 32], Vec<u8>)> = oracle.iter().map(|(t, v)| (*t, v.clone())).collect();
    assert_eq!(all, want, "{name}: iter_all diverged");
    for b in 0..=255u8 {
        let tag = tag_of(b);
        assert_eq!(
            map.get(&tag).unwrap(),
            oracle.get(&tag).cloned(),
            "{name}: get diverged on tag byte {b}"
        );
    }
    let tags: Vec<[u8; 32]> = (0..=255u8).map(tag_of).collect();
    let many = map.get_many(&tags).unwrap();
    for (b, got) in many.into_iter().enumerate() {
        assert_eq!(
            got,
            oracle.get(&tag_of(b as u8)).cloned(),
            "{name}: get_many diverged on tag byte {b}"
        );
    }
}

/// Fault-free conformance body. Mutations only become durable at `flush`;
/// the reopened map must equal the *flushed* oracle snapshot (plus its
/// `applied_seq` and `meta`), never the unflushed tail. A snapshot handle
/// taken before the tail mutations must keep answering from its epoch.
fn keyword_map_matches_oracle(
    name: &str,
    open: MapOpener,
    ops: &[MapOp],
    reopens: bool,
    case: u64,
) {
    let dir = temp_dir(&format!("map-{name}"), case);
    let mut oracle: BTreeMap<[u8; 32], Vec<u8>> = BTreeMap::new();
    let mut map = open(RealVfs::arc(), &dir).unwrap();
    assert_eq!(map.last_seq(), 0, "{name}: fresh map must start at seq 0");
    assert!(
        map.meta().is_empty(),
        "{name}: fresh map must carry no meta"
    );

    let half = ops.len() / 2;
    for op in &ops[..half] {
        assert!(
            apply_to_map(map.as_mut(), op),
            "{name}: fault-free op errored"
        );
        advance_oracle(&mut oracle, op);
    }
    assert_map_matches(name, map.as_ref(), &oracle);

    let flushed = oracle.clone();
    let meta = vec![0xAB, case as u8, 0xCD];
    map.flush(half as u64 + 1, &meta).unwrap();
    assert_eq!(
        map.last_seq(),
        half as u64 + 1,
        "{name}: last_seq after flush"
    );
    assert_eq!(map.meta(), meta, "{name}: meta after flush");

    // Snapshot isolation: the handle answers from the flush-time epoch
    // even while the live map mutates on.
    let snapshot = map.snapshot().unwrap();
    for op in &ops[half..] {
        assert!(
            apply_to_map(map.as_mut(), op),
            "{name}: fault-free op errored"
        );
        advance_oracle(&mut oracle, op);
    }
    assert_map_matches(name, map.as_ref(), &oracle);
    assert_eq!(snapshot.len(), flushed.len(), "{name}: snapshot len moved");
    for (tag, value) in &flushed {
        assert_eq!(
            snapshot.get(tag),
            Some(value.clone()),
            "{name}: snapshot lost a flushed entry"
        );
    }

    if reopens {
        drop(map);
        let reopened = open(RealVfs::arc(), &dir).unwrap();
        assert_map_matches(&format!("{name} (reopened)"), reopened.as_ref(), &flushed);
        assert_eq!(
            reopened.last_seq(),
            half as u64 + 1,
            "{name}: last_seq lost"
        );
        assert_eq!(reopened.meta(), meta, "{name}: meta lost");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Crash conformance body for durable keyword maps: flush every few ops,
/// crash at every scheduled write point, reopen through the real
/// filesystem. The recovered state must be exactly the last acked flush —
/// or the one in flight when the crash hit — never a torn mix.
/// One durable keyword-map state: the map contents plus the flush `seq`.
type FlushState = (BTreeMap<[u8; 32], Vec<u8>>, u64);

fn keyword_map_crash_sweep(name: &str, open: MapOpener, ops: &[MapOp], seed: u64) {
    const FLUSH_EVERY: usize = 5;
    // flush_states[j] = (oracle, seq) as of the j-th flush; index 0 is the
    // never-flushed empty state.
    let mut flush_states: Vec<FlushState> = vec![(BTreeMap::new(), 0)];
    {
        let mut oracle = BTreeMap::new();
        for (i, op) in ops.iter().enumerate() {
            advance_oracle(&mut oracle, op);
            if (i + 1) % FLUSH_EVERY == 0 {
                flush_states.push((oracle.clone(), (i + 1) as u64));
            }
        }
    }

    let count_dir = temp_dir(&format!("mapc-{name}-count"), seed);
    let counting = FaultVfs::counting();
    let stats = counting.stats();
    {
        let mut map = open(Arc::new(counting), &count_dir).unwrap();
        for (i, op) in ops.iter().enumerate() {
            assert!(
                apply_to_map(map.as_mut(), op),
                "{name}: counting op errored"
            );
            if (i + 1) % FLUSH_EVERY == 0 {
                map.flush((i + 1) as u64, &[]).unwrap();
            }
        }
    }
    let write_points = stats.writes();
    let _ = std::fs::remove_dir_all(&count_dir);
    assert!(write_points > 0, "{name}: trace scheduled no writes");

    for k in 1..=write_points {
        let dir = temp_dir(&format!("mapc-{name}"), seed ^ k);
        let acked_flushes = match open(Arc::new(FaultVfs::crashing_at(seed, k)), &dir) {
            Err(_) => 0,
            Ok(mut map) => {
                let mut acked = 0usize;
                'trace: for (i, op) in ops.iter().enumerate() {
                    // Pre-flush mutations are in-memory; only a crashed
                    // map errors here, which ends the "process".
                    if !apply_to_map(map.as_mut(), op) {
                        break 'trace;
                    }
                    if (i + 1) % FLUSH_EVERY == 0 {
                        if map.flush((i + 1) as u64, &[]).is_err() {
                            break 'trace;
                        }
                        acked += 1;
                    }
                }
                acked
            }
        };
        let reopened = open(RealVfs::arc(), &dir).unwrap();
        let mut observed = reopened.iter_all().unwrap();
        observed.sort_by_key(|e| e.0);
        let observed_seq = reopened.last_seq();
        let lo = &flush_states[acked_flushes];
        let hi = &flush_states[(acked_flushes + 1).min(flush_states.len() - 1)];
        let matches = |(state, seq): &FlushState| {
            observed_seq == *seq
                && observed
                    == state
                        .iter()
                        .map(|(t, v)| (*t, v.clone()))
                        .collect::<Vec<_>>()
        };
        assert!(
            matches(lo) || matches(hi),
            "{name}: crash at write {k}: recovered map is not a flush-atomic state \
             ({acked_flushes} acked flushes, recovered seq {observed_seq})"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// ---------------------------------------------------------------------------
// Property wrappers
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_doc_blob_store_matches_the_oracle(
        ops in prop::collection::vec((0u8..3, 0u64..24, prop::collection::vec(any::<u8>(), 0..120)), 2..40),
        checkpoint_at in 0usize..40,
        case in any::<u64>(),
    ) {
        for (name, open) in DOC_OPENERS {
            doc_store_matches_oracle(name, open, &ops, checkpoint_at, case);
        }
    }

    #[test]
    fn every_keyword_map_matches_the_oracle(
        ops in prop::collection::vec((0u8..10, 0u8..12, prop::collection::vec(any::<u8>(), 0..60)), 2..40),
        case in any::<u64>(),
    ) {
        // Kind >= 3 folds to put; 1 = delete, 2 = clear (rare by weight).
        let ops: Vec<MapOp> = ops.into_iter().map(|(k, t, v)| (k.min(3), t, v)).collect();
        keyword_map_matches_oracle(
            "mem",
            |_vfs, _dir| Ok(Box::new(sse_storage::MemKeywordMap::new())),
            &ops,
            false,
            case,
        );
        for (name, open) in MAP_OPENERS {
            keyword_map_matches_oracle(name, open, &ops, true, case);
        }
    }
}

/// Deterministic seeded trace for the crash sweeps (the sweeps re-run the
/// whole trace once per write point, so they use one fixed trace instead
/// of proptest sampling).
fn crash_trace(seed: u64, len: usize) -> Vec<MapOp> {
    let mut x = seed;
    let mut next = move || {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    (0..len)
        .map(|_| {
            let r = next();
            let kind = match r % 10 {
                0..=6 => 0u8,
                7..=8 => 1,
                _ => 2,
            };
            let tag = (r >> 8) as u8 % 8;
            let value = vec![(r >> 16) as u8; 1 + (r >> 24) as usize % 24];
            (kind, tag, value)
        })
        .collect()
}

#[test]
fn every_doc_blob_store_recovers_an_op_atomic_prefix_from_any_crash() {
    let ops: Vec<DocOp> = crash_trace(0xD0C, 30)
        .into_iter()
        .map(|(k, t, v)| (k.min(1), u64::from(t), v))
        .collect();
    for (name, open) in DOC_OPENERS {
        doc_store_crash_sweep(name, open, &ops, 0xD0C);
    }
}

#[test]
fn every_durable_keyword_map_recovers_a_flush_atomic_state_from_any_crash() {
    let ops = crash_trace(0x3A9, 30);
    for (name, open) in MAP_OPENERS {
        keyword_map_crash_sweep(name, open, &ops, 0x3A9);
    }
}
