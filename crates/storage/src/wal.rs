//! Write-ahead log with CRC-framed records and torn-tail recovery.
//!
//! Record framing: `[len: u32][crc32(payload): u32][payload]`. On replay,
//! the first record whose frame is incomplete or whose checksum mismatches
//! terminates the scan — everything before it is considered durable, the
//! torn tail is truncated. This is the standard redo-log contract: an
//! operation is durable once `append` (with sync) returns.
//!
//! All file I/O goes through a [`crate::vfs::Vfs`], so the WAL can run over
//! the real filesystem or a fault-injecting one. Each `append` issues the
//! whole frame as **one** `write_all` — a single crash point per record —
//! so a torn append always tears inside one CRC-framed record and recovery
//! truncates exactly that record.

use crate::crc32::crc32;
use crate::error::{Result, StorageError};
use crate::vfs::{RealVfs, Vfs, VfsFile};
use std::path::Path;
use std::path::PathBuf;
use std::sync::Arc;

/// Append-only write-ahead log backed by a file.
pub struct Wal {
    path: PathBuf,
    file: Box<dyn VfsFile>,
    /// Durable length in bytes (end of the last valid record).
    len: u64,
    /// Bytes of torn tail truncated when this log was opened.
    torn_bytes_truncated: u64,
    /// Whether `append` fsyncs. Experiments disable it; the store's
    /// durability tests enable it.
    sync_on_append: bool,
}

impl Wal {
    /// Open (or create) the log at `path` on the real filesystem, scanning
    /// for its valid prefix and truncating any torn tail.
    ///
    /// # Errors
    /// I/O errors from the filesystem.
    pub fn open(path: &Path, sync_on_append: bool) -> Result<Self> {
        Self::open_with_vfs(RealVfs::arc(), path, sync_on_append)
    }

    /// [`Wal::open`] over an explicit [`Vfs`].
    ///
    /// # Errors
    /// I/O errors from the VFS (including injected faults).
    pub fn open_with_vfs(vfs: Arc<dyn Vfs>, path: &Path, sync_on_append: bool) -> Result<Self> {
        let (valid_len, file_len) = match vfs.file_len(path)? {
            Some(file_len) => {
                let bytes = vfs.read(path)?;
                (scan_valid_prefix(&bytes), file_len)
            }
            None => (0, 0),
        };
        let mut file = vfs.open_write(path)?;
        file.set_len(valid_len)?;
        file.seek_to(valid_len)?;
        Ok(Wal {
            path: path.to_path_buf(),
            file,
            len: valid_len,
            torn_bytes_truncated: file_len.saturating_sub(valid_len),
            sync_on_append,
        })
    }

    /// Length in bytes of the durable prefix.
    #[must_use]
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// Bytes of torn tail discarded when this log was opened (0 for a
    /// cleanly closed log).
    #[must_use]
    pub fn torn_bytes_truncated(&self) -> u64 {
        self.torn_bytes_truncated
    }

    /// Append one record; durable on return when `sync_on_append` is set.
    /// The whole frame is issued as a single write.
    ///
    /// # Errors
    /// I/O errors from the filesystem.
    pub fn append(&mut self, payload: &[u8]) -> Result<()> {
        let len = u32::try_from(payload.len()).map_err(|_| StorageError::RecordTooLarge {
            size: payload.len(),
            max: u32::MAX as usize,
        })?;
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.write_all(&frame)?;
        if self.sync_on_append {
            self.file.sync_data()?;
        }
        self.len += 8 + u64::from(len);
        Ok(())
    }

    /// Append a *group* of records as one write syscall (and, when
    /// `sync_on_append` is set, one `sync_data` for the whole group) — the
    /// group-commit fast path. Each record is given as scattered segments
    /// (an iovec): the frame header and payload are assembled directly
    /// into the group buffer, so callers never concatenate per-record
    /// `Vec`s first.
    ///
    /// Every record keeps its own CRC frame, so a crash that tears the
    /// group write tears inside exactly one record and recovery truncates
    /// to a record-prefix of the group. Because the whole group is a
    /// single `write_all`, there is a single crash point per group.
    ///
    /// # Errors
    /// I/O errors from the filesystem. On error nothing in the group is
    /// considered durable (`len` does not advance).
    pub fn append_batch(&mut self, records: &[&[&[u8]]]) -> Result<()> {
        if records.is_empty() {
            return Ok(());
        }
        let mut total = 0usize;
        for segments in records {
            total += 8 + segments.iter().map(|s| s.len()).sum::<usize>();
        }
        let mut buf = Vec::with_capacity(total);
        for segments in records {
            let header_at = buf.len();
            buf.extend_from_slice(&[0u8; 8]);
            for segment in *segments {
                buf.extend_from_slice(segment);
            }
            let payload = &buf[header_at + 8..];
            let len = u32::try_from(payload.len()).map_err(|_| StorageError::RecordTooLarge {
                size: buf.len() - header_at - 8,
                max: u32::MAX as usize,
            })?;
            let crc = crc32(payload);
            buf[header_at..header_at + 4].copy_from_slice(&len.to_le_bytes());
            buf[header_at + 4..header_at + 8].copy_from_slice(&crc.to_le_bytes());
        }
        self.file.write_all(&buf)?;
        if self.sync_on_append {
            self.file.sync_data()?;
        }
        self.len += buf.len() as u64;
        Ok(())
    }

    /// Read every valid record from the start of the log on the real
    /// filesystem.
    ///
    /// # Errors
    /// I/O errors from the filesystem. Torn tails are not errors; they
    /// simply end the iteration.
    pub fn replay(path: &Path) -> Result<Vec<Vec<u8>>> {
        Self::replay_with_vfs(&RealVfs, path)
    }

    /// [`Wal::replay`] over an explicit [`Vfs`].
    ///
    /// # Errors
    /// I/O errors from the VFS (including injected faults).
    pub fn replay_with_vfs(vfs: &dyn Vfs, path: &Path) -> Result<Vec<Vec<u8>>> {
        let buf = match vfs.read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e.into()),
        };
        let mut records = Vec::new();
        let mut pos = 0usize;
        loop {
            if pos + 8 > buf.len() {
                return Ok(records);
            }
            let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            let crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().expect("4 bytes"));
            let body_start = pos + 8;
            if body_start + len > buf.len() || crc32(&buf[body_start..body_start + len]) != crc {
                return Ok(records);
            }
            records.push(buf[body_start..body_start + len].to_vec());
            pos = body_start + len;
        }
    }

    /// Truncate the log to empty (after a checkpoint has made its contents
    /// redundant).
    ///
    /// # Errors
    /// I/O errors from the filesystem.
    pub fn reset(&mut self) -> Result<()> {
        self.file.set_len(0)?;
        self.file.seek_to(0)?;
        self.file.sync_data()?;
        self.len = 0;
        Ok(())
    }

    /// Path of the backing file.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// What a [`verify_image`] integrity walk found.
///
/// The distinction matters to a background scrub: a torn tail is the
/// normal residue of a crash (or of reading a live log mid-append) and is
/// *repairable* — recovery truncates it. A checksum mismatch **followed by
/// a valid record** can never be produced by a torn append (each record is
/// one `write_all`), so it is confirmed mid-log corruption.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalVerdict {
    /// Every byte belongs to a CRC-valid record.
    Clean {
        /// Number of valid records.
        records: u64,
    },
    /// A valid prefix followed by an incomplete or checksum-failing final
    /// frame — repairable by truncation (and possibly just an append in
    /// progress when scanning a live log).
    TornTail {
        /// Number of valid records before the tear.
        records: u64,
        /// Bytes past the valid prefix.
        torn_bytes: u64,
    },
    /// A checksum-failing frame with a valid record after it: damage in
    /// the middle of the durable prefix. Recovery would silently drop the
    /// records behind it, so a scrub must quarantine, not truncate.
    Corrupt {
        /// Byte offset of the damaged frame.
        at: u64,
    },
}

/// CRC-walk a log image. Safe to run against a live log: appends only
/// extend the image, so a concurrent writer can at worst make the final
/// frame look torn — never corrupt.
#[must_use]
pub fn verify_image(buf: &[u8]) -> WalVerdict {
    let mut pos = 0usize;
    let mut records = 0u64;
    // First checksum-failing (but structurally complete) frame, with the
    // record count at that point. The walk continues past it: a torn
    // append tears inside ONE record, so any valid record found *after*
    // the bad frame proves mid-log damage rather than a torn tail.
    let mut first_bad: Option<(usize, u64)> = None;
    let mut valid_after_bad = false;
    loop {
        if pos == buf.len() {
            return match first_bad {
                None => WalVerdict::Clean { records },
                Some((at, _)) if valid_after_bad => WalVerdict::Corrupt { at: at as u64 },
                Some((at, n)) => WalVerdict::TornTail {
                    records: n,
                    torn_bytes: (buf.len() - at) as u64,
                },
            };
        }
        let frame_ok = pos + 8 <= buf.len() && {
            let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            pos + 8 + len <= buf.len()
        };
        if !frame_ok {
            // Incomplete final frame: torn from the earliest damage point.
            return match first_bad {
                Some((at, _)) if valid_after_bad => WalVerdict::Corrupt { at: at as u64 },
                Some((at, n)) => WalVerdict::TornTail {
                    records: n,
                    torn_bytes: (buf.len() - at) as u64,
                },
                None => WalVerdict::TornTail {
                    records,
                    torn_bytes: (buf.len() - pos) as u64,
                },
            };
        }
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().expect("4 bytes"));
        let body_start = pos + 8;
        if crc32(&buf[body_start..body_start + len]) == crc {
            if first_bad.is_some() {
                valid_after_bad = true;
            }
            records += 1;
        } else if first_bad.is_none() {
            first_bad = Some((pos, records));
        }
        pos = body_start + len;
    }
}

/// [`verify_image`] over a file. A missing file is clean (nothing has
/// been journaled yet).
///
/// # Errors
/// I/O errors from the VFS.
pub fn verify_file(vfs: &dyn Vfs, path: &Path) -> Result<WalVerdict> {
    match vfs.read(path) {
        Ok(bytes) => Ok(verify_image(&bytes)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(WalVerdict::Clean { records: 0 }),
        Err(e) => Err(e.into()),
    }
}

/// Scan a log image, returning the byte length of the valid record prefix.
fn scan_valid_prefix(buf: &[u8]) -> u64 {
    let mut pos = 0usize;
    loop {
        if pos + 8 > buf.len() {
            return pos as u64;
        }
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().expect("4 bytes"));
        let body_start = pos + 8;
        if body_start + len > buf.len() {
            return pos as u64;
        }
        if crc32(&buf[body_start..body_start + len]) != crc {
            return pos as u64;
        }
        pos = body_start + len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{FaultConfig, FaultVfs};
    use std::io::Write;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "sse-wal-test-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn append_and_replay() {
        let path = temp_path("basic");
        {
            let mut wal = Wal::open(&path, false).unwrap();
            wal.append(b"first").unwrap();
            wal.append(b"second").unwrap();
            wal.append(b"").unwrap();
        }
        let records = Wal::replay(&path).unwrap();
        assert_eq!(records, vec![b"first".to_vec(), b"second".to_vec(), vec![]]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn replay_missing_file_is_empty() {
        let path = temp_path("missing");
        assert_eq!(Wal::replay(&path).unwrap(), Vec::<Vec<u8>>::new());
    }

    #[test]
    fn torn_tail_is_ignored_and_truncated_on_open() {
        let path = temp_path("torn");
        {
            let mut wal = Wal::open(&path, false).unwrap();
            wal.append(b"durable").unwrap();
        }
        // Simulate a crash mid-write: append garbage that looks like the
        // start of a frame but is incomplete.
        {
            use std::fs::OpenOptions;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&100u32.to_le_bytes()).unwrap(); // len
            f.write_all(&0xDEAD_BEEFu32.to_le_bytes()).unwrap(); // bogus crc
            f.write_all(b"only a few bytes").unwrap(); // short body
        }
        assert_eq!(Wal::replay(&path).unwrap(), vec![b"durable".to_vec()]);
        // Re-opening truncates the tail and appending continues cleanly.
        {
            let mut wal = Wal::open(&path, false).unwrap();
            assert_eq!(wal.torn_bytes_truncated(), 24);
            wal.append(b"after recovery").unwrap();
        }
        assert_eq!(
            Wal::replay(&path).unwrap(),
            vec![b"durable".to_vec(), b"after recovery".to_vec()]
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupted_record_stops_replay() {
        let path = temp_path("corrupt");
        {
            let mut wal = Wal::open(&path, false).unwrap();
            wal.append(b"good one").unwrap();
            wal.append(b"will be corrupted").unwrap();
            wal.append(b"unreachable").unwrap();
        }
        // Flip a byte inside the second record's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let second_payload_start = 8 + b"good one".len() + 8;
        bytes[second_payload_start + 2] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(Wal::replay(&path).unwrap(), vec![b"good one".to_vec()]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reset_empties_the_log() {
        let path = temp_path("reset");
        let mut wal = Wal::open(&path, false).unwrap();
        wal.append(b"ephemeral").unwrap();
        wal.reset().unwrap();
        assert_eq!(wal.len_bytes(), 0);
        wal.append(b"fresh").unwrap();
        drop(wal);
        assert_eq!(Wal::replay(&path).unwrap(), vec![b"fresh".to_vec()]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn large_records_survive() {
        let path = temp_path("large");
        let big: Vec<u8> = (0..100_000u32).map(|i| (i % 253) as u8).collect();
        {
            let mut wal = Wal::open(&path, false).unwrap();
            wal.append(&big).unwrap();
        }
        assert_eq!(Wal::replay(&path).unwrap(), vec![big]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sync_mode_appends_work() {
        let path = temp_path("sync");
        let mut wal = Wal::open(&path, true).unwrap();
        wal.append(b"synced").unwrap();
        drop(wal);
        assert_eq!(Wal::replay(&path).unwrap(), vec![b"synced".to_vec()]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_append_recovers_to_previous_record() {
        // A FaultVfs tears the second append mid-frame; reopening must
        // recover exactly the first record and report the torn bytes.
        let path = temp_path("fault-torn");
        let vfs = Arc::new(FaultVfs::new(
            RealVfs::arc(),
            FaultConfig {
                seed: 99,
                torn_write_at: Some(2),
                ..FaultConfig::default()
            },
        ));
        {
            let mut wal = Wal::open_with_vfs(vfs.clone(), &path, false).unwrap();
            wal.append(b"kept").unwrap();
            assert!(wal.append(b"torn away entirely").is_err());
        }
        let mut wal = Wal::open(&path, false).unwrap();
        assert_eq!(Wal::replay(&path).unwrap(), vec![b"kept".to_vec()]);
        // Appending after recovery continues cleanly.
        wal.append(b"next").unwrap();
        drop(wal);
        assert_eq!(
            Wal::replay(&path).unwrap(),
            vec![b"kept".to_vec(), b"next".to_vec()]
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_batch_round_trips_with_scattered_segments() {
        let path = temp_path("batch");
        {
            let mut wal = Wal::open(&path, false).unwrap();
            // Records assembled from multiple segments (header + body).
            wal.append_batch(&[
                &[b"alpha-".as_slice(), b"one".as_slice()],
                &[b"beta".as_slice()],
                &[b"".as_slice()],
            ])
            .unwrap();
            wal.append(b"tail").unwrap();
        }
        assert_eq!(
            Wal::replay(&path).unwrap(),
            vec![
                b"alpha-one".to_vec(),
                b"beta".to_vec(),
                vec![],
                b"tail".to_vec()
            ]
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_batch_matches_per_record_appends_byte_for_byte() {
        let a = temp_path("batch-eq-a");
        let b = temp_path("batch-eq-b");
        {
            let mut wal = Wal::open(&a, false).unwrap();
            wal.append_batch(&[&[b"first".as_slice()], &[b"second".as_slice()]])
                .unwrap();
        }
        {
            let mut wal = Wal::open(&b, false).unwrap();
            wal.append(b"first").unwrap();
            wal.append(b"second").unwrap();
        }
        assert_eq!(std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
        std::fs::remove_file(&a).unwrap();
        std::fs::remove_file(&b).unwrap();
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let path = temp_path("batch-empty");
        let mut wal = Wal::open(&path, true).unwrap();
        wal.append_batch(&[]).unwrap();
        assert_eq!(wal.len_bytes(), 0);
        drop(wal);
        assert_eq!(Wal::replay(&path).unwrap(), Vec::<Vec<u8>>::new());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_group_write_recovers_to_a_record_prefix() {
        // A group of 4 records is one write; tearing it at every possible
        // seed must leave a valid *record prefix* of the group (never a
        // partially-applied record).
        let records: Vec<Vec<u8>> = (0..4)
            .map(|i| format!("group-record-{i}").into_bytes())
            .collect();
        for seed in 0..16u64 {
            let path = temp_path(&format!("batch-torn-{seed}"));
            let vfs = Arc::new(FaultVfs::new(
                RealVfs::arc(),
                FaultConfig {
                    seed,
                    torn_write_at: Some(2),
                    ..FaultConfig::default()
                },
            ));
            {
                let mut wal = Wal::open_with_vfs(vfs, &path, false).unwrap();
                wal.append(b"before-group").unwrap();
                let refs: Vec<&[u8]> = records.iter().map(Vec::as_slice).collect();
                let group: Vec<&[&[u8]]> = refs.iter().map(std::slice::from_ref).collect();
                assert!(wal.append_batch(&group).is_err());
            }
            let replayed = Wal::replay(&path).unwrap();
            assert!(!replayed.is_empty() && replayed[0] == b"before-group");
            let group_part = &replayed[1..];
            assert!(group_part.len() <= records.len(), "seed {seed}");
            for (i, r) in group_part.iter().enumerate() {
                assert_eq!(r, &records[i], "seed {seed}: prefix property violated");
            }
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn verify_distinguishes_clean_torn_and_corrupt() {
        let path = temp_path("verify");
        {
            let mut wal = Wal::open(&path, false).unwrap();
            wal.append(b"first").unwrap();
            wal.append(b"second").unwrap();
            wal.append(b"third").unwrap();
        }
        let clean = std::fs::read(&path).unwrap();
        assert_eq!(verify_image(&clean), WalVerdict::Clean { records: 3 });
        assert_eq!(verify_image(&[]), WalVerdict::Clean { records: 0 });

        // Truncate inside the last record: torn tail, repairable.
        let torn = &clean[..clean.len() - 3];
        assert_eq!(
            verify_image(torn),
            WalVerdict::TornTail {
                records: 2,
                torn_bytes: (torn.len() - (clean.len() - (8 + b"third".len()))) as u64,
            }
        );

        // Flip a byte inside the FINAL record's payload: structurally
        // complete but checksum-failing, with nothing valid after — still
        // only a torn tail (a torn overwrite can produce exactly this).
        let mut tail_bad = clean.clone();
        let third_body = clean.len() - b"third".len();
        tail_bad[third_body + 1] ^= 0x10;
        assert!(matches!(
            verify_image(&tail_bad),
            WalVerdict::TornTail { records: 2, .. }
        ));

        // Flip a byte inside the SECOND record's payload: a valid record
        // follows the damage, so this is confirmed mid-log corruption.
        let mut mid_bad = clean.clone();
        let second_body = 8 + b"first".len() + 8;
        mid_bad[second_body + 2] ^= 0x40;
        let first_frame_len = (8 + b"first".len()) as u64;
        assert_eq!(
            verify_image(&mid_bad),
            WalVerdict::Corrupt {
                at: first_frame_len
            }
        );

        // verify_file mirrors verify_image; a missing file is clean.
        assert_eq!(
            verify_file(&RealVfs, &path).unwrap(),
            WalVerdict::Clean { records: 3 }
        );
        std::fs::remove_file(&path).unwrap();
        assert_eq!(
            verify_file(&RealVfs, &path).unwrap(),
            WalVerdict::Clean { records: 0 }
        );
    }

    #[test]
    fn crash_at_every_append_point_preserves_prefix() {
        // For each k, crash at write k of a 5-record workload; replay must
        // yield exactly the first k-1 records (write k tears).
        for k in 1..=5u64 {
            let path = temp_path(&format!("crash-{k}"));
            let vfs = Arc::new(FaultVfs::crashing_at(k, k));
            let mut wal = Wal::open_with_vfs(vfs, &path, false).unwrap();
            let mut completed = 0u64;
            for i in 0..5u64 {
                match wal.append(format!("record-{i}").as_bytes()) {
                    Ok(()) => completed += 1,
                    Err(_) => break,
                }
            }
            assert_eq!(completed, k - 1);
            let records = Wal::replay(&path).unwrap();
            assert_eq!(records.len() as u64, completed, "crash point {k}");
            for (i, r) in records.iter().enumerate() {
                assert_eq!(r, format!("record-{i}").as_bytes());
            }
            std::fs::remove_file(&path).unwrap();
        }
    }
}
