//! Write-ahead log with CRC-framed records and torn-tail recovery.
//!
//! Record framing: `[len: u32][crc32(payload): u32][payload]`. On replay,
//! the first record whose frame is incomplete or whose checksum mismatches
//! terminates the scan — everything before it is considered durable, the
//! torn tail is truncated. This is the standard redo-log contract: an
//! operation is durable once `append` (with sync) returns.

use crate::crc32::crc32;
use crate::error::{Result, StorageError};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Append-only write-ahead log backed by a file.
pub struct Wal {
    path: PathBuf,
    writer: BufWriter<File>,
    /// Durable length in bytes (end of the last valid record).
    len: u64,
    /// Whether `append` fsyncs. Experiments disable it; the store's
    /// durability tests enable it.
    sync_on_append: bool,
}

impl Wal {
    /// Open (or create) the log at `path`, scanning for its valid prefix
    /// and truncating any torn tail.
    ///
    /// # Errors
    /// I/O errors from the filesystem.
    pub fn open(path: &Path, sync_on_append: bool) -> Result<Self> {
        let valid_len = match std::fs::metadata(path) {
            Ok(_) => Self::scan_valid_prefix(path)?,
            Err(_) => 0,
        };
        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false)
            .open(path)?;
        file.set_len(valid_len)?;
        let mut writer = BufWriter::new(file);
        writer.seek(SeekFrom::Start(valid_len))?;
        Ok(Wal {
            path: path.to_path_buf(),
            writer,
            len: valid_len,
            sync_on_append,
        })
    }

    /// Length in bytes of the durable prefix.
    #[must_use]
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// Scan the file, returning the byte length of the valid record prefix.
    fn scan_valid_prefix(path: &Path) -> Result<u64> {
        let mut file = File::open(path)?;
        let file_len = file.metadata()?.len();
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        debug_assert_eq!(buf.len() as u64, file_len);
        let mut pos = 0usize;
        loop {
            if pos + 8 > buf.len() {
                return Ok(pos as u64);
            }
            let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            let crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().expect("4 bytes"));
            let body_start = pos + 8;
            if body_start + len > buf.len() {
                return Ok(pos as u64);
            }
            if crc32(&buf[body_start..body_start + len]) != crc {
                return Ok(pos as u64);
            }
            pos = body_start + len;
        }
    }

    /// Append one record; durable on return when `sync_on_append` is set.
    ///
    /// # Errors
    /// I/O errors from the filesystem.
    pub fn append(&mut self, payload: &[u8]) -> Result<()> {
        let len = u32::try_from(payload.len()).map_err(|_| StorageError::RecordTooLarge {
            size: payload.len(),
            max: u32::MAX as usize,
        })?;
        self.writer.write_all(&len.to_le_bytes())?;
        self.writer.write_all(&crc32(payload).to_le_bytes())?;
        self.writer.write_all(payload)?;
        self.writer.flush()?;
        if self.sync_on_append {
            self.writer.get_ref().sync_data()?;
        }
        self.len += 8 + u64::from(len);
        Ok(())
    }

    /// Read every valid record from the start of the log.
    ///
    /// # Errors
    /// I/O errors from the filesystem. Torn tails are not errors; they
    /// simply end the iteration.
    pub fn replay(path: &Path) -> Result<Vec<Vec<u8>>> {
        let mut file = match File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e.into()),
        };
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        let mut records = Vec::new();
        let mut pos = 0usize;
        loop {
            if pos + 8 > buf.len() {
                return Ok(records);
            }
            let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            let crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().expect("4 bytes"));
            let body_start = pos + 8;
            if body_start + len > buf.len() || crc32(&buf[body_start..body_start + len]) != crc {
                return Ok(records);
            }
            records.push(buf[body_start..body_start + len].to_vec());
            pos = body_start + len;
        }
    }

    /// Truncate the log to empty (after a checkpoint has made its contents
    /// redundant).
    ///
    /// # Errors
    /// I/O errors from the filesystem.
    pub fn reset(&mut self) -> Result<()> {
        self.writer.flush()?;
        self.writer.get_ref().set_len(0)?;
        self.writer.seek(SeekFrom::Start(0))?;
        self.writer.get_ref().sync_data()?;
        self.len = 0;
        Ok(())
    }

    /// Path of the backing file.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "sse-wal-test-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn append_and_replay() {
        let path = temp_path("basic");
        {
            let mut wal = Wal::open(&path, false).unwrap();
            wal.append(b"first").unwrap();
            wal.append(b"second").unwrap();
            wal.append(b"").unwrap();
        }
        let records = Wal::replay(&path).unwrap();
        assert_eq!(records, vec![b"first".to_vec(), b"second".to_vec(), vec![]]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn replay_missing_file_is_empty() {
        let path = temp_path("missing");
        assert_eq!(Wal::replay(&path).unwrap(), Vec::<Vec<u8>>::new());
    }

    #[test]
    fn torn_tail_is_ignored_and_truncated_on_open() {
        let path = temp_path("torn");
        {
            let mut wal = Wal::open(&path, false).unwrap();
            wal.append(b"durable").unwrap();
        }
        // Simulate a crash mid-write: append garbage that looks like the
        // start of a frame but is incomplete.
        {
            use std::fs::OpenOptions;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&100u32.to_le_bytes()).unwrap(); // len
            f.write_all(&0xDEAD_BEEFu32.to_le_bytes()).unwrap(); // bogus crc
            f.write_all(b"only a few bytes").unwrap(); // short body
        }
        assert_eq!(Wal::replay(&path).unwrap(), vec![b"durable".to_vec()]);
        // Re-opening truncates the tail and appending continues cleanly.
        {
            let mut wal = Wal::open(&path, false).unwrap();
            wal.append(b"after recovery").unwrap();
        }
        assert_eq!(
            Wal::replay(&path).unwrap(),
            vec![b"durable".to_vec(), b"after recovery".to_vec()]
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupted_record_stops_replay() {
        let path = temp_path("corrupt");
        {
            let mut wal = Wal::open(&path, false).unwrap();
            wal.append(b"good one").unwrap();
            wal.append(b"will be corrupted").unwrap();
            wal.append(b"unreachable").unwrap();
        }
        // Flip a byte inside the second record's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let second_payload_start = 8 + b"good one".len() + 8;
        bytes[second_payload_start + 2] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(Wal::replay(&path).unwrap(), vec![b"good one".to_vec()]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reset_empties_the_log() {
        let path = temp_path("reset");
        let mut wal = Wal::open(&path, false).unwrap();
        wal.append(b"ephemeral").unwrap();
        wal.reset().unwrap();
        assert_eq!(wal.len_bytes(), 0);
        wal.append(b"fresh").unwrap();
        drop(wal);
        assert_eq!(Wal::replay(&path).unwrap(), vec![b"fresh".to_vec()]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn large_records_survive() {
        let path = temp_path("large");
        let big: Vec<u8> = (0..100_000u32).map(|i| (i % 253) as u8).collect();
        {
            let mut wal = Wal::open(&path, false).unwrap();
            wal.append(&big).unwrap();
        }
        assert_eq!(Wal::replay(&path).unwrap(), vec![big]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sync_mode_appends_work() {
        let path = temp_path("sync");
        let mut wal = Wal::open(&path, true).unwrap();
        wal.append(b"synced").unwrap();
        drop(wal);
        assert_eq!(Wal::replay(&path).unwrap(), vec![b"synced".to_vec()]);
        std::fs::remove_file(&path).unwrap();
    }
}
