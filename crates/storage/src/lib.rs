//! # sse-storage
//!
//! Durable server-side storage for the SSE reproduction.
//!
//! The paper's server stores tuples `(E_km(M_i), i)` — encrypted blobs keyed
//! by document id — and must survive restarts without learning anything from
//! what it stores. This crate provides that substrate as a small storage
//! engine:
//!
//! * [`crc32`] — CRC-32 (ISO-HDLC) used to frame and verify on-disk records;
//! * [`page`] — 8 KiB slotted pages;
//! * [`heap`] — a heap file of slotted pages with overflow-fragment chains
//!   for blobs larger than one page;
//! * [`wal`] — a CRC-framed append-only write-ahead log with torn-tail
//!   detection on replay;
//! * [`store`] — [`store::DocStore`]: the blob store the SSE server uses,
//!   combining an in-memory id→record index, the heap, the WAL and
//!   checkpointing into a snapshot file;
//! * [`vfs`] — the file-I/O abstraction everything above runs on:
//!   [`vfs::RealVfs`] (plain `std::fs`) and [`vfs::FaultVfs`] (seeded,
//!   deterministic fault injection: failed/torn writes, failed fsyncs,
//!   failed dir fsyncs, lost renames, hard crash at any scheduled write
//!   point);
//! * [`backend`] — the pluggable backend ADT: [`backend::KeywordMap`] and
//!   [`backend::DocBlobStore`] traits, the [`backend::BackendKind`]
//!   manifest that makes directories refuse to open under the wrong
//!   engine, and the `btree` implementations;
//! * [`lsm`] — the log-structured backend: append-only sorted runs,
//!   bloom-filtered point reads, tag-range compaction.
//!
//! Everything is plain `std::fs`; no external crates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod crc32;
pub mod error;
pub mod heap;
pub mod lsm;
pub mod page;
pub mod store;
pub mod vfs;
pub mod wal;

pub use backend::{
    resolve_backend, BackendCounters, BackendKind, BtreeKeywordMap, DocBlobStore, KeywordMap,
    KeywordMapSnapshot, MemKeywordMap,
};
pub use error::{Result, StorageError};
pub use lsm::{LsmCore, LsmDocStore, LsmKeywordMap};
pub use vfs::{FaultConfig, FaultStats, FaultVfs, RealVfs, Vfs, VfsFile};
