//! Storage-engine error type.

use std::fmt;
use std::io;

/// Errors produced by the storage engine.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// A checksum or structural check failed while reading persisted data.
    Corrupt {
        /// Which structure failed validation.
        what: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// A record id referenced a record that does not exist.
    RecordNotFound,
    /// A record exceeds the maximum representable size.
    RecordTooLarge {
        /// Requested size in bytes.
        size: usize,
        /// Maximum supported size in bytes.
        max: usize,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "I/O error: {e}"),
            StorageError::Corrupt { what, detail } => {
                write!(f, "corrupt {what}: {detail}")
            }
            StorageError::RecordNotFound => write!(f, "record not found"),
            StorageError::RecordTooLarge { size, max } => {
                write!(f, "record of {size} bytes exceeds maximum {max}")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, StorageError>;
