//! Storage-engine error type.

use std::fmt;
use std::io;

/// Errors produced by the storage engine.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// A checksum or structural check failed while reading persisted data.
    Corrupt {
        /// Which structure failed validation.
        what: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// A record id referenced a record that does not exist.
    RecordNotFound,
    /// A record exceeds the maximum representable size.
    RecordTooLarge {
        /// Requested size in bytes.
        size: usize,
        /// Maximum supported size in bytes.
        max: usize,
    },
    /// A durable directory was written by one storage backend and opened
    /// under another. Refusing cleanly beats silently misreading files.
    BackendMismatch {
        /// Backend recorded in the directory's backend manifest.
        on_disk: &'static str,
        /// Backend the caller asked to open.
        requested: &'static str,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "I/O error: {e}"),
            StorageError::Corrupt { what, detail } => {
                write!(f, "corrupt {what}: {detail}")
            }
            StorageError::RecordNotFound => write!(f, "record not found"),
            StorageError::RecordTooLarge { size, max } => {
                write!(f, "record of {size} bytes exceeds maximum {max}")
            }
            StorageError::BackendMismatch { on_disk, requested } => {
                write!(
                    f,
                    "storage backend mismatch: directory was written by the \
                     `{on_disk}` backend but `{requested}` was requested; \
                     reopen with --backend {on_disk}"
                )
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, StorageError>;
