//! The pluggable storage-backend ADT.
//!
//! The paper's server is two abstract stores — a keyword index mapping PRF
//! tags to opaque per-keyword state, and the `(E_km(M_i), i)` DataStorage —
//! so this module names them as traits, findex-style:
//!
//! * [`KeywordMap`] — point get/put over 32-byte tags, batched multi-get,
//!   an explicit flush-is-the-durability-point contract and an immutable
//!   [`KeywordMapSnapshot`] handle compatible with the scheme servers'
//!   epoch-swap search path;
//! * [`DocBlobStore`] — blob get/put/delete with per-mutation durability,
//!   checkpointing and a [`RecoveryReport`].
//!
//! Two genuinely different engines implement them: the historical
//! B+-tree/heap/WAL engine ([`crate::store::DocStore`] and
//! [`BtreeKeywordMap`], the `btree` backend) and the log-structured engine
//! in [`crate::lsm`] (`lsm`), tuned for update-heavy workloads.
//!
//! Every durable directory carries a tiny backend manifest
//! (`backend.meta`). A directory written by one backend refuses to open
//! under the other with [`StorageError::BackendMismatch`] — a clean error
//! instead of silent misreading.

use crate::crc32::crc32;
use crate::error::{Result, StorageError};
use crate::store::{DocStore, RecoveryReport};
use crate::vfs::Vfs;
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;
use std::str::FromStr;
use std::sync::Arc;

/// A 32-byte PRF tag: the key type of every keyword index in this repo.
pub type Tag = [u8; 32];

// ---------------------------------------------------------------------------
// Backend kind + manifest
// ---------------------------------------------------------------------------

/// Which storage engine a durable directory uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// The historical engine: B+-tree index snapshots, slotted-page heap,
    /// WAL. Full index rewrite per checkpoint; compact on disk.
    #[default]
    Btree,
    /// Log-structured engine: append-only sorted runs, bloom-filtered
    /// point reads, tag-range compaction. Checkpoints write only what
    /// changed — tuned for update-heavy (GP) workloads.
    Lsm,
}

impl BackendKind {
    /// Stable lowercase name (CLI flag value, manifest, STATS).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            BackendKind::Btree => "btree",
            BackendKind::Lsm => "lsm",
        }
    }

    /// All known kinds, for CLI help and test matrices.
    #[must_use]
    pub fn all() -> [BackendKind; 2] {
        [BackendKind::Btree, BackendKind::Lsm]
    }

    fn from_code(code: u32) -> Option<Self> {
        match code {
            0 => Some(BackendKind::Btree),
            1 => Some(BackendKind::Lsm),
            _ => None,
        }
    }

    fn code(self) -> u32 {
        match self {
            BackendKind::Btree => 0,
            BackendKind::Lsm => 1,
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s {
            "btree" => Ok(BackendKind::Btree),
            "lsm" => Ok(BackendKind::Lsm),
            other => Err(format!("unknown backend `{other}` (expected btree|lsm)")),
        }
    }
}

/// File name of the per-directory backend manifest.
pub const BACKEND_MANIFEST_FILE: &str = "backend.meta";

const BACKEND_MAGIC: &[u8; 8] = b"SSEBKND1";

/// Read the backend manifest of `dir`, if present.
///
/// # Errors
/// I/O errors, or [`StorageError::Corrupt`] for a damaged manifest.
pub fn read_backend_manifest(vfs: &dyn Vfs, dir: &Path) -> Result<Option<BackendKind>> {
    let path = dir.join(BACKEND_MANIFEST_FILE);
    if !vfs.exists(&path) {
        return Ok(None);
    }
    let bytes = vfs.read(&path)?;
    if bytes.len() != 16 || &bytes[..8] != BACKEND_MAGIC {
        return Err(StorageError::Corrupt {
            what: "backend manifest",
            detail: "bad magic or length".to_string(),
        });
    }
    let code = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    let stored_crc = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
    if crc32(&bytes[..12]) != stored_crc {
        return Err(StorageError::Corrupt {
            what: "backend manifest",
            detail: "checksum mismatch".to_string(),
        });
    }
    BackendKind::from_code(code)
        .map(Some)
        .ok_or(StorageError::Corrupt {
            what: "backend manifest",
            detail: format!("unknown backend code {code}"),
        })
}

/// Write the backend manifest of `dir` (atomic: temp + rename + dir fsync).
///
/// # Errors
/// I/O errors.
pub fn write_backend_manifest(vfs: &dyn Vfs, dir: &Path, kind: BackendKind) -> Result<()> {
    let mut bytes = Vec::with_capacity(16);
    bytes.extend_from_slice(BACKEND_MAGIC);
    bytes.extend_from_slice(&kind.code().to_le_bytes());
    let crc = crc32(&bytes);
    bytes.extend_from_slice(&crc.to_le_bytes());
    let tmp = dir.join(format!("{BACKEND_MANIFEST_FILE}.tmp"));
    let path = dir.join(BACKEND_MANIFEST_FILE);
    {
        let mut f = vfs.create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_data()?;
    }
    vfs.rename(&tmp, &path)?;
    vfs.sync_dir(dir)?;
    Ok(())
}

/// Resolve which backend governs `dir` when the caller requests
/// `requested`:
///
/// * manifest present — it wins; a different `requested` is a
///   [`StorageError::BackendMismatch`];
/// * no manifest but one of `legacy_markers` exists — the directory
///   predates backend manifests and is `btree`; a manifest is written so
///   the next open is self-describing (non-btree requests mismatch);
/// * fresh directory — `requested` is recorded and returned.
///
/// # Errors
/// [`StorageError::BackendMismatch`] as above, I/O errors, or
/// [`StorageError::Corrupt`] for a damaged manifest.
pub fn resolve_backend(
    vfs: &dyn Vfs,
    dir: &Path,
    requested: BackendKind,
    legacy_markers: &[&str],
) -> Result<BackendKind> {
    vfs.create_dir_all(dir)?;
    let on_disk = match read_backend_manifest(vfs, dir)? {
        Some(kind) => Some(kind),
        None => legacy_markers
            .iter()
            .any(|m| vfs.exists(&dir.join(m)))
            .then_some(BackendKind::Btree),
    };
    match on_disk {
        Some(kind) if kind != requested => Err(StorageError::BackendMismatch {
            on_disk: kind.as_str(),
            requested: requested.as_str(),
        }),
        Some(kind) => {
            // Self-describe legacy directories on first contact.
            if read_backend_manifest(vfs, dir)?.is_none() {
                write_backend_manifest(vfs, dir, kind)?;
            }
            Ok(kind)
        }
        None => {
            write_backend_manifest(vfs, dir, requested)?;
            Ok(requested)
        }
    }
}

// ---------------------------------------------------------------------------
// Per-backend counters
// ---------------------------------------------------------------------------

/// Point-in-time backend internals, surfaced through STATS. All zero for
/// engines without runs (the btree backend).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BackendCounters {
    /// Sorted runs written since open (flushes + compaction outputs).
    pub runs_flushed: u64,
    /// Sorted runs currently referenced by the manifest.
    pub runs_live: u64,
    /// Compactions performed since open.
    pub compactions: u64,
    /// Point reads that had to consult at least one run on disk.
    pub run_reads: u64,
    /// Per-run bloom membership tests performed.
    pub bloom_checks: u64,
    /// Run probes skipped because the bloom filter proved absence.
    pub bloom_skips: u64,
    /// Run probes where the bloom said "maybe" but the key was absent.
    pub bloom_false_positives: u64,
}

impl BackendCounters {
    /// Accumulate another counter set (shards, doc store + keyword maps).
    pub fn merge(&mut self, other: &BackendCounters) {
        self.runs_flushed += other.runs_flushed;
        self.runs_live += other.runs_live;
        self.compactions += other.compactions;
        self.run_reads += other.run_reads;
        self.bloom_checks += other.bloom_checks;
        self.bloom_skips += other.bloom_skips;
        self.bloom_false_positives += other.bloom_false_positives;
    }
}

// ---------------------------------------------------------------------------
// DocBlobStore
// ---------------------------------------------------------------------------

/// The paper's DataStorage: opaque encrypted blobs keyed by document id.
///
/// Durability contract: every successful mutation is durable on return
/// (write-ahead logged); [`DocBlobStore::checkpoint`] is a space/recovery
/// optimization, never a durability requirement.
pub trait DocBlobStore: Send + Sync {
    /// Store (or replace) the blob for `id`.
    ///
    /// # Errors
    /// I/O errors when durable.
    fn put(&mut self, id: u64, blob: &[u8]) -> Result<()>;

    /// Fetch the blob for `id`.
    ///
    /// # Errors
    /// [`StorageError::RecordNotFound`] when absent.
    fn get(&self, id: u64) -> Result<Vec<u8>>;

    /// Remove the blob for `id`.
    ///
    /// # Errors
    /// [`StorageError::RecordNotFound`] when absent; I/O errors.
    fn delete(&mut self, id: u64) -> Result<()>;

    /// True iff a blob exists for `id`.
    fn contains(&self, id: u64) -> bool;

    /// Fetch many blobs; missing ids are skipped (the index may lag
    /// deletions — the paper's honest-but-curious model).
    fn get_many(&self, ids: &[u64]) -> Vec<(u64, Vec<u8>)>;

    /// All stored ids in increasing order.
    fn doc_ids(&self) -> Vec<u64>;

    /// Number of stored documents.
    fn len(&self) -> usize;

    /// True iff the store holds no documents.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// On-disk (or in-memory) footprint in bytes, diagnostic.
    fn storage_bytes(&self) -> usize;

    /// Fold the log into the engine's compact durable form.
    ///
    /// # Errors
    /// I/O errors.
    fn checkpoint(&mut self) -> Result<()>;

    /// What recovery work the open performed.
    fn recovery_report(&self) -> RecoveryReport;

    /// Engine internals for STATS (zero for run-less engines).
    fn counters(&self) -> BackendCounters {
        BackendCounters::default()
    }

    /// Integrity scrub: re-verify whatever on-disk checksums the engine
    /// maintains, returning the number of artifacts verified. Engines
    /// without checksummed artifacts (the heap store's pages carry no
    /// CRCs; its WAL is verified separately by the caller) return 0.
    ///
    /// # Errors
    /// [`StorageError::Corrupt`] on a confirmed mismatch; I/O errors.
    fn verify(&self) -> Result<u64> {
        Ok(0)
    }
}

impl DocBlobStore for DocStore {
    fn put(&mut self, id: u64, blob: &[u8]) -> Result<()> {
        DocStore::put(self, id, blob)
    }

    fn get(&self, id: u64) -> Result<Vec<u8>> {
        DocStore::get(self, id)
    }

    fn delete(&mut self, id: u64) -> Result<()> {
        DocStore::delete(self, id)
    }

    fn contains(&self, id: u64) -> bool {
        DocStore::contains(self, id)
    }

    fn get_many(&self, ids: &[u64]) -> Vec<(u64, Vec<u8>)> {
        DocStore::get_many(self, ids)
    }

    fn doc_ids(&self) -> Vec<u64> {
        self.ids().collect()
    }

    fn len(&self) -> usize {
        DocStore::len(self)
    }

    fn storage_bytes(&self) -> usize {
        self.heap_bytes()
    }

    fn checkpoint(&mut self) -> Result<()> {
        DocStore::checkpoint(self)
    }

    fn recovery_report(&self) -> RecoveryReport {
        DocStore::recovery_report(self)
    }
}

// ---------------------------------------------------------------------------
// KeywordMap
// ---------------------------------------------------------------------------

/// An immutable point-in-time view of a [`KeywordMap`]: the same shape the
/// scheme servers publish per epoch for lock-free search, so a map snapshot
/// can stand in on the epoch-swap search path.
pub trait KeywordMapSnapshot: Send + Sync {
    /// Value for `tag` at snapshot time.
    fn get(&self, tag: &Tag) -> Option<Vec<u8>>;

    /// Batched point lookups, position-aligned with `tags`.
    fn get_many(&self, tags: &[Tag]) -> Vec<Option<Vec<u8>>> {
        tags.iter().map(|t| self.get(t)).collect()
    }

    /// Number of tags in the snapshot.
    fn len(&self) -> usize;

    /// True iff the snapshot is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Materialized snapshot shared by every engine.
struct MaterializedSnapshot {
    map: BTreeMap<Tag, Vec<u8>>,
}

impl KeywordMapSnapshot for MaterializedSnapshot {
    fn get(&self, tag: &Tag) -> Option<Vec<u8>> {
        self.map.get(tag).cloned()
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// The paper's keyword index, as an abstract map from 32-byte PRF tags to
/// opaque per-keyword state (scheme 1: masked bit-array + `f_r`; scheme 2:
/// generation lists).
///
/// Durability contract: mutations become durable at [`KeywordMap::flush`],
/// not before — pre-flush durability is the caller's journal's job (the
/// scheme servers' group-commit journal is the write path; the map is the
/// checkpoint target). After a crash, a reopened map serves exactly the
/// state of the last successful flush.
pub trait KeywordMap: Send + Sync {
    /// Value stored for `tag`.
    ///
    /// # Errors
    /// I/O errors, or [`StorageError::Corrupt`] for damaged runs.
    fn get(&self, tag: &Tag) -> Result<Option<Vec<u8>>>;

    /// Batched point lookups, position-aligned with `tags`.
    ///
    /// # Errors
    /// As [`KeywordMap::get`].
    fn get_many(&self, tags: &[Tag]) -> Result<Vec<Option<Vec<u8>>>> {
        tags.iter().map(|t| self.get(t)).collect()
    }

    /// Insert or replace the value for `tag`.
    ///
    /// # Errors
    /// I/O errors.
    fn put(&mut self, tag: Tag, value: Vec<u8>) -> Result<()>;

    /// Remove `tag` (absent tags are fine — idempotent).
    ///
    /// # Errors
    /// I/O errors.
    fn delete(&mut self, tag: &Tag) -> Result<()>;

    /// Drop every tag (scheme re-initialization).
    ///
    /// # Errors
    /// I/O errors.
    fn clear(&mut self) -> Result<()>;

    /// Durability point: persist all mutations since the last flush
    /// together with `applied_seq` (the journal sequence this state
    /// covers) and an opaque caller `meta` blob (scheme 1 stores its
    /// index geometry here).
    ///
    /// # Errors
    /// I/O errors.
    fn flush(&mut self, applied_seq: u64, meta: &[u8]) -> Result<()>;

    /// The `applied_seq` recorded by the last flush (0: never flushed).
    fn last_seq(&self) -> u64;

    /// The caller `meta` blob recorded by the last flush.
    fn meta(&self) -> Vec<u8>;

    /// Every `(tag, value)` pair, tag-sorted (open-time tree rebuild).
    ///
    /// # Errors
    /// I/O errors, or [`StorageError::Corrupt`] for damaged runs.
    fn iter_all(&self) -> Result<Vec<(Tag, Vec<u8>)>>;

    /// Number of live tags.
    ///
    /// # Errors
    /// As [`KeywordMap::iter_all`].
    fn key_count(&self) -> Result<usize>;

    /// Immutable point-in-time view for the epoch-swap search path.
    ///
    /// # Errors
    /// As [`KeywordMap::iter_all`].
    fn snapshot(&self) -> Result<Arc<dyn KeywordMapSnapshot>> {
        Ok(Arc::new(MaterializedSnapshot {
            map: self.iter_all()?.into_iter().collect(),
        }))
    }

    /// Engine internals for STATS (zero for run-less engines).
    fn counters(&self) -> BackendCounters {
        BackendCounters::default()
    }
}

// ---------------------------------------------------------------------------
// MemKeywordMap — ephemeral reference implementation
// ---------------------------------------------------------------------------

/// Purely in-memory [`KeywordMap`] (benchmarks, simulators, conformance
/// oracle). `flush` records the sequence but nothing survives a drop.
#[derive(Default)]
pub struct MemKeywordMap {
    map: BTreeMap<Tag, Vec<u8>>,
    seq: u64,
    meta: Vec<u8>,
}

impl MemKeywordMap {
    /// Empty map.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl KeywordMap for MemKeywordMap {
    fn get(&self, tag: &Tag) -> Result<Option<Vec<u8>>> {
        Ok(self.map.get(tag).cloned())
    }

    fn put(&mut self, tag: Tag, value: Vec<u8>) -> Result<()> {
        self.map.insert(tag, value);
        Ok(())
    }

    fn delete(&mut self, tag: &Tag) -> Result<()> {
        self.map.remove(tag);
        Ok(())
    }

    fn clear(&mut self) -> Result<()> {
        self.map.clear();
        Ok(())
    }

    fn flush(&mut self, applied_seq: u64, meta: &[u8]) -> Result<()> {
        self.seq = applied_seq;
        self.meta = meta.to_vec();
        Ok(())
    }

    fn last_seq(&self) -> u64 {
        self.seq
    }

    fn meta(&self) -> Vec<u8> {
        self.meta.clone()
    }

    fn iter_all(&self) -> Result<Vec<(Tag, Vec<u8>)>> {
        Ok(self.map.iter().map(|(k, v)| (*k, v.clone())).collect())
    }

    fn key_count(&self) -> Result<usize> {
        Ok(self.map.len())
    }
}

// ---------------------------------------------------------------------------
// BtreeKeywordMap — the btree backend's durable keyword map
// ---------------------------------------------------------------------------

const KWMAP_MAGIC: &[u8; 8] = b"SSEKMB1\0";

/// The `btree` backend's durable [`KeywordMap`]: the whole map lives in
/// memory and every flush rewrites one monolithic CRC-framed snapshot file
/// (`<prefix>.kwmap`) via temp + rename + dir fsync — maximal write
/// amplification, minimal read cost, the mirror image of
/// [`crate::lsm::LsmKeywordMap`].
pub struct BtreeKeywordMap {
    vfs: Arc<dyn Vfs>,
    dir: std::path::PathBuf,
    prefix: String,
    map: BTreeMap<Tag, Vec<u8>>,
    seq: u64,
    meta: Vec<u8>,
}

impl BtreeKeywordMap {
    /// Open (or create) the map stored as `dir/<prefix>.kwmap`.
    ///
    /// # Errors
    /// I/O errors, or [`StorageError::Corrupt`] for a damaged snapshot.
    pub fn open(vfs: Arc<dyn Vfs>, dir: &Path, prefix: &str) -> Result<Self> {
        vfs.create_dir_all(dir)?;
        let mut map = BtreeKeywordMap {
            vfs,
            dir: dir.to_path_buf(),
            prefix: prefix.to_string(),
            map: BTreeMap::new(),
            seq: 0,
            meta: Vec::new(),
        };
        let path = map.file_path();
        if map.vfs.exists(&path) {
            let bytes = map.vfs.read(&path)?;
            map.load(&bytes)?;
        }
        Ok(map)
    }

    fn file_path(&self) -> std::path::PathBuf {
        self.dir.join(format!("{}.kwmap", self.prefix))
    }

    fn load(&mut self, bytes: &[u8]) -> Result<()> {
        let corrupt = |detail: String| StorageError::Corrupt {
            what: "keyword-map snapshot",
            detail,
        };
        if bytes.len() < 12 || &bytes[..8] != KWMAP_MAGIC {
            return Err(corrupt("bad magic or truncated header".to_string()));
        }
        let stored_crc = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        let body = &bytes[12..];
        if crc32(body) != stored_crc {
            return Err(corrupt("checksum mismatch".to_string()));
        }
        let mut pos = 0usize;
        let take = |p: &mut usize, n: usize| -> Result<&[u8]> {
            if *p + n > body.len() {
                return Err(StorageError::Corrupt {
                    what: "keyword-map snapshot",
                    detail: "truncated".to_string(),
                });
            }
            let s = &body[*p..*p + n];
            *p += n;
            Ok(s)
        };
        self.seq = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8 bytes"));
        let meta_len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")) as usize;
        self.meta = take(&mut pos, meta_len)?.to_vec();
        let count = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8 bytes")) as usize;
        let mut map = BTreeMap::new();
        for _ in 0..count {
            let tag: Tag = take(&mut pos, 32)?.try_into().expect("32 bytes");
            let vlen = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")) as usize;
            map.insert(tag, take(&mut pos, vlen)?.to_vec());
        }
        if pos != body.len() {
            return Err(corrupt(format!("{} trailing bytes", body.len() - pos)));
        }
        self.map = map;
        Ok(())
    }
}

impl KeywordMap for BtreeKeywordMap {
    fn get(&self, tag: &Tag) -> Result<Option<Vec<u8>>> {
        Ok(self.map.get(tag).cloned())
    }

    fn put(&mut self, tag: Tag, value: Vec<u8>) -> Result<()> {
        self.map.insert(tag, value);
        Ok(())
    }

    fn delete(&mut self, tag: &Tag) -> Result<()> {
        self.map.remove(tag);
        Ok(())
    }

    fn clear(&mut self) -> Result<()> {
        self.map.clear();
        Ok(())
    }

    fn flush(&mut self, applied_seq: u64, meta: &[u8]) -> Result<()> {
        self.seq = applied_seq;
        self.meta = meta.to_vec();
        let mut body = Vec::new();
        body.extend_from_slice(&self.seq.to_le_bytes());
        body.extend_from_slice(&(self.meta.len() as u32).to_le_bytes());
        body.extend_from_slice(&self.meta);
        body.extend_from_slice(&(self.map.len() as u64).to_le_bytes());
        for (tag, value) in &self.map {
            body.extend_from_slice(tag);
            body.extend_from_slice(&(value.len() as u32).to_le_bytes());
            body.extend_from_slice(value);
        }
        let tmp = self.dir.join(format!("{}.kwmap.tmp", self.prefix));
        let path = self.file_path();
        {
            let mut f = self.vfs.create(&tmp)?;
            f.write_all(KWMAP_MAGIC)?;
            f.write_all(&crc32(&body).to_le_bytes())?;
            f.write_all(&body)?;
            f.sync_data()?;
        }
        self.vfs.rename(&tmp, &path)?;
        self.vfs.sync_dir(&self.dir)?;
        Ok(())
    }

    fn last_seq(&self) -> u64 {
        self.seq
    }

    fn meta(&self) -> Vec<u8> {
        self.meta.clone()
    }

    fn iter_all(&self) -> Result<Vec<(Tag, Vec<u8>)>> {
        Ok(self.map.iter().map(|(k, v)| (*k, v.clone())).collect())
    }

    fn key_count(&self) -> Result<usize> {
        Ok(self.map.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::RealVfs;
    use std::path::PathBuf;

    fn temp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "sse-backend-test-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    #[test]
    fn backend_kind_parses_and_prints() {
        assert_eq!("btree".parse::<BackendKind>().unwrap(), BackendKind::Btree);
        assert_eq!("lsm".parse::<BackendKind>().unwrap(), BackendKind::Lsm);
        assert!("mmap".parse::<BackendKind>().is_err());
        assert_eq!(BackendKind::Lsm.to_string(), "lsm");
    }

    #[test]
    fn fresh_dir_records_requested_backend() {
        let dir = temp_dir("fresh");
        let vfs = RealVfs;
        let got = resolve_backend(&vfs, &dir, BackendKind::Lsm, &["store.wal"]).unwrap();
        assert_eq!(got, BackendKind::Lsm);
        // Recorded: a second open under the other kind must refuse.
        let err = resolve_backend(&vfs, &dir, BackendKind::Btree, &["store.wal"]).unwrap_err();
        assert!(matches!(
            err,
            StorageError::BackendMismatch {
                on_disk: "lsm",
                requested: "btree"
            }
        ));
        let msg = err.to_string();
        assert!(msg.contains("lsm") && msg.contains("btree"), "{msg}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_dir_without_manifest_is_btree() {
        let dir = temp_dir("legacy");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("store.wal"), b"").unwrap();
        let vfs = RealVfs;
        let err = resolve_backend(&vfs, &dir, BackendKind::Lsm, &["store.wal"]).unwrap_err();
        assert!(matches!(err, StorageError::BackendMismatch { .. }));
        let got = resolve_backend(&vfs, &dir, BackendKind::Btree, &["store.wal"]).unwrap();
        assert_eq!(got, BackendKind::Btree);
        // The legacy directory is now self-describing.
        assert_eq!(
            read_backend_manifest(&vfs, &dir).unwrap(),
            Some(BackendKind::Btree)
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_manifest_is_rejected() {
        let dir = temp_dir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(BACKEND_MANIFEST_FILE), b"SSEBKND1garbage!").unwrap();
        assert!(matches!(
            read_backend_manifest(&RealVfs, &dir),
            Err(StorageError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn btree_keyword_map_round_trips() {
        let dir = temp_dir("kwmap");
        let tag = |b: u8| [b; 32];
        {
            let mut m = BtreeKeywordMap::open(RealVfs::arc(), &dir, "kw0").unwrap();
            m.put(tag(1), b"one".to_vec()).unwrap();
            m.put(tag(2), b"two".to_vec()).unwrap();
            m.delete(&tag(1)).unwrap();
            m.flush(42, b"geometry").unwrap();
            m.put(tag(3), b"unflushed".to_vec()).unwrap();
            // tag(3) was never flushed: it must not survive reopen.
        }
        let m = BtreeKeywordMap::open(RealVfs::arc(), &dir, "kw0").unwrap();
        assert_eq!(m.last_seq(), 42);
        assert_eq!(m.meta(), b"geometry");
        assert_eq!(m.get(&tag(2)).unwrap(), Some(b"two".to_vec()));
        assert_eq!(m.get(&tag(1)).unwrap(), None);
        assert_eq!(m.get(&tag(3)).unwrap(), None);
        assert_eq!(m.key_count().unwrap(), 1);
        let snap = m.snapshot().unwrap();
        assert_eq!(snap.get(&tag(2)), Some(b"two".to_vec()));
        assert_eq!(snap.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
