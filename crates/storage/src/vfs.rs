//! Virtual filesystem abstraction for deterministic fault injection.
//!
//! Every durable structure in this crate ([`crate::wal::Wal`],
//! [`crate::store::DocStore`], and through them the scheme servers) does its
//! file I/O through the [`Vfs`] trait instead of `std::fs` directly. Two
//! implementations exist:
//!
//! * [`RealVfs`] — a zero-cost passthrough to `std::fs`; the default.
//! * [`FaultVfs`] — wraps another `Vfs` and injects faults on a **seeded,
//!   deterministic schedule**: fail the N-th write, deliver a torn (partial)
//!   write, fail an `fsync`, or simulate a hard crash at any scheduled write
//!   point (the write is torn and every subsequent operation fails, exactly
//!   like a process that died mid-write).
//!
//! The fault model is *process-crash*, not power-loss: bytes handed to a
//! successful `write_all` are considered durable (no page-cache modeling).
//! `sync_data` failures are injectable separately so callers' error paths
//! are exercised, but a crash between write and sync does not lose the
//! write. DESIGN.md §"Fault model & durability contract" spells this out.

use std::io::{self, Error, ErrorKind};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// An open file handle, produced by a [`Vfs`].
///
/// `Send + Sync` so durable structures owning a handle can sit behind a
/// shared lock (the sharded scheme servers wrap their [`crate::store::DocStore`]
/// in an `RwLock` for concurrent reads).
pub trait VfsFile: Send + Sync {
    /// Write all of `buf` at the current position.
    ///
    /// # Errors
    /// I/O errors, or injected faults.
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;

    /// Flush file contents to stable storage.
    ///
    /// # Errors
    /// I/O errors, or injected faults.
    fn sync_data(&mut self) -> io::Result<()>;

    /// Truncate (or extend) the file to `len` bytes.
    ///
    /// # Errors
    /// I/O errors, or injected faults.
    fn set_len(&mut self, len: u64) -> io::Result<()>;

    /// Seek to an absolute byte offset.
    ///
    /// # Errors
    /// I/O errors, or injected faults.
    fn seek_to(&mut self, pos: u64) -> io::Result<()>;
}

/// A minimal filesystem: exactly the operations the storage engine needs.
pub trait Vfs: Send + Sync {
    /// Read a whole file.
    ///
    /// # Errors
    /// I/O errors ([`ErrorKind::NotFound`] when absent), or injected faults.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Length of the file in bytes, or `None` if it does not exist.
    ///
    /// # Errors
    /// I/O errors other than not-found, or injected faults.
    fn file_len(&self, path: &Path) -> io::Result<Option<u64>>;

    /// Open a file for writing without truncating, creating it if missing.
    /// The position starts at 0; callers seek as needed.
    ///
    /// # Errors
    /// I/O errors, or injected faults.
    fn open_write(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;

    /// Create (or truncate) a file for writing.
    ///
    /// # Errors
    /// I/O errors, or injected faults.
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;

    /// Atomically rename `from` to `to` (the snapshot commit point).
    ///
    /// # Errors
    /// I/O errors, or injected faults.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Create a directory and all its parents.
    ///
    /// # Errors
    /// I/O errors, or injected faults.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;

    /// fsync a **directory entry**: make a preceding [`Vfs::rename`] into
    /// `path` durable. A rename that is not followed by a parent-dir fsync
    /// may be lost on crash ([`FaultVfs`] models exactly that with
    /// [`FaultConfig::lose_unsynced_renames`]).
    ///
    /// # Errors
    /// I/O errors, or injected faults.
    fn sync_dir(&self, path: &Path) -> io::Result<()>;

    /// Delete a file (LSM run garbage collection after compaction).
    ///
    /// # Errors
    /// I/O errors ([`ErrorKind::NotFound`] when absent), or injected faults.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Random read: `len` bytes starting at byte `offset`. Short files
    /// return an [`ErrorKind::UnexpectedEof`] error rather than a short
    /// read. Default implementation reads the whole file and slices;
    /// backends with large immutable files override it.
    ///
    /// # Errors
    /// I/O errors, or injected faults.
    fn read_range(&self, path: &Path, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        let bytes = self.read(path)?;
        let start = usize::try_from(offset).map_err(|_| Error::from(ErrorKind::UnexpectedEof))?;
        let end = start.checked_add(len).ok_or(ErrorKind::UnexpectedEof)?;
        if end > bytes.len() {
            return Err(Error::new(
                ErrorKind::UnexpectedEof,
                format!("read_range {offset}+{len} past end {}", bytes.len()),
            ));
        }
        Ok(bytes[start..end].to_vec())
    }

    /// Whether a file exists (false on any probe error).
    fn exists(&self, path: &Path) -> bool {
        matches!(self.file_len(path), Ok(Some(_)))
    }
}

// ---------------------------------------------------------------------------
// RealVfs
// ---------------------------------------------------------------------------

/// Passthrough to `std::fs`.
#[derive(Clone, Copy, Debug, Default)]
pub struct RealVfs;

impl RealVfs {
    /// A shared handle to the real filesystem.
    #[must_use]
    pub fn arc() -> Arc<dyn Vfs> {
        Arc::new(RealVfs)
    }
}

struct RealFile(std::fs::File);

impl VfsFile for RealFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        use std::io::Write;
        self.0.write_all(buf)
    }

    fn sync_data(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.0.set_len(len)
    }

    fn seek_to(&mut self, pos: u64) -> io::Result<()> {
        use std::io::Seek;
        self.0.seek(std::io::SeekFrom::Start(pos)).map(|_| ())
    }
}

impl Vfs for RealVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn file_len(&self, path: &Path) -> io::Result<Option<u64>> {
        match std::fs::metadata(path) {
            Ok(m) => Ok(Some(m.len())),
            Err(e) if e.kind() == ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn open_write(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false)
            .open(path)?;
        Ok(Box::new(RealFile(file)))
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(RealFile(std::fs::File::create(path)?)))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        // Opening a directory read-only and fsyncing it is the portable
        // (POSIX) way to make a rename of one of its entries durable.
        std::fs::File::open(path)?.sync_data()
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn read_range(&self, path: &Path, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        use std::io::{Read, Seek};
        let mut f = std::fs::File::open(path)?;
        f.seek(std::io::SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len];
        f.read_exact(&mut buf)?;
        Ok(buf)
    }
}

// ---------------------------------------------------------------------------
// FaultVfs
// ---------------------------------------------------------------------------

/// Which faults a [`FaultVfs`] injects, all on 1-based operation indices.
/// Every field is independent; `None` disables that fault.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultConfig {
    /// Seed for the deterministic schedule (torn-prefix lengths).
    pub seed: u64,
    /// Fail the N-th `write_all` cleanly: no bytes reach the file.
    pub fail_write_at: Option<u64>,
    /// Tear the N-th `write_all`: a seeded strict prefix of the buffer is
    /// written, then the call fails.
    pub torn_write_at: Option<u64>,
    /// Fail the N-th `sync_data`.
    pub fail_sync_at: Option<u64>,
    /// Hard crash at the N-th `write_all`: the write is torn (seeded
    /// prefix) and **every** subsequent operation on this VFS fails.
    pub crash_at_write: Option<u64>,
    /// Hard crash **at** the N-th `sync_data`: the sync does not reach the
    /// inner file (under the process-crash model the preceding writes are
    /// still durable) and every subsequent operation fails — a crash
    /// between a group's write and its fsync.
    pub crash_at_sync: Option<u64>,
    /// Hard crash **after** the N-th `sync_data`: the inner sync succeeds
    /// (the group *is* durable), then every subsequent operation fails — a
    /// crash between a group's fsync and its acks.
    pub crash_after_sync: Option<u64>,
    /// Fail the N-th `sync_dir` (directory-entry fsync). Counted on a
    /// schedule separate from `sync_data` so existing fault schedules are
    /// unaffected by new dir-fsync call sites.
    pub fail_dir_sync_at: Option<u64>,
    /// Hard crash at the N-th `sync_dir`: the directory fsync never
    /// happens and every subsequent operation fails. Combine with
    /// [`FaultConfig::lose_unsynced_renames`] to simulate losing the
    /// rename itself.
    pub crash_at_dir_sync: Option<u64>,
    /// Model un-fsynced directory entries: every [`Vfs::rename`] is held
    /// *pending* until a `sync_dir` of its parent directory succeeds. If
    /// the VFS crashes first, pending renames are rolled back — the old
    /// destination file reappears and the renamed bytes go back to the
    /// source path, exactly as if the directory entry never hit disk.
    /// Off by default (renames are then durable at the rename call, the
    /// historical process-crash model).
    pub lose_unsynced_renames: bool,
    /// ENOSPC window: starting at the N-th `write_all` (1-based), fail
    /// writes with [`ErrorKind::StorageFull`] for [`FaultConfig::enospc_len`]
    /// scheduled write points, then let writes succeed again — a disk
    /// filling up and being cleared. Unlike the crash faults this never
    /// kills the VFS: the process keeps running on a full disk.
    pub enospc_start: Option<u64>,
    /// Width of the ENOSPC window in write points (0 behaves as 1).
    pub enospc_len: u64,
    /// When non-zero (and greater than `enospc_len`), the window recurs:
    /// every `enospc_period` writes after `enospc_start`, the first
    /// `enospc_len` of them fail with `StorageFull`. The chaos harness
    /// uses this to schedule repeated fault windows from one seed.
    pub enospc_period: u64,
}

/// Shared counters exposing what a [`FaultVfs`] saw and injected.
#[derive(Debug, Default)]
pub struct FaultStats {
    /// Total `write_all` calls observed (the crash-point count).
    pub writes_seen: AtomicU64,
    /// Total `sync_data` calls observed.
    pub syncs_seen: AtomicU64,
    /// Faults injected of any kind.
    pub injected_faults: AtomicU64,
    /// Writes delivered torn (partial prefix then failure).
    pub torn_writes: AtomicU64,
    /// `sync_data` calls failed.
    pub failed_syncs: AtomicU64,
    /// Writes failed cleanly (zero bytes written).
    pub failed_writes: AtomicU64,
    /// Total `sync_dir` calls observed (separate schedule from syncs).
    pub dir_syncs_seen: AtomicU64,
    /// `sync_dir` calls failed.
    pub failed_dir_syncs: AtomicU64,
    /// Renames rolled back at crash time (un-fsynced directory entries).
    pub renames_lost: AtomicU64,
    /// Writes failed with `StorageFull` inside an ENOSPC window.
    pub enospc_writes: AtomicU64,
    /// Whether the simulated hard crash has happened.
    pub crashed: AtomicBool,
}

impl FaultStats {
    /// Total faults injected so far.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.injected_faults.load(Ordering::Relaxed)
    }

    /// Total writes observed so far (use a fault-free counting run to
    /// enumerate the crash points of a workload).
    #[must_use]
    pub fn writes(&self) -> u64 {
        self.writes_seen.load(Ordering::Relaxed)
    }

    /// Total directory fsyncs observed so far (the `sync_dir` crash-point
    /// count for rename-loss sweeps).
    #[must_use]
    pub fn dir_syncs(&self) -> u64 {
        self.dir_syncs_seen.load(Ordering::Relaxed)
    }
}

/// SplitMix64 — tiny, seedable, deterministic; used only to derive torn
/// prefix lengths, never for cryptography.
fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One rename whose directory entry has not yet been fsynced: enough state
/// to undo it if the VFS crashes first.
struct PendingRename {
    from: std::path::PathBuf,
    to: std::path::PathBuf,
    /// Content of `to` before the rename clobbered it (`None`: absent).
    old_to: Option<Vec<u8>>,
    /// The bytes that moved from `from` to `to`.
    new_bytes: Vec<u8>,
}

struct FaultState {
    cfg: FaultConfig,
    stats: Arc<FaultStats>,
    inner: Arc<dyn Vfs>,
    pending_renames: std::sync::Mutex<Vec<PendingRename>>,
}

impl FaultState {
    fn crashed_err() -> Error {
        Error::other("injected fault: simulated crash (all I/O dead)")
    }

    fn check_alive(&self) -> io::Result<()> {
        if self.stats.crashed.load(Ordering::SeqCst) {
            return Err(Self::crashed_err());
        }
        Ok(())
    }

    /// Mark the VFS crashed and, when `lose_unsynced_renames` is set, roll
    /// back every rename whose parent directory was never fsynced: the
    /// renamed bytes reappear at the source path and the old destination
    /// content (if any) is restored — the directory entry never hit disk.
    fn trigger_crash(&self) {
        self.stats.crashed.store(true, Ordering::SeqCst);
        if !self.cfg.lose_unsynced_renames {
            return;
        }
        let mut pending = self
            .pending_renames
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for p in pending.drain(..).rev() {
            // Best-effort: the rollback itself uses the inner (real) VFS
            // because this VFS is already dead.
            if let Ok(mut f) = self.inner.create(&p.from) {
                let _ = f.write_all(&p.new_bytes);
            }
            match p.old_to {
                Some(old) => {
                    if let Ok(mut f) = self.inner.create(&p.to) {
                        let _ = f.write_all(&old);
                    }
                }
                None => {
                    let _ = self.inner.remove_file(&p.to);
                }
            }
            self.stats.renames_lost.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record a completed rename as pending until its parent dir is synced.
    fn note_rename(&self, from: &Path, to: &Path, old_to: Option<Vec<u8>>, new_bytes: Vec<u8>) {
        let mut pending = self
            .pending_renames
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // A rename onto the destination of an earlier pending rename
        // supersedes it; keep the *original* old_to so rollback restores
        // the truly durable content.
        let prior_old = pending
            .iter()
            .position(|p| p.to == to)
            .map(|i| pending.remove(i).old_to);
        pending.push(PendingRename {
            from: from.to_path_buf(),
            to: to.to_path_buf(),
            old_to: prior_old.unwrap_or(old_to),
            new_bytes,
        });
    }

    /// A successful directory fsync makes every pending rename inside that
    /// directory durable.
    fn settle_renames_in(&self, dir: &Path) {
        let mut pending = self
            .pending_renames
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        pending.retain(|p| p.to.parent() != Some(dir));
    }

    /// Gate one write: returns `Ok(None)` to pass the full buffer through,
    /// `Ok(Some(prefix_len))` to write only a prefix then report failure —
    /// the caller must then return the supplied error.
    fn on_write(&self, buf_len: usize) -> Result<Option<usize>, Error> {
        self.check_alive()?;
        let n = self.stats.writes_seen.fetch_add(1, Ordering::SeqCst) + 1;
        let torn_prefix = |salt: u64| {
            if buf_len == 0 {
                0
            } else {
                (splitmix64(self.cfg.seed ^ n ^ salt) % buf_len as u64) as usize
            }
        };
        if self.cfg.crash_at_write == Some(n) {
            self.trigger_crash();
            self.stats.injected_faults.fetch_add(1, Ordering::Relaxed);
            self.stats.torn_writes.fetch_add(1, Ordering::Relaxed);
            return Ok(Some(torn_prefix(0xC4A5)));
        }
        if self.cfg.torn_write_at == Some(n) {
            self.stats.injected_faults.fetch_add(1, Ordering::Relaxed);
            self.stats.torn_writes.fetch_add(1, Ordering::Relaxed);
            return Ok(Some(torn_prefix(0x70BB)));
        }
        if self.cfg.fail_write_at == Some(n) {
            self.stats.injected_faults.fetch_add(1, Ordering::Relaxed);
            self.stats.failed_writes.fetch_add(1, Ordering::Relaxed);
            return Err(Error::other(format!("injected fault: write {n} failed")));
        }
        if self.in_enospc_window(n) {
            self.stats.injected_faults.fetch_add(1, Ordering::Relaxed);
            self.stats.enospc_writes.fetch_add(1, Ordering::Relaxed);
            return Err(Error::new(
                ErrorKind::StorageFull,
                format!("injected fault: write {n} hit ENOSPC window (disk full)"),
            ));
        }
        Ok(None)
    }

    /// Whether write point `n` falls inside the configured ENOSPC window
    /// (one-shot, or recurring when `enospc_period` is set).
    fn in_enospc_window(&self, n: u64) -> bool {
        let Some(start) = self.cfg.enospc_start else {
            return false;
        };
        if n < start {
            return false;
        }
        let len = self.cfg.enospc_len.max(1);
        let off = n - start;
        if self.cfg.enospc_period > len {
            off % self.cfg.enospc_period < len
        } else {
            off < len
        }
    }

    /// Gate one sync: `Pass` lets the inner `sync_data` run normally;
    /// `CrashAfter` asks the caller to run the inner sync, *then* mark the
    /// VFS crashed and report failure (the data is durable, the ack never
    /// happens).
    fn on_sync(&self) -> io::Result<SyncGate> {
        self.check_alive()?;
        let n = self.stats.syncs_seen.fetch_add(1, Ordering::SeqCst) + 1;
        if self.cfg.crash_at_sync == Some(n) {
            self.trigger_crash();
            self.stats.injected_faults.fetch_add(1, Ordering::Relaxed);
            self.stats.failed_syncs.fetch_add(1, Ordering::Relaxed);
            return Err(Error::other(format!(
                "injected fault: crash at fsync {n} (sync never reached disk)"
            )));
        }
        if self.cfg.fail_sync_at == Some(n) {
            self.stats.injected_faults.fetch_add(1, Ordering::Relaxed);
            self.stats.failed_syncs.fetch_add(1, Ordering::Relaxed);
            return Err(Error::other(format!("injected fault: fsync {n} failed")));
        }
        if self.cfg.crash_after_sync == Some(n) {
            return Ok(SyncGate::CrashAfter);
        }
        Ok(SyncGate::Pass)
    }
}

/// Outcome of [`FaultState::on_sync`] when the sync is allowed to proceed.
enum SyncGate {
    /// Run the inner sync normally.
    Pass,
    /// Run the inner sync, then crash (durable but never acknowledged).
    CrashAfter,
}

/// A [`Vfs`] that injects deterministic faults into an inner VFS.
///
/// One `FaultVfs` shares one schedule across every file opened through it,
/// so "the N-th write" counts globally — exactly what a crash-at-every-
/// write-point torture loop needs.
pub struct FaultVfs {
    inner: Arc<dyn Vfs>,
    state: Arc<FaultState>,
}

impl FaultVfs {
    /// Wrap `inner` with the fault schedule in `cfg`.
    #[must_use]
    pub fn new(inner: Arc<dyn Vfs>, cfg: FaultConfig) -> Self {
        FaultVfs {
            inner: inner.clone(),
            state: Arc::new(FaultState {
                cfg,
                stats: Arc::new(FaultStats::default()),
                inner,
                pending_renames: std::sync::Mutex::new(Vec::new()),
            }),
        }
    }

    /// Fault-free wrapper over the real filesystem that only counts
    /// operations — the "counting run" enumerating a workload's write
    /// points.
    #[must_use]
    pub fn counting() -> Self {
        FaultVfs::new(RealVfs::arc(), FaultConfig::default())
    }

    /// Real-filesystem wrapper that hard-crashes at write point `n`
    /// (1-based), tearing that write on a schedule derived from `seed`.
    #[must_use]
    pub fn crashing_at(seed: u64, n: u64) -> Self {
        FaultVfs::new(
            RealVfs::arc(),
            FaultConfig {
                seed,
                crash_at_write: Some(n),
                ..FaultConfig::default()
            },
        )
    }

    /// Real-filesystem wrapper whose writes fail with
    /// [`ErrorKind::StorageFull`] for `len` write points starting at write
    /// `start` (1-based), then succeed again — a transient full disk. The
    /// VFS never crashes; reads and syncs keep working throughout.
    #[must_use]
    pub fn enospc_window(seed: u64, start: u64, len: u64) -> Self {
        FaultVfs::new(
            RealVfs::arc(),
            FaultConfig {
                seed,
                enospc_start: Some(start),
                enospc_len: len,
                ..FaultConfig::default()
            },
        )
    }

    /// Real-filesystem wrapper that hard-crashes at sync point `n`
    /// (1-based): the fsync never happens, all subsequent I/O fails.
    #[must_use]
    pub fn crashing_at_sync(seed: u64, n: u64) -> Self {
        FaultVfs::new(
            RealVfs::arc(),
            FaultConfig {
                seed,
                crash_at_sync: Some(n),
                ..FaultConfig::default()
            },
        )
    }

    /// Real-filesystem wrapper that hard-crashes just *after* sync point
    /// `n` (1-based): the fsync completes (data durable), then all
    /// subsequent I/O fails — the acknowledgement is lost.
    #[must_use]
    pub fn crashing_after_sync(seed: u64, n: u64) -> Self {
        FaultVfs::new(
            RealVfs::arc(),
            FaultConfig {
                seed,
                crash_after_sync: Some(n),
                ..FaultConfig::default()
            },
        )
    }

    /// The shared fault counters.
    #[must_use]
    pub fn stats(&self) -> Arc<FaultStats> {
        self.state.stats.clone()
    }

    /// Whether the simulated crash has fired.
    #[must_use]
    pub fn crashed(&self) -> bool {
        self.state.stats.crashed.load(Ordering::SeqCst)
    }
}

struct FaultFile {
    inner: Box<dyn VfsFile>,
    state: Arc<FaultState>,
}

impl VfsFile for FaultFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match self.state.on_write(buf.len())? {
            None => self.inner.write_all(buf),
            Some(prefix) => {
                // Deliver the torn prefix through the inner file, then fail.
                self.inner.write_all(&buf[..prefix])?;
                Err(Error::other(format!(
                    "injected fault: torn write ({prefix} of {} bytes)",
                    buf.len()
                )))
            }
        }
    }

    fn sync_data(&mut self) -> io::Result<()> {
        match self.state.on_sync()? {
            SyncGate::Pass => self.inner.sync_data(),
            SyncGate::CrashAfter => {
                self.inner.sync_data()?;
                self.state.trigger_crash();
                self.state
                    .stats
                    .injected_faults
                    .fetch_add(1, Ordering::Relaxed);
                Err(Error::other(
                    "injected fault: crash after fsync (data durable, ack lost)",
                ))
            }
        }
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.state.check_alive()?;
        self.inner.set_len(len)
    }

    fn seek_to(&mut self, pos: u64) -> io::Result<()> {
        self.state.check_alive()?;
        self.inner.seek_to(pos)
    }
}

impl Vfs for FaultVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.state.check_alive()?;
        self.inner.read(path)
    }

    fn file_len(&self, path: &Path) -> io::Result<Option<u64>> {
        self.state.check_alive()?;
        self.inner.file_len(path)
    }

    fn open_write(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.state.check_alive()?;
        Ok(Box::new(FaultFile {
            inner: self.inner.open_write(path)?,
            state: self.state.clone(),
        }))
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.state.check_alive()?;
        Ok(Box::new(FaultFile {
            inner: self.inner.create(path)?,
            state: self.state.clone(),
        }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.state.check_alive()?;
        if self.state.cfg.lose_unsynced_renames {
            // Capture enough state to undo the rename if the crash fires
            // before the parent directory is fsynced.
            let old_to = self.inner.read(to).ok();
            let new_bytes = self.inner.read(from)?;
            self.inner.rename(from, to)?;
            self.state.note_rename(from, to, old_to, new_bytes);
            Ok(())
        } else {
            self.inner.rename(from, to)
        }
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.state.check_alive()?;
        self.inner.create_dir_all(path)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        self.state.check_alive()?;
        let stats = &self.state.stats;
        let n = stats.dir_syncs_seen.fetch_add(1, Ordering::SeqCst) + 1;
        if self.state.cfg.crash_at_dir_sync == Some(n) {
            self.state.trigger_crash();
            stats.injected_faults.fetch_add(1, Ordering::Relaxed);
            stats.failed_dir_syncs.fetch_add(1, Ordering::Relaxed);
            return Err(Error::other(format!(
                "injected fault: crash at dir fsync {n} (directory entry never durable)"
            )));
        }
        if self.state.cfg.fail_dir_sync_at == Some(n) {
            stats.injected_faults.fetch_add(1, Ordering::Relaxed);
            stats.failed_dir_syncs.fetch_add(1, Ordering::Relaxed);
            return Err(Error::other(format!(
                "injected fault: dir fsync {n} failed"
            )));
        }
        self.inner.sync_dir(path)?;
        self.state.settle_renames_in(path);
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.state.check_alive()?;
        self.inner.remove_file(path)
    }

    fn read_range(&self, path: &Path, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        self.state.check_alive()?;
        self.inner.read_range(path, offset, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_file(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "sse-vfs-test-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    use std::path::PathBuf;

    #[test]
    fn real_vfs_round_trip() {
        let path = temp_file("real");
        let vfs = RealVfs;
        {
            let mut f = vfs.create(&path).unwrap();
            f.write_all(b"hello ").unwrap();
            f.write_all(b"world").unwrap();
            f.sync_data().unwrap();
        }
        assert_eq!(vfs.read(&path).unwrap(), b"hello world");
        assert_eq!(vfs.file_len(&path).unwrap(), Some(11));
        assert!(vfs.exists(&path));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fault_vfs_counts_writes() {
        let path = temp_file("count");
        let vfs = FaultVfs::counting();
        let mut f = vfs.create(&path).unwrap();
        f.write_all(b"a").unwrap();
        f.write_all(b"b").unwrap();
        f.sync_data().unwrap();
        assert_eq!(vfs.stats().writes(), 2);
        assert_eq!(vfs.stats().syncs_seen.load(Ordering::Relaxed), 1);
        assert_eq!(vfs.stats().injected(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fail_nth_write_writes_nothing() {
        let path = temp_file("failw");
        let vfs = FaultVfs::new(
            RealVfs::arc(),
            FaultConfig {
                fail_write_at: Some(2),
                ..FaultConfig::default()
            },
        );
        let mut f = vfs.create(&path).unwrap();
        f.write_all(b"one").unwrap();
        assert!(f.write_all(b"two").is_err());
        f.write_all(b"three").unwrap(); // only write 2 was scheduled
        drop(f);
        assert_eq!(vfs.read(&path).unwrap(), b"onethree");
        assert_eq!(vfs.stats().failed_writes.load(Ordering::Relaxed), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_write_delivers_strict_prefix() {
        let path = temp_file("torn");
        let vfs = FaultVfs::new(
            RealVfs::arc(),
            FaultConfig {
                seed: 7,
                torn_write_at: Some(1),
                ..FaultConfig::default()
            },
        );
        let mut f = vfs.create(&path).unwrap();
        assert!(f.write_all(b"0123456789").is_err());
        drop(f);
        let written = vfs.read(&path).unwrap();
        assert!(written.len() < 10, "torn write must be a strict prefix");
        assert_eq!(&written[..], &b"0123456789"[..written.len()]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_length_is_deterministic_per_seed() {
        let lens: Vec<usize> = (0..2)
            .map(|_| {
                let path = temp_file("det");
                let vfs = FaultVfs::new(
                    RealVfs::arc(),
                    FaultConfig {
                        seed: 42,
                        torn_write_at: Some(1),
                        ..FaultConfig::default()
                    },
                );
                let mut f = vfs.create(&path).unwrap();
                let _ = f.write_all(&[0xAB; 100]);
                drop(f);
                let len = vfs.read(&path).unwrap().len();
                std::fs::remove_file(&path).unwrap();
                len
            })
            .collect();
        assert_eq!(lens[0], lens[1], "same seed, same torn length");
    }

    #[test]
    fn crash_kills_all_subsequent_io() {
        let path = temp_file("crash");
        let vfs = FaultVfs::crashing_at(3, 1);
        let mut f = vfs.create(&path).unwrap();
        assert!(f.write_all(b"doomed").is_err());
        assert!(vfs.crashed());
        // Everything after the crash fails: writes, syncs, opens, renames.
        assert!(f.write_all(b"more").is_err());
        assert!(f.sync_data().is_err());
        assert!(vfs.create(&temp_file("crash2")).is_err());
        assert!(vfs.read(&path).is_err());
        assert!(vfs.rename(&path, &temp_file("crash3")).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn crash_at_sync_keeps_writes_but_kills_io() {
        // Process-crash model: bytes from successful writes are durable
        // even though the scheduled fsync itself never ran.
        let path = temp_file("crash-at-sync");
        let vfs = FaultVfs::crashing_at_sync(5, 1);
        let mut f = vfs.create(&path).unwrap();
        f.write_all(b"written before crash").unwrap();
        assert!(f.sync_data().is_err());
        assert!(vfs.crashed());
        assert!(f.write_all(b"more").is_err());
        assert!(vfs.read(&path).is_err());
        // The data is on disk (readable outside the crashed VFS).
        assert_eq!(RealVfs.read(&path).unwrap(), b"written before crash");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn crash_after_sync_is_durable_but_dead() {
        let path = temp_file("crash-after-sync");
        let vfs = FaultVfs::crashing_after_sync(5, 1);
        let mut f = vfs.create(&path).unwrap();
        f.write_all(b"durable payload").unwrap();
        // The sync itself succeeds on the inner file, then the crash fires.
        assert!(f.sync_data().is_err());
        assert!(vfs.crashed());
        assert!(f.sync_data().is_err());
        assert!(vfs.create(&temp_file("crash-after-sync-2")).is_err());
        assert_eq!(RealVfs.read(&path).unwrap(), b"durable payload");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn read_range_reads_middle_of_file() {
        let path = temp_file("range");
        let vfs = RealVfs;
        let mut f = vfs.create(&path).unwrap();
        f.write_all(b"0123456789").unwrap();
        drop(f);
        assert_eq!(vfs.read_range(&path, 3, 4).unwrap(), b"3456");
        assert!(vfs.read_range(&path, 8, 4).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn dir_sync_fault_fires_on_its_own_schedule() {
        let dir = {
            let mut p = std::env::temp_dir();
            p.push(format!("sse-vfs-dirsync-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&p);
            std::fs::create_dir_all(&p).unwrap();
            p
        };
        let vfs = FaultVfs::new(
            RealVfs::arc(),
            FaultConfig {
                fail_dir_sync_at: Some(2),
                ..FaultConfig::default()
            },
        );
        vfs.sync_dir(&dir).unwrap();
        assert!(vfs.sync_dir(&dir).is_err());
        vfs.sync_dir(&dir).unwrap();
        assert_eq!(vfs.stats().dir_syncs(), 3);
        assert_eq!(vfs.stats().failed_dir_syncs.load(Ordering::Relaxed), 1);
        // Data syncs are a separate schedule: none were consumed.
        assert_eq!(vfs.stats().syncs_seen.load(Ordering::Relaxed), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unsynced_rename_is_lost_on_crash() {
        let dir = {
            let mut p = std::env::temp_dir();
            p.push(format!("sse-vfs-renameloss-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&p);
            std::fs::create_dir_all(&p).unwrap();
            p
        };
        let old = dir.join("file");
        let tmp = dir.join("file.tmp");
        std::fs::write(&old, b"old contents").unwrap();
        let vfs = FaultVfs::new(
            RealVfs::arc(),
            FaultConfig {
                lose_unsynced_renames: true,
                crash_at_dir_sync: Some(1),
                ..FaultConfig::default()
            },
        );
        std::fs::write(&tmp, b"new contents").unwrap();
        vfs.rename(&tmp, &old).unwrap();
        // Visible through the live VFS...
        assert_eq!(RealVfs.read(&old).unwrap(), b"new contents");
        // ...but the dir fsync crashes, so the rename rolls back.
        assert!(vfs.sync_dir(&dir).is_err());
        assert!(vfs.crashed());
        assert_eq!(RealVfs.read(&old).unwrap(), b"old contents");
        assert_eq!(RealVfs.read(&tmp).unwrap(), b"new contents");
        assert_eq!(vfs.stats().renames_lost.load(Ordering::Relaxed), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn synced_rename_survives_crash() {
        let dir = {
            let mut p = std::env::temp_dir();
            p.push(format!("sse-vfs-renamekeep-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&p);
            std::fs::create_dir_all(&p).unwrap();
            p
        };
        let old = dir.join("file");
        let tmp = dir.join("file.tmp");
        let vfs = FaultVfs::new(
            RealVfs::arc(),
            FaultConfig {
                lose_unsynced_renames: true,
                crash_at_write: Some(1),
                ..FaultConfig::default()
            },
        );
        std::fs::write(&tmp, b"new contents").unwrap();
        vfs.rename(&tmp, &old).unwrap();
        vfs.sync_dir(&dir).unwrap(); // settles the rename
        let mut f = vfs.create(&dir.join("other")).unwrap();
        assert!(f.write_all(b"boom").is_err());
        assert!(vfs.crashed());
        assert_eq!(RealVfs.read(&old).unwrap(), b"new contents");
        assert_eq!(vfs.stats().renames_lost.load(Ordering::Relaxed), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn enospc_window_fails_then_recovers() {
        let path = temp_file("enospc");
        let vfs = FaultVfs::enospc_window(7, 2, 3);
        let mut f = vfs.create(&path).unwrap();
        f.write_all(b"a").unwrap(); // write 1: before the window
        for i in 0..3 {
            // writes 2..=4: inside the window — StorageFull, zero bytes land
            let err = f.write_all(b"x").unwrap_err();
            assert_eq!(err.kind(), ErrorKind::StorageFull, "window write {i}");
        }
        f.write_all(b"b").unwrap(); // write 5: the disk "cleared"
        f.sync_data().unwrap(); // the VFS never crashed
        assert!(!vfs.crashed());
        assert_eq!(vfs.stats().enospc_writes.load(Ordering::Relaxed), 3);
        assert_eq!(RealVfs.read(&path).unwrap(), b"ab");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn enospc_period_recurs() {
        let path = temp_file("enospc-period");
        let vfs = FaultVfs::new(
            RealVfs::arc(),
            FaultConfig {
                enospc_start: Some(2),
                enospc_len: 1,
                enospc_period: 3,
                ..FaultConfig::default()
            },
        );
        let mut f = vfs.create(&path).unwrap();
        // Window of 1 recurring every 3 writes from write 2: 2, 5, 8 fail.
        let mut outcomes = Vec::new();
        for _ in 1..=8u64 {
            outcomes.push(f.write_all(b"y").is_ok());
        }
        assert_eq!(
            outcomes,
            vec![true, false, true, true, false, true, true, false]
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fsync_fault_fires_once() {
        let path = temp_file("sync");
        let vfs = FaultVfs::new(
            RealVfs::arc(),
            FaultConfig {
                fail_sync_at: Some(1),
                ..FaultConfig::default()
            },
        );
        let mut f = vfs.create(&path).unwrap();
        f.write_all(b"x").unwrap();
        assert!(f.sync_data().is_err());
        f.sync_data().unwrap();
        assert_eq!(vfs.stats().failed_syncs.load(Ordering::Relaxed), 1);
        std::fs::remove_file(&path).unwrap();
    }
}
