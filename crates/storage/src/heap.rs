//! A heap file of slotted pages, with fragment chains for large records.
//!
//! Records up to [`crate::page::MAX_IN_PAGE`] minus the fragment header fit
//! in one page; larger records are split into fragments linked by
//! `(next_page, next_slot)` pointers stored in each fragment's header.
//!
//! Fragment layout: `[total_remaining: u32][next_page: u32][next_slot: u16][data...]`
//! where `next_page == u32::MAX` terminates the chain.

use crate::error::{Result, StorageError};
use crate::page::{Page, MAX_IN_PAGE};

/// Fragment header size.
const FRAG_HEADER: usize = 10;
/// Chain terminator.
const NO_PAGE: u32 = u32::MAX;
/// Maximum data bytes per fragment.
pub const FRAG_DATA: usize = MAX_IN_PAGE - FRAG_HEADER;

/// Address of a record in the heap (its first fragment).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RecordId {
    /// Page number of the first fragment.
    pub page: u32,
    /// Slot within that page.
    pub slot: u16,
}

/// An in-memory heap file (persisted wholesale by snapshots).
#[derive(Default)]
pub struct HeapFile {
    pages: Vec<Page>,
}

impl HeapFile {
    /// An empty heap.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pages.
    #[must_use]
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Total byte footprint of the heap.
    #[must_use]
    pub fn byte_size(&self) -> usize {
        self.pages.len() * crate::page::PAGE_SIZE
    }

    /// Find a page with at least `need` free bytes, or append a new one.
    fn page_with_space(&mut self, need: usize) -> u32 {
        // Check the last few pages only: classic "append-mostly" heuristic
        // that avoids O(pages) scans on every insert.
        let start = self.pages.len().saturating_sub(4);
        for i in start..self.pages.len() {
            if self.pages[i].free_space() >= need {
                return i as u32;
            }
        }
        self.pages.push(Page::new());
        (self.pages.len() - 1) as u32
    }

    /// Insert a record of any size, returning its id.
    ///
    /// # Errors
    /// Propagates page-level errors (should not occur — sizes are checked).
    pub fn insert(&mut self, data: &[u8]) -> Result<RecordId> {
        // Build fragments back-to-front so each knows its successor.
        let mut chunks: Vec<&[u8]> = data.chunks(FRAG_DATA).collect();
        if chunks.is_empty() {
            chunks.push(&[]);
        }
        let mut next: (u32, u16) = (NO_PAGE, 0);
        let mut remaining_after = 0u32;
        for chunk in chunks.iter().rev() {
            let mut frag = Vec::with_capacity(FRAG_HEADER + chunk.len());
            let total_remaining = remaining_after + chunk.len() as u32;
            frag.extend_from_slice(&total_remaining.to_le_bytes());
            frag.extend_from_slice(&next.0.to_le_bytes());
            frag.extend_from_slice(&next.1.to_le_bytes());
            frag.extend_from_slice(chunk);
            let page_no = self.page_with_space(frag.len());
            let slot = self.pages[page_no as usize].insert(&frag)?;
            next = (page_no, slot);
            remaining_after = total_remaining;
        }
        Ok(RecordId {
            page: next.0,
            slot: next.1,
        })
    }

    /// Read a whole record by id.
    ///
    /// # Errors
    /// [`StorageError::RecordNotFound`] for dangling ids;
    /// [`StorageError::Corrupt`] if a fragment chain is inconsistent.
    pub fn get(&self, id: RecordId) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        let mut cur = (id.page, id.slot);
        let mut expected: Option<u32> = None;
        loop {
            let page = self
                .pages
                .get(cur.0 as usize)
                .ok_or(StorageError::RecordNotFound)?;
            let frag = page.get(cur.1)?;
            if frag.len() < FRAG_HEADER {
                return Err(StorageError::Corrupt {
                    what: "fragment",
                    detail: format!("fragment shorter than header: {}", frag.len()),
                });
            }
            let total_remaining = u32::from_le_bytes(frag[0..4].try_into().expect("4 bytes"));
            if let Some(exp) = expected {
                if total_remaining != exp {
                    return Err(StorageError::Corrupt {
                        what: "fragment chain",
                        detail: format!("expected {exp} remaining, found {total_remaining}"),
                    });
                }
            }
            let next_page = u32::from_le_bytes(frag[4..8].try_into().expect("4 bytes"));
            let next_slot = u16::from_le_bytes(frag[8..10].try_into().expect("2 bytes"));
            let data = &frag[FRAG_HEADER..];
            out.extend_from_slice(data);
            if next_page == NO_PAGE {
                return Ok(out);
            }
            expected = Some(total_remaining - data.len() as u32);
            cur = (next_page, next_slot);
        }
    }

    /// Delete a record and all its fragments.
    ///
    /// # Errors
    /// [`StorageError::RecordNotFound`] if the id is dangling.
    pub fn delete(&mut self, id: RecordId) -> Result<()> {
        let mut cur = (id.page, id.slot);
        loop {
            let page = self
                .pages
                .get(cur.0 as usize)
                .ok_or(StorageError::RecordNotFound)?;
            let frag = page.get(cur.1)?;
            let next_page = u32::from_le_bytes(frag[4..8].try_into().expect("4 bytes"));
            let next_slot = u16::from_le_bytes(frag[8..10].try_into().expect("2 bytes"));
            self.pages[cur.0 as usize].delete(cur.1)?;
            if next_page == NO_PAGE {
                return Ok(());
            }
            cur = (next_page, next_slot);
        }
    }

    /// Compact every page (reclaims tombstoned space in place).
    pub fn compact_all(&mut self) {
        for p in &mut self.pages {
            p.compact();
        }
    }

    /// Serialize all pages for a snapshot.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.byte_size());
        for p in &self.pages {
            out.extend_from_slice(p.as_bytes());
        }
        out
    }

    /// Iterate the raw page images in order (each exactly
    /// [`crate::page::PAGE_SIZE`] bytes).
    pub fn page_images(&self) -> impl Iterator<Item = &[u8]> + '_ {
        self.pages.iter().map(|p| p.as_bytes().as_slice())
    }

    /// Stream every page into a [`crate::vfs::VfsFile`], one write per page
    /// — so a crash while a snapshot is being written tears at a page
    /// boundary at worst, and fault injection sees one crash point per
    /// page rather than one per snapshot.
    ///
    /// # Errors
    /// I/O errors from the file (including injected faults).
    pub fn write_to(&self, file: &mut dyn crate::vfs::VfsFile) -> std::io::Result<()> {
        for p in &self.pages {
            file.write_all(p.as_bytes())?;
        }
        Ok(())
    }

    /// Restore from snapshot bytes.
    ///
    /// # Errors
    /// [`StorageError::Corrupt`] on a partial page or invalid page image.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        if !bytes.len().is_multiple_of(crate::page::PAGE_SIZE) {
            return Err(StorageError::Corrupt {
                what: "heap file",
                detail: format!("length {} not page-aligned", bytes.len()),
            });
        }
        let pages = bytes
            .chunks(crate::page::PAGE_SIZE)
            .map(Page::from_bytes)
            .collect::<Result<Vec<_>>>()?;
        Ok(HeapFile { pages })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_record_round_trip() {
        let mut h = HeapFile::new();
        let id = h.insert(b"compact record").unwrap();
        assert_eq!(h.get(id).unwrap(), b"compact record");
        assert_eq!(h.page_count(), 1);
    }

    #[test]
    fn empty_record() {
        let mut h = HeapFile::new();
        let id = h.insert(b"").unwrap();
        assert_eq!(h.get(id).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn large_record_spans_pages() {
        let mut h = HeapFile::new();
        let big: Vec<u8> = (0..50_000u32).map(|i| (i % 251) as u8).collect();
        let id = h.insert(&big).unwrap();
        assert!(h.page_count() > 5, "expected multiple pages");
        assert_eq!(h.get(id).unwrap(), big);
    }

    #[test]
    fn exact_fragment_boundary() {
        let mut h = HeapFile::new();
        for len in [FRAG_DATA - 1, FRAG_DATA, FRAG_DATA + 1, FRAG_DATA * 2] {
            let data = vec![0x7Fu8; len];
            let id = h.insert(&data).unwrap();
            assert_eq!(h.get(id).unwrap(), data, "len {len}");
        }
    }

    #[test]
    fn many_records_coexist() {
        let mut h = HeapFile::new();
        let ids: Vec<(RecordId, Vec<u8>)> = (0..500u32)
            .map(|i| {
                let data = vec![(i % 256) as u8; (i as usize * 37) % 2000 + 1];
                (h.insert(&data).unwrap(), data)
            })
            .collect();
        for (id, data) in ids {
            assert_eq!(h.get(id).unwrap(), data);
        }
    }

    #[test]
    fn delete_removes_all_fragments() {
        let mut h = HeapFile::new();
        let big = vec![0xEEu8; 40_000];
        let id = h.insert(&big).unwrap();
        h.delete(id).unwrap();
        assert!(matches!(h.get(id), Err(StorageError::RecordNotFound)));
        // All fragment slots are tombstoned.
        let live: usize = (0..h.page_count()).map(|i| h.pages[i].live_records()).sum();
        assert_eq!(live, 0);
    }

    #[test]
    fn dangling_id_is_not_found() {
        let h = HeapFile::new();
        assert!(matches!(
            h.get(RecordId { page: 3, slot: 0 }),
            Err(StorageError::RecordNotFound)
        ));
    }

    #[test]
    fn snapshot_round_trip() {
        let mut h = HeapFile::new();
        let small = h.insert(b"small").unwrap();
        let big_data = vec![9u8; 30_000];
        let big = h.insert(&big_data).unwrap();
        let bytes = h.to_bytes();
        let restored = HeapFile::from_bytes(&bytes).unwrap();
        assert_eq!(restored.get(small).unwrap(), b"small");
        assert_eq!(restored.get(big).unwrap(), big_data);
    }

    #[test]
    fn from_bytes_rejects_misaligned() {
        assert!(matches!(
            HeapFile::from_bytes(&[0u8; 100]),
            Err(StorageError::Corrupt { .. })
        ));
    }

    #[test]
    fn space_is_reused_after_delete_and_compact() {
        let mut h = HeapFile::new();
        let mut ids = Vec::new();
        for _ in 0..8 {
            ids.push(h.insert(&vec![1u8; 4000]).unwrap());
        }
        let pages_before = h.page_count();
        for id in ids {
            h.delete(id).unwrap();
        }
        h.compact_all();
        for _ in 0..8 {
            h.insert(&vec![2u8; 4000]).unwrap();
        }
        assert!(
            h.page_count() <= pages_before + 1,
            "compaction should allow space reuse: {} -> {}",
            pages_before,
            h.page_count()
        );
    }
}
