//! CRC-32 (ISO-HDLC / zlib polynomial 0xEDB88320), table-driven.
//!
//! Frames every WAL record and snapshot section so that torn writes and
//! bit rot are detected on replay instead of silently corrupting the
//! server's document store.

/// Build the 256-entry lookup table at compile time.
const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Streaming CRC-32 state.
#[derive(Clone, Copy, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Start a new checksum.
    #[must_use]
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Absorb bytes.
    pub fn update(&mut self, data: &[u8]) {
        for &b in data {
            let idx = ((self.state ^ u32::from(b)) & 0xFF) as usize;
            self.state = (self.state >> 8) ^ TABLE[idx];
        }
    }

    /// Final checksum value.
    #[must_use]
    pub fn finalize(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of `data`.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_value() {
        // The standard CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn known_strings() {
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"abc"), 0x3524_41C2);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 256) as u8).collect();
        let want = crc32(&data);
        let mut c = Crc32::new();
        for chunk in data.chunks(17) {
            c.update(chunk);
        }
        assert_eq!(c.finalize(), want);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = vec![0x5Au8; 64];
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), base, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
