//! The encrypted-document blob store used by the SSE server.
//!
//! Stores opaque blobs (`E_km(M_i)`) keyed by document id, exactly the
//! `(E_km(M_i), i)` tuples of the paper's `DataStorage`. The store never
//! interprets blob contents — that is the whole point of the scheme.
//!
//! Durability: every mutation is appended to a [`crate::wal::Wal`] before
//! being applied to the in-memory heap; [`DocStore::checkpoint`] folds the
//! log into an atomic snapshot (`write to temp + rename`) and resets the
//! log. [`DocStore::open`] recovers snapshot + log after a crash.

use crate::crc32::{crc32, Crc32};
use crate::error::{Result, StorageError};
use crate::heap::{HeapFile, RecordId};
use crate::vfs::{RealVfs, Vfs};
use crate::wal::Wal;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const SNAPSHOT_MAGIC: &[u8; 8] = b"SSESNAP1";
const OP_PUT: u8 = 0;
const OP_DELETE: u8 = 1;

/// Configuration for a [`DocStore`].
#[derive(Clone, Debug, Default)]
pub struct StoreOptions {
    /// fsync the WAL on every mutation (safest, slowest).
    pub sync_on_append: bool,
}

/// What [`DocStore::open`] had to do to bring the store back: evidence of
/// crash recovery, surfaced up to the serving layer's robustness counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Whether a snapshot file was loaded.
    pub snapshot_loaded: bool,
    /// WAL records replayed on top of the snapshot.
    pub wal_records_replayed: u64,
    /// Bytes of torn WAL tail truncated on open.
    pub torn_bytes_truncated: u64,
}

enum Backing {
    /// Durable: WAL + snapshot files live in a directory.
    Disk {
        wal: Wal,
        dir: PathBuf,
        vfs: Arc<dyn Vfs>,
    },
    /// Ephemeral: everything in memory (benchmarks, simulators).
    Memory,
}

/// Blob store keyed by document id.
pub struct DocStore {
    heap: HeapFile,
    index: BTreeMap<u64, RecordId>,
    backing: Backing,
    recovery: RecoveryReport,
}

impl DocStore {
    /// Purely in-memory store (no durability).
    #[must_use]
    pub fn in_memory() -> Self {
        DocStore {
            heap: HeapFile::new(),
            index: BTreeMap::new(),
            backing: Backing::Memory,
            recovery: RecoveryReport::default(),
        }
    }

    /// Open (or create) a durable store in `dir` on the real filesystem,
    /// recovering any existing snapshot and WAL.
    ///
    /// # Errors
    /// I/O errors, or [`StorageError::Corrupt`] for damaged files.
    pub fn open(dir: &Path, opts: StoreOptions) -> Result<Self> {
        Self::open_with_vfs(RealVfs::arc(), dir, opts)
    }

    /// [`DocStore::open`] over an explicit [`Vfs`] (fault injection runs
    /// the whole store through a [`crate::vfs::FaultVfs`]).
    ///
    /// # Errors
    /// I/O errors (including injected faults), or [`StorageError::Corrupt`]
    /// for damaged files.
    pub fn open_with_vfs(vfs: Arc<dyn Vfs>, dir: &Path, opts: StoreOptions) -> Result<Self> {
        vfs.create_dir_all(dir)?;
        let mut store = DocStore {
            heap: HeapFile::new(),
            index: BTreeMap::new(),
            backing: Backing::Memory, // placeholder while recovering
            recovery: RecoveryReport::default(),
        };
        // 1. Load the snapshot, if any.
        let snap_path = dir.join("store.snapshot");
        if vfs.exists(&snap_path) {
            store.load_snapshot(&vfs.read(&snap_path)?)?;
            store.recovery.snapshot_loaded = true;
        }
        // 2. Replay the WAL on top.
        let wal_path = dir.join("store.wal");
        for record in Wal::replay_with_vfs(vfs.as_ref(), &wal_path)? {
            store.apply_record(&record)?;
            store.recovery.wal_records_replayed += 1;
        }
        // 3. Open the WAL for appending (truncating any torn tail).
        let wal = Wal::open_with_vfs(vfs.clone(), &wal_path, opts.sync_on_append)?;
        store.recovery.torn_bytes_truncated = wal.torn_bytes_truncated();
        store.backing = Backing::Disk {
            wal,
            dir: dir.to_path_buf(),
            vfs,
        };
        Ok(store)
    }

    /// What recovery work the open performed (all-zero for in-memory
    /// stores and clean opens).
    #[must_use]
    pub fn recovery_report(&self) -> RecoveryReport {
        self.recovery
    }

    /// Number of stored documents.
    #[must_use]
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True iff the store holds no documents.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Total heap footprint in bytes (diagnostic).
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.heap.byte_size()
    }

    /// Store (or replace) the blob for `id`.
    ///
    /// # Errors
    /// I/O errors when durable.
    pub fn put(&mut self, id: u64, blob: &[u8]) -> Result<()> {
        if let Backing::Disk { wal, .. } = &mut self.backing {
            let mut rec = Vec::with_capacity(1 + 8 + 4 + blob.len());
            rec.push(OP_PUT);
            rec.extend_from_slice(&id.to_le_bytes());
            rec.extend_from_slice(&(blob.len() as u32).to_le_bytes());
            rec.extend_from_slice(blob);
            wal.append(&rec)?;
        }
        self.apply_put(id, blob)
    }

    /// Fetch the blob for `id`.
    ///
    /// # Errors
    /// [`StorageError::RecordNotFound`] when absent.
    pub fn get(&self, id: u64) -> Result<Vec<u8>> {
        let rid = self.index.get(&id).ok_or(StorageError::RecordNotFound)?;
        self.heap.get(*rid)
    }

    /// True iff a blob exists for `id`.
    #[must_use]
    pub fn contains(&self, id: u64) -> bool {
        self.index.contains_key(&id)
    }

    /// Remove the blob for `id`.
    ///
    /// # Errors
    /// [`StorageError::RecordNotFound`] when absent; I/O errors when durable.
    pub fn delete(&mut self, id: u64) -> Result<()> {
        if !self.index.contains_key(&id) {
            return Err(StorageError::RecordNotFound);
        }
        if let Backing::Disk { wal, .. } = &mut self.backing {
            let mut rec = Vec::with_capacity(9);
            rec.push(OP_DELETE);
            rec.extend_from_slice(&id.to_le_bytes());
            wal.append(&rec)?;
        }
        self.apply_delete(id)
    }

    /// Iterate stored ids in increasing order.
    pub fn ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.index.keys().copied()
    }

    /// Fetch many blobs (the "send back `{E(M_i) | i in I(w)}`" step of the
    /// paper's `Search`). Missing ids are skipped — the index may lag behind
    /// deletions, which is exactly the paper's honest-but-curious model.
    #[must_use]
    pub fn get_many(&self, ids: &[u64]) -> Vec<(u64, Vec<u8>)> {
        ids.iter()
            .filter_map(|&id| self.get(id).ok().map(|blob| (id, blob)))
            .collect()
    }

    fn apply_record(&mut self, record: &[u8]) -> Result<()> {
        match record.first() {
            Some(&OP_PUT) => {
                if record.len() < 13 {
                    return Err(StorageError::Corrupt {
                        what: "wal put record",
                        detail: format!("length {}", record.len()),
                    });
                }
                let id = u64::from_le_bytes(record[1..9].try_into().expect("8 bytes"));
                let len = u32::from_le_bytes(record[9..13].try_into().expect("4 bytes")) as usize;
                if record.len() != 13 + len {
                    return Err(StorageError::Corrupt {
                        what: "wal put record",
                        detail: format!("declared {len}, got {}", record.len() - 13),
                    });
                }
                self.apply_put(id, &record[13..])
            }
            Some(&OP_DELETE) => {
                if record.len() != 9 {
                    return Err(StorageError::Corrupt {
                        what: "wal delete record",
                        detail: format!("length {}", record.len()),
                    });
                }
                let id = u64::from_le_bytes(record[1..9].try_into().expect("8 bytes"));
                // Deleting a missing id during replay is fine (idempotence).
                let _ = self.apply_delete(id);
                Ok(())
            }
            _ => Err(StorageError::Corrupt {
                what: "wal record",
                detail: "unknown opcode".to_string(),
            }),
        }
    }

    fn apply_put(&mut self, id: u64, blob: &[u8]) -> Result<()> {
        if let Some(old) = self.index.remove(&id) {
            let _ = self.heap.delete(old);
        }
        let rid = self.heap.insert(blob)?;
        self.index.insert(id, rid);
        Ok(())
    }

    fn apply_delete(&mut self, id: u64) -> Result<()> {
        let rid = self.index.remove(&id).ok_or(StorageError::RecordNotFound)?;
        self.heap.delete(rid)
    }

    /// Fold the WAL into a fresh snapshot and reset the log. No-op for
    /// in-memory stores.
    ///
    /// # Errors
    /// I/O errors from the filesystem.
    pub fn checkpoint(&mut self) -> Result<()> {
        let Backing::Disk { dir, vfs, .. } = &self.backing else {
            return Ok(());
        };
        let dir = dir.clone();
        let vfs = vfs.clone();
        // Compact first so the snapshot does not persist tombstones.
        self.heap.compact_all();

        // Snapshot body: index entries, heap length, then the heap pages.
        // The heap is streamed page-by-page (never materialized twice), so
        // the CRC is computed incrementally over the same byte sequence.
        let mut meta = Vec::new();
        meta.extend_from_slice(&(self.index.len() as u64).to_le_bytes());
        for (id, rid) in &self.index {
            meta.extend_from_slice(&id.to_le_bytes());
            meta.extend_from_slice(&rid.page.to_le_bytes());
            meta.extend_from_slice(&rid.slot.to_le_bytes());
        }
        meta.extend_from_slice(&(self.heap.byte_size() as u64).to_le_bytes());
        let mut crc = Crc32::new();
        crc.update(&meta);
        for page in self.heap.page_images() {
            crc.update(page);
        }

        let tmp_path = dir.join("store.snapshot.tmp");
        let final_path = dir.join("store.snapshot");
        {
            let mut f = vfs.create(&tmp_path)?;
            let mut header = Vec::with_capacity(12);
            header.extend_from_slice(SNAPSHOT_MAGIC);
            header.extend_from_slice(&crc.finalize().to_le_bytes());
            f.write_all(&header)?;
            f.write_all(&meta)?;
            self.heap.write_to(f.as_mut())?;
            f.sync_data()?;
        }
        vfs.rename(&tmp_path, &final_path)?;
        // fsync the directory entry: without this the rename itself can be
        // lost on crash, resurrecting the old snapshot *after* the WAL
        // below has been reset — silent data loss.
        vfs.sync_dir(&dir)?;

        if let Backing::Disk { wal, .. } = &mut self.backing {
            wal.reset()?;
        }
        Ok(())
    }

    fn load_snapshot(&mut self, bytes: &[u8]) -> Result<()> {
        if bytes.len() < 12 || &bytes[..8] != SNAPSHOT_MAGIC {
            return Err(StorageError::Corrupt {
                what: "snapshot",
                detail: "bad magic or truncated header".to_string(),
            });
        }
        let stored_crc = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        let body = &bytes[12..];
        if crc32(body) != stored_crc {
            return Err(StorageError::Corrupt {
                what: "snapshot",
                detail: "checksum mismatch".to_string(),
            });
        }
        let mut pos = 0usize;
        let read_u64 = |b: &[u8], p: &mut usize| -> Result<u64> {
            if *p + 8 > b.len() {
                return Err(StorageError::Corrupt {
                    what: "snapshot",
                    detail: "truncated".to_string(),
                });
            }
            let v = u64::from_le_bytes(b[*p..*p + 8].try_into().expect("8 bytes"));
            *p += 8;
            Ok(v)
        };
        let n = read_u64(body, &mut pos)? as usize;
        let mut index = BTreeMap::new();
        for _ in 0..n {
            let id = read_u64(body, &mut pos)?;
            if pos + 6 > body.len() {
                return Err(StorageError::Corrupt {
                    what: "snapshot index",
                    detail: "truncated entry".to_string(),
                });
            }
            let page = u32::from_le_bytes(body[pos..pos + 4].try_into().expect("4 bytes"));
            let slot = u16::from_le_bytes(body[pos + 4..pos + 6].try_into().expect("2 bytes"));
            pos += 6;
            index.insert(id, RecordId { page, slot });
        }
        let heap_len = read_u64(body, &mut pos)? as usize;
        if pos + heap_len != body.len() {
            return Err(StorageError::Corrupt {
                what: "snapshot heap",
                detail: format!("declared {heap_len}, available {}", body.len() - pos),
            });
        }
        self.heap = HeapFile::from_bytes(&body[pos..])?;
        self.index = index;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "sse-store-test-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    #[test]
    fn in_memory_crud() {
        let mut s = DocStore::in_memory();
        assert!(s.is_empty());
        s.put(1, b"alpha").unwrap();
        s.put(2, b"beta").unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(1).unwrap(), b"alpha");
        s.put(1, b"alpha-v2").unwrap();
        assert_eq!(s.get(1).unwrap(), b"alpha-v2");
        assert_eq!(s.len(), 2);
        s.delete(2).unwrap();
        assert!(matches!(s.get(2), Err(StorageError::RecordNotFound)));
        assert!(matches!(s.delete(2), Err(StorageError::RecordNotFound)));
    }

    #[test]
    fn get_many_skips_missing() {
        let mut s = DocStore::in_memory();
        s.put(1, b"a").unwrap();
        s.put(3, b"c").unwrap();
        let got = s.get_many(&[1, 2, 3]);
        assert_eq!(got, vec![(1, b"a".to_vec()), (3, b"c".to_vec())]);
    }

    #[test]
    fn durable_recovery_from_wal_only() {
        let dir = temp_dir("wal-only");
        {
            let mut s = DocStore::open(&dir, StoreOptions::default()).unwrap();
            s.put(10, b"ten").unwrap();
            s.put(20, b"twenty").unwrap();
            s.delete(10).unwrap();
            // No checkpoint: recovery must come entirely from the WAL.
        }
        let s = DocStore::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(20).unwrap(), b"twenty");
        assert!(!s.contains(10));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durable_recovery_from_snapshot_plus_wal() {
        let dir = temp_dir("snap-wal");
        {
            let mut s = DocStore::open(&dir, StoreOptions::default()).unwrap();
            for i in 0..50u64 {
                s.put(i, format!("doc-{i}").as_bytes()).unwrap();
            }
            s.checkpoint().unwrap();
            // Post-checkpoint mutations land in the fresh WAL.
            s.put(100, b"after checkpoint").unwrap();
            s.delete(0).unwrap();
        }
        let s = DocStore::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(s.len(), 50); // 50 - 1 deleted + 1 added
        assert_eq!(s.get(100).unwrap(), b"after checkpoint");
        assert_eq!(s.get(49).unwrap(), b"doc-49");
        assert!(!s.contains(0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_resets_wal() {
        let dir = temp_dir("ckpt");
        let mut s = DocStore::open(&dir, StoreOptions::default()).unwrap();
        s.put(1, &vec![7u8; 10_000]).unwrap();
        let wal_size_before = std::fs::metadata(dir.join("store.wal")).unwrap().len();
        assert!(wal_size_before > 10_000);
        s.checkpoint().unwrap();
        let wal_size_after = std::fs::metadata(dir.join("store.wal")).unwrap().len();
        assert_eq!(wal_size_after, 0);
        assert_eq!(s.get(1).unwrap(), vec![7u8; 10_000]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_snapshot_is_rejected() {
        let dir = temp_dir("corrupt-snap");
        {
            let mut s = DocStore::open(&dir, StoreOptions::default()).unwrap();
            s.put(1, b"data").unwrap();
            s.checkpoint().unwrap();
        }
        // Flip a byte in the snapshot body.
        let snap = dir.join("store.snapshot");
        let mut bytes = std::fs::read(&snap).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&snap, &bytes).unwrap();
        assert!(matches!(
            DocStore::open(&dir, StoreOptions::default()),
            Err(StorageError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn large_blobs_survive_recovery() {
        let dir = temp_dir("large");
        let big: Vec<u8> = (0..60_000u32).map(|i| (i % 250) as u8).collect();
        {
            let mut s = DocStore::open(&dir, StoreOptions::default()).unwrap();
            s.put(7, &big).unwrap();
            s.checkpoint().unwrap();
        }
        let s = DocStore::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(s.get(7).unwrap(), big);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ids_iterate_sorted() {
        let mut s = DocStore::in_memory();
        for id in [5u64, 1, 9, 3] {
            s.put(id, b"x").unwrap();
        }
        assert_eq!(s.ids().collect::<Vec<_>>(), vec![1, 3, 5, 9]);
    }

    #[test]
    fn overwrite_reclaims_old_record() {
        let mut s = DocStore::in_memory();
        s.put(1, &vec![1u8; 4000]).unwrap();
        for _ in 0..100 {
            s.put(1, &vec![2u8; 4000]).unwrap();
        }
        // Tombstoned space should keep the heap from exploding: 100 puts of
        // 4 KB with reuse-after-compaction disabled still bounds pages by
        // inserts, but the index must stay size 1.
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(1).unwrap(), vec![2u8; 4000]);
    }
}
