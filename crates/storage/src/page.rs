//! Slotted pages.
//!
//! Classic database page layout: a fixed-size byte array with a header,
//! a slot directory growing from the front and record payloads growing from
//! the back. Records are addressed by slot index so payloads can move
//! during compaction without changing record ids.
//!
//! Layout:
//! ```text
//! [n_slots: u16][free_end: u16][slot 0: (off u16, len u16)]...  -> grows right
//!                                  ... free space ...
//!                       <- grows left  [payload k]...[payload 1][payload 0]
//! ```
//! A deleted slot has `off == TOMBSTONE`. `len == 0` is a valid empty record.

use crate::error::{Result, StorageError};

/// Page size in bytes (8 KiB, a common database default).
pub const PAGE_SIZE: usize = 8192;
/// Header: n_slots (u16) + free_end (u16).
const HEADER: usize = 4;
/// Bytes per slot-directory entry.
const SLOT: usize = 4;
/// Offset marker for deleted slots.
const TOMBSTONE: u16 = u16::MAX;

/// Largest payload a single page can hold (one slot, empty page).
pub const MAX_IN_PAGE: usize = PAGE_SIZE - HEADER - SLOT;

/// One slotted page.
#[derive(Clone)]
pub struct Page {
    buf: [u8; PAGE_SIZE],
}

impl Default for Page {
    fn default() -> Self {
        Self::new()
    }
}

impl Page {
    /// A fresh empty page.
    #[must_use]
    pub fn new() -> Self {
        let mut p = Page {
            buf: [0u8; PAGE_SIZE],
        };
        p.set_n_slots(0);
        p.set_free_end(PAGE_SIZE as u16);
        p
    }

    /// Reconstruct a page from raw bytes (e.g. from a snapshot).
    ///
    /// # Errors
    /// [`StorageError::Corrupt`] if the header or slot directory is
    /// structurally invalid.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        if bytes.len() != PAGE_SIZE {
            return Err(StorageError::Corrupt {
                what: "page",
                detail: format!("expected {PAGE_SIZE} bytes, got {}", bytes.len()),
            });
        }
        let mut p = Page {
            buf: [0u8; PAGE_SIZE],
        };
        p.buf.copy_from_slice(bytes);
        p.validate()?;
        Ok(p)
    }

    /// Raw byte view for persistence.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.buf
    }

    fn n_slots(&self) -> u16 {
        u16::from_le_bytes([self.buf[0], self.buf[1]])
    }

    fn set_n_slots(&mut self, v: u16) {
        self.buf[0..2].copy_from_slice(&v.to_le_bytes());
    }

    fn free_end(&self) -> u16 {
        u16::from_le_bytes([self.buf[2], self.buf[3]])
    }

    fn set_free_end(&mut self, v: u16) {
        self.buf[2..4].copy_from_slice(&v.to_le_bytes());
    }

    fn slot(&self, idx: u16) -> (u16, u16) {
        let base = HEADER + SLOT * idx as usize;
        let off = u16::from_le_bytes([self.buf[base], self.buf[base + 1]]);
        let len = u16::from_le_bytes([self.buf[base + 2], self.buf[base + 3]]);
        (off, len)
    }

    fn set_slot(&mut self, idx: u16, off: u16, len: u16) {
        let base = HEADER + SLOT * idx as usize;
        self.buf[base..base + 2].copy_from_slice(&off.to_le_bytes());
        self.buf[base + 2..base + 4].copy_from_slice(&len.to_le_bytes());
    }

    fn validate(&self) -> Result<()> {
        let n = self.n_slots() as usize;
        let dir_end = HEADER + SLOT * n;
        let free_end = self.free_end() as usize;
        if dir_end > PAGE_SIZE || free_end > PAGE_SIZE || free_end < dir_end {
            return Err(StorageError::Corrupt {
                what: "page header",
                detail: format!("n_slots={n}, free_end={free_end}"),
            });
        }
        for i in 0..n {
            let (off, len) = self.slot(i as u16);
            if off == TOMBSTONE {
                continue;
            }
            let end = off as usize + len as usize;
            if (off as usize) < free_end || end > PAGE_SIZE {
                return Err(StorageError::Corrupt {
                    what: "page slot",
                    detail: format!("slot {i}: off={off}, len={len}"),
                });
            }
        }
        Ok(())
    }

    /// Free bytes available for one more record (including its slot entry).
    #[must_use]
    pub fn free_space(&self) -> usize {
        let dir_end = HEADER + SLOT * self.n_slots() as usize;
        let free = self.free_end() as usize - dir_end;
        free.saturating_sub(SLOT)
    }

    /// Number of live (non-tombstoned) records.
    #[must_use]
    pub fn live_records(&self) -> usize {
        (0..self.n_slots())
            .filter(|&i| self.slot(i).0 != TOMBSTONE)
            .count()
    }

    /// Insert a record, returning its slot index.
    ///
    /// # Errors
    /// [`StorageError::RecordTooLarge`] when the payload does not fit in the
    /// remaining free space.
    pub fn insert(&mut self, payload: &[u8]) -> Result<u16> {
        if payload.len() > self.free_space() {
            return Err(StorageError::RecordTooLarge {
                size: payload.len(),
                max: self.free_space(),
            });
        }
        let n = self.n_slots();
        let new_end = self.free_end() as usize - payload.len();
        self.buf[new_end..new_end + payload.len()].copy_from_slice(payload);
        self.set_slot(n, new_end as u16, payload.len() as u16);
        self.set_n_slots(n + 1);
        self.set_free_end(new_end as u16);
        Ok(n)
    }

    /// Read the record in `slot`.
    ///
    /// # Errors
    /// [`StorageError::RecordNotFound`] for out-of-range or deleted slots.
    pub fn get(&self, slot: u16) -> Result<&[u8]> {
        if slot >= self.n_slots() {
            return Err(StorageError::RecordNotFound);
        }
        let (off, len) = self.slot(slot);
        if off == TOMBSTONE {
            return Err(StorageError::RecordNotFound);
        }
        Ok(&self.buf[off as usize..off as usize + len as usize])
    }

    /// Tombstone the record in `slot`. The space is reclaimed by
    /// [`Page::compact`], not immediately.
    ///
    /// # Errors
    /// [`StorageError::RecordNotFound`] for invalid or already-deleted slots.
    pub fn delete(&mut self, slot: u16) -> Result<()> {
        if slot >= self.n_slots() {
            return Err(StorageError::RecordNotFound);
        }
        let (off, _) = self.slot(slot);
        if off == TOMBSTONE {
            return Err(StorageError::RecordNotFound);
        }
        self.set_slot(slot, TOMBSTONE, 0);
        Ok(())
    }

    /// Compact payloads to the end of the page, squeezing out holes left by
    /// deletions. Slot indices are preserved.
    pub fn compact(&mut self) {
        let n = self.n_slots();
        // Collect live records (slot, payload), then rewrite back-to-front.
        let live: Vec<(u16, Vec<u8>)> = (0..n)
            .filter_map(|i| {
                let (off, len) = self.slot(i);
                if off == TOMBSTONE {
                    None
                } else {
                    Some((
                        i,
                        self.buf[off as usize..off as usize + len as usize].to_vec(),
                    ))
                }
            })
            .collect();
        let mut end = PAGE_SIZE;
        for (slot, payload) in &live {
            end -= payload.len();
            self.buf[end..end + payload.len()].copy_from_slice(payload);
            self.set_slot(*slot, end as u16, payload.len() as u16);
        }
        self.set_free_end(end as u16);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut p = Page::new();
        let s0 = p.insert(b"hello").unwrap();
        let s1 = p.insert(b"world!").unwrap();
        assert_eq!(p.get(s0).unwrap(), b"hello");
        assert_eq!(p.get(s1).unwrap(), b"world!");
        assert_eq!(p.live_records(), 2);
    }

    #[test]
    fn empty_records_are_valid() {
        let mut p = Page::new();
        let s = p.insert(b"").unwrap();
        assert_eq!(p.get(s).unwrap(), b"");
    }

    #[test]
    fn fills_up_and_rejects_overflow() {
        let mut p = Page::new();
        let max = MAX_IN_PAGE;
        assert!(p.insert(&vec![1u8; max + 1]).is_err());
        p.insert(&vec![1u8; max]).unwrap();
        assert!(matches!(
            p.insert(b"x"),
            Err(StorageError::RecordTooLarge { .. })
        ));
    }

    #[test]
    fn many_small_records() {
        let mut p = Page::new();
        let mut slots = Vec::new();
        let mut i = 0u32;
        while p.free_space() >= 16 {
            slots.push((p.insert(&i.to_le_bytes()).unwrap(), i));
            i += 1;
        }
        assert!(
            slots.len() > 500,
            "expected many records, got {}",
            slots.len()
        );
        for (slot, val) in slots {
            assert_eq!(p.get(slot).unwrap(), val.to_le_bytes());
        }
    }

    #[test]
    fn delete_then_get_fails() {
        let mut p = Page::new();
        let s = p.insert(b"doomed").unwrap();
        p.delete(s).unwrap();
        assert!(matches!(p.get(s), Err(StorageError::RecordNotFound)));
        assert!(matches!(p.delete(s), Err(StorageError::RecordNotFound)));
        assert_eq!(p.live_records(), 0);
    }

    #[test]
    fn get_out_of_range_fails() {
        let p = Page::new();
        assert!(matches!(p.get(0), Err(StorageError::RecordNotFound)));
    }

    #[test]
    fn compaction_reclaims_space_and_preserves_slots() {
        let mut p = Page::new();
        let a = p.insert(&vec![0xAAu8; 2000]).unwrap();
        let b = p.insert(&vec![0xBBu8; 2000]).unwrap();
        let c = p.insert(&vec![0xCCu8; 2000]).unwrap();
        let before = p.free_space();
        p.delete(b).unwrap();
        p.compact();
        assert!(p.free_space() >= before + 2000, "space not reclaimed");
        assert_eq!(p.get(a).unwrap(), vec![0xAAu8; 2000]);
        assert_eq!(p.get(c).unwrap(), vec![0xCCu8; 2000]);
        assert!(p.get(b).is_err());
        // New insert fits in the reclaimed space.
        let d = p.insert(&vec![0xDDu8; 2000]).unwrap();
        assert_eq!(p.get(d).unwrap(), vec![0xDDu8; 2000]);
    }

    #[test]
    fn bytes_round_trip() {
        let mut p = Page::new();
        let s = p.insert(b"persist me").unwrap();
        let restored = Page::from_bytes(p.as_bytes()).unwrap();
        assert_eq!(restored.get(s).unwrap(), b"persist me");
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(Page::from_bytes(&[0u8; 16]).is_err());
        let mut bad = [0u8; PAGE_SIZE];
        // n_slots = huge
        bad[0] = 0xFF;
        bad[1] = 0xFF;
        assert!(matches!(
            Page::from_bytes(&bad),
            Err(StorageError::Corrupt { .. })
        ));
    }

    #[test]
    fn from_bytes_rejects_overlapping_slot() {
        let mut p = Page::new();
        p.insert(b"abc").unwrap();
        let mut bytes = *p.as_bytes();
        // Point slot 0 beyond the page end.
        let base = HEADER;
        bytes[base..base + 2].copy_from_slice(&((PAGE_SIZE - 1) as u16).to_le_bytes());
        bytes[base + 2..base + 4].copy_from_slice(&10u16.to_le_bytes());
        assert!(matches!(
            Page::from_bytes(&bytes),
            Err(StorageError::Corrupt { .. })
        ));
    }
}
