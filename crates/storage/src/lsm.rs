//! The log-structured (`lsm`) storage backend.
//!
//! A deliberately different engine from the B+-tree/heap pair, tuned for
//! the update-heavy GP workload: writes go to an in-memory memtable (made
//! durable by the caller's WAL — the group-commit machinery is the write
//! path), and every flush appends one immutable **sorted run** holding only
//! the keys that changed, instead of rewriting the whole index. Reads check
//! the memtable, then runs newest-first, skipping runs whose key range or
//! per-run Bloom filter ([`sse_index::bloom::BloomFilter`]) proves absence.
//! When the run count passes [`LSM_MAX_RUNS`], a full tag-range merge
//! compacts every run into one, dropping tombstones (only the bottom-most
//! run may drop them — the compaction invariant).
//!
//! Crash safety: a run file is written with a single `write_all` + fsync
//! and is *referenced only by the manifest*, which commits via temp file +
//! rename + parent-dir fsync. A crash at any point leaves either the old
//! manifest (new run is unreferenced garbage, overwritten on generation
//! reuse) or the new one — never a half-state. File formats are documented
//! in DESIGN.md §4g.

use crate::crc32::crc32;
use crate::error::{Result, StorageError};
use crate::store::{RecoveryReport, StoreOptions};
use crate::vfs::Vfs;
use crate::wal::Wal;
use sse_index::bloom::BloomFilter;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const RUN_MAGIC: &[u8; 8] = b"SSERUN1\0";
const MANIFEST_MAGIC: &[u8; 8] = b"SSELSMM1";
/// Value-length sentinel marking a tombstone entry in a run index.
const TOMBSTONE: u32 = u32::MAX;
/// Bloom false-positive design rate per run.
const BLOOM_RATE: f64 = 0.01;

/// Compact when a flush leaves more than this many live runs.
pub const LSM_MAX_RUNS: usize = 6;

/// Read-path counters, atomics so `get` can count through `&self`.
#[derive(Default)]
struct CounterCells {
    runs_flushed: AtomicU64,
    compactions: AtomicU64,
    run_reads: AtomicU64,
    bloom_checks: AtomicU64,
    bloom_skips: AtomicU64,
    bloom_false_positives: AtomicU64,
}

/// One entry of a run's key index.
struct RunEntry {
    key: Vec<u8>,
    /// Absolute file offset of the value bytes (0 for tombstones).
    voff: u64,
    /// Value length, or [`TOMBSTONE`].
    vlen: u32,
    /// CRC-32 of the value bytes (0 for tombstones).
    vcrc: u32,
}

impl RunEntry {
    fn is_tombstone(&self) -> bool {
        self.vlen == TOMBSTONE
    }
}

/// In-memory metadata of one immutable sorted run file.
struct RunMeta {
    gen: u64,
    path: PathBuf,
    file_bytes: u64,
    bloom: BloomFilter,
    /// Key-sorted index (the file stores it in this order).
    index: Vec<RunEntry>,
}

impl RunMeta {
    /// Whether `key` can possibly live in this run's key range.
    fn covers(&self, key: &[u8]) -> bool {
        match (self.index.first(), self.index.last()) {
            (Some(lo), Some(hi)) => key >= lo.key.as_slice() && key <= hi.key.as_slice(),
            _ => false,
        }
    }

    fn find(&self, key: &[u8]) -> Option<&RunEntry> {
        self.index
            .binary_search_by(|e| e.key.as_slice().cmp(key))
            .ok()
            .map(|i| &self.index[i])
    }
}

/// The generic log-structured core: a memtable over immutable sorted runs,
/// keyed by arbitrary byte strings. [`LsmDocStore`] and [`LsmKeywordMap`]
/// are thin typed wrappers.
pub struct LsmCore {
    vfs: Arc<dyn Vfs>,
    dir: PathBuf,
    prefix: String,
    /// `None` value = tombstone.
    memtable: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    /// Oldest first.
    runs: Vec<RunMeta>,
    next_gen: u64,
    last_seq: u64,
    user_meta: Vec<u8>,
    /// Set by [`LsmCore::clear`]: the next flush starts from zero runs.
    drop_runs: bool,
    manifest_loaded: bool,
    counters: CounterCells,
}

impl LsmCore {
    /// Open (or create) the run set `dir/<prefix>*` from its manifest.
    ///
    /// # Errors
    /// I/O errors, or [`StorageError::Corrupt`] for damaged files.
    pub fn open(vfs: Arc<dyn Vfs>, dir: &Path, prefix: &str) -> Result<Self> {
        vfs.create_dir_all(dir)?;
        let mut core = LsmCore {
            vfs,
            dir: dir.to_path_buf(),
            prefix: prefix.to_string(),
            memtable: BTreeMap::new(),
            runs: Vec::new(),
            next_gen: 1,
            last_seq: 0,
            user_meta: Vec::new(),
            drop_runs: false,
            manifest_loaded: false,
            counters: CounterCells::default(),
        };
        let manifest = core.manifest_path();
        if core.vfs.exists(&manifest) {
            let bytes = core.vfs.read(&manifest)?;
            let gens = core.load_manifest(&bytes)?;
            for gen in gens {
                let meta = core.load_run(gen)?;
                core.runs.push(meta);
            }
            core.manifest_loaded = true;
        }
        Ok(core)
    }

    fn manifest_path(&self) -> PathBuf {
        self.dir.join(format!("{}.manifest", self.prefix))
    }

    fn run_path(&self, gen: u64) -> PathBuf {
        self.dir.join(format!("{}-{gen:08}.run", self.prefix))
    }

    /// Whether open found an existing manifest (recovery reporting).
    #[must_use]
    pub fn recovered_manifest(&self) -> bool {
        self.manifest_loaded
    }

    /// The `applied_seq` recorded by the last flush.
    #[must_use]
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// The caller meta blob recorded by the last flush.
    #[must_use]
    pub fn user_meta(&self) -> &[u8] {
        &self.user_meta
    }

    /// Number of live runs.
    #[must_use]
    pub fn runs_live(&self) -> usize {
        self.runs.len()
    }

    /// Buffer an insert/replace.
    pub fn put(&mut self, key: Vec<u8>, value: Vec<u8>) {
        self.memtable.insert(key, Some(value));
    }

    /// Buffer a delete (tombstone).
    pub fn delete(&mut self, key: Vec<u8>) {
        self.memtable.insert(key, None);
    }

    /// Drop everything: memtable now, runs at the next flush.
    pub fn clear(&mut self) {
        self.memtable.clear();
        self.drop_runs = true;
    }

    /// Point lookup: memtable, then runs newest-first with range + bloom
    /// gating.
    ///
    /// # Errors
    /// I/O errors, or [`StorageError::Corrupt`] for damaged values.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        if let Some(v) = self.memtable.get(key) {
            return Ok(v.clone());
        }
        if self.drop_runs || self.runs.is_empty() {
            return Ok(None);
        }
        self.counters.run_reads.fetch_add(1, Ordering::Relaxed);
        for run in self.runs.iter().rev() {
            if !run.covers(key) {
                continue;
            }
            self.counters.bloom_checks.fetch_add(1, Ordering::Relaxed);
            if !run.bloom.contains(key) {
                self.counters.bloom_skips.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            match run.find(key) {
                Some(e) if e.is_tombstone() => return Ok(None),
                Some(e) => return self.read_value(run, e).map(Some),
                None => {
                    self.counters
                        .bloom_false_positives
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        Ok(None)
    }

    fn read_value(&self, run: &RunMeta, e: &RunEntry) -> Result<Vec<u8>> {
        let bytes = self.vfs.read_range(&run.path, e.voff, e.vlen as usize)?;
        if crc32(&bytes) != e.vcrc {
            return Err(StorageError::Corrupt {
                what: "lsm run value",
                detail: format!("checksum mismatch in {}", run.path.display()),
            });
        }
        Ok(bytes)
    }

    /// Every live `(key, value)` pair, key-sorted; tombstones resolved.
    ///
    /// # Errors
    /// I/O errors, or [`StorageError::Corrupt`] for damaged runs.
    pub fn iter_all(&self) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut map = if self.drop_runs {
            BTreeMap::new()
        } else {
            self.merge_runs()?
        };
        for (k, v) in &self.memtable {
            match v {
                Some(val) => {
                    map.insert(k.clone(), val.clone());
                }
                None => {
                    map.remove(k);
                }
            }
        }
        Ok(map.into_iter().collect())
    }

    /// The set of live keys (no value reads — run indexes only).
    #[must_use]
    pub fn live_keys(&self) -> BTreeSet<Vec<u8>> {
        let mut keys = BTreeSet::new();
        if !self.drop_runs {
            for run in &self.runs {
                for e in &run.index {
                    if e.is_tombstone() {
                        keys.remove(&e.key);
                    } else {
                        keys.insert(e.key.clone());
                    }
                }
            }
        }
        for (k, v) in &self.memtable {
            if v.is_some() {
                keys.insert(k.clone());
            } else {
                keys.remove(k);
            }
        }
        keys
    }

    /// On-disk + memtable footprint in bytes.
    #[must_use]
    pub fn storage_bytes(&self) -> usize {
        let runs: u64 = self.runs.iter().map(|r| r.file_bytes).sum();
        let mem: usize = self
            .memtable
            .iter()
            .map(|(k, v)| k.len() + v.as_ref().map_or(0, Vec::len))
            .sum();
        runs as usize + mem
    }

    /// Snapshot of the engine counters.
    #[must_use]
    pub fn counters(&self) -> crate::backend::BackendCounters {
        let c = &self.counters;
        crate::backend::BackendCounters {
            runs_flushed: c.runs_flushed.load(Ordering::Relaxed),
            runs_live: self.runs.len() as u64,
            compactions: c.compactions.load(Ordering::Relaxed),
            run_reads: c.run_reads.load(Ordering::Relaxed),
            bloom_checks: c.bloom_checks.load(Ordering::Relaxed),
            bloom_skips: c.bloom_skips.load(Ordering::Relaxed),
            bloom_false_positives: c.bloom_false_positives.load(Ordering::Relaxed),
        }
    }

    /// Integrity scrub: re-read every live run file from disk and verify
    /// its magic, index checksum, and **every** value checksum against the
    /// manifest's view. Returns the number of runs verified. This is the
    /// background-scrub entry point — callers must hold whatever lock
    /// guards this engine, since a concurrent flush/compaction swaps run
    /// files.
    ///
    /// # Errors
    /// [`StorageError::Corrupt`] on any mismatch (confirmed corruption —
    /// the run was fully written and synced when the manifest committed);
    /// I/O errors from the re-reads.
    pub fn verify_runs(&self) -> Result<u64> {
        for run in &self.runs {
            // Reload the header + index exactly as open would...
            let reloaded = self.load_run(run.gen)?;
            // ...then check every value body against its recorded CRC.
            for e in &reloaded.index {
                if e.is_tombstone() {
                    continue;
                }
                let bytes = self.vfs.read_range(&run.path, e.voff, e.vlen as usize)?;
                if crc32(&bytes) != e.vcrc {
                    return Err(StorageError::Corrupt {
                        what: "lsm run",
                        detail: format!("scrub: value checksum mismatch in {}", run.path.display()),
                    });
                }
            }
        }
        Ok(self.runs.len() as u64)
    }

    /// Durability point: persist the memtable as a new sorted run, commit
    /// the manifest (recording `applied_seq` + `meta`), garbage-collect
    /// dropped runs and compact if the run count passed [`LSM_MAX_RUNS`].
    ///
    /// # Errors
    /// I/O errors.
    pub fn flush(&mut self, applied_seq: u64, meta: &[u8]) -> Result<()> {
        // Stage the new run and commit the manifest BEFORE mutating any
        // in-memory state: callers treat a failed checkpoint as retryable,
        // so after an error every buffered entry must still be served from
        // the memtable and the old runs must stay live.
        let staged = if self.memtable.is_empty() {
            None
        } else {
            let entries = std::mem::take(&mut self.memtable);
            match self.write_run(&entries) {
                Ok(run) => Some((entries, run)),
                Err(e) => {
                    self.memtable = entries;
                    return Err(e);
                }
            }
        };
        let mut gens: Vec<u64> = if self.drop_runs {
            Vec::new()
        } else {
            self.runs.iter().map(|r| r.gen).collect()
        };
        if let Some((_, run)) = &staged {
            gens.push(run.gen);
        }
        if let Err(e) = self.write_manifest(&gens, applied_seq, meta) {
            // Un-stage: the run file is unreferenced garbage (overwritten
            // on generation reuse if the unlink also fails) and the
            // entries go back into the memtable, so nothing acked is lost.
            if let Some((entries, run)) = staged {
                let _ = self.vfs.remove_file(&run.path);
                self.memtable = entries;
            }
            return Err(e);
        }
        // Manifest committed — apply the new state in memory.
        let dropped: Vec<RunMeta> = if self.drop_runs {
            std::mem::take(&mut self.runs)
        } else {
            Vec::new()
        };
        if let Some((_, run)) = staged {
            self.runs.push(run);
            self.counters.runs_flushed.fetch_add(1, Ordering::Relaxed);
        }
        self.last_seq = applied_seq;
        self.user_meta = meta.to_vec();
        self.drop_runs = false;
        for run in dropped {
            // Post-commit GC: a crash here leaves unreferenced files that
            // are overwritten when their generation is reused.
            let _ = self.vfs.remove_file(&run.path);
        }
        if self.runs.len() > LSM_MAX_RUNS {
            self.compact()?;
        }
        Ok(())
    }

    /// Full tag-range merge: every run folds into one, tombstones dropped
    /// (safe because the output is the bottom-most run).
    fn compact(&mut self) -> Result<()> {
        let merged = self.merge_runs()?;
        // Same staging discipline as [`LsmCore::flush`]: the old run list
        // is swapped out only after the merged run and the manifest that
        // references it have both committed, so a failed compaction leaves
        // every pre-compaction run live, on disk and in memory.
        let new_run = if merged.is_empty() {
            None
        } else {
            let entries: BTreeMap<Vec<u8>, Option<Vec<u8>>> =
                merged.into_iter().map(|(k, v)| (k, Some(v))).collect();
            Some(self.write_run(&entries)?)
        };
        let gens: Vec<u64> = new_run.iter().map(|r| r.gen).collect();
        if let Err(e) = self.write_manifest(&gens, self.last_seq, &self.user_meta) {
            if let Some(run) = new_run {
                let _ = self.vfs.remove_file(&run.path);
            }
            return Err(e);
        }
        let old: Vec<RunMeta> = std::mem::take(&mut self.runs);
        if let Some(run) = new_run {
            self.runs.push(run);
            self.counters.runs_flushed.fetch_add(1, Ordering::Relaxed);
        }
        for run in old {
            let _ = self.vfs.remove_file(&run.path);
        }
        self.counters.compactions.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Merged view of the runs only (no memtable), oldest to newest.
    fn merge_runs(&self) -> Result<BTreeMap<Vec<u8>, Vec<u8>>> {
        let mut map = BTreeMap::new();
        for run in &self.runs {
            let bytes = self.vfs.read(&run.path)?;
            for e in &run.index {
                if e.is_tombstone() {
                    map.remove(&e.key);
                    continue;
                }
                let start = e.voff as usize;
                let end = start + e.vlen as usize;
                if end > bytes.len() {
                    return Err(StorageError::Corrupt {
                        what: "lsm run",
                        detail: format!("value past end of {}", run.path.display()),
                    });
                }
                let value = &bytes[start..end];
                if crc32(value) != e.vcrc {
                    return Err(StorageError::Corrupt {
                        what: "lsm run value",
                        detail: format!("checksum mismatch in {}", run.path.display()),
                    });
                }
                map.insert(e.key.clone(), value.to_vec());
            }
        }
        Ok(map)
    }

    /// Serialize `entries` as run file generation `next_gen` (one
    /// `write_all` + fsync; unreferenced until the manifest commits).
    fn write_run(&mut self, entries: &BTreeMap<Vec<u8>, Option<Vec<u8>>>) -> Result<RunMeta> {
        let gen = self.next_gen;
        self.next_gen += 1;
        let mut bloom = BloomFilter::with_rate(entries.len(), BLOOM_RATE);
        for key in entries.keys() {
            bloom.insert(key);
        }
        // Index size is deterministic, so value offsets can be computed
        // before serialization.
        let bloom_bits = bloom.bit_bytes();
        let index_len: usize = 4  // entry count
            + 4 + 4 + 4 + bloom_bits.len() // bloom: m_bits, k, bits_len, bits
            + entries
                .keys()
                .map(|k| 2 + k.len() + 4 + 8 + 4)
                .sum::<usize>();
        let values_base = 16 + index_len as u64;

        let mut index = Vec::with_capacity(index_len);
        index.extend_from_slice(&(entries.len() as u32).to_le_bytes());
        index.extend_from_slice(&(bloom.m_bits() as u32).to_le_bytes());
        index.extend_from_slice(&bloom.k_hashes().to_le_bytes());
        index.extend_from_slice(&(bloom_bits.len() as u32).to_le_bytes());
        index.extend_from_slice(bloom_bits);

        let mut meta_entries = Vec::with_capacity(entries.len());
        let mut values = Vec::new();
        let mut voff = values_base;
        for (key, value) in entries {
            let len = u16::try_from(key.len()).map_err(|_| StorageError::RecordTooLarge {
                size: key.len(),
                max: usize::from(u16::MAX),
            })?;
            index.extend_from_slice(&len.to_le_bytes());
            index.extend_from_slice(key);
            let (vlen, this_off, vcrc) = match value {
                Some(v) => {
                    if v.len() as u64 >= u64::from(TOMBSTONE) {
                        return Err(StorageError::RecordTooLarge {
                            size: v.len(),
                            max: (TOMBSTONE - 1) as usize,
                        });
                    }
                    let off = voff;
                    voff += v.len() as u64;
                    values.extend_from_slice(v);
                    (v.len() as u32, off, crc32(v))
                }
                None => (TOMBSTONE, 0, 0),
            };
            index.extend_from_slice(&vlen.to_le_bytes());
            index.extend_from_slice(&this_off.to_le_bytes());
            index.extend_from_slice(&vcrc.to_le_bytes());
            meta_entries.push(RunEntry {
                key: key.clone(),
                voff: this_off,
                vlen,
                vcrc,
            });
        }
        debug_assert_eq!(index.len(), index_len);

        let mut file = Vec::with_capacity(16 + index.len() + values.len());
        file.extend_from_slice(RUN_MAGIC);
        file.extend_from_slice(&(index.len() as u32).to_le_bytes());
        file.extend_from_slice(&crc32(&index).to_le_bytes());
        file.extend_from_slice(&index);
        file.extend_from_slice(&values);

        let path = self.run_path(gen);
        {
            let mut f = self.vfs.create(&path)?;
            f.write_all(&file)?;
            f.sync_data()?;
        }
        Ok(RunMeta {
            gen,
            file_bytes: file.len() as u64,
            path,
            bloom,
            index: meta_entries,
        })
    }

    fn load_run(&self, gen: u64) -> Result<RunMeta> {
        let path = self.run_path(gen);
        let corrupt = |detail: String| StorageError::Corrupt {
            what: "lsm run",
            detail,
        };
        let file_bytes = self
            .vfs
            .file_len(&path)?
            .ok_or_else(|| corrupt(format!("missing run file {}", path.display())))?;
        let header = self.vfs.read_range(&path, 0, 16)?;
        if &header[..8] != RUN_MAGIC {
            return Err(corrupt(format!("bad magic in {}", path.display())));
        }
        let index_len = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes")) as usize;
        let index_crc = u32::from_le_bytes(header[12..16].try_into().expect("4 bytes"));
        let index = self.vfs.read_range(&path, 16, index_len)?;
        if crc32(&index) != index_crc {
            return Err(corrupt(format!(
                "index checksum mismatch in {}",
                path.display()
            )));
        }
        let mut pos = 0usize;
        let take = |p: &mut usize, n: usize| -> Result<&[u8]> {
            if *p + n > index.len() {
                return Err(StorageError::Corrupt {
                    what: "lsm run",
                    detail: "truncated index".to_string(),
                });
            }
            let s = &index[*p..*p + n];
            *p += n;
            Ok(s)
        };
        let count = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")) as usize;
        let m_bits = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")) as usize;
        let k = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes"));
        let bits_len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")) as usize;
        let bits = take(&mut pos, bits_len)?.to_vec();
        let bloom = BloomFilter::from_parts(m_bits, k, bits)
            .ok_or_else(|| corrupt(format!("bad bloom parameters in {}", path.display())))?;
        let mut entries = Vec::with_capacity(count);
        let mut prev: Option<Vec<u8>> = None;
        for _ in 0..count {
            let klen = u16::from_le_bytes(take(&mut pos, 2)?.try_into().expect("2 bytes")) as usize;
            let key = take(&mut pos, klen)?.to_vec();
            if let Some(p) = &prev {
                if *p >= key {
                    return Err(corrupt(format!("unsorted index in {}", path.display())));
                }
            }
            let vlen = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes"));
            let voff = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8 bytes"));
            let vcrc = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes"));
            if vlen != TOMBSTONE && voff + u64::from(vlen) > file_bytes {
                return Err(corrupt(format!("value past end of {}", path.display())));
            }
            prev = Some(key.clone());
            entries.push(RunEntry {
                key,
                voff,
                vlen,
                vcrc,
            });
        }
        if pos != index.len() {
            return Err(corrupt(format!(
                "trailing index bytes in {}",
                path.display()
            )));
        }
        Ok(RunMeta {
            gen,
            path,
            file_bytes,
            bloom,
            index: entries,
        })
    }

    fn load_manifest(&mut self, bytes: &[u8]) -> Result<Vec<u64>> {
        let corrupt = |detail: String| StorageError::Corrupt {
            what: "lsm manifest",
            detail,
        };
        if bytes.len() < 12 || &bytes[..8] != MANIFEST_MAGIC {
            return Err(corrupt("bad magic or truncated header".to_string()));
        }
        let stored_crc = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        let body = &bytes[12..];
        if crc32(body) != stored_crc {
            return Err(corrupt("checksum mismatch".to_string()));
        }
        let mut pos = 0usize;
        let take = |p: &mut usize, n: usize| -> Result<&[u8]> {
            if *p + n > body.len() {
                return Err(StorageError::Corrupt {
                    what: "lsm manifest",
                    detail: "truncated".to_string(),
                });
            }
            let s = &body[*p..*p + n];
            *p += n;
            Ok(s)
        };
        self.last_seq = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8 bytes"));
        self.next_gen = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8 bytes"));
        let meta_len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")) as usize;
        self.user_meta = take(&mut pos, meta_len)?.to_vec();
        let run_count =
            u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")) as usize;
        let mut gens = Vec::with_capacity(run_count);
        for _ in 0..run_count {
            gens.push(u64::from_le_bytes(
                take(&mut pos, 8)?.try_into().expect("8 bytes"),
            ));
        }
        if pos != body.len() {
            return Err(corrupt(format!("{} trailing bytes", body.len() - pos)));
        }
        Ok(gens)
    }

    /// Commit a manifest referencing exactly `gens` (temp file + rename +
    /// parent-dir fsync). Takes the target state as arguments so callers
    /// can stage the commit before mutating the in-memory run list.
    fn write_manifest(&self, gens: &[u64], last_seq: u64, user_meta: &[u8]) -> Result<()> {
        let mut body = Vec::new();
        body.extend_from_slice(&last_seq.to_le_bytes());
        body.extend_from_slice(&self.next_gen.to_le_bytes());
        body.extend_from_slice(&(user_meta.len() as u32).to_le_bytes());
        body.extend_from_slice(user_meta);
        body.extend_from_slice(&(gens.len() as u32).to_le_bytes());
        for gen in gens {
            body.extend_from_slice(&gen.to_le_bytes());
        }
        let tmp = self.dir.join(format!("{}.manifest.tmp", self.prefix));
        let path = self.manifest_path();
        {
            let mut f = self.vfs.create(&tmp)?;
            f.write_all(MANIFEST_MAGIC)?;
            f.write_all(&crc32(&body).to_le_bytes())?;
            f.write_all(&body)?;
            f.sync_data()?;
        }
        self.vfs.rename(&tmp, &path)?;
        self.vfs.sync_dir(&self.dir)?;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// LsmDocStore
// ---------------------------------------------------------------------------

const OP_PUT: u8 = 0;
const OP_DELETE: u8 = 1;

/// Log-structured [`crate::backend::DocBlobStore`]: per-mutation WAL
/// durability (the same record format as [`crate::store::DocStore`]), blobs
/// in sorted runs instead of a heap file. Checkpoints flush only blobs
/// written since the last checkpoint.
pub struct LsmDocStore {
    core: LsmCore,
    wal: Wal,
    /// Live ids, maintained eagerly for O(log n) `contains`/`ids`.
    ids: BTreeSet<u64>,
    recovery: RecoveryReport,
}

impl LsmDocStore {
    /// Open (or create) a durable store in `dir` (files `doc.*`).
    ///
    /// # Errors
    /// I/O errors, or [`StorageError::Corrupt`] for damaged files.
    pub fn open_with_vfs(vfs: Arc<dyn Vfs>, dir: &Path, opts: StoreOptions) -> Result<Self> {
        vfs.create_dir_all(dir)?;
        let mut core = LsmCore::open(vfs.clone(), dir, "doc")?;
        let mut recovery = RecoveryReport {
            snapshot_loaded: core.recovered_manifest(),
            ..RecoveryReport::default()
        };
        // Live ids from the runs, then WAL replay on top.
        let mut ids: BTreeSet<u64> = BTreeSet::new();
        for key in core.live_keys() {
            let id: [u8; 8] = key.try_into().map_err(|k: Vec<u8>| StorageError::Corrupt {
                what: "lsm doc store",
                detail: format!("run key of {} bytes is not an 8-byte doc id", k.len()),
            })?;
            ids.insert(u64::from_be_bytes(id));
        }
        let wal_path = dir.join("doc.wal");
        for record in Wal::replay_with_vfs(vfs.as_ref(), &wal_path)? {
            apply_doc_record(&mut core, &mut ids, &record)?;
            recovery.wal_records_replayed += 1;
        }
        let wal = Wal::open_with_vfs(vfs, &wal_path, opts.sync_on_append)?;
        recovery.torn_bytes_truncated = wal.torn_bytes_truncated();
        Ok(LsmDocStore {
            core,
            wal,
            ids,
            recovery,
        })
    }

    fn key(id: u64) -> Vec<u8> {
        id.to_be_bytes().to_vec()
    }
}

fn apply_doc_record(core: &mut LsmCore, ids: &mut BTreeSet<u64>, record: &[u8]) -> Result<()> {
    match record.first() {
        Some(&OP_PUT) => {
            if record.len() < 13 {
                return Err(StorageError::Corrupt {
                    what: "wal put record",
                    detail: format!("length {}", record.len()),
                });
            }
            let id = u64::from_le_bytes(record[1..9].try_into().expect("8 bytes"));
            let len = u32::from_le_bytes(record[9..13].try_into().expect("4 bytes")) as usize;
            if record.len() != 13 + len {
                return Err(StorageError::Corrupt {
                    what: "wal put record",
                    detail: format!("declared {len}, got {}", record.len() - 13),
                });
            }
            core.put(LsmDocStore::key(id), record[13..].to_vec());
            ids.insert(id);
            Ok(())
        }
        Some(&OP_DELETE) => {
            if record.len() != 9 {
                return Err(StorageError::Corrupt {
                    what: "wal delete record",
                    detail: format!("length {}", record.len()),
                });
            }
            let id = u64::from_le_bytes(record[1..9].try_into().expect("8 bytes"));
            core.delete(LsmDocStore::key(id));
            ids.remove(&id);
            Ok(())
        }
        _ => Err(StorageError::Corrupt {
            what: "wal record",
            detail: "unknown opcode".to_string(),
        }),
    }
}

impl crate::backend::DocBlobStore for LsmDocStore {
    fn put(&mut self, id: u64, blob: &[u8]) -> Result<()> {
        let mut rec = Vec::with_capacity(13 + blob.len());
        rec.push(OP_PUT);
        rec.extend_from_slice(&id.to_le_bytes());
        rec.extend_from_slice(&(blob.len() as u32).to_le_bytes());
        rec.extend_from_slice(blob);
        self.wal.append(&rec)?;
        self.core.put(Self::key(id), blob.to_vec());
        self.ids.insert(id);
        Ok(())
    }

    fn get(&self, id: u64) -> Result<Vec<u8>> {
        if !self.ids.contains(&id) {
            return Err(StorageError::RecordNotFound);
        }
        self.core
            .get(&Self::key(id))?
            .ok_or(StorageError::RecordNotFound)
    }

    fn delete(&mut self, id: u64) -> Result<()> {
        if !self.ids.contains(&id) {
            return Err(StorageError::RecordNotFound);
        }
        let mut rec = Vec::with_capacity(9);
        rec.push(OP_DELETE);
        rec.extend_from_slice(&id.to_le_bytes());
        self.wal.append(&rec)?;
        self.core.delete(Self::key(id));
        self.ids.remove(&id);
        Ok(())
    }

    fn contains(&self, id: u64) -> bool {
        self.ids.contains(&id)
    }

    fn get_many(&self, ids: &[u64]) -> Vec<(u64, Vec<u8>)> {
        ids.iter()
            .filter_map(|&id| {
                crate::backend::DocBlobStore::get(self, id)
                    .ok()
                    .map(|blob| (id, blob))
            })
            .collect()
    }

    fn doc_ids(&self) -> Vec<u64> {
        self.ids.iter().copied().collect()
    }

    fn len(&self) -> usize {
        self.ids.len()
    }

    fn storage_bytes(&self) -> usize {
        self.core.storage_bytes()
    }

    fn checkpoint(&mut self) -> Result<()> {
        self.core.flush(0, &[])?;
        self.wal.reset()
    }

    fn recovery_report(&self) -> RecoveryReport {
        self.recovery
    }

    fn counters(&self) -> crate::backend::BackendCounters {
        self.core.counters()
    }

    fn verify(&self) -> Result<u64> {
        self.core.verify_runs()
    }
}

// ---------------------------------------------------------------------------
// LsmKeywordMap
// ---------------------------------------------------------------------------

use crate::backend::{BackendCounters, KeywordMap, Tag};

/// Log-structured [`KeywordMap`]: flushes write **only the tags that
/// changed** since the last flush as one sorted run — the low-write-
/// amplification checkpoint target for update-heavy workloads. Pre-flush
/// durability belongs to the caller's journal (the scheme servers'
/// group-commit machinery), per the trait contract.
pub struct LsmKeywordMap {
    core: LsmCore,
}

impl LsmKeywordMap {
    /// Open (or create) the map stored as `dir/<prefix>*`.
    ///
    /// # Errors
    /// I/O errors, or [`StorageError::Corrupt`] for damaged files.
    pub fn open(vfs: Arc<dyn Vfs>, dir: &Path, prefix: &str) -> Result<Self> {
        Ok(LsmKeywordMap {
            core: LsmCore::open(vfs, dir, prefix)?,
        })
    }

    fn to_tag(key: &[u8]) -> Result<Tag> {
        key.try_into().map_err(|_| StorageError::Corrupt {
            what: "lsm keyword map",
            detail: format!("key of {} bytes is not a 32-byte tag", key.len()),
        })
    }

    /// Scrub entry point: re-verify every live run file's checksums.
    /// Returns the number of runs verified. See [`LsmCore::verify_runs`].
    ///
    /// # Errors
    /// [`StorageError::Corrupt`] on a mismatch; I/O errors.
    pub fn verify_runs(&self) -> Result<u64> {
        self.core.verify_runs()
    }
}

impl KeywordMap for LsmKeywordMap {
    fn get(&self, tag: &Tag) -> Result<Option<Vec<u8>>> {
        self.core.get(tag)
    }

    fn put(&mut self, tag: Tag, value: Vec<u8>) -> Result<()> {
        self.core.put(tag.to_vec(), value);
        Ok(())
    }

    fn delete(&mut self, tag: &Tag) -> Result<()> {
        self.core.delete(tag.to_vec());
        Ok(())
    }

    fn clear(&mut self) -> Result<()> {
        self.core.clear();
        Ok(())
    }

    fn flush(&mut self, applied_seq: u64, meta: &[u8]) -> Result<()> {
        self.core.flush(applied_seq, meta)
    }

    fn last_seq(&self) -> u64 {
        self.core.last_seq()
    }

    fn meta(&self) -> Vec<u8> {
        self.core.user_meta().to_vec()
    }

    fn iter_all(&self) -> Result<Vec<(Tag, Vec<u8>)>> {
        self.core
            .iter_all()?
            .into_iter()
            .map(|(k, v)| Self::to_tag(&k).map(|t| (t, v)))
            .collect()
    }

    fn key_count(&self) -> Result<usize> {
        Ok(self.core.live_keys().len())
    }

    fn counters(&self) -> BackendCounters {
        self.core.counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::DocBlobStore;
    use crate::vfs::{FaultConfig, FaultVfs, RealVfs};

    fn temp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "sse-lsm-test-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    fn tag(b: u8) -> Tag {
        [b; 32]
    }

    #[test]
    fn core_round_trip_with_reopen() {
        let dir = temp_dir("core");
        {
            let mut c = LsmCore::open(RealVfs::arc(), &dir, "t").unwrap();
            c.put(b"alpha".to_vec(), b"1".to_vec());
            c.put(b"beta".to_vec(), b"2".to_vec());
            c.flush(7, b"m").unwrap();
            c.put(b"beta".to_vec(), b"2v2".to_vec());
            c.delete(b"alpha".to_vec());
            c.flush(9, b"m2").unwrap();
        }
        let c = LsmCore::open(RealVfs::arc(), &dir, "t").unwrap();
        assert_eq!(c.last_seq(), 9);
        assert_eq!(c.user_meta(), b"m2");
        assert_eq!(c.runs_live(), 2);
        assert_eq!(c.get(b"beta").unwrap(), Some(b"2v2".to_vec()));
        assert_eq!(c.get(b"alpha").unwrap(), None);
        assert_eq!(c.get(b"gamma").unwrap(), None);
        assert_eq!(
            c.iter_all().unwrap(),
            vec![(b"beta".to_vec(), b"2v2".to_vec())]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unflushed_mutations_do_not_survive_reopen() {
        let dir = temp_dir("unflushed");
        {
            let mut c = LsmCore::open(RealVfs::arc(), &dir, "t").unwrap();
            c.put(b"kept".to_vec(), b"x".to_vec());
            c.flush(1, &[]).unwrap();
            c.put(b"lost".to_vec(), b"y".to_vec());
            // No flush: the durability point was never reached.
        }
        let c = LsmCore::open(RealVfs::arc(), &dir, "t").unwrap();
        assert_eq!(c.get(b"kept").unwrap(), Some(b"x".to_vec()));
        assert_eq!(c.get(b"lost").unwrap(), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_folds_runs_and_drops_tombstones() {
        let dir = temp_dir("compact");
        let mut c = LsmCore::open(RealVfs::arc(), &dir, "t").unwrap();
        for round in 0..(LSM_MAX_RUNS as u8 + 2) {
            c.put(vec![round], vec![round; 3]);
            c.put(b"hot".to_vec(), vec![round]); // rewritten every round
            if round == 2 {
                c.delete(vec![0]);
            }
            c.flush(u64::from(round) + 1, &[]).unwrap();
        }
        assert!(
            c.runs_live() <= LSM_MAX_RUNS,
            "compaction must bound live runs, got {}",
            c.runs_live()
        );
        assert!(c.counters().compactions >= 1);
        // Deleted key stays deleted, hot key has the last value.
        assert_eq!(c.get(&[0]).unwrap(), None);
        assert_eq!(c.get(b"hot").unwrap(), Some(vec![LSM_MAX_RUNS as u8 + 1]));
        // Reopen agrees.
        drop(c);
        let c = LsmCore::open(RealVfs::arc(), &dir, "t").unwrap();
        assert_eq!(c.get(&[0]).unwrap(), None);
        assert_eq!(c.get(b"hot").unwrap(), Some(vec![LSM_MAX_RUNS as u8 + 1]));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn clear_drops_all_runs() {
        let dir = temp_dir("clear");
        let mut c = LsmCore::open(RealVfs::arc(), &dir, "t").unwrap();
        c.put(b"a".to_vec(), b"1".to_vec());
        c.flush(1, &[]).unwrap();
        c.clear();
        assert_eq!(c.get(b"a").unwrap(), None);
        c.put(b"b".to_vec(), b"2".to_vec());
        c.flush(2, &[]).unwrap();
        drop(c);
        let c = LsmCore::open(RealVfs::arc(), &dir, "t").unwrap();
        assert_eq!(c.get(b"a").unwrap(), None);
        assert_eq!(c.get(b"b").unwrap(), Some(b"2".to_vec()));
        assert_eq!(c.runs_live(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bloom_skips_count_on_misses() {
        let dir = temp_dir("bloom");
        let mut c = LsmCore::open(RealVfs::arc(), &dir, "t").unwrap();
        for i in (0..400u32).step_by(2) {
            c.put(i.to_be_bytes().to_vec(), vec![1]);
        }
        c.flush(1, &[]).unwrap();
        // Probe odd keys: inside the run's key range but never inserted,
        // so only the bloom filter can prove absence.
        for i in (1..399u32).step_by(2) {
            assert_eq!(c.get(&i.to_be_bytes()).unwrap(), None);
        }
        let counters = c.counters();
        assert!(counters.bloom_checks > 0);
        assert!(
            counters.bloom_skips > counters.bloom_checks / 2,
            "bloom should prove most absences: {counters:?}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn doc_store_wal_recovery_and_checkpoint() {
        let dir = temp_dir("doc");
        {
            let mut s =
                LsmDocStore::open_with_vfs(RealVfs::arc(), &dir, StoreOptions::default()).unwrap();
            s.put(10, b"ten").unwrap();
            s.put(20, b"twenty").unwrap();
            s.delete(10).unwrap();
            // No checkpoint: recovery must come from the WAL alone.
        }
        {
            let s =
                LsmDocStore::open_with_vfs(RealVfs::arc(), &dir, StoreOptions::default()).unwrap();
            assert_eq!(s.recovery_report().wal_records_replayed, 3);
            assert_eq!(s.len(), 1);
            assert_eq!(DocBlobStore::get(&s, 20).unwrap(), b"twenty");
            assert!(!s.contains(10));
        }
        {
            let mut s =
                LsmDocStore::open_with_vfs(RealVfs::arc(), &dir, StoreOptions::default()).unwrap();
            s.put(30, b"thirty").unwrap();
            s.checkpoint().unwrap();
            s.put(40, b"forty").unwrap();
        }
        let s = LsmDocStore::open_with_vfs(RealVfs::arc(), &dir, StoreOptions::default()).unwrap();
        assert!(s.recovery_report().snapshot_loaded);
        assert_eq!(s.doc_ids(), vec![20, 30, 40]);
        assert_eq!(s.get_many(&[20, 30, 40, 99]).len(), 3);
        assert!(s.counters().runs_flushed == 0); // fresh open, no flush yet
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn keyword_map_partial_flushes_accumulate() {
        let dir = temp_dir("kw");
        {
            let mut m = LsmKeywordMap::open(RealVfs::arc(), &dir, "kw0").unwrap();
            m.put(tag(1), b"one".to_vec()).unwrap();
            m.put(tag(2), b"two".to_vec()).unwrap();
            m.flush(5, b"meta-a").unwrap();
            // Second flush writes only the dirty tag.
            m.put(tag(2), b"two-v2".to_vec()).unwrap();
            m.flush(9, b"meta-b").unwrap();
            assert_eq!(m.counters().runs_live, 2);
        }
        let m = LsmKeywordMap::open(RealVfs::arc(), &dir, "kw0").unwrap();
        assert_eq!(m.last_seq(), 9);
        assert_eq!(m.meta(), b"meta-b");
        assert_eq!(m.get(&tag(1)).unwrap(), Some(b"one".to_vec()));
        assert_eq!(m.get(&tag(2)).unwrap(), Some(b"two-v2".to_vec()));
        assert_eq!(m.key_count().unwrap(), 2);
        let all = m.iter_all().unwrap();
        assert_eq!(all.len(), 2);
        let snap = m.snapshot().unwrap();
        assert_eq!(snap.get(&tag(2)), Some(b"two-v2".to_vec()));
        assert_eq!(
            snap.get_many(&[tag(1), tag(3)]),
            vec![Some(b"one".to_vec()), None]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_run_write_keeps_memtable_and_retries() {
        let dir = temp_dir("fail-run");
        // Write 1 is the first flush's run file.
        let vfs: Arc<dyn Vfs> = Arc::new(FaultVfs::new(
            RealVfs::arc(),
            FaultConfig {
                fail_write_at: Some(1),
                ..FaultConfig::default()
            },
        ));
        let mut c = LsmCore::open(vfs, &dir, "t").unwrap();
        c.put(b"k".to_vec(), b"v".to_vec());
        assert!(c.flush(1, &[]).is_err());
        // The entry is still served and a retry makes it durable.
        assert_eq!(c.get(b"k").unwrap(), Some(b"v".to_vec()));
        c.flush(1, &[]).unwrap();
        drop(c);
        let c = LsmCore::open(RealVfs::arc(), &dir, "t").unwrap();
        assert_eq!(c.get(b"k").unwrap(), Some(b"v".to_vec()));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_manifest_write_keeps_memtable_and_retries() {
        let dir = temp_dir("fail-manifest");
        // Write 1 is the run file, write 2 the manifest temp file.
        let vfs: Arc<dyn Vfs> = Arc::new(FaultVfs::new(
            RealVfs::arc(),
            FaultConfig {
                fail_write_at: Some(2),
                ..FaultConfig::default()
            },
        ));
        let mut c = LsmCore::open(vfs, &dir, "t").unwrap();
        c.put(b"k".to_vec(), b"v".to_vec());
        assert!(c.flush(1, &[]).is_err());
        assert_eq!(c.get(b"k").unwrap(), Some(b"v".to_vec()));
        assert_eq!(c.runs_live(), 0, "uncommitted run must not join the list");
        c.flush(1, &[]).unwrap();
        drop(c);
        let c = LsmCore::open(RealVfs::arc(), &dir, "t").unwrap();
        assert_eq!(c.last_seq(), 1);
        assert_eq!(c.get(b"k").unwrap(), Some(b"v".to_vec()));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_compaction_keeps_old_runs() {
        // One flush per round; the last round pushes the run count past
        // LSM_MAX_RUNS and triggers a compaction.
        fn workload(c: &mut LsmCore) {
            for round in 0..=LSM_MAX_RUNS as u8 {
                c.put(vec![round], vec![round]);
                c.flush(u64::from(round) + 1, &[]).unwrap();
            }
        }
        // Counting pass to locate the compaction's merged-run write: it is
        // followed only by the manifest commit, so measure the manifest's
        // write cost from the first flush (total writes split evenly
        // across the flush rounds, each one run write plus one manifest).
        let dir0 = temp_dir("fail-compact-count");
        let counting = FaultVfs::counting();
        let stats = counting.stats();
        {
            let mut c = LsmCore::open(Arc::new(counting), &dir0, "t").unwrap();
            workload(&mut c);
            assert!(c.counters().compactions >= 1);
        }
        let rounds = LSM_MAX_RUNS as u64 + 1;
        let total = stats.writes();
        // rounds+1 run writes (one per flush + merged run), rounds+1
        // manifest commits of equal write cost.
        assert_eq!(total % (rounds + 1), 0, "unexpected write schedule");
        let manifest_writes = total / (rounds + 1) - 1;
        let merged_run_write = total - manifest_writes;
        std::fs::remove_dir_all(&dir0).unwrap();

        // Fault pass: fail exactly the merged-run write.
        let dir = temp_dir("fail-compact");
        let vfs: Arc<dyn Vfs> = Arc::new(FaultVfs::new(
            RealVfs::arc(),
            FaultConfig {
                fail_write_at: Some(merged_run_write),
                ..FaultConfig::default()
            },
        ));
        let mut c = LsmCore::open(vfs, &dir, "t").unwrap();
        for round in 0..LSM_MAX_RUNS as u8 {
            c.put(vec![round], vec![round]);
            c.flush(u64::from(round) + 1, &[]).unwrap();
        }
        let last = LSM_MAX_RUNS as u8;
        c.put(vec![last], vec![last]);
        assert!(
            c.flush(u64::from(last) + 1, &[]).is_err(),
            "compaction write should fail"
        );
        // Every key is still served from the pre-compaction runs.
        for round in 0..=last {
            assert_eq!(c.get(&[round]).unwrap(), Some(vec![round]));
        }
        assert_eq!(c.runs_live(), LSM_MAX_RUNS + 1);
        // The next flush retries the compaction and succeeds.
        c.flush(100, &[]).unwrap();
        assert!(c.runs_live() <= LSM_MAX_RUNS);
        drop(c);
        let c = LsmCore::open(RealVfs::arc(), &dir, "t").unwrap();
        for round in 0..=last {
            assert_eq!(c.get(&[round]).unwrap(), Some(vec![round]));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn doc_store_rejects_non_id_run_key() {
        let dir = temp_dir("bad-doc-key");
        {
            let mut c = LsmCore::open(RealVfs::arc(), &dir, "doc").unwrap();
            c.put(b"not-an-id".to_vec(), b"x".to_vec());
            c.flush(1, &[]).unwrap();
        }
        assert!(matches!(
            LsmDocStore::open_with_vfs(RealVfs::arc(), &dir, StoreOptions::default()),
            Err(StorageError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_run_is_rejected_on_open() {
        let dir = temp_dir("corrupt-run");
        {
            let mut c = LsmCore::open(RealVfs::arc(), &dir, "t").unwrap();
            c.put(b"k".to_vec(), b"v".to_vec());
            c.flush(1, &[]).unwrap();
        }
        // Flip a byte in the run's index region.
        let run = dir.join("t-00000001.run");
        let mut bytes = std::fs::read(&run).unwrap();
        bytes[20] ^= 0xFF;
        std::fs::write(&run, &bytes).unwrap();
        assert!(matches!(
            LsmCore::open(RealVfs::arc(), &dir, "t"),
            Err(StorageError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
