//! # sse-baselines
//!
//! The comparator schemes the paper positions itself against (§2–3). Each
//! implements [`sse_core::scheme::SseClientApi`], so the experiment harness
//! drives them interchangeably with the paper's schemes:
//!
//! * [`swp`] — Song, Wagner, Perrig (2000): per-word searchable
//!   ciphertexts, `O(total words)` sequential scan per search. The scheme
//!   the paper's "linear in the size of the database" critique targets.
//! * [`goh`] — Goh (2003): one Bloom filter per document; `O(n)` filter
//!   tests per search.
//! * [`curtmola`] — Curtmola, Garay, Kamara, Ostrovsky (2006) SSE-1: an
//!   encrypted inverted index with `O(|D(w)|)` search — *faster* than the
//!   paper's schemes — but updates force a full index rebuild, which is
//!   exactly the trade-off the paper attacks.
//! * [`naive`] — download-everything: trivially secure, maximal bandwidth.
//!
//! All four count their traffic on an [`sse_net::meter::Meter`] with the
//! same conventions as the real schemes, so Table-1-style comparisons are
//! apples-to-apples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod curtmola;
pub mod goh;
pub mod naive;
pub mod swp;
