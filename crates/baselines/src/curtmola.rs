//! Curtmola–Garay–Kamara–Ostrovsky SSE-1 (CCS 2006) — reference \[11\].
//!
//! The encrypted inverted index: all posting lists live as encrypted,
//! randomly scattered nodes in one array `A`; a lookup table `T` maps the
//! keyword tag to the (masked) address and key of the list head. Each node
//! decrypts to `(doc id, next address, next key)`, so a search costs
//! `O(|D(w)|)` — *better* than the paper's `O(log u)`.
//!
//! The catch — and the reason the paper exists — is updates: the array
//! layout and per-node keys are fixed at build time, so adding documents
//! means **rebuilding and re-uploading the whole index**. This
//! implementation makes that cost concrete: the client caches document
//! metadata locally and every `add_documents` after the first triggers a
//! full rebuild, metered as real traffic.

use sse_core::error::{Result, SseError};
use sse_core::scheme::SseClientApi;
use sse_core::types::{DocId, Document, Keyword, MasterKey, SearchHits};
use sse_net::meter::Meter;
use sse_net::wire::{WireReader, WireWriter};
use sse_primitives::drbg::HmacDrbg;
use sse_primitives::etm::EtmKey;
use sse_primitives::prf::Prf;
use std::collections::{BTreeMap, HashMap};

/// A node in the encrypted array: sealed `(doc id, next addr, next key)`.
type SealedNode = Vec<u8>;

/// Server state.
#[derive(Default)]
pub struct CurtmolaServer {
    /// The scrambled node array `A`.
    array: Vec<SealedNode>,
    /// Lookup table `T`: keyword tag → sealed `(head addr, head key)`.
    table: HashMap<[u8; 32], Vec<u8>>,
    /// Encrypted document blobs.
    blobs: BTreeMap<DocId, Vec<u8>>,
    /// Nodes decrypted across all searches (the `O(|D(w)|)` cost).
    pub nodes_walked: u64,
    /// Full index rebuilds received (the update cost).
    pub rebuilds: u64,
}

impl CurtmolaServer {
    /// Number of stored documents.
    #[must_use]
    pub fn stored_docs(&self) -> usize {
        self.blobs.len()
    }

    /// Index size in bytes (array + table).
    #[must_use]
    pub fn index_bytes(&self) -> usize {
        self.array.iter().map(Vec::len).sum::<usize>()
            + self.table.values().map(|v| 32 + v.len()).sum::<usize>()
    }
}

/// The SSE-1 client, with its in-process server.
pub struct CurtmolaClient {
    server: CurtmolaServer,
    meter: Meter,
    tag_prf: Prf,
    /// Key deriving the per-list head keys and table sealing keys.
    index_key: [u8; 32],
    etm: EtmKey,
    drbg: HmacDrbg,
    /// Client-side metadata cache enabling rebuilds (id → keywords).
    cached_metadata: Vec<(DocId, Vec<Keyword>)>,
}

const NO_NEXT: u64 = u64::MAX;

impl CurtmolaClient {
    /// Build a client+server pair from a master key.
    #[must_use]
    pub fn new(key: &MasterKey, meter: Meter, rng_seed: u64) -> Self {
        CurtmolaClient {
            server: CurtmolaServer::default(),
            meter,
            tag_prf: Prf::new(key.derive_w("curtmola/tag")),
            index_key: key.derive_w("curtmola/index"),
            etm: EtmKey::new(&key.derive_m("curtmola/data")),
            drbg: HmacDrbg::from_u64(rng_seed),
            cached_metadata: Vec::new(),
        }
    }

    /// Server-side counters.
    #[must_use]
    pub fn server(&self) -> &CurtmolaServer {
        &self.server
    }

    fn tag(&self, w: &Keyword) -> [u8; 32] {
        self.tag_prf.eval(w.as_bytes()).0
    }

    /// Sealing key for the table entry of `w`.
    fn table_key(&self, w: &Keyword) -> [u8; 32] {
        Prf::new(self.index_key)
            .eval_parts(&[b"table", w.as_bytes()])
            .0
    }

    /// Rebuild the entire index from the cached metadata and upload it.
    fn rebuild_index(&mut self) -> Result<()> {
        // Gather posting lists.
        let mut postings: BTreeMap<Keyword, Vec<DocId>> = BTreeMap::new();
        for (id, kws) in &self.cached_metadata {
            for w in kws {
                postings.entry(w.clone()).or_default().push(*id);
            }
        }
        let total_nodes: usize = postings.values().map(Vec::len).sum();

        // Scrambled placement: a random permutation of array slots.
        let mut slots: Vec<u64> = (0..total_nodes as u64).collect();
        // Fisher–Yates with the DRBG.
        for i in (1..slots.len()).rev() {
            let j = self.drbg.gen_range(i as u64 + 1) as usize;
            slots.swap(i, j);
        }

        let mut array: Vec<Option<SealedNode>> = vec![None; total_nodes];
        let mut table: HashMap<[u8; 32], Vec<u8>> = HashMap::new();
        let mut slot_cursor = 0usize;

        for (w, ids) in &postings {
            // Assign each node of this list a slot and a fresh key.
            let addrs: Vec<u64> = (0..ids.len()).map(|k| slots[slot_cursor + k]).collect();
            slot_cursor += ids.len();
            let keys: Vec<[u8; 32]> = (0..ids.len()).map(|_| self.drbg.gen_key()).collect();

            for (k, &id) in ids.iter().enumerate() {
                let (next_addr, next_key) = if k + 1 < ids.len() {
                    (addrs[k + 1], keys[k + 1])
                } else {
                    (NO_NEXT, [0u8; 32])
                };
                let mut w_node = WireWriter::new();
                w_node.put_u64(id).put_u64(next_addr).put_array(&next_key);
                let mut iv = [0u8; 12];
                self.drbg.fill(&mut iv);
                let sealed = EtmKey::new(&keys[k]).seal_with_iv(&iv, &w_node.finish());
                array[addrs[k] as usize] = Some(sealed);
            }

            // Table entry: sealed (head addr, head key) under a key only the
            // search trapdoor reveals.
            let mut w_entry = WireWriter::new();
            w_entry.put_u64(addrs[0]).put_array(&keys[0]);
            let mut iv = [0u8; 12];
            self.drbg.fill(&mut iv);
            let sealed = EtmKey::new(&self.table_key(w)).seal_with_iv(&iv, &w_entry.finish());
            table.insert(self.tag(w), sealed);
        }

        let array: Vec<SealedNode> = array
            .into_iter()
            .map(|n| n.expect("every slot assigned exactly once"))
            .collect();

        // "Upload": replace the server's index, metering its full size.
        let upload_bytes = array.iter().map(Vec::len).sum::<usize>()
            + table.values().map(|v| 32 + v.len()).sum::<usize>();
        self.meter.record_round(upload_bytes, 1);
        self.server.array = array;
        self.server.table = table;
        self.server.rebuilds += 1;
        Ok(())
    }
}

impl SseClientApi for CurtmolaClient {
    fn add_documents(&mut self, docs: &[Document]) -> Result<()> {
        if docs.is_empty() {
            return Ok(());
        }
        // Upload blobs (same as every scheme).
        let mut blob_bytes = 0usize;
        for d in docs {
            let mut iv = [0u8; 12];
            self.drbg.fill(&mut iv);
            let blob = self.etm.seal_with_iv(&iv, &d.data);
            blob_bytes += 8 + blob.len();
            self.server.blobs.insert(d.id, blob);
            self.cached_metadata
                .push((d.id, d.keywords.iter().cloned().collect()));
        }
        self.meter.record_round(blob_bytes, 1);
        // SSE-1 has no incremental update: rebuild the whole index.
        self.rebuild_index()
    }

    fn search(&mut self, keyword: &Keyword) -> Result<SearchHits> {
        let tag = self.tag(keyword);
        // The trapdoor is (tag, table key); the server unseals the table
        // entry and walks the list.
        let table_key = self.table_key(keyword);
        let Some(sealed_entry) = self.server.table.get(&tag) else {
            self.meter.record_round(64, 1);
            return Ok(Vec::new());
        };
        let entry_plain = EtmKey::new(&table_key).open(sealed_entry)?;
        let mut r = WireReader::new(&entry_plain);
        let mut addr = r.get_u64().map_err(SseError::from)?;
        let mut key = r.get_array32().map_err(SseError::from)?;

        let mut matched: Vec<(DocId, Vec<u8>)> = Vec::new();
        while addr != NO_NEXT {
            let node = self
                .server
                .array
                .get(addr as usize)
                .ok_or(SseError::ProtocolViolation {
                    expected: "valid node address",
                    got: format!("addr {addr}"),
                })?;
            let plain = EtmKey::new(&key).open(node)?;
            self.server.nodes_walked += 1;
            let mut nr = WireReader::new(&plain);
            let id = nr.get_u64().map_err(SseError::from)?;
            let next_addr = nr.get_u64().map_err(SseError::from)?;
            let next_key = nr.get_array32().map_err(SseError::from)?;
            if let Some(blob) = self.server.blobs.get(&id) {
                matched.push((id, blob.clone()));
            }
            addr = next_addr;
            key = next_key;
        }
        let response_bytes: usize = matched.iter().map(|(_, b)| 8 + b.len()).sum();
        self.meter.record_round(64, response_bytes.max(1));

        let mut hits = Vec::with_capacity(matched.len());
        for (id, blob) in matched {
            hits.push((id, self.etm.open(&blob)?));
        }
        Ok(hits)
    }

    fn scheme_name(&self) -> &'static str {
        "curtmola-sse1"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client() -> CurtmolaClient {
        CurtmolaClient::new(&MasterKey::from_seed(5), Meter::new(), 6)
    }

    fn docs() -> Vec<Document> {
        vec![
            Document::new(0, b"zero".to_vec(), ["alpha", "beta"]),
            Document::new(1, b"one".to_vec(), ["beta", "gamma"]),
            Document::new(2, b"two".to_vec(), ["gamma"]),
        ]
    }

    #[test]
    fn search_walks_only_the_posting_list() {
        let mut c = client();
        c.add_documents(&docs()).unwrap();
        let hits = c.search(&Keyword::new("beta")).unwrap();
        assert_eq!(hits, vec![(0, b"zero".to_vec()), (1, b"one".to_vec())]);
        // Exactly |D(beta)| = 2 nodes decrypted.
        assert_eq!(c.server().nodes_walked, 2);
    }

    #[test]
    fn unknown_keyword_is_empty() {
        let mut c = client();
        c.add_documents(&docs()).unwrap();
        assert!(c.search(&Keyword::new("nope")).unwrap().is_empty());
    }

    #[test]
    fn update_triggers_full_rebuild() {
        let mut c = client();
        c.add_documents(&docs()).unwrap();
        assert_eq!(c.server().rebuilds, 1);
        let m = c.meter.clone();
        m.reset();
        c.add_documents(&[Document::new(9, b"nine".to_vec(), ["beta"])])
            .unwrap();
        assert_eq!(c.server().rebuilds, 2);
        // The re-upload includes the whole index, not just the new doc.
        let up = m.snapshot().bytes_up;
        let index_size = c.server().index_bytes();
        assert!(
            up as usize >= index_size,
            "update traffic {up} must include the full index {index_size}"
        );
        assert_eq!(c.search(&Keyword::new("beta")).unwrap().len(), 3);
    }

    #[test]
    fn rebuild_cost_grows_with_database() {
        let mut c = client();
        let mut sizes = Vec::new();
        for round in 0..4u64 {
            let docs: Vec<Document> = (0..25)
                .map(|i| {
                    let id = round * 25 + i;
                    Document::new(id, vec![0u8; 16], [format!("kw{}", id % 10)])
                })
                .collect();
            let m = c.meter.clone();
            m.reset();
            c.add_documents(&docs).unwrap();
            sizes.push(m.snapshot().bytes_up);
        }
        assert!(
            sizes.windows(2).all(|w| w[1] > w[0]),
            "each rebuild re-ships a strictly larger index: {sizes:?}"
        );
    }

    #[test]
    fn array_is_scrambled_across_lists() {
        let mut c = client();
        c.add_documents(&docs()).unwrap();
        // 5 posting nodes across 3 lists in one array.
        assert_eq!(c.server().array.len(), 5);
        // The table has one entry per unique keyword.
        assert_eq!(c.server().table.len(), 3);
    }
}
