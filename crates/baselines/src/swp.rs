//! The Song–Wagner–Perrig scheme (IEEE S&P 2000) — "Practical techniques
//! for searches on encrypted data", reference \[20\] of the paper.
//!
//! Every keyword occurrence is stored as an independently searchable
//! ciphertext. For keyword `w`:
//!
//! ```text
//! X = E_ke(w) = (L ‖ R)          deterministic pre-encryption, split in two
//! k = f_kf(L)                     per-word check key
//! C = (L ⊕ S, R ⊕ F_k(S))        S fresh random salt, F a keyed PRF
//! ```
//!
//! A search trapdoor is `(X, k)`. The server XORs `X` into every stored
//! `C`, recovers `(S, T)` and accepts iff `T == F_k(S)` — a test it must
//! run against **every stored word of every document**: the `O(n)` scan the
//! paper's §3 critique is about.
//!
//! (The original also supports decrypting the words themselves; we store
//! document payloads separately under authenticated encryption, like every
//! other scheme in this workspace, and use SWP purely as the searchable
//! index — the standard way it is benchmarked.)

use sse_core::error::Result;
use sse_core::scheme::SseClientApi;
use sse_core::types::{DocId, Document, Keyword, MasterKey, SearchHits};
use sse_net::meter::Meter;
use sse_primitives::drbg::HmacDrbg;
use sse_primitives::etm::EtmKey;
use sse_primitives::hmac::hmac_sha256_concat;
use sse_primitives::prf::Prf;

const HALF: usize = 16;

/// One searchable word ciphertext `C = (L ⊕ S, R ⊕ F_k(S))`.
#[derive(Clone)]
struct WordCiphertext([u8; 2 * HALF]);

/// Server state: per document, its word ciphertexts and encrypted payload.
#[derive(Default)]
pub struct SwpServer {
    docs: Vec<(DocId, Vec<WordCiphertext>, Vec<u8>)>,
    /// Word-ciphertext comparisons performed (the linear-scan cost).
    pub comparisons: u64,
}

impl SwpServer {
    /// Number of stored documents.
    #[must_use]
    pub fn stored_docs(&self) -> usize {
        self.docs.len()
    }

    /// Total searchable word ciphertexts stored.
    #[must_use]
    pub fn stored_words(&self) -> usize {
        self.docs.iter().map(|(_, ws, _)| ws.len()).sum()
    }
}

/// The SWP client, with its in-process server.
pub struct SwpClient {
    server: SwpServer,
    meter: Meter,
    /// Deterministic word pre-encryption `E_ke`.
    pre_encrypt: Prf,
    /// Check-key derivation `f_kf`.
    check_key: Prf,
    /// Payload encryption.
    etm: EtmKey,
    drbg: HmacDrbg,
}

impl SwpClient {
    /// Build a client+server pair from a master key.
    #[must_use]
    pub fn new(key: &MasterKey, meter: Meter, rng_seed: u64) -> Self {
        SwpClient {
            server: SwpServer::default(),
            meter,
            pre_encrypt: Prf::new(key.derive_w("swp/pre-encrypt")),
            check_key: Prf::new(key.derive_w("swp/check-key")),
            etm: EtmKey::new(&key.derive_m("swp/data")),
            drbg: HmacDrbg::from_u64(rng_seed),
        }
    }

    /// Server-side counters.
    #[must_use]
    pub fn server(&self) -> &SwpServer {
        &self.server
    }

    fn word_x(&self, w: &Keyword) -> [u8; 2 * HALF] {
        self.pre_encrypt.eval(w.as_bytes()).0
    }

    fn word_check_key(&self, x: &[u8; 2 * HALF]) -> [u8; 32] {
        self.check_key.eval(&x[..HALF]).0
    }

    fn encrypt_word(&mut self, w: &Keyword) -> WordCiphertext {
        let x = self.word_x(w);
        let k = self.word_check_key(&x);
        let mut salt = [0u8; HALF];
        self.drbg.fill(&mut salt);
        let t = hmac_sha256_concat(&k, &[&salt]);
        let mut c = [0u8; 2 * HALF];
        for i in 0..HALF {
            c[i] = x[i] ^ salt[i];
            c[HALF + i] = x[HALF + i] ^ t[i];
        }
        WordCiphertext(c)
    }

    /// Does ciphertext `c` match trapdoor `(x, k)`? (The server's test.)
    fn matches(c: &WordCiphertext, x: &[u8; 2 * HALF], k: &[u8; 32]) -> bool {
        let mut salt = [0u8; HALF];
        let mut t = [0u8; HALF];
        for i in 0..HALF {
            salt[i] = c.0[i] ^ x[i];
            t[i] = c.0[HALF + i] ^ x[HALF + i];
        }
        let expect = hmac_sha256_concat(k, &[&salt]);
        sse_primitives::ct::ct_eq(&expect[..HALF], &t)
    }
}

impl SseClientApi for SwpClient {
    fn add_documents(&mut self, docs: &[Document]) -> Result<()> {
        let mut request_bytes = 0usize;
        for d in docs {
            let words: Vec<WordCiphertext> =
                d.keywords.iter().map(|w| self.encrypt_word(w)).collect();
            let mut iv = [0u8; 12];
            self.drbg.fill(&mut iv);
            let blob = self.etm.seal_with_iv(&iv, &d.data);
            request_bytes += 8 + words.len() * 2 * HALF + blob.len();
            self.server.docs.push((d.id, words, blob));
        }
        if !docs.is_empty() {
            self.meter.record_round(request_bytes, 1);
        }
        Ok(())
    }

    fn search(&mut self, keyword: &Keyword) -> Result<SearchHits> {
        let x = self.word_x(keyword);
        let k = self.word_check_key(&x);
        // The server scans every word of every document.
        let mut matched: Vec<(DocId, Vec<u8>)> = Vec::new();
        for (id, words, blob) in &self.server.docs {
            let mut hit = false;
            for c in words {
                self.server.comparisons += 1;
                if Self::matches(c, &x, &k) {
                    hit = true;
                    break;
                }
            }
            if hit {
                matched.push((*id, blob.clone()));
            }
        }
        let response_bytes: usize = matched.iter().map(|(_, b)| 8 + b.len()).sum();
        self.meter
            .record_round(2 * HALF + 32, response_bytes.max(1));

        let mut hits = Vec::with_capacity(matched.len());
        for (id, blob) in matched {
            hits.push((id, self.etm.open(&blob)?));
        }
        Ok(hits)
    }

    fn scheme_name(&self) -> &'static str {
        "swp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client() -> SwpClient {
        SwpClient::new(&MasterKey::from_seed(1), Meter::new(), 2)
    }

    fn docs() -> Vec<Document> {
        vec![
            Document::new(0, b"zero".to_vec(), ["alpha", "beta"]),
            Document::new(1, b"one".to_vec(), ["beta", "gamma"]),
            Document::new(2, b"two".to_vec(), ["gamma"]),
        ]
    }

    #[test]
    fn search_finds_correct_documents() {
        let mut c = client();
        c.add_documents(&docs()).unwrap();
        let hits = c.search(&Keyword::new("beta")).unwrap();
        assert_eq!(hits, vec![(0, b"zero".to_vec()), (1, b"one".to_vec())]);
        assert!(c.search(&Keyword::new("delta")).unwrap().is_empty());
    }

    #[test]
    fn scan_cost_is_linear_in_stored_words() {
        let mut c = client();
        c.add_documents(&docs()).unwrap();
        // "delta" matches nothing: the scan touches every stored word.
        c.search(&Keyword::new("delta")).unwrap();
        assert_eq!(c.server().comparisons, 5, "5 stored word ciphertexts");
        assert_eq!(c.server().stored_words(), 5);
    }

    #[test]
    fn same_word_encrypts_differently_per_occurrence() {
        let mut c = client();
        let a = c.encrypt_word(&Keyword::new("w"));
        let b = c.encrypt_word(&Keyword::new("w"));
        assert_ne!(a.0, b.0, "fresh salt per occurrence");
    }

    #[test]
    fn updates_extend_results() {
        let mut c = client();
        c.add_documents(&docs()).unwrap();
        c.add_documents(&[Document::new(7, b"seven".to_vec(), ["beta"])])
            .unwrap();
        assert_eq!(c.search(&Keyword::new("beta")).unwrap().len(), 3);
    }

    #[test]
    fn meter_counts_rounds() {
        let mut c = client();
        let m = c.meter.clone();
        c.add_documents(&docs()).unwrap();
        c.search(&Keyword::new("beta")).unwrap();
        assert_eq!(m.snapshot().rounds, 2);
    }
}
