//! Goh's secure indexes (ePrint 2003/216) — reference \[12\] of the paper.
//!
//! One Bloom filter per document. For document `id` and keyword `w`, the
//! client inserts the *codeword* `HMAC(trapdoor(w), id)` into the
//! document's filter, where `trapdoor(w) = f_kg(w)`. A search hands the
//! server `trapdoor(w)`; the server recomputes each document's codeword and
//! tests its filter — `O(n)` filter probes per query, with Bloom
//! false positives as the price for hiding keyword counts.

use sse_core::error::Result;
use sse_core::scheme::SseClientApi;
use sse_core::types::{DocId, Document, Keyword, MasterKey, SearchHits};
use sse_index::bloom::BloomFilter;
use sse_net::meter::Meter;
use sse_primitives::drbg::HmacDrbg;
use sse_primitives::etm::EtmKey;
use sse_primitives::hmac::hmac_sha256_concat;
use sse_primitives::prf::Prf;

/// Per-document index entry.
struct Entry {
    id: DocId,
    filter: BloomFilter,
    blob: Vec<u8>,
}

/// Server state.
#[derive(Default)]
pub struct GohServer {
    entries: Vec<Entry>,
    /// Bloom filters probed (the linear-scan cost).
    pub filters_probed: u64,
}

impl GohServer {
    /// Number of stored documents.
    #[must_use]
    pub fn stored_docs(&self) -> usize {
        self.entries.len()
    }
}

/// Configuration: expected keywords per document and target false-positive
/// rate drive the per-document filter size.
#[derive(Clone, Copy, Debug)]
pub struct GohConfig {
    /// Expected keywords per document (filter sizing).
    pub keywords_per_doc: usize,
    /// Target Bloom false-positive rate.
    pub false_positive_rate: f64,
}

impl Default for GohConfig {
    fn default() -> Self {
        GohConfig {
            keywords_per_doc: 32,
            false_positive_rate: 0.01,
        }
    }
}

/// The Goh client, with its in-process server.
pub struct GohClient {
    server: GohServer,
    meter: Meter,
    config: GohConfig,
    trapdoor_prf: Prf,
    etm: EtmKey,
    drbg: HmacDrbg,
}

impl GohClient {
    /// Build a client+server pair from a master key.
    #[must_use]
    pub fn new(key: &MasterKey, config: GohConfig, meter: Meter, rng_seed: u64) -> Self {
        GohClient {
            server: GohServer::default(),
            meter,
            config,
            trapdoor_prf: Prf::new(key.derive_w("goh/trapdoor")),
            etm: EtmKey::new(&key.derive_m("goh/data")),
            drbg: HmacDrbg::from_u64(rng_seed),
        }
    }

    /// Server-side counters.
    #[must_use]
    pub fn server(&self) -> &GohServer {
        &self.server
    }

    fn trapdoor(&self, w: &Keyword) -> [u8; 32] {
        self.trapdoor_prf.eval(w.as_bytes()).0
    }

    /// The codeword inserted/tested for `(trapdoor, doc id)`. Binding the
    /// doc id prevents cross-document correlation of filter contents.
    fn codeword(trapdoor: &[u8; 32], id: DocId) -> [u8; 32] {
        hmac_sha256_concat(trapdoor, &[&id.to_be_bytes()])
    }
}

impl SseClientApi for GohClient {
    fn add_documents(&mut self, docs: &[Document]) -> Result<()> {
        let mut request_bytes = 0usize;
        for d in docs {
            let mut filter = BloomFilter::with_rate(
                self.config.keywords_per_doc.max(d.keywords.len()),
                self.config.false_positive_rate,
            );
            for w in &d.keywords {
                let t = self.trapdoor(w);
                filter.insert(&Self::codeword(&t, d.id));
            }
            let mut iv = [0u8; 12];
            self.drbg.fill(&mut iv);
            let blob = self.etm.seal_with_iv(&iv, &d.data);
            request_bytes += 8 + filter.byte_len() + blob.len();
            self.server.entries.push(Entry {
                id: d.id,
                filter,
                blob,
            });
        }
        if !docs.is_empty() {
            self.meter.record_round(request_bytes, 1);
        }
        Ok(())
    }

    fn search(&mut self, keyword: &Keyword) -> Result<SearchHits> {
        let t = self.trapdoor(keyword);
        let mut matched: Vec<(DocId, Vec<u8>)> = Vec::new();
        for e in &self.server.entries {
            self.server.filters_probed += 1;
            if e.filter.contains(&Self::codeword(&t, e.id)) {
                matched.push((e.id, e.blob.clone()));
            }
        }
        let response_bytes: usize = matched.iter().map(|(_, b)| 8 + b.len()).sum();
        self.meter.record_round(32, response_bytes.max(1));

        let mut hits = Vec::with_capacity(matched.len());
        for (id, blob) in matched {
            hits.push((id, self.etm.open(&blob)?));
        }
        Ok(hits)
    }

    fn scheme_name(&self) -> &'static str {
        "goh"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client() -> GohClient {
        GohClient::new(
            &MasterKey::from_seed(3),
            GohConfig::default(),
            Meter::new(),
            4,
        )
    }

    fn docs() -> Vec<Document> {
        vec![
            Document::new(0, b"zero".to_vec(), ["alpha", "beta"]),
            Document::new(1, b"one".to_vec(), ["beta"]),
            Document::new(2, b"two".to_vec(), ["gamma"]),
        ]
    }

    #[test]
    fn search_finds_correct_documents() {
        let mut c = client();
        c.add_documents(&docs()).unwrap();
        let ids: Vec<DocId> = c
            .search(&Keyword::new("beta"))
            .unwrap()
            .iter()
            .map(|(id, _)| *id)
            .collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn probe_count_is_linear_in_documents() {
        let mut c = client();
        c.add_documents(&docs()).unwrap();
        c.search(&Keyword::new("beta")).unwrap();
        assert_eq!(c.server().filters_probed, 3);
        c.search(&Keyword::new("gamma")).unwrap();
        assert_eq!(c.server().filters_probed, 6);
    }

    #[test]
    fn false_positive_rate_is_bounded() {
        let mut c = client();
        let many: Vec<Document> = (0..200u64)
            .map(|i| Document::new(i, vec![], [format!("kw{i}")]))
            .collect();
        c.add_documents(&many).unwrap();
        // Query 50 absent keywords; false positives should be rare.
        let mut fp = 0usize;
        for q in 0..50u32 {
            fp += c.search(&Keyword::new(format!("absent{q}"))).unwrap().len();
        }
        let rate = fp as f64 / (50.0 * 200.0);
        assert!(rate < 0.05, "false positive rate {rate} too high");
    }

    #[test]
    fn same_keyword_different_docs_have_different_codewords() {
        let c = client();
        let t = c.trapdoor(&Keyword::new("x"));
        assert_ne!(GohClient::codeword(&t, 1), GohClient::codeword(&t, 2));
    }

    #[test]
    fn updates_are_cheap_per_document() {
        let mut c = client();
        c.add_documents(&docs()).unwrap();
        let m = c.meter.clone();
        m.reset();
        c.add_documents(&[Document::new(9, b"nine".to_vec(), ["beta"])])
            .unwrap();
        // One filter + one blob, far below a full reindex.
        assert!(m.snapshot().bytes_up < 1000);
        assert_eq!(c.search(&Keyword::new("beta")).unwrap().len(), 3);
    }
}
