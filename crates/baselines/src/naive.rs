//! The naive baseline: download everything, filter client-side.
//!
//! Perfectly secure (the server sees only opaque blobs and learns nothing
//! from searches — there is no search message at all beyond "send me
//! everything"), but the bandwidth is the whole database per query. The
//! floor every real scheme must beat.

use sse_core::error::Result;
use sse_core::scheme::SseClientApi;
use sse_core::types::{DocId, Document, Keyword, MasterKey, SearchHits};
use sse_net::meter::Meter;
use sse_net::wire::{WireReader, WireWriter};
use sse_primitives::drbg::HmacDrbg;
use sse_primitives::etm::EtmKey;
use std::collections::BTreeMap;

/// Server state: opaque blobs only.
#[derive(Default)]
pub struct NaiveServer {
    blobs: BTreeMap<DocId, Vec<u8>>,
}

impl NaiveServer {
    /// Number of stored documents.
    #[must_use]
    pub fn stored_docs(&self) -> usize {
        self.blobs.len()
    }
}

/// The naive client, with its in-process server.
pub struct NaiveClient {
    server: NaiveServer,
    meter: Meter,
    etm: EtmKey,
    drbg: HmacDrbg,
}

impl NaiveClient {
    /// Build a client+server pair from a master key.
    #[must_use]
    pub fn new(key: &MasterKey, meter: Meter, rng_seed: u64) -> Self {
        NaiveClient {
            server: NaiveServer::default(),
            meter,
            etm: EtmKey::new(&key.derive_m("naive/data")),
            drbg: HmacDrbg::from_u64(rng_seed),
        }
    }

    /// Server-side counters.
    #[must_use]
    pub fn server(&self) -> &NaiveServer {
        &self.server
    }

    /// Remove documents by id (one round: the ids, in the clear — the
    /// naive scheme hides nothing about which blobs die). Unknown ids are
    /// ignored. Gives the baseline the same add/remove/search surface as
    /// the real schemes, so differential tests can replay one trace
    /// everywhere.
    pub fn remove(&mut self, ids: &[DocId]) {
        if ids.is_empty() {
            return;
        }
        for id in ids {
            self.server.blobs.remove(id);
        }
        self.meter.record_round(8 * ids.len(), 1);
    }

    /// Blob payload: keywords + data sealed together (the client needs the
    /// keywords back to filter locally).
    fn seal_doc(&mut self, d: &Document) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.put_u64(d.keywords.len() as u64);
        for kw in &d.keywords {
            w.put_bytes(kw.as_bytes());
        }
        w.put_bytes(&d.data);
        let mut iv = [0u8; 12];
        self.drbg.fill(&mut iv);
        self.etm.seal_with_iv(&iv, &w.finish())
    }

    fn open_doc(&self, blob: &[u8]) -> Result<(Vec<Keyword>, Vec<u8>)> {
        let plain = self.etm.open(blob)?;
        let mut r = WireReader::new(&plain);
        let n = r.get_u64()? as usize;
        let mut kws = Vec::with_capacity(n);
        for _ in 0..n {
            kws.push(Keyword::new(
                String::from_utf8_lossy(r.get_bytes()?).into_owned(),
            ));
        }
        let data = r.get_bytes()?.to_vec();
        r.finish()?;
        Ok((kws, data))
    }
}

impl SseClientApi for NaiveClient {
    fn add_documents(&mut self, docs: &[Document]) -> Result<()> {
        if docs.is_empty() {
            return Ok(());
        }
        let mut bytes = 0usize;
        for d in docs {
            let blob = self.seal_doc(d);
            bytes += 8 + blob.len();
            self.server.blobs.insert(d.id, blob);
        }
        self.meter.record_round(bytes, 1);
        Ok(())
    }

    fn search(&mut self, keyword: &Keyword) -> Result<SearchHits> {
        // "Send me everything."
        let download: usize = self.server.blobs.values().map(|b| 8 + b.len()).sum();
        self.meter.record_round(16, download.max(1));
        let blobs: Vec<(DocId, Vec<u8>)> = self
            .server
            .blobs
            .iter()
            .map(|(id, b)| (*id, b.clone()))
            .collect();

        let mut hits = Vec::new();
        for (id, blob) in blobs {
            let (kws, data) = self.open_doc(&blob)?;
            if kws.contains(keyword) {
                hits.push((id, data));
            }
        }
        Ok(hits)
    }

    fn scheme_name(&self) -> &'static str {
        "naive-download"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client() -> NaiveClient {
        NaiveClient::new(&MasterKey::from_seed(7), Meter::new(), 8)
    }

    #[test]
    fn search_filters_correctly() {
        let mut c = client();
        c.add_documents(&[
            Document::new(0, b"zero".to_vec(), ["a"]),
            Document::new(1, b"one".to_vec(), ["a", "b"]),
            Document::new(2, b"two".to_vec(), ["c"]),
        ])
        .unwrap();
        let hits = c.search(&Keyword::new("a")).unwrap();
        assert_eq!(hits, vec![(0, b"zero".to_vec()), (1, b"one".to_vec())]);
    }

    #[test]
    fn download_is_whole_database() {
        let mut c = client();
        let docs: Vec<Document> = (0..20u64)
            .map(|i| Document::new(i, vec![0u8; 100], ["kw"]))
            .collect();
        c.add_documents(&docs).unwrap();
        let m = c.meter.clone();
        m.reset();
        c.search(&Keyword::new("kw")).unwrap();
        let down = m.snapshot().bytes_down;
        assert!(
            down > 20 * 100,
            "search must download everything, got {down} bytes"
        );
    }

    #[test]
    fn remove_deletes_blobs_and_results() {
        let mut c = client();
        c.add_documents(&[
            Document::new(0, b"z".to_vec(), ["k"]),
            Document::new(1, b"o".to_vec(), ["k"]),
        ])
        .unwrap();
        c.remove(&[0, 99]);
        assert_eq!(c.server().stored_docs(), 1);
        assert_eq!(
            c.search(&Keyword::new("k")).unwrap(),
            vec![(1, b"o".to_vec())]
        );
    }

    #[test]
    fn updates_extend_results() {
        let mut c = client();
        c.add_documents(&[Document::new(0, b"z".to_vec(), ["k"])])
            .unwrap();
        c.add_documents(&[Document::new(1, b"o".to_vec(), ["k"])])
            .unwrap();
        assert_eq!(c.search(&Keyword::new("k")).unwrap().len(), 2);
        assert_eq!(c.server().stored_docs(), 2);
    }
}
