//! Robustness: the servers are the parties exposed to the network, so they
//! must never panic on malformed, truncated, mutated or replayed input —
//! only answer with error responses.

use proptest::prelude::*;
use sse_core::scheme1::protocol::REQ_TAGS;
use sse_core::scheme1::Scheme1Server;
use sse_core::scheme2::{Scheme2Config, Scheme2Server};
use sse_net::link::Service;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes never panic the Scheme 1 server.
    #[test]
    fn scheme1_survives_random_bytes(data in prop::collection::vec(any::<u8>(), 0..300)) {
        let mut server = Scheme1Server::new_in_memory(64);
        let resp = server.handle(&data);
        prop_assert!(!resp.is_empty(), "server must always respond");
    }

    /// Arbitrary bytes never panic the Scheme 2 server.
    #[test]
    fn scheme2_survives_random_bytes(data in prop::collection::vec(any::<u8>(), 0..300)) {
        let mut server = Scheme2Server::new_in_memory(Scheme2Config::standard());
        let resp = server.handle(&data);
        prop_assert!(!resp.is_empty(), "server must always respond");
    }

    /// Messages with a *valid* request tag but garbage bodies never panic.
    #[test]
    fn scheme1_survives_valid_tag_garbage_body(
        tag in prop::sample::select(vec![
            REQ_TAGS::PUT_DOCS,
            REQ_TAGS::GET_NONCES,
            REQ_TAGS::APPLY_UPDATES,
            REQ_TAGS::SEARCH_FIND,
            REQ_TAGS::SEARCH_REVEAL,
            REQ_TAGS::SEARCH_REVEAL_MANY,
            REQ_TAGS::EXPORT_INDEX,
            REQ_TAGS::REPLACE_INDEX,
        ]),
        body in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        let mut server = Scheme1Server::new_in_memory(64);
        let mut msg = vec![tag];
        msg.extend_from_slice(&body);
        let _ = server.handle(&msg);
    }

    /// Mutations of a *legitimate* message stream never panic either side
    /// of the Scheme 2 server.
    #[test]
    fn scheme2_survives_mutated_legit_traffic(
        flip_pos in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        use sse_core::scheme2::InMemoryScheme2Client;
        use sse_core::types::{Document, MasterKey};

        // Produce a legitimate append message via a scratch client, then
        // mutate one bit and replay it against a fresh server.
        let mut scratch = InMemoryScheme2Client::new_in_memory(
            MasterKey::from_seed(1),
            Scheme2Config::standard().with_chain_length(64),
        );
        scratch
            .store(&[Document::new(0, b"x".to_vec(), ["kw"])])
            .unwrap();

        // Re-encode a representative message (search) and mutate it.
        let tag = scratch.tag(&sse_core::types::Keyword::new("kw"));
        let mut msg = sse_core::scheme2::protocol::encode_search(&tag, &[9u8; 32]);
        let pos = flip_pos % msg.len();
        msg[pos] ^= 1 << flip_bit;
        let mut server = Scheme2Server::new_in_memory(Scheme2Config::standard());
        let _ = server.handle(&msg);
    }
}
