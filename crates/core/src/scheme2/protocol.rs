//! Scheme 2 wire protocol — Figures 3 and 4, one request per arrow.

use crate::error::{Result, SseError};
use crate::proto_common;
use sse_net::wire::{WireReader, WireWriter};

/// Request tag bytes.
pub mod req {
    /// Store encrypted data items (`DataStorage`).
    pub const PUT_DOCS: u8 = 0x01;
    /// `MetadataStorage` (Fig. 3): append masked generations. One round.
    pub const APPEND_GENERATIONS: u8 = 0x10;
    /// `Search` (Fig. 4): tag + chain trapdoor. One round.
    pub const SEARCH: u8 = 0x11;
    /// Drop the keyword index (client re-initializes after chain
    /// exhaustion, §5.6). Document blobs are kept.
    pub const RESET_INDEX: u8 = 0x12;
    /// Batched `Search`: several trapdoors in one round (protocol
    /// extension for boolean queries).
    pub const SEARCH_MANY: u8 = 0x13;
    /// Delete document blobs (the deletion extension; posting-side removal
    /// travels as delete entries inside `APPEND_GENERATIONS`).
    pub const REMOVE_DOCS: u8 = 0x14;
    /// Ask a durable server to checkpoint its store + index to disk.
    pub const CHECKPOINT: u8 = 0x15;
}

/// One generation to append: `(f_kw(w), E_k(I_new), f'(k))`.
#[derive(Clone)]
pub struct GenerationEntry {
    /// `f_kw(w)`.
    pub tag: [u8; 32],
    /// `E_k(I_{j+1}(w))` — the sealed list of new document ids.
    pub sealed_ids: Vec<u8>,
    /// `f'(k_{j+1}(w))`.
    pub commitment: [u8; 32],
}

/// Encode `PutDocs`.
#[must_use]
pub fn encode_put_docs(docs: &[(u64, Vec<u8>)]) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u8(req::PUT_DOCS);
    proto_common::put_docs_body(&mut w, docs);
    w.finish()
}

/// Encode `AppendGenerations`.
#[must_use]
pub fn encode_append_generations(entries: &[GenerationEntry]) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u8(req::APPEND_GENERATIONS)
        .put_u64(entries.len() as u64);
    for e in entries {
        w.put_array(&e.tag);
        w.put_bytes(&e.sealed_ids);
        w.put_array(&e.commitment);
    }
    w.finish()
}

/// Encode `Search` with trapdoor `T_w = (t_w, t'_w)`.
#[must_use]
pub fn encode_search(tag: &[u8; 32], t_prime: &[u8; 32]) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u8(req::SEARCH).put_array(tag).put_array(t_prime);
    w.finish()
}

/// Encode `SearchMany` with one trapdoor per queried keyword.
#[must_use]
pub fn encode_search_many(trapdoors: &[([u8; 32], [u8; 32])]) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u8(req::SEARCH_MANY).put_u64(trapdoors.len() as u64);
    for (tag, t_prime) in trapdoors {
        w.put_array(tag).put_array(t_prime);
    }
    w.finish()
}

/// Encode `RemoveDocs`.
#[must_use]
pub fn encode_remove_docs(ids: &[u64]) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u8(req::REMOVE_DOCS).put_u64_vec(ids);
    w.finish()
}

/// Encode `Checkpoint`.
#[must_use]
pub fn encode_checkpoint() -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u8(req::CHECKPOINT);
    w.finish()
}

/// Encode `ResetIndex`.
#[must_use]
pub fn encode_reset_index() -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u8(req::RESET_INDEX);
    w.finish()
}

/// A decoded client request (server side).
pub enum Request {
    /// `DataStorage` upload.
    PutDocs(Vec<(u64, Vec<u8>)>),
    /// Fig. 3 append.
    AppendGenerations(Vec<GenerationEntry>),
    /// Fig. 4 search.
    Search {
        /// `f_kw(w)`.
        tag: [u8; 32],
        /// `t'_w = h^{l-ctr}(w ‖ k_w)`.
        t_prime: [u8; 32],
    },
    /// Index reset for epoch re-initialization.
    ResetIndex,
    /// Batched Fig. 4 search: several `(t_w, t'_w)` trapdoors.
    SearchMany(Vec<([u8; 32], [u8; 32])>),
    /// Delete document blobs by id.
    RemoveDocs(Vec<u64>),
    /// Flush durable state to disk.
    Checkpoint,
}

/// Decode any client request.
///
/// # Errors
/// Wire errors on malformed input.
pub fn decode_request(buf: &[u8]) -> Result<Request> {
    let mut r = WireReader::new(buf);
    let tag = r.get_u8()?;
    let request = match tag {
        req::PUT_DOCS => Request::PutDocs(proto_common::decode_put_docs_body(&mut r)?),
        req::APPEND_GENERATIONS => {
            let n = r.get_count(72)?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let tag = r.get_array32()?;
                let sealed_ids = r.get_bytes()?.to_vec();
                let commitment = r.get_array32()?;
                entries.push(GenerationEntry {
                    tag,
                    sealed_ids,
                    commitment,
                });
            }
            Request::AppendGenerations(entries)
        }
        req::SEARCH => Request::Search {
            tag: r.get_array32()?,
            t_prime: r.get_array32()?,
        },
        req::RESET_INDEX => Request::ResetIndex,
        req::REMOVE_DOCS => Request::RemoveDocs(r.get_u64_vec()?),
        req::CHECKPOINT => Request::Checkpoint,
        req::SEARCH_MANY => {
            let n = r.get_count(64)?;
            let mut trapdoors = Vec::with_capacity(n);
            for _ in 0..n {
                let tag = r.get_array32()?;
                let t_prime = r.get_array32()?;
                trapdoors.push((tag, t_prime));
            }
            Request::SearchMany(trapdoors)
        }
        other => return Err(SseError::Wire(sse_net::wire::WireError::UnknownTag(other))),
    };
    r.finish()?;
    Ok(request)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_generations_round_trip() {
        let entries = vec![
            GenerationEntry {
                tag: [1u8; 32],
                sealed_ids: vec![9, 9, 9],
                commitment: [2u8; 32],
            },
            GenerationEntry {
                tag: [3u8; 32],
                sealed_ids: vec![],
                commitment: [4u8; 32],
            },
        ];
        match decode_request(&encode_append_generations(&entries)).unwrap() {
            Request::AppendGenerations(e) => {
                assert_eq!(e.len(), 2);
                assert_eq!(e[0].tag, [1u8; 32]);
                assert_eq!(e[0].sealed_ids, vec![9, 9, 9]);
                assert_eq!(e[1].commitment, [4u8; 32]);
            }
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn search_round_trip() {
        match decode_request(&encode_search(&[5u8; 32], &[6u8; 32])).unwrap() {
            Request::Search { tag, t_prime } => {
                assert_eq!(tag, [5u8; 32]);
                assert_eq!(t_prime, [6u8; 32]);
            }
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn reset_and_put_docs_round_trip() {
        assert!(matches!(
            decode_request(&encode_reset_index()).unwrap(),
            Request::ResetIndex
        ));
        match decode_request(&encode_put_docs(&[(1, vec![2])])).unwrap() {
            Request::PutDocs(d) => assert_eq!(d, vec![(1, vec![2])]),
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn search_many_round_trip() {
        let trapdoors = vec![([1u8; 32], [2u8; 32]), ([3u8; 32], [4u8; 32])];
        match decode_request(&encode_search_many(&trapdoors)).unwrap() {
            Request::SearchMany(t) => assert_eq!(t, trapdoors),
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn remove_docs_round_trip() {
        match decode_request(&encode_remove_docs(&[3, 5])).unwrap() {
            Request::RemoveDocs(ids) => assert_eq!(ids, vec![3, 5]),
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(decode_request(&[0x55]).is_err());
    }

    #[test]
    fn truncated_rejected() {
        let msg = encode_search(&[1u8; 32], &[2u8; 32]);
        assert!(decode_request(&msg[..msg.len() - 5]).is_err());
    }
}
