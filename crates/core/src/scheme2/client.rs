//! Scheme 2 client.
//!
//! Unlike Scheme 1's stateless client, this client carries small mutable
//! state: the global update counter `ctr`, the current chain *epoch* (bumped
//! on re-initialization after exhaustion), and the Optimization-2 flag
//! "has a search happened since the last update". The state is exposed as
//! a serializable [`Scheme2ClientState`] so an application can persist it
//! between sessions (the GP's workstation in §6).

use super::protocol::{self, GenerationEntry};
use super::{key_commitment, CtrPolicy, Scheme2Config};
use crate::error::{Result, SseError};
use crate::proto_common;
use crate::scheme::SseClientApi;
use crate::types::{DocId, Document, Keyword, MasterKey, SearchHits};
use sse_net::link::{MeteredLink, Transport};
use sse_net::meter::Meter;
use sse_net::wire::WireWriter;
use sse_primitives::drbg::HmacDrbg;
use sse_primitives::etm::EtmKey;
use sse_primitives::hashchain::HashChain;
use sse_primitives::prf::Prf;
use std::collections::BTreeMap;

/// Persistable client state (beyond the master key).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scheme2ClientState {
    /// Global update counter `ctr` (paper §5.5).
    pub ctr: u64,
    /// Chain epoch: incremented on each re-initialization (§5.6).
    pub epoch: u64,
    /// Optimization 2: whether a search has happened since the last update.
    pub searched_since_update: bool,
}

impl Default for Scheme2ClientState {
    fn default() -> Self {
        Scheme2ClientState {
            ctr: 0,
            epoch: 0,
            searched_since_update: true, // first update must take a fresh key
        }
    }
}

/// The Scheme 2 client, generic over the transport.
pub struct Scheme2Client<T: Transport> {
    link: T,
    config: Scheme2Config,
    key: MasterKey,
    prf: Prf,
    etm: EtmKey,
    drbg: HmacDrbg,
    state: Scheme2ClientState,
    /// Per-keyword pebbled chains for the current epoch (see
    /// [`Scheme2Client::chain`]). Cleared on epoch change.
    chains: std::collections::HashMap<Keyword, HashChain>,
}

/// Convenience alias: client wired to an in-process server.
pub type InMemoryScheme2Client = Scheme2Client<MeteredLink<super::server::Scheme2Server>>;

impl InMemoryScheme2Client {
    /// Build client + in-memory server + metered link in one call.
    #[must_use]
    pub fn new_in_memory(key: MasterKey, config: Scheme2Config) -> Self {
        let server = super::server::Scheme2Server::new_in_memory(config.clone());
        let link = MeteredLink::new(server, Meter::new());
        Scheme2Client::new(link, key, config)
    }

    /// The traffic meter shared with the link.
    #[must_use]
    pub fn meter(&self) -> Meter {
        self.link.meter().clone()
    }

    /// Peek at the server (experiments read its counters).
    pub fn server_mut(&mut self) -> &mut super::server::Scheme2Server {
        self.link.service_mut()
    }
}

impl<T: Transport> Scheme2Client<T> {
    /// Construct a client over an established transport.
    #[must_use]
    pub fn new(link: T, key: MasterKey, config: Scheme2Config) -> Self {
        let prf = Prf::new(key.derive_w("scheme2/tag"));
        let etm = EtmKey::new(&key.derive_m("scheme2/data"));
        let mut seed_material = key.derive_w("scheme2/client-rng").to_vec();
        let mut os = [0u8; 32];
        sse_primitives::os_random(&mut os);
        seed_material.extend_from_slice(&os);
        let drbg = HmacDrbg::new(&seed_material);
        Scheme2Client {
            link,
            config,
            key,
            prf,
            etm,
            drbg,
            state: Scheme2ClientState::default(),
            chains: std::collections::HashMap::new(),
        }
    }

    /// Deterministic variant for tests and reproducible experiments.
    #[must_use]
    pub fn new_seeded(link: T, key: MasterKey, config: Scheme2Config, rng_seed: u64) -> Self {
        let mut c = Self::new(link, key, config);
        c.drbg = HmacDrbg::from_u64(rng_seed);
        c
    }

    /// Current persistable state.
    #[must_use]
    pub fn state(&self) -> Scheme2ClientState {
        self.state
    }

    /// Restore persisted state (e.g. a new session on the GP workstation).
    pub fn restore_state(&mut self, state: Scheme2ClientState) {
        self.state = state;
        self.chains.clear();
    }

    /// Remaining counter values before the chain is exhausted.
    #[must_use]
    pub fn chain_remaining(&self) -> u64 {
        self.config.chain_length.saturating_sub(self.state.ctr)
    }

    /// The PRF tag `f_kw(w)`.
    #[must_use]
    pub fn tag(&self, keyword: &Keyword) -> [u8; 32] {
        self.prf.eval(keyword.as_bytes()).0
    }

    /// The per-keyword hash chain for the current epoch (`w ‖ k_w`, plus
    /// the epoch for post-exhaustion re-initialization). Chains are built
    /// with √l checkpoints and cached per keyword, so deriving
    /// `h^{l-ctr}(w ‖ k_w)` costs O(l) once and O(√l) thereafter instead of
    /// O(l - ctr) on every operation.
    fn chain(&mut self, keyword: &Keyword) -> &HashChain {
        if !self.chains.contains_key(keyword) {
            let chain_key = self.key.derive_w("scheme2/chain");
            let chain = HashChain::with_checkpoints(
                &[
                    keyword.as_bytes(),
                    &chain_key,
                    &self.state.epoch.to_be_bytes(),
                ],
                self.config.chain_length as usize,
            );
            self.chains.insert(keyword.clone(), chain);
        }
        &self.chains[keyword]
    }

    /// Pick the counter value for the next update per the configured
    /// policy, and report whether it advances the global counter.
    fn next_update_counter(&self) -> Result<(u64, bool)> {
        let advance = match self.config.ctr_policy {
            CtrPolicy::Always => true,
            // Opt. 2: reuse the previous key while the server has not seen
            // it through a search. The very first update has no previous
            // key, so it must advance.
            CtrPolicy::OnSearchOnly => self.state.searched_since_update || self.state.ctr == 0,
        };
        let ctr = if advance {
            self.state.ctr + 1
        } else {
            self.state.ctr
        };
        if ctr > self.config.chain_length {
            return Err(SseError::ChainExhausted);
        }
        Ok((ctr, advance))
    }

    /// `Storage` / update (Fig. 3): upload documents and append one masked
    /// generation per touched keyword. One metadata round.
    ///
    /// # Errors
    /// [`SseError::ChainExhausted`] when the chain has no counter values
    /// left — call [`Scheme2Client::reinitialize`]; other protocol/crypto
    /// failures propagate.
    pub fn store(&mut self, docs: &[Document]) -> Result<()> {
        // DataStorage.
        if !docs.is_empty() {
            let blobs: Vec<(u64, Vec<u8>)> = docs
                .iter()
                .map(|d| (d.id, self.seal_blob(&d.data)))
                .collect();
            let resp = self.link.round_trip(&protocol::encode_put_docs(&blobs))?;
            proto_common::decode_ack(&resp)?;
        }

        // Gather I_{j+1}(w) per unique keyword.
        let mut per_keyword: BTreeMap<Keyword, Vec<DocId>> = BTreeMap::new();
        for d in docs {
            for w in &d.keywords {
                per_keyword.entry(w.clone()).or_default().push(d.id);
            }
        }
        if per_keyword.is_empty() {
            return Ok(());
        }
        let (ctr, advanced) = self.next_update_counter()?;

        let mut entries = Vec::with_capacity(per_keyword.len());
        for (w, ids) in &per_keyword {
            let k = self.chain(w).key_for_counter(ctr)?;
            entries.push(GenerationEntry {
                tag: self.tag(w),
                sealed_ids: self.seal_posting(&k, ids, &[]),
                commitment: key_commitment(&k),
            });
        }
        let resp = self
            .link
            .round_trip(&protocol::encode_append_generations(&entries))?;
        proto_common::decode_ack(&resp)?;

        if advanced {
            self.state.ctr = ctr;
        }
        self.state.searched_since_update = false;
        Ok(())
    }

    /// [`Scheme2Client::store`] with the two protocol messages (`PutDocs`,
    /// `AppendGenerations`) shipped through
    /// [`Transport::round_trip_batch`]: over a batching transport (the TCP
    /// `UPDATE_MANY` envelope) the whole update becomes **one round** and
    /// the server applies it atomically — a racing search observes either
    /// none or all of the new generations, and each index shard takes a
    /// single journal append for the batch. On non-batching transports this
    /// degrades to exactly the message sequence of [`Scheme2Client::store`].
    ///
    /// # Errors
    /// Same failure modes as [`Scheme2Client::store`].
    pub fn store_batch(&mut self, docs: &[Document]) -> Result<()> {
        let mut parts: Vec<Vec<u8>> = Vec::with_capacity(2);
        if !docs.is_empty() {
            let blobs: Vec<(u64, Vec<u8>)> = docs
                .iter()
                .map(|d| (d.id, self.seal_blob(&d.data)))
                .collect();
            parts.push(protocol::encode_put_docs(&blobs));
        }

        let mut per_keyword: BTreeMap<Keyword, Vec<DocId>> = BTreeMap::new();
        for d in docs {
            for w in &d.keywords {
                per_keyword.entry(w.clone()).or_default().push(d.id);
            }
        }
        let mut counter = None;
        if !per_keyword.is_empty() {
            let (ctr, advanced) = self.next_update_counter()?;
            let mut entries = Vec::with_capacity(per_keyword.len());
            for (w, ids) in &per_keyword {
                let k = self.chain(w).key_for_counter(ctr)?;
                entries.push(GenerationEntry {
                    tag: self.tag(w),
                    sealed_ids: self.seal_posting(&k, ids, &[]),
                    commitment: key_commitment(&k),
                });
            }
            parts.push(protocol::encode_append_generations(&entries));
            counter = Some((ctr, advanced));
        }
        if parts.is_empty() {
            return Ok(());
        }
        let responses = self.link.round_trip_batch(&parts)?;
        for resp in &responses {
            proto_common::decode_ack(resp)?;
        }
        if let Some((ctr, advanced)) = counter {
            if advanced {
                self.state.ctr = ctr;
            }
            self.state.searched_since_update = false;
        }
        Ok(())
    }

    /// `Trapdoor` + `Search` (Fig. 4): one round.
    ///
    /// # Errors
    /// Protocol and crypto failures; an unknown keyword returns empty hits.
    pub fn search(&mut self, keyword: &Keyword) -> Result<SearchHits> {
        let tag = self.tag(keyword);
        let ctr = self.state.ctr;
        let t_prime = self.chain(keyword).key_for_counter(ctr)?;
        let resp = self
            .link
            .round_trip(&protocol::encode_search(&tag, &t_prime))?;
        let encrypted = proto_common::decode_result(&resp)?;
        let mut hits = Vec::with_capacity(encrypted.len());
        for (id, blob) in encrypted {
            hits.push((id, self.etm.open(&blob)?));
        }
        self.state.searched_since_update = true;
        Ok(hits)
    }

    /// Batched search (protocol extension): search `q` keywords in **one
    /// round total**. Returns one hit list per keyword, position-aligned.
    ///
    /// # Errors
    /// Protocol and crypto failures.
    pub fn search_many(&mut self, keywords: &[Keyword]) -> Result<Vec<SearchHits>> {
        if keywords.is_empty() {
            return Ok(Vec::new());
        }
        let ctr = self.state.ctr;
        let mut trapdoors = Vec::with_capacity(keywords.len());
        for w in keywords {
            let tag = self.tag(w);
            let t_prime = self.chain(w).key_for_counter(ctr)?;
            trapdoors.push((tag, t_prime));
        }
        let resp = self
            .link
            .round_trip(&protocol::encode_search_many(&trapdoors))?;
        let results = proto_common::decode_result_many(&resp)?;
        if results.len() != keywords.len() {
            return Err(SseError::ProtocolViolation {
                expected: "one result list per trapdoor",
                got: format!("{} lists for {} trapdoors", results.len(), keywords.len()),
            });
        }
        let mut out = Vec::with_capacity(results.len());
        for encrypted in results {
            let mut hits = Vec::with_capacity(encrypted.len());
            for (id, blob) in encrypted {
                hits.push((id, self.etm.open(&blob)?));
            }
            out.push(hits);
        }
        self.state.searched_since_update = true;
        Ok(out)
    }

    /// [`Scheme2Client::search_many`] with one scheme `Search` message per
    /// keyword, all shipped through [`Transport::round_trip_search_batch`]:
    /// over the TCP `SEARCH_MANY` envelope the whole batch is **one round**
    /// and the daemon evaluates the per-keyword searches concurrently
    /// across its shard snapshots, instead of serializing them inside a
    /// single `SearchMany` handler. On non-batching transports this
    /// degrades to one round per keyword. Results are position-aligned.
    ///
    /// # Errors
    /// Protocol and crypto failures.
    pub fn search_batch(&mut self, keywords: &[Keyword]) -> Result<Vec<SearchHits>> {
        if keywords.is_empty() {
            return Ok(Vec::new());
        }
        let ctr = self.state.ctr;
        let mut parts = Vec::with_capacity(keywords.len());
        for w in keywords {
            let tag = self.tag(w);
            let t_prime = self.chain(w).key_for_counter(ctr)?;
            parts.push(protocol::encode_search(&tag, &t_prime));
        }
        let responses = self.link.round_trip_search_batch(&parts)?;
        if responses.len() != keywords.len() {
            return Err(SseError::ProtocolViolation {
                expected: "one response per search part",
                got: format!("{} responses for {} parts", responses.len(), keywords.len()),
            });
        }
        let mut out = Vec::with_capacity(responses.len());
        for resp in &responses {
            let encrypted = proto_common::decode_result(resp)?;
            let mut hits = Vec::with_capacity(encrypted.len());
            for (id, blob) in encrypted {
                hits.push((id, self.etm.open(&blob)?));
            }
            out.push(hits);
        }
        self.state.searched_since_update = true;
        Ok(out)
    }

    /// §5.7 *fake update*: append empty-id generations for the given
    /// keywords. Indistinguishable on the wire from a real update touching
    /// the same keyword count; posting sets are unchanged (empty lists add
    /// nothing).
    ///
    /// # Errors
    /// Same failure modes as [`Scheme2Client::store`].
    pub fn fake_update(&mut self, keywords: &[Keyword]) -> Result<()> {
        if keywords.is_empty() {
            return Ok(());
        }
        let (ctr, advanced) = self.next_update_counter()?;
        let mut entries = Vec::with_capacity(keywords.len());
        for w in keywords {
            let k = self.chain(w).key_for_counter(ctr)?;
            entries.push(GenerationEntry {
                tag: self.tag(w),
                sealed_ids: self.seal_posting(&k, &[], &[]),
                commitment: key_commitment(&k),
            });
        }
        let resp = self
            .link
            .round_trip(&protocol::encode_append_generations(&entries))?;
        proto_common::decode_ack(&resp)?;
        if advanced {
            self.state.ctr = ctr;
        }
        self.state.searched_since_update = false;
        Ok(())
    }

    /// Batched [`Scheme2Client::fake_update`]: one `AppendGenerations`
    /// message per keyword group, all shipped through
    /// [`Transport::round_trip_batch`] — over TCP that is a single
    /// `UPDATE_MANY` envelope the server applies atomically with one journal
    /// append per touched shard. All groups share one counter value (they
    /// form a single logical update). Used by the serving benchmark to issue
    /// pure index-write load.
    ///
    /// # Errors
    /// Same failure modes as [`Scheme2Client::fake_update`].
    pub fn fake_update_many(&mut self, keyword_groups: &[Vec<Keyword>]) -> Result<()> {
        let groups: Vec<&Vec<Keyword>> = keyword_groups.iter().filter(|g| !g.is_empty()).collect();
        if groups.is_empty() {
            return Ok(());
        }
        let (ctr, advanced) = self.next_update_counter()?;
        let mut parts = Vec::with_capacity(groups.len());
        for group in groups {
            let mut entries = Vec::with_capacity(group.len());
            for w in group.iter() {
                let k = self.chain(w).key_for_counter(ctr)?;
                entries.push(GenerationEntry {
                    tag: self.tag(w),
                    sealed_ids: self.seal_posting(&k, &[], &[]),
                    commitment: key_commitment(&k),
                });
            }
            parts.push(protocol::encode_append_generations(&entries));
        }
        let responses = self.link.round_trip_batch(&parts)?;
        for resp in &responses {
            proto_common::decode_ack(resp)?;
        }
        if advanced {
            self.state.ctr = ctr;
        }
        self.state.searched_since_update = false;
        Ok(())
    }

    /// Deletion extension (beyond the paper): remove documents from the
    /// database. Two one-round messages: blob removal, then one *delete
    /// generation* per touched keyword — on the wire indistinguishable from
    /// an ordinary update of the same shape, and subject to the same chain
    /// budget. The paper's Scheme 1 gets deletion for free from XOR
    /// toggling; this gives Scheme 2 the same capability.
    ///
    /// # Errors
    /// [`SseError::ChainExhausted`] and protocol/crypto failures.
    pub fn remove(&mut self, docs: &[Document]) -> Result<()> {
        if docs.is_empty() {
            return Ok(());
        }
        let ids: Vec<DocId> = docs.iter().map(|d| d.id).collect();
        let resp = self.link.round_trip(&protocol::encode_remove_docs(&ids))?;
        proto_common::decode_ack(&resp)?;

        let mut per_keyword: BTreeMap<Keyword, Vec<DocId>> = BTreeMap::new();
        for d in docs {
            for w in &d.keywords {
                per_keyword.entry(w.clone()).or_default().push(d.id);
            }
        }
        if per_keyword.is_empty() {
            return Ok(());
        }
        let (ctr, advanced) = self.next_update_counter()?;
        let mut entries = Vec::with_capacity(per_keyword.len());
        for (w, dels) in &per_keyword {
            let k = self.chain(w).key_for_counter(ctr)?;
            entries.push(GenerationEntry {
                tag: self.tag(w),
                sealed_ids: self.seal_posting(&k, &[], dels),
                commitment: key_commitment(&k),
            });
        }
        let resp = self
            .link
            .round_trip(&protocol::encode_append_generations(&entries))?;
        proto_common::decode_ack(&resp)?;
        if advanced {
            self.state.ctr = ctr;
        }
        self.state.searched_since_update = false;
        Ok(())
    }

    /// Ask a durable server to checkpoint its document store and keyword
    /// index to disk (one round). Errors if the server is in-memory.
    ///
    /// # Errors
    /// Protocol failures, or a server-side error for in-memory servers.
    pub fn request_checkpoint(&mut self) -> Result<()> {
        let resp = self.link.round_trip(&protocol::encode_checkpoint())?;
        proto_common::decode_ack(&resp)
    }

    /// Re-initialize after chain exhaustion (§5.6): bump the epoch, reset
    /// the counter, clear the server's keyword index and re-index the full
    /// document collection under fresh chains. Document blobs already on
    /// the server are kept; only metadata is rebuilt.
    ///
    /// # Errors
    /// Protocol/crypto failures during the rebuild.
    pub fn reinitialize(&mut self, all_docs: &[Document]) -> Result<()> {
        let resp = self.link.round_trip(&protocol::encode_reset_index())?;
        proto_common::decode_ack(&resp)?;
        self.state.epoch += 1;
        self.state.ctr = 0;
        self.state.searched_since_update = true;
        self.chains.clear();
        // Re-run MetadataStorage only (blobs are still stored server-side).
        let mut per_keyword: BTreeMap<Keyword, Vec<DocId>> = BTreeMap::new();
        for d in all_docs {
            for w in &d.keywords {
                per_keyword.entry(w.clone()).or_default().push(d.id);
            }
        }
        if per_keyword.is_empty() {
            return Ok(());
        }
        let (ctr, advanced) = self.next_update_counter()?;
        let mut entries = Vec::with_capacity(per_keyword.len());
        for (w, ids) in &per_keyword {
            let k = self.chain(w).key_for_counter(ctr)?;
            entries.push(GenerationEntry {
                tag: self.tag(w),
                sealed_ids: self.seal_posting(&k, ids, &[]),
                commitment: key_commitment(&k),
            });
        }
        let resp = self
            .link
            .round_trip(&protocol::encode_append_generations(&entries))?;
        proto_common::decode_ack(&resp)?;
        if advanced {
            self.state.ctr = ctr;
        }
        self.state.searched_since_update = false;
        Ok(())
    }

    /// Seal one posting generation: the added ids plus (deletion
    /// extension) the removed ids, both under the generation key.
    fn seal_posting(&mut self, chain_key: &[u8; 32], adds: &[DocId], dels: &[DocId]) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.put_u64_vec(adds);
        w.put_u64_vec(dels);
        let mut iv = [0u8; 12];
        self.drbg.fill(&mut iv);
        EtmKey::new(chain_key).seal_with_iv(&iv, &w.finish())
    }

    fn seal_blob(&mut self, data: &[u8]) -> Vec<u8> {
        let mut iv = [0u8; 12];
        self.drbg.fill(&mut iv);
        self.etm.seal_with_iv(&iv, data)
    }

    /// Access the underlying transport.
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.link
    }
}

impl<T: Transport> SseClientApi for Scheme2Client<T> {
    fn add_documents(&mut self, docs: &[Document]) -> Result<()> {
        self.store(docs)
    }

    fn search(&mut self, keyword: &Keyword) -> Result<SearchHits> {
        Scheme2Client::search(self, keyword)
    }

    fn search_many(&mut self, keywords: &[Keyword]) -> Result<Vec<SearchHits>> {
        Scheme2Client::search_many(self, keywords)
    }

    fn scheme_name(&self) -> &'static str {
        "scheme2"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Document;

    fn client(config: Scheme2Config) -> InMemoryScheme2Client {
        let mut c = InMemoryScheme2Client::new_in_memory(MasterKey::from_seed(11), config);
        c.drbg = HmacDrbg::from_u64(3);
        c
    }

    fn docs() -> Vec<Document> {
        vec![
            Document::new(0, b"doc zero".to_vec(), ["flu", "fever"]),
            Document::new(1, b"doc one".to_vec(), ["fever"]),
            Document::new(2, b"doc two".to_vec(), ["measles"]),
        ]
    }

    #[test]
    fn store_and_search_end_to_end() {
        let mut c = client(Scheme2Config::standard().with_chain_length(64));
        c.store(&docs()).unwrap();
        assert_eq!(
            c.search(&Keyword::new("fever")).unwrap(),
            vec![(0, b"doc zero".to_vec()), (1, b"doc one".to_vec())]
        );
        assert!(c.search(&Keyword::new("absent")).unwrap().is_empty());
    }

    #[test]
    fn interleaved_updates_and_searches() {
        let mut c = client(Scheme2Config::standard().with_chain_length(128));
        c.store(&docs()).unwrap();
        for round in 0u64..10 {
            let id = 10 + round;
            c.store(&[Document::new(
                id,
                format!("r{round}").into_bytes(),
                ["fever"],
            )])
            .unwrap();
            let hits = c.search(&Keyword::new("fever")).unwrap();
            assert_eq!(hits.len(), 3 + round as usize, "round {round}");
        }
    }

    #[test]
    fn one_round_per_operation() {
        let mut c = client(Scheme2Config::standard().with_chain_length(64));
        let meter = c.meter();
        c.store(&docs()).unwrap();
        // 1 PutDocs + 1 AppendGenerations.
        assert_eq!(meter.snapshot().rounds, 2);
        meter.reset();
        c.search(&Keyword::new("fever")).unwrap();
        assert_eq!(meter.snapshot().rounds, 1, "Table 1: one-round search");
        meter.reset();
        c.fake_update(&[Keyword::new("fever")]).unwrap();
        assert_eq!(meter.snapshot().rounds, 1, "Table 1: one-round update");
    }

    #[test]
    fn update_bandwidth_scales_with_batch_not_database() {
        // The contrast with Scheme 1: adding one doc to a huge database
        // costs O(1) bytes, not O(capacity).
        let mut c = client(Scheme2Config::standard().with_chain_length(512));
        // Large initial load.
        let initial: Vec<Document> = (0..200u64)
            .map(|i| Document::new(i, vec![0u8; 10], [format!("kw{}", i % 50)]))
            .collect();
        c.store(&initial).unwrap();
        let meter = c.meter();
        meter.reset();
        c.store(&[Document::new(400, b"tiny".to_vec(), ["kw1"])])
            .unwrap();
        let up = meter.snapshot().bytes_up;
        assert!(
            up < 400,
            "single-doc update should be small, got {up} bytes"
        );
    }

    #[test]
    fn ctr_policy_always_advances_every_update() {
        let mut c = client(Scheme2Config::base(64));
        assert_eq!(c.state().ctr, 0);
        c.store(&docs()).unwrap();
        assert_eq!(c.state().ctr, 1);
        c.store(&[Document::new(9, vec![], ["x"])]).unwrap();
        assert_eq!(c.state().ctr, 2);
    }

    #[test]
    fn opt2_reuses_counter_between_searches() {
        let mut c = client(
            Scheme2Config::standard()
                .with_chain_length(64)
                .with_ctr_policy(CtrPolicy::OnSearchOnly),
        );
        c.store(&docs()).unwrap();
        assert_eq!(c.state().ctr, 1);
        // No search since: three more updates reuse ctr = 1.
        for i in 0..3u64 {
            c.store(&[Document::new(10 + i, vec![], ["fever"])])
                .unwrap();
            assert_eq!(c.state().ctr, 1, "update {i} must reuse the counter");
        }
        // All four generations are still searchable.
        assert_eq!(c.search(&Keyword::new("fever")).unwrap().len(), 5);
        // After the search the next update advances.
        c.store(&[Document::new(20, vec![], ["fever"])]).unwrap();
        assert_eq!(c.state().ctr, 2);
        assert_eq!(c.search(&Keyword::new("fever")).unwrap().len(), 6);
    }

    #[test]
    fn chain_exhaustion_is_reported() {
        let mut c = client(Scheme2Config::base(2));
        c.store(&[Document::new(0, vec![], ["a"])]).unwrap();
        c.store(&[Document::new(1, vec![], ["a"])]).unwrap();
        let err = c.store(&[Document::new(2, vec![], ["a"])]).unwrap_err();
        assert!(matches!(err, SseError::ChainExhausted));
    }

    #[test]
    fn reinitialize_recovers_from_exhaustion() {
        let mut c = client(Scheme2Config::base(2));
        let mut all = vec![
            Document::new(0, b"zero".to_vec(), ["a"]),
            Document::new(1, b"one".to_vec(), ["a"]),
        ];
        c.store(&all[..1]).unwrap();
        c.store(&all[1..]).unwrap();
        assert!(matches!(
            c.store(&[Document::new(2, b"two".to_vec(), ["a"])]),
            Err(SseError::ChainExhausted)
        ));

        c.reinitialize(&all).unwrap();
        assert_eq!(c.state().epoch, 1);
        assert_eq!(c.search(&Keyword::new("a")).unwrap().len(), 2);

        // The fresh chain accepts new updates again.
        all.push(Document::new(2, b"two".to_vec(), ["a"]));
        c.store(&all[2..]).unwrap();
        assert_eq!(c.search(&Keyword::new("a")).unwrap().len(), 3);
    }

    #[test]
    fn state_round_trips_across_sessions() {
        let config = Scheme2Config::standard().with_chain_length(64);
        let mut c = client(config.clone());
        c.store(&docs()).unwrap();
        c.search(&Keyword::new("fever")).unwrap();
        let saved = c.state();

        // "New session": same key, same server, restored state.
        let server = std::mem::replace(
            c.server_mut(),
            super::super::server::Scheme2Server::new_in_memory(config.clone()),
        );
        let link = MeteredLink::new(server, Meter::new());
        let mut c2 = Scheme2Client::new_seeded(link, MasterKey::from_seed(11), config, 99);
        c2.restore_state(saved);
        assert_eq!(
            c2.search(&Keyword::new("fever")).unwrap().len(),
            2,
            "restored client must read existing data"
        );
        c2.store(&[Document::new(30, b"later".to_vec(), ["fever"])])
            .unwrap();
        assert_eq!(c2.search(&Keyword::new("fever")).unwrap().len(), 3);
    }

    #[test]
    fn search_many_matches_individual_searches_in_one_round() {
        let mut c = client(Scheme2Config::standard().with_chain_length(64));
        c.store(&docs()).unwrap();
        let kws = [
            Keyword::new("fever"),
            Keyword::new("absent"),
            Keyword::new("measles"),
        ];
        let individual: Vec<_> = kws.iter().map(|w| c.search(w).unwrap()).collect();
        let meter = c.meter();
        meter.reset();
        let batched = c.search_many(&kws).unwrap();
        assert_eq!(
            meter.snapshot().rounds,
            1,
            "batched search is 1 round total"
        );
        assert_eq!(batched, individual);
    }

    #[test]
    fn search_many_counts_as_search_for_opt2() {
        let mut c = client(
            Scheme2Config::standard()
                .with_chain_length(64)
                .with_ctr_policy(CtrPolicy::OnSearchOnly),
        );
        c.store(&docs()).unwrap();
        c.store(&[Document::new(9, vec![], ["fever"])]).unwrap();
        assert_eq!(c.state().ctr, 1, "no search yet: counter reused");
        c.search_many(&[Keyword::new("fever")]).unwrap();
        c.store(&[Document::new(10, vec![], ["fever"])]).unwrap();
        assert_eq!(c.state().ctr, 2, "batched search must trigger the advance");
    }

    #[test]
    fn remove_deletes_postings_and_blobs() {
        let mut c = client(Scheme2Config::standard().with_chain_length(64));
        let d = docs();
        c.store(&d).unwrap();
        assert_eq!(c.search(&Keyword::new("fever")).unwrap().len(), 2);

        // Remove doc 1 ("fever" only).
        c.remove(&d[1..2]).unwrap();
        let hits = c.search(&Keyword::new("fever")).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, 0);
        // Blob is gone from the store too.
        assert_eq!(c.server_mut().stored_docs(), 2);
        // Other keywords untouched.
        assert_eq!(c.search(&Keyword::new("measles")).unwrap().len(), 1);
    }

    #[test]
    fn remove_then_readd_cycles() {
        let mut c = client(Scheme2Config::standard().with_chain_length(256));
        let d = Document::new(5, b"cycled".to_vec(), ["kw"]);
        for round in 0..4 {
            c.store(std::slice::from_ref(&d)).unwrap();
            assert_eq!(
                c.search(&Keyword::new("kw")).unwrap().len(),
                1,
                "round {round}: present after add"
            );
            c.remove(std::slice::from_ref(&d)).unwrap();
            assert!(
                c.search(&Keyword::new("kw")).unwrap().is_empty(),
                "round {round}: gone after remove"
            );
        }
    }

    #[test]
    fn removal_works_with_cache_disabled_and_enabled() {
        for cache in [true, false] {
            let mut c = client(
                Scheme2Config::standard()
                    .with_chain_length(256)
                    .with_server_cache(cache),
            );
            c.store(&docs()).unwrap();
            // Prime the cache (when enabled) before the delete arrives.
            c.search(&Keyword::new("fever")).unwrap();
            c.remove(&docs()[..1]).unwrap();
            let ids: Vec<u64> = c
                .search(&Keyword::new("fever"))
                .unwrap()
                .iter()
                .map(|(id, _)| *id)
                .collect();
            assert_eq!(ids, vec![1], "cache={cache}");
        }
    }

    #[test]
    fn remove_consumes_chain_budget_like_updates() {
        let mut c = client(Scheme2Config::base(2));
        let d = Document::new(0, vec![], ["kw"]);
        c.store(std::slice::from_ref(&d)).unwrap();
        c.remove(std::slice::from_ref(&d)).unwrap();
        assert!(matches!(
            c.store(&[Document::new(1, vec![], ["kw"])]),
            Err(SseError::ChainExhausted)
        ));
    }

    #[test]
    fn fake_updates_add_no_results() {
        let mut c = client(Scheme2Config::standard().with_chain_length(64));
        c.store(&docs()).unwrap();
        let before = c.search(&Keyword::new("fever")).unwrap();
        c.fake_update(&[Keyword::new("fever"), Keyword::new("measles")])
            .unwrap();
        assert_eq!(c.search(&Keyword::new("fever")).unwrap(), before);
    }

    #[test]
    fn store_batch_matches_store_results() {
        let mut a = client(Scheme2Config::standard().with_chain_length(64));
        let mut b = client(Scheme2Config::standard().with_chain_length(64));
        a.store(&docs()).unwrap();
        b.store_batch(&docs()).unwrap();
        assert_eq!(a.state(), b.state());
        for w in ["flu", "fever", "measles", "absent"] {
            assert_eq!(
                a.search(&Keyword::new(w)).unwrap(),
                b.search(&Keyword::new(w)).unwrap(),
                "keyword {w}"
            );
        }
    }

    #[test]
    fn fake_update_many_adds_no_results_and_uses_one_counter() {
        let mut c = client(Scheme2Config::base(64));
        c.store(&docs()).unwrap();
        let ctr_before = c.state().ctr;
        let before = c.search(&Keyword::new("fever")).unwrap();
        c.fake_update_many(&[
            vec![Keyword::new("fever")],
            vec![],
            vec![Keyword::new("measles"), Keyword::new("flu")],
        ])
        .unwrap();
        assert_eq!(
            c.state().ctr,
            ctr_before + 1,
            "all groups share one counter step"
        );
        assert_eq!(c.search(&Keyword::new("fever")).unwrap(), before);
    }

    #[test]
    fn chain_remaining_counts_down() {
        let mut c = client(Scheme2Config::base(10));
        assert_eq!(c.chain_remaining(), 10);
        c.store(&docs()).unwrap();
        assert_eq!(c.chain_remaining(), 9);
    }

    #[test]
    fn duplicate_doc_ids_across_generations_dedup_in_results() {
        let mut c = client(Scheme2Config::standard().with_chain_length(64));
        c.store(&[Document::new(0, b"v1".to_vec(), ["kw"])])
            .unwrap();
        c.search(&Keyword::new("kw")).unwrap();
        // Same doc id appears in a second generation (e.g. re-indexing).
        c.store(&[Document::new(0, b"v2".to_vec(), ["kw"])])
            .unwrap();
        let hits = c.search(&Keyword::new("kw")).unwrap();
        assert_eq!(hits.len(), 1, "dedup across generations");
        assert_eq!(hits[0].1, b"v2".to_vec(), "latest blob wins");
    }
}
