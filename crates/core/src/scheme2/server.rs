//! Scheme 2 server.
//!
//! Per keyword tag, the server keeps a [`GenerationList`] of masked
//! generations. On update it appends blindly (it cannot decrypt anything).
//! On search it receives `(t_w, t'_w)`, finds the tag in `O(log u)`, then
//! *walks the hash chain forward* from `t'_w`: at each element `e` it
//! checks `f'(e)` against the commitment of the next locked generation
//! (newest first), decrypting as commitments match. The walk length is the
//! measurable `l/2x`-style cost of Table 1 — exposed in
//! [`Scheme2ServerStats::chain_steps`].

use super::protocol::{self, GenerationEntry, Request};
use super::{key_commitment, Scheme2Config};
use crate::error::{Result, SseError};
use crate::journal::{IndexJournal, ServerRecovery};
use crate::proto_common;
use sse_index::bptree::BpTree;
use sse_index::postings::{Generation, GenerationList};
use sse_net::link::Service;
use sse_net::wire::{WireReader, WireWriter};
use sse_primitives::etm::EtmKey;
use sse_primitives::hashchain::chain_step;
use sse_storage::crc32::crc32;
use sse_storage::store::DocStore;
use sse_storage::{RealVfs, StorageError, Vfs};
use std::path::Path;
use std::sync::Arc;

/// Snapshot magic, v2: the body now leads with the `last_op_seq` covered
/// by the snapshot so journal replay can skip already-applied mutations.
const INDEX_MAGIC: &[u8; 8] = b"SSE2IDX2";
/// Index journal file name inside the server's home directory.
const JOURNAL_FILE: &str = "scheme2.wal";

/// Out-of-band observability counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct Scheme2ServerStats {
    /// Searches served.
    pub searches: u64,
    /// Total forward hash-chain steps across all searches.
    pub chain_steps: u64,
    /// Generations decrypted across all searches.
    pub generations_decrypted: u64,
    /// Generations served straight from the Optimization-1 cache.
    pub generations_from_cache: u64,
    /// Generation entries appended.
    pub generations_appended: u64,
    /// B+-tree nodes visited across lookups.
    pub tree_nodes_visited: u64,
}

/// The Scheme 2 server.
pub struct Scheme2Server {
    tree: BpTree<[u8; 32], GenerationList>,
    store: DocStore,
    config: Scheme2Config,
    stats: Scheme2ServerStats,
    /// Durable home directory (None for in-memory servers).
    dir: Option<std::path::PathBuf>,
    /// The VFS every index file goes through (real or fault-injecting).
    vfs: Arc<dyn Vfs>,
    /// Index mutation journal (None for in-memory servers).
    journal: Option<IndexJournal>,
    /// What the last [`Scheme2Server::open_durable`] had to repair.
    recovery: ServerRecovery,
}

impl Scheme2Server {
    /// In-memory server.
    #[must_use]
    pub fn new_in_memory(config: Scheme2Config) -> Self {
        Scheme2Server {
            tree: BpTree::new(),
            store: DocStore::in_memory(),
            config,
            stats: Scheme2ServerStats::default(),
            dir: None,
            vfs: RealVfs::arc(),
            journal: None,
            recovery: ServerRecovery::default(),
        }
    }

    /// Durable server persisting document blobs under `dir`. Recovery
    /// brings back everything acknowledged before a crash: the document
    /// store replays its WAL, the index snapshot (if any) is loaded, and
    /// index mutations journaled after the snapshot are re-applied in
    /// order.
    ///
    /// # Errors
    /// Storage errors while opening or recovering the document store, a
    /// corrupt index snapshot, or a corrupt journal record.
    pub fn open_durable(config: Scheme2Config, dir: &Path) -> Result<Self> {
        Self::open_durable_with_vfs(RealVfs::arc(), config, dir)
    }

    /// [`Scheme2Server::open_durable`] over an explicit [`Vfs`] (fault
    /// injection runs the whole server through a
    /// [`sse_storage::FaultVfs`]).
    ///
    /// # Errors
    /// As [`Scheme2Server::open_durable`], plus injected faults.
    pub fn open_durable_with_vfs(
        vfs: Arc<dyn Vfs>,
        config: Scheme2Config,
        dir: &Path,
    ) -> Result<Self> {
        let store = DocStore::open_with_vfs(
            vfs.clone(),
            dir,
            sse_storage::store::StoreOptions::default(),
        )?;
        let store_recovery = store.recovery_report();
        let mut server = Scheme2Server {
            tree: BpTree::new(),
            store,
            config,
            stats: Scheme2ServerStats::default(),
            dir: Some(dir.to_path_buf()),
            vfs: vfs.clone(),
            journal: None,
            recovery: ServerRecovery::default(),
        };
        let index_path = dir.join("scheme2.index");
        let mut snapshot_seq = 0u64;
        if vfs.exists(&index_path) {
            let bytes = vfs.read(&index_path).map_err(StorageError::Io)?;
            snapshot_seq = server.load_index_bytes(&bytes)?;
        }
        let (journal, journal_recovery) =
            IndexJournal::open_with_vfs(vfs, &dir.join(JOURNAL_FILE), true, snapshot_seq)?;
        for raw in &journal_recovery.replay {
            server.replay_mutation(raw)?;
        }
        server.journal = Some(journal);
        server.recovery = ServerRecovery {
            index_ops_replayed: journal_recovery.replay.len() as u64,
            index_torn_bytes: journal_recovery.torn_bytes_truncated,
            store_snapshot_loaded: store_recovery.snapshot_loaded,
            store_wal_records_replayed: store_recovery.wal_records_replayed,
            store_torn_bytes: store_recovery.torn_bytes_truncated,
        };
        Ok(server)
    }

    /// What the last [`Scheme2Server::open_durable`] had to repair.
    #[must_use]
    pub fn recovery(&self) -> ServerRecovery {
        self.recovery
    }

    /// Persist the generation lists to a CRC-protected snapshot. The
    /// Optimization-1 plaintext cache is *not* persisted — it is an
    /// optimization the next search rebuilds, and keeping recovered state
    /// minimal follows the principle of storing only what is necessary.
    ///
    /// # Errors
    /// Filesystem errors.
    pub fn save_index(&self, path: &Path) -> Result<()> {
        let mut body = WireWriter::new();
        body.put_u64(self.journal.as_ref().map_or(0, IndexJournal::last_seq));
        body.put_u64(self.tree.len() as u64);
        for (tag, list) in self.tree.iter() {
            body.put_array(tag);
            body.put_u64(list.len() as u64);
            for generation in list.iter() {
                body.put_bytes(&generation.masked_ids);
                body.put_array(&generation.key_commitment);
            }
        }
        let body = body.finish();
        let tmp = path.with_extension("tmp");
        {
            let mut f = self.vfs.create(&tmp).map_err(StorageError::Io)?;
            let mut header = Vec::with_capacity(12);
            header.extend_from_slice(INDEX_MAGIC);
            header.extend_from_slice(&crc32(&body).to_le_bytes());
            f.write_all(&header).map_err(StorageError::Io)?;
            f.write_all(&body).map_err(StorageError::Io)?;
            f.sync_data().map_err(StorageError::Io)?;
        }
        self.vfs.rename(&tmp, path).map_err(StorageError::Io)?;
        Ok(())
    }

    /// Load an index snapshot written by [`Scheme2Server::save_index`].
    ///
    /// # Errors
    /// Corruption (bad magic/CRC) or I/O failures.
    pub fn load_index(&mut self, path: &Path) -> Result<()> {
        let bytes = self.vfs.read(path).map_err(StorageError::Io)?;
        self.load_index_bytes(&bytes)?;
        Ok(())
    }

    /// Decode snapshot `bytes`, returning the `last_op_seq` it covers.
    fn load_index_bytes(&mut self, bytes: &[u8]) -> Result<u64> {
        if bytes.len() < 12 || &bytes[..8] != INDEX_MAGIC {
            return Err(SseError::Storage(StorageError::Corrupt {
                what: "scheme2 index snapshot",
                detail: "bad magic or truncated".to_string(),
            }));
        }
        let stored_crc = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        let body = &bytes[12..];
        if crc32(body) != stored_crc {
            return Err(SseError::Storage(StorageError::Corrupt {
                what: "scheme2 index snapshot",
                detail: "checksum mismatch".to_string(),
            }));
        }
        let mut r = WireReader::new(body);
        let last_op_seq = r.get_u64()?;
        let n = r.get_count(40)?;
        let mut tree = BpTree::new();
        for _ in 0..n {
            let tag = r.get_array32()?;
            let gens = r.get_count(40)?;
            let mut list = GenerationList::new();
            for _ in 0..gens {
                let masked_ids = r.get_bytes()?.to_vec();
                let key_commitment = r.get_array32()?;
                list.push(Generation {
                    masked_ids,
                    key_commitment,
                });
            }
            tree.insert(tag, list);
        }
        r.finish()?;
        self.tree = tree;
        Ok(last_op_seq)
    }

    /// Checkpoint everything durable, in crash-safe order: document store
    /// snapshot, then the index snapshot (which records the journal's
    /// `last_op_seq`), then journal truncation. A crash between any two
    /// steps recovers correctly: the snapshot's sequence number tells
    /// replay exactly which journaled mutations are already inside it.
    ///
    /// # Errors
    /// Filesystem errors.
    pub fn checkpoint(&mut self, dir: &Path) -> Result<()> {
        self.store.checkpoint()?;
        self.save_index(&dir.join("scheme2.index"))?;
        if let Some(journal) = &mut self.journal {
            journal.reset()?;
        }
        Ok(())
    }

    /// Checkpoint into the server's own home directory; no-op for
    /// in-memory servers.
    ///
    /// # Errors
    /// Filesystem errors.
    pub fn checkpoint_home(&mut self) -> Result<()> {
        match self.dir.clone() {
            Some(dir) => self.checkpoint(&dir),
            None => Ok(()),
        }
    }

    /// Number of unique keywords indexed (`u`).
    #[must_use]
    pub fn unique_keywords(&self) -> usize {
        self.tree.len()
    }

    /// Number of stored documents.
    #[must_use]
    pub fn stored_docs(&self) -> usize {
        self.store.len()
    }

    /// Height of the tag tree.
    #[must_use]
    pub fn tree_height(&self) -> usize {
        self.tree.height()
    }

    /// Observability counters.
    #[must_use]
    pub fn stats(&self) -> Scheme2ServerStats {
        self.stats
    }

    /// Reset the observability counters.
    pub fn reset_stats(&mut self) {
        self.stats = Scheme2ServerStats::default();
    }

    /// Total stored index bytes across all generation lists (diagnostic).
    #[must_use]
    pub fn index_bytes(&self) -> usize {
        self.tree.iter().map(|(_, l)| l.stored_bytes()).sum()
    }

    /// Append `raw` to the index journal (durable servers only). A failed
    /// append refuses the mutation: nothing may be acknowledged that a
    /// restart would lose.
    fn journal_mutation(&mut self, raw: &[u8]) -> Result<()> {
        if let Some(journal) = &mut self.journal {
            journal.append(raw)?;
        }
        Ok(())
    }

    /// Re-apply one journaled mutation during recovery (no re-journaling).
    fn replay_mutation(&mut self, raw: &[u8]) -> Result<()> {
        let resp = match protocol::decode_request(raw)? {
            Request::AppendGenerations(entries) => self.handle_append(raw, entries, false),
            Request::ResetIndex => self.handle_reset_index(raw, false),
            _ => {
                return Err(SseError::Storage(StorageError::Corrupt {
                    what: "scheme2 index journal",
                    detail: "journal holds a non-mutating request".to_string(),
                }))
            }
        };
        proto_common::decode_ack(&resp)
    }

    fn handle_append(
        &mut self,
        raw: &[u8],
        entries: Vec<GenerationEntry>,
        durable: bool,
    ) -> Vec<u8> {
        if durable {
            if let Err(e) = self.journal_mutation(raw) {
                return proto_common::encode_error(&e.to_string());
            }
        }
        for GenerationEntry {
            tag,
            sealed_ids,
            commitment,
        } in entries
        {
            let generation = Generation {
                masked_ids: sealed_ids,
                key_commitment: commitment,
            };
            match self.tree.get_mut(&tag) {
                Some(list) => list.push(generation),
                None => {
                    let mut list = GenerationList::new();
                    list.push(generation);
                    self.tree.insert(tag, list);
                }
            }
            self.stats.generations_appended += 1;
        }
        proto_common::encode_ack()
    }

    fn handle_reset_index(&mut self, raw: &[u8], durable: bool) -> Vec<u8> {
        if durable {
            if let Err(e) = self.journal_mutation(raw) {
                return proto_common::encode_error(&e.to_string());
            }
        }
        self.tree = BpTree::new();
        proto_common::encode_ack()
    }

    fn handle_request(&mut self, raw: &[u8], request: Request) -> Vec<u8> {
        match request {
            Request::PutDocs(docs) => {
                for (id, blob) in docs {
                    if let Err(e) = self.store.put(id, &blob) {
                        return proto_common::encode_error(&e.to_string());
                    }
                }
                proto_common::encode_ack()
            }
            Request::AppendGenerations(entries) => self.handle_append(raw, entries, true),
            Request::Search { tag, t_prime } => match self.search_one(tag, t_prime) {
                Ok(docs) => proto_common::encode_result(&docs),
                Err(msg) => proto_common::encode_error(&msg),
            },
            Request::SearchMany(trapdoors) => {
                let mut results = Vec::with_capacity(trapdoors.len());
                for (tag, t_prime) in trapdoors {
                    match self.search_one(tag, t_prime) {
                        Ok(docs) => results.push(docs),
                        Err(msg) => return proto_common::encode_error(&msg),
                    }
                }
                proto_common::encode_result_many(&results)
            }
            Request::ResetIndex => self.handle_reset_index(raw, true),
            Request::Checkpoint => {
                let Some(dir) = self.dir.clone() else {
                    return proto_common::encode_error(
                        "checkpoint requested on an in-memory server",
                    );
                };
                match self.checkpoint(&dir) {
                    Ok(()) => proto_common::encode_ack(),
                    Err(e) => proto_common::encode_error(&e.to_string()),
                }
            }
            Request::RemoveDocs(ids) => {
                for id in ids {
                    // Deleting an unknown id is a no-op, not an error: the
                    // posting-side delete entries may arrive first.
                    let _ = self.store.delete(id);
                }
                proto_common::encode_ack()
            }
        }
    }

    /// Execute one Fig. 4 search, returning the matching encrypted
    /// documents or an error description.
    fn search_one(
        &mut self,
        tag: [u8; 32],
        t_prime: [u8; 32],
    ) -> std::result::Result<Vec<(u64, Vec<u8>)>, String> {
        let max_walk = self.config.chain_length as usize + 1;
        let use_cache = self.config.server_cache;

        let (found, tree_stats) = self.tree.get_with_stats(&tag);
        self.stats.tree_nodes_visited += tree_stats.nodes_visited as u64;
        if found.is_none() {
            self.stats.searches += 1;
            return Ok(Vec::new());
        }
        // Re-borrow mutably (the immutable borrow above was for stats).
        let list = self.tree.get_mut(&tag).expect("checked present");

        self.stats.generations_from_cache += list.cached_generations() as u64;

        // Unlock the undecrypted suffix newest-to-oldest while walking the
        // chain forward from the trapdoor. Each generation decrypts to an
        // (added ids, deleted ids) pair; deletions are the beyond-paper
        // dynamic-SSE extension (an empty delete list is the paper's case).
        let locked: Vec<Generation> = list.undecrypted().to_vec();
        let mut decoded: Vec<(Vec<u64>, Vec<u64>)> = vec![(Vec::new(), Vec::new()); locked.len()];
        let mut element = t_prime;
        let mut steps_used = 0usize;
        for (pos, generation) in locked.iter().enumerate().rev() {
            // Advance until the commitment matches this generation's key.
            let mut matched = key_commitment(&element) == generation.key_commitment;
            while !matched {
                if steps_used >= max_walk {
                    self.stats.searches += 1;
                    self.stats.chain_steps += steps_used as u64;
                    return Err(format!(
                        "chain walk exceeded {max_walk} steps; client/server desync"
                    ));
                }
                element = chain_step(&element);
                steps_used += 1;
                matched = key_commitment(&element) == generation.key_commitment;
            }
            // `element` is the generation key: decrypt the posting entry.
            let etm = EtmKey::new(&element);
            let plain = match etm.open(&generation.masked_ids) {
                Ok(p) => p,
                Err(e) => {
                    self.stats.searches += 1;
                    return Err(format!("generation decryption failed: {e}"));
                }
            };
            let mut r = WireReader::new(&plain);
            let parsed: std::result::Result<(Vec<u64>, Vec<u64>), _> = (|| {
                let adds = r.get_u64_vec()?;
                let dels = r.get_u64_vec()?;
                r.finish()?;
                Ok::<_, sse_net::wire::WireError>((adds, dels))
            })();
            match parsed {
                Ok(pair) => decoded[pos] = pair,
                Err(e) => {
                    self.stats.searches += 1;
                    return Err(format!("generation payload malformed: {e}"));
                }
            }
        }
        self.stats.chain_steps += steps_used as u64;
        self.stats.generations_decrypted += locked.len() as u64;
        self.stats.searches += 1;

        // Apply generations in chronological order on top of the
        // Optimization-1 cache: adds union in, deletes remove.
        let mut all_ids: Vec<u64> = list.cached_ids().to_vec();
        for (adds, dels) in &decoded {
            for id in adds {
                if !all_ids.contains(id) {
                    all_ids.push(*id);
                }
            }
            for id in dels {
                all_ids.retain(|x| x != id);
            }
        }
        if use_cache {
            list.set_cached(all_ids.clone());
        }

        all_ids.sort_unstable();
        Ok(self.store.get_many(&all_ids))
    }
}

impl Service for Scheme2Server {
    fn handle(&mut self, request: &[u8]) -> Vec<u8> {
        match protocol::decode_request(request) {
            Ok(req) => self.handle_request(request, req),
            Err(e) => proto_common::encode_error(&e.to_string()),
        }
    }

    fn on_shutdown(&mut self) {
        // Collapse the WAL + journal into snapshots so a clean shutdown
        // leaves nothing to replay. Best effort: a failing disk at
        // shutdown must not abort the process, and recovery replays the
        // logs anyway.
        let _ = self.checkpoint_home();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto_common::{decode_ack, decode_result};
    use sse_net::wire::WireWriter;
    use sse_primitives::hashchain::{walk_forward, HashChain};

    fn sealed_ids(key: &[u8; 32], ids: &[u64]) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.put_u64_vec(ids);
        w.put_u64_vec(&[]); // no deletions
        EtmKey::new(key).seal(&w.finish())
    }

    fn server() -> Scheme2Server {
        Scheme2Server::new_in_memory(Scheme2Config::standard().with_chain_length(64))
    }

    #[test]
    fn append_then_search_single_generation() {
        let mut s = server();
        s.handle(&protocol::encode_put_docs(&[
            (1, b"one".to_vec()),
            (2, b"two".to_vec()),
        ]));

        let chain = HashChain::new(&[b"kw", b"key"], 64);
        let k1 = chain.key_for_counter(1).unwrap();
        let tag = [9u8; 32];
        let resp = s.handle(&protocol::encode_append_generations(&[GenerationEntry {
            tag,
            sealed_ids: sealed_ids(&k1, &[1, 2]),
            commitment: key_commitment(&k1),
        }]));
        decode_ack(&resp).unwrap();

        // Trapdoor at the same counter: zero walk steps.
        let resp = s.handle(&protocol::encode_search(&tag, &k1));
        let docs = decode_result(&resp).unwrap();
        assert_eq!(docs, vec![(1, b"one".to_vec()), (2, b"two".to_vec())]);
        assert_eq!(s.stats().chain_steps, 0);
        assert_eq!(s.stats().generations_decrypted, 1);
    }

    #[test]
    fn newer_trapdoor_unlocks_older_generations() {
        let mut s = server();
        s.handle(&protocol::encode_put_docs(&[
            (1, b"a".to_vec()),
            (2, b"b".to_vec()),
        ]));
        let chain = HashChain::new(&[b"kw", b"key"], 64);
        let tag = [7u8; 32];
        // Two generations at counters 1 and 5.
        for (ctr, id) in [(1u64, 1u64), (5, 2)] {
            let k = chain.key_for_counter(ctr).unwrap();
            s.handle(&protocol::encode_append_generations(&[GenerationEntry {
                tag,
                sealed_ids: sealed_ids(&k, &[id]),
                commitment: key_commitment(&k),
            }]));
        }
        // Trapdoor at counter 9: walk 4 steps to reach k(5), then 4 more to
        // k(1).
        let t9 = chain.key_for_counter(9).unwrap();
        let resp = s.handle(&protocol::encode_search(&tag, &t9));
        let docs = decode_result(&resp).unwrap();
        assert_eq!(docs.len(), 2);
        assert_eq!(s.stats().chain_steps, 8);
    }

    #[test]
    fn cache_skips_decrypted_generations() {
        let mut s = server();
        s.handle(&protocol::encode_put_docs(&[
            (1, b"a".to_vec()),
            (2, b"b".to_vec()),
        ]));
        let chain = HashChain::new(&[b"kw", b"key"], 64);
        let tag = [3u8; 32];
        let k1 = chain.key_for_counter(1).unwrap();
        s.handle(&protocol::encode_append_generations(&[GenerationEntry {
            tag,
            sealed_ids: sealed_ids(&k1, &[1]),
            commitment: key_commitment(&k1),
        }]));

        let t = chain.key_for_counter(2).unwrap();
        decode_result(&s.handle(&protocol::encode_search(&tag, &t))).unwrap();
        assert_eq!(s.stats().generations_decrypted, 1);

        // Second search: generation already cached, nothing to decrypt.
        decode_result(&s.handle(&protocol::encode_search(&tag, &t))).unwrap();
        assert_eq!(s.stats().generations_decrypted, 1, "no re-decryption");
        assert_eq!(s.stats().generations_from_cache, 1);

        // Append another generation; only the new one is decrypted.
        let k3 = chain.key_for_counter(3).unwrap();
        s.handle(&protocol::encode_append_generations(&[GenerationEntry {
            tag,
            sealed_ids: sealed_ids(&k3, &[2]),
            commitment: key_commitment(&k3),
        }]));
        let t4 = chain.key_for_counter(4).unwrap();
        let docs = decode_result(&s.handle(&protocol::encode_search(&tag, &t4))).unwrap();
        assert_eq!(docs.len(), 2);
        assert_eq!(s.stats().generations_decrypted, 2);
    }

    #[test]
    fn cache_disabled_redecrypts_every_time() {
        let mut s = Scheme2Server::new_in_memory(
            Scheme2Config::standard()
                .with_chain_length(64)
                .with_server_cache(false),
        );
        s.handle(&protocol::encode_put_docs(&[(1, b"a".to_vec())]));
        let chain = HashChain::new(&[b"kw", b"key"], 64);
        let tag = [3u8; 32];
        let k1 = chain.key_for_counter(1).unwrap();
        s.handle(&protocol::encode_append_generations(&[GenerationEntry {
            tag,
            sealed_ids: sealed_ids(&k1, &[1]),
            commitment: key_commitment(&k1),
        }]));
        let t = chain.key_for_counter(2).unwrap();
        decode_result(&s.handle(&protocol::encode_search(&tag, &t))).unwrap();
        decode_result(&s.handle(&protocol::encode_search(&tag, &t))).unwrap();
        assert_eq!(
            s.stats().generations_decrypted,
            2,
            "no cache: decrypt twice"
        );
    }

    #[test]
    fn unknown_tag_returns_empty() {
        let mut s = server();
        let resp = s.handle(&protocol::encode_search(&[1u8; 32], &[2u8; 32]));
        assert_eq!(decode_result(&resp).unwrap(), vec![]);
    }

    #[test]
    fn stale_trapdoor_cannot_unlock_newer_generation() {
        // One-wayness in action: a trapdoor issued at counter 1 cannot
        // unlock a generation keyed at counter 5 (the walk would need to go
        // backwards). The server reports desync after exhausting the bound.
        let mut s = server();
        let chain = HashChain::new(&[b"kw", b"key"], 64);
        let tag = [8u8; 32];
        let k5 = chain.key_for_counter(5).unwrap();
        s.handle(&protocol::encode_append_generations(&[GenerationEntry {
            tag,
            sealed_ids: sealed_ids(&k5, &[1]),
            commitment: key_commitment(&k5),
        }]));
        let t1 = chain.key_for_counter(1).unwrap();
        let resp = s.handle(&protocol::encode_search(&tag, &t1));
        assert!(decode_result(&resp).is_err(), "must not decrypt the future");
    }

    #[test]
    fn reset_index_clears_keywords_keeps_docs() {
        let mut s = server();
        s.handle(&protocol::encode_put_docs(&[(1, b"kept".to_vec())]));
        let chain = HashChain::new(&[b"kw", b"key"], 64);
        let k = chain.key_for_counter(1).unwrap();
        s.handle(&protocol::encode_append_generations(&[GenerationEntry {
            tag: [1u8; 32],
            sealed_ids: sealed_ids(&k, &[1]),
            commitment: key_commitment(&k),
        }]));
        assert_eq!(s.unique_keywords(), 1);
        decode_ack(&s.handle(&protocol::encode_reset_index())).unwrap();
        assert_eq!(s.unique_keywords(), 0);
        assert_eq!(s.stored_docs(), 1);
    }

    #[test]
    fn corrupted_generation_yields_error_response() {
        let mut s = server();
        let chain = HashChain::new(&[b"kw", b"key"], 64);
        let k = chain.key_for_counter(1).unwrap();
        let mut sealed = sealed_ids(&k, &[1]);
        let len = sealed.len();
        sealed[len / 2] ^= 0xFF;
        s.handle(&protocol::encode_append_generations(&[GenerationEntry {
            tag: [1u8; 32],
            sealed_ids: sealed,
            commitment: key_commitment(&k),
        }]));
        let resp = s.handle(&protocol::encode_search(&[1u8; 32], &k));
        assert!(decode_result(&resp).is_err());
    }

    #[test]
    fn walk_costs_scale_with_counter_gap() {
        let mut s = server();
        let chain = HashChain::new(&[b"kw", b"key"], 64);
        let tag = [2u8; 32];
        let k10 = chain.key_for_counter(10).unwrap();
        s.handle(&protocol::encode_append_generations(&[GenerationEntry {
            tag,
            sealed_ids: sealed_ids(&k10, &[1]),
            commitment: key_commitment(&k10),
        }]));
        // Sanity: walking forward from counter 30's key passes counter 10's.
        let t30 = chain.key_for_counter(30).unwrap();
        assert_eq!(walk_forward(&t30, 20), k10);
        decode_result(&s.handle(&protocol::encode_search(&tag, &t30))).unwrap();
        assert_eq!(s.stats().chain_steps, 20);
    }
}
