//! Scheme 2 server.
//!
//! Per keyword tag, the server keeps a [`GenerationList`] of masked
//! generations. On update it appends blindly (it cannot decrypt anything).
//! On search it receives `(t_w, t'_w)`, finds the tag in `O(log u)`, then
//! *walks the hash chain forward* from `t'_w`: at each element `e` it
//! checks `f'(e)` against the commitment of the next locked generation
//! (newest first), decrypting as commitments match. The walk length is the
//! measurable `l/2x`-style cost of Table 1 — exposed in
//! [`Scheme2ServerStats::chain_steps`].
//!
//! ## Sharding, group commit and snapshot reads
//!
//! Like Scheme 1, the tag tree is partitioned into N shards by
//! [`crate::shard::shard_of`] (see DESIGN.md §4d/§4e — the shard id is a
//! public function of the already-revealed tag, so leakage is unchanged).
//! Each shard is a group-commit pipeline:
//!
//! * **Appends** stage their journal record into the shard's
//!   [`GroupCommitter`] (one vectored write + one fsync per *group* of
//!   concurrent mutations), apply to the live tree in seq order after the
//!   group fsync, then publish an immutable copy-on-write snapshot.
//! * **Searches** resolve the tag — and walk the whole chain — against
//!   the shard's snapshot, never taking the shard mutex and never waiting
//!   on an fsync. The Optimization-1 cache is written back opportunistically
//!   afterwards: a `try_lock` on the live shard that is simply skipped if
//!   the shard is busy or has changed since the snapshot (the next search
//!   rebuilds the cache — it is an optimization, not state).
//!
//! Mutations touching several shards (`ResetIndex`, batched appends) stage
//! [`crate::shard`] batch slices under every affected committer's stage
//! lock (ascending) and swap all touched snapshots inside one odd-epoch
//! window, so crash recovery and racing searches both see them
//! all-or-nothing. Mutations hold the barrier read lock across their whole
//! stage→apply pipeline, so checkpoints (barrier writers) run fully
//! quiesced. Lock order: barrier → stage locks ascending → data locks
//! ascending → document store.

use super::protocol::{self, GenerationEntry, Request};
use super::{key_commitment, Scheme2Config};
use crate::commit::{CommitCounters, CommitStats, GroupCommitter};
use crate::error::{Result, SseError};
use crate::health::{ScrubFindings, TenantHealth};
use crate::journal::{IndexJournal, ServerRecovery};
use crate::proto_common;
use crate::shard::{self, shard_of, BatchId};
use parking_lot::{Mutex, MutexGuard, RwLock};
use sse_index::bptree::BpTree;
use sse_index::postings::{Generation, GenerationList};
use sse_net::link::Service;
use sse_net::wire::{WireReader, WireWriter};
use sse_primitives::etm::EtmKey;
use sse_primitives::hashchain::chain_step;
use sse_storage::crc32::crc32;
use sse_storage::lsm::{LsmDocStore, LsmKeywordMap};
use sse_storage::store::DocStore;
use sse_storage::{
    resolve_backend, BackendCounters, BackendKind, DocBlobStore, KeywordMap, RealVfs, StorageError,
    Vfs,
};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, PoisonError};

/// Snapshot magic, v2: the body leads with the `last_op_seq` covered by
/// the snapshot so journal replay can skip already-applied mutations.
const INDEX_MAGIC: &[u8; 8] = b"SSE2IDX2";
/// Shard manifest file inside the server's home directory.
const MANIFEST_FILE: &str = "scheme2.meta";

/// Index snapshot file for shard `i` (shard 0 keeps the pre-sharding name
/// so single-shard directories stay readable by and from older layouts).
fn index_file(i: usize) -> String {
    if i == 0 {
        "scheme2.index".to_string()
    } else {
        format!("scheme2.{i}.index")
    }
}

/// Journal file for shard `i` (same legacy-name rule as [`index_file`]).
fn journal_file(i: usize) -> String {
    if i == 0 {
        "scheme2.wal".to_string()
    } else {
        format!("scheme2.{i}.wal")
    }
}

/// LSM keyword-map file prefix for shard `i` (lsm backend only).
fn kw_prefix(i: usize) -> String {
    format!("scheme2.kw{i}")
}

/// Out-of-band observability counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct Scheme2ServerStats {
    /// Searches served.
    pub searches: u64,
    /// Total forward hash-chain steps across all searches.
    pub chain_steps: u64,
    /// Generations decrypted across all searches.
    pub generations_decrypted: u64,
    /// Generations served straight from the Optimization-1 cache.
    pub generations_from_cache: u64,
    /// Generation entries appended.
    pub generations_appended: u64,
    /// B+-tree nodes visited across lookups.
    pub tree_nodes_visited: u64,
    /// Searches answered entirely from the per-keyword search memo
    /// (no tree lookup, no decryption, at most a delta chain walk).
    pub cache_hits: u64,
    /// Cached-eligible searches that had to take the cold path (no memo
    /// entry, or the shard changed since it was recorded).
    pub cache_misses: u64,
    /// Chain steps memo hits avoided relative to an uncached walk.
    pub walk_steps_saved: u64,
}

/// Lock-free cells behind [`Scheme2ServerStats`], so concurrent requests
/// can count without taking any index lock.
#[derive(Default)]
struct StatsCells {
    searches: AtomicU64,
    chain_steps: AtomicU64,
    generations_decrypted: AtomicU64,
    generations_from_cache: AtomicU64,
    generations_appended: AtomicU64,
    tree_nodes_visited: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    walk_steps_saved: AtomicU64,
}

/// A shard's mutable state: the live tree plus the highest op-seq applied
/// to it. Mutations apply in seq order (`applied_seq + 1 == my_seq`).
struct ShardData {
    tree: BpTree<[u8; 32], GenerationList>,
    applied_seq: u64,
    /// Tags mutated since the last checkpoint. Only tracked under the lsm
    /// backend, which flushes exactly these into its keyword map; the
    /// btree backend rewrites the whole snapshot file and never records.
    dirty: HashSet<[u8; 32]>,
    /// A `ResetIndex` happened since the last checkpoint (lsm backend).
    cleared: bool,
    /// Durable per-shard keyword-map persistence (lsm backend only; the
    /// btree backend keeps the monolithic `scheme2.index` snapshot).
    kw_map: Option<LsmKeywordMap>,
}

impl ShardData {
    /// Record a durable mutation of `tag` for the next checkpoint flush.
    fn note_mutated(&mut self, tag: [u8; 32]) {
        if self.kw_map.is_some() {
            self.dirty.insert(tag);
        }
    }

    /// Record a full index reset for the next checkpoint flush.
    fn note_cleared(&mut self) {
        if self.kw_map.is_some() {
            self.dirty.clear();
            self.cleared = true;
        }
    }
}

/// The immutable view searches resolve against.
struct SnapShard {
    tree: BpTree<[u8; 32], GenerationList>,
    /// The highest op-seq applied to the tree in this snapshot. Search
    /// memo entries are keyed on it: a memo recorded at seq S is valid
    /// exactly while the shard's snapshot still carries seq S.
    applied_seq: u64,
}

/// Per-keyword search memo: everything the server learned from serving a
/// prior search, so a repeat search answers without touching the tree or
/// re-walking the chain. Purely in-memory — never persisted, rebuilt by
/// the first search after recovery.
///
/// Leakage note (DESIGN.md §4f): every field is a value the server
/// already computed while serving a search the client asked for — the
/// revealed trapdoor, the unlocked id set, the walk it performed. The
/// memo changes *when* the server recomputes, never *what* it knows.
#[derive(Clone)]
struct SearchMemo {
    /// Shard `applied_seq` the memoized answer was computed at.
    applied_seq: u64,
    /// Newest trapdoor seen for this tag (the walk start point).
    t_prime: [u8; 32],
    /// The unlocked document-id set, sorted.
    ids: Vec<u64>,
    /// Chain steps a from-scratch walk from `t_prime` would cost — what a
    /// memo hit saves.
    walk_cost: u64,
    /// Generations the memoized answer covers (credited to
    /// `generations_from_cache` on a hit).
    gens: u64,
}

/// Per-shard memo capacity; crossing it clears the map (crude but bounded
/// — the memo is an optimization, not state).
const MEMO_CAP: usize = 4096;

/// One index shard: group-commit pipeline + live tree + search snapshot.
struct ShardSlot {
    data: Mutex<ShardData>,
    /// Signaled whenever `applied_seq` advances.
    applied: Condvar,
    committer: GroupCommitter,
    snap: RwLock<Arc<SnapShard>>,
    /// Per-keyword search memo (see [`SearchMemo`]). A short-critical-
    /// section mutex: held only for a lookup or an insert, never across
    /// crypto or I/O, so the search path stays effectively lock-free.
    memo: Mutex<HashMap<[u8; 32], SearchMemo>>,
}

/// The Scheme 2 server.
pub struct Scheme2Server {
    /// Read-held by every mutation pipeline, write-held by checkpoints —
    /// a checkpoint must see every staged record already applied before
    /// it may snapshot and reset journals.
    barrier: RwLock<()>,
    shards: Vec<ShardSlot>,
    /// Seqlock epoch: odd while a multi-shard batch swaps its snapshots.
    epoch: AtomicU64,
    /// Contended shard-lock acquisitions, per shard (served via STATS).
    contention: Vec<AtomicU64>,
    /// Group-commit pipeline counters, shared by every shard's committer.
    commit_stats: Arc<CommitStats>,
    store: RwLock<Box<dyn DocBlobStore>>,
    /// Which storage backend persists this server's state.
    backend: BackendKind,
    config: Scheme2Config,
    stats: StatsCells,
    /// Durable home directory (None for in-memory servers).
    dir: Option<std::path::PathBuf>,
    /// The VFS every index file goes through (real or fault-injecting).
    vfs: Arc<dyn Vfs>,
    /// What the last [`Scheme2Server::open_durable`] had to repair.
    recovery: ServerRecovery,
    /// Per-tenant health cell: storage write failures degrade the server
    /// to read-only until [`Scheme2Server::repair`] succeeds.
    health: Arc<TenantHealth>,
}

impl Scheme2Server {
    /// In-memory server with a single index shard.
    #[must_use]
    pub fn new_in_memory(config: Scheme2Config) -> Self {
        Self::new_in_memory_sharded(config, 1)
    }

    /// In-memory server with `shards` independently locked index shards.
    #[must_use]
    pub fn new_in_memory_sharded(config: Scheme2Config, shards: usize) -> Self {
        let n = shards.max(1);
        let commit_stats = Arc::new(CommitStats::default());
        Scheme2Server {
            barrier: RwLock::new(()),
            shards: (0..n)
                .map(|_| ShardSlot {
                    data: Mutex::new(ShardData {
                        tree: BpTree::new(),
                        applied_seq: 0,
                        dirty: HashSet::new(),
                        cleared: false,
                        kw_map: None,
                    }),
                    applied: Condvar::new(),
                    committer: GroupCommitter::new_in_memory(Arc::clone(&commit_stats)),
                    snap: RwLock::new(Arc::new(SnapShard {
                        tree: BpTree::new(),
                        applied_seq: 0,
                    })),
                    memo: Mutex::new(HashMap::new()),
                })
                .collect(),
            epoch: AtomicU64::new(0),
            contention: (0..n).map(|_| AtomicU64::new(0)).collect(),
            commit_stats,
            store: RwLock::new(Box::new(DocStore::in_memory())),
            backend: BackendKind::Btree,
            config,
            stats: StatsCells::default(),
            dir: None,
            vfs: RealVfs::arc(),
            recovery: ServerRecovery::default(),
            health: Arc::new(TenantHealth::new()),
        }
    }

    /// Durable server persisting document blobs under `dir`, single index
    /// shard. Recovery brings back everything acknowledged before a
    /// crash: the document store replays its WAL, each shard's index
    /// snapshot (if any) is loaded, and index mutations journaled after
    /// the snapshots are re-applied in order (incomplete cross-shard
    /// batches excluded).
    ///
    /// # Errors
    /// Storage errors while opening or recovering the document store, a
    /// corrupt index snapshot, or a corrupt journal record.
    pub fn open_durable(config: Scheme2Config, dir: &Path) -> Result<Self> {
        Self::open_durable_with_vfs(RealVfs::arc(), config, dir)
    }

    /// [`Scheme2Server::open_durable`] with an index sharded `shards`
    /// ways. The count is fixed at directory creation (recorded in the
    /// shard manifest); reopening adopts whatever the directory holds.
    ///
    /// # Errors
    /// As [`Scheme2Server::open_durable`].
    pub fn open_durable_sharded(config: Scheme2Config, dir: &Path, shards: usize) -> Result<Self> {
        Self::open_durable_with_vfs_sharded(RealVfs::arc(), config, dir, shards)
    }

    /// [`Scheme2Server::open_durable`] over an explicit [`Vfs`] (fault
    /// injection runs the whole server through a
    /// [`sse_storage::FaultVfs`]).
    ///
    /// # Errors
    /// As [`Scheme2Server::open_durable`], plus injected faults.
    pub fn open_durable_with_vfs(
        vfs: Arc<dyn Vfs>,
        config: Scheme2Config,
        dir: &Path,
    ) -> Result<Self> {
        Self::open_durable_with_vfs_sharded(vfs, config, dir, 1)
    }

    /// [`Scheme2Server::open_durable_sharded`] over an explicit [`Vfs`],
    /// with group commit enabled.
    ///
    /// # Errors
    /// As [`Scheme2Server::open_durable`], plus injected faults.
    pub fn open_durable_with_vfs_sharded(
        vfs: Arc<dyn Vfs>,
        config: Scheme2Config,
        dir: &Path,
        shards: usize,
    ) -> Result<Self> {
        Self::open_durable_with_vfs_opts(vfs, config, dir, shards, true)
    }

    /// [`Scheme2Server::open_durable_with_vfs_sharded`] with group commit
    /// switchable: when `group_commit` is false every journal record is
    /// flushed on its own (one fsync per op) — the benchmark's baseline
    /// arm. Durability and recovery semantics are identical either way.
    ///
    /// # Errors
    /// As [`Scheme2Server::open_durable`], plus injected faults.
    pub fn open_durable_with_vfs_opts(
        vfs: Arc<dyn Vfs>,
        config: Scheme2Config,
        dir: &Path,
        shards: usize,
        group_commit: bool,
    ) -> Result<Self> {
        Self::open_durable_with_backend(vfs, config, dir, shards, group_commit, BackendKind::Btree)
    }

    /// [`Scheme2Server::open_durable_with_vfs_opts`] with an explicit
    /// storage backend. The backend is fixed at directory creation
    /// (recorded in `backend.meta`); reopening under the other backend is
    /// a clean [`StorageError::BackendMismatch`], never silent corruption.
    /// Directories created before backend manifests existed are `btree`.
    ///
    /// Under [`BackendKind::Lsm`] the document store is an
    /// [`LsmDocStore`] and each shard's generation lists persist in an
    /// [`LsmKeywordMap`]: checkpoints flush only the tags mutated since
    /// the previous checkpoint as one new sorted run, instead of
    /// rewriting the whole index snapshot.
    ///
    /// # Errors
    /// As [`Scheme2Server::open_durable`], plus backend mismatch.
    pub fn open_durable_with_backend(
        vfs: Arc<dyn Vfs>,
        config: Scheme2Config,
        dir: &Path,
        shards: usize,
        group_commit: bool,
        backend: BackendKind,
    ) -> Result<Self> {
        let backend = resolve_backend(
            vfs.as_ref(),
            dir,
            backend,
            &[
                MANIFEST_FILE,
                "store.wal",
                "store.snapshot",
                &index_file(0),
                &journal_file(0),
            ],
        )?;
        let opts = sse_storage::store::StoreOptions::default();
        let store: Box<dyn DocBlobStore> = match backend {
            BackendKind::Btree => Box::new(DocStore::open_with_vfs(vfs.clone(), dir, opts)?),
            BackendKind::Lsm => Box::new(LsmDocStore::open_with_vfs(vfs.clone(), dir, opts)?),
        };
        let store_recovery = store.recovery_report();
        let n =
            shard::resolve_shard_count(vfs.as_ref(), dir, MANIFEST_FILE, &index_file(0), shards)?;
        let mut trees: Vec<BpTree<[u8; 32], GenerationList>> = Vec::with_capacity(n);
        let mut kw_maps: Vec<Option<LsmKeywordMap>> = Vec::with_capacity(n);
        let mut journals: Vec<IndexJournal> = Vec::with_capacity(n);
        let mut recoveries = Vec::with_capacity(n);
        for i in 0..n {
            let mut tree = BpTree::new();
            let mut snapshot_seq = 0u64;
            let mut kw_map = None;
            match backend {
                BackendKind::Btree => {
                    let index_path = dir.join(index_file(i));
                    if vfs.exists(&index_path) {
                        let bytes = vfs.read(&index_path).map_err(StorageError::Io)?;
                        snapshot_seq = load_shard_snapshot(&mut tree, &bytes)?;
                    }
                }
                BackendKind::Lsm => {
                    let map = LsmKeywordMap::open(vfs.clone(), dir, &kw_prefix(i))?;
                    snapshot_seq = map.last_seq();
                    for (tag, value) in map.iter_all()? {
                        tree.insert(tag, decode_generation_list(&value)?);
                    }
                    kw_map = Some(map);
                }
            }
            let (journal, recovery) = IndexJournal::open_with_vfs(
                vfs.clone(),
                &dir.join(journal_file(i)),
                true,
                snapshot_seq,
            )?;
            trees.push(tree);
            kw_maps.push(kw_map);
            journals.push(journal);
            recoveries.push(recovery);
        }
        let plan = shard::resolve_shard_recoveries(&recoveries)?;
        let mut replayed = 0u64;
        let mut dirty_sets: Vec<HashSet<[u8; 32]>> = vec![HashSet::new(); n];
        let mut cleared_flags = vec![false; n];
        for (si, (tree, apply)) in trees.iter_mut().zip(&plan.apply).enumerate() {
            for raw in apply {
                replay_into(tree, raw, &mut dirty_sets[si], &mut cleared_flags[si])?;
                replayed += 1;
            }
        }
        let commit_stats = Arc::new(CommitStats::default());
        let shards: Vec<ShardSlot> = trees
            .into_iter()
            .zip(journals)
            .zip(kw_maps)
            .zip(dirty_sets.into_iter().zip(cleared_flags))
            .map(|(((tree, journal), kw_map), (dirty, cleared))| {
                let applied_seq = journal.last_seq();
                // Replayed journal records are not yet in the keyword map;
                // keep their tags dirty so the next checkpoint flushes
                // them. Irrelevant for btree (whole-snapshot rewrites).
                let (dirty, cleared) = if kw_map.is_some() {
                    (dirty, cleared)
                } else {
                    (HashSet::new(), false)
                };
                ShardSlot {
                    snap: RwLock::new(Arc::new(SnapShard {
                        tree: tree.clone(),
                        applied_seq,
                    })),
                    data: Mutex::new(ShardData {
                        tree,
                        applied_seq,
                        dirty,
                        cleared,
                        kw_map,
                    }),
                    applied: Condvar::new(),
                    committer: GroupCommitter::new_durable(
                        journal,
                        group_commit,
                        Arc::clone(&commit_stats),
                    ),
                    memo: Mutex::new(HashMap::new()),
                }
            })
            .collect();
        Ok(Scheme2Server {
            barrier: RwLock::new(()),
            shards,
            epoch: AtomicU64::new(0),
            contention: (0..n).map(|_| AtomicU64::new(0)).collect(),
            commit_stats,
            store: RwLock::new(store),
            backend,
            config,
            stats: StatsCells::default(),
            dir: Some(dir.to_path_buf()),
            vfs,
            recovery: ServerRecovery {
                index_ops_replayed: replayed,
                index_torn_bytes: recoveries.iter().map(|r| r.torn_bytes_truncated).sum(),
                store_snapshot_loaded: store_recovery.snapshot_loaded,
                store_wal_records_replayed: store_recovery.wal_records_replayed,
                store_torn_bytes: store_recovery.torn_bytes_truncated,
            },
            health: Arc::new(TenantHealth::new()),
        })
    }

    /// This server's health cell, shared with the serving daemon's request
    /// router and the background scrub.
    #[must_use]
    pub fn health(&self) -> &Arc<TenantHealth> {
        &self.health
    }

    /// Report a failed mutation: storage-typed failures degrade the tenant
    /// to read-only (validation and protocol errors do not — they say
    /// nothing about the disk), then encode the protocol error response.
    fn mutation_failed(&self, e: &SseError) -> Vec<u8> {
        if matches!(e, SseError::Storage(_)) {
            self.health.note_storage_error(&e.to_string());
        }
        proto_common::encode_error(&e.to_string())
    }

    /// Attempt to repair a degraded server — the scrub's probe-write path.
    ///
    /// Under full quiescence (barrier write lock + all data locks, so no
    /// mutation is staging, flushing or applying), re-persist every
    /// shard's *applied* state — document-store checkpoint, then index
    /// snapshots (btree) or keyword-map flushes (lsm) — and then replace
    /// each shard's journal with a freshly opened empty one, clearing any
    /// group-commit poison. Seqs of failed groups are reclaimed: those
    /// records were never acknowledged and the fresh journal restarts
    /// densely at `applied_seq + 1`. The end-to-end write pass is itself
    /// the probe write: on success the health cell returns to Healthy.
    ///
    /// # Errors
    /// Filesystem errors (the disk is still bad); the server stays
    /// Degraded and the scrub retries later. In-memory servers have
    /// nothing to repair and always succeed.
    pub fn repair(&self) -> Result<()> {
        let Some(dir) = self.dir.clone() else {
            self.health.note_probe_ok();
            return Ok(());
        };
        let _quiesce = self.barrier.write();
        let mut datas = self.lock_all_data();
        self.store.write().checkpoint()?;
        match self.backend {
            BackendKind::Btree => {
                for (i, data) in datas.iter().enumerate() {
                    self.save_shard_snapshot(data, &dir.join(index_file(i)))?;
                }
                self.vfs.sync_dir(&dir).map_err(StorageError::Io)?;
            }
            BackendKind::Lsm => {
                for data in datas.iter_mut() {
                    flush_shard_kw_map(data)?;
                }
            }
        }
        for (i, data) in datas.iter().enumerate() {
            let path = dir.join(journal_file(i));
            let _ = self.vfs.remove_file(&path);
            let (journal, _) =
                IndexJournal::open_with_vfs(self.vfs.clone(), &path, true, data.applied_seq)?;
            self.shards[i].committer.replace_journal(journal);
        }
        self.health.note_probe_ok();
        Ok(())
    }

    /// Checksum-verify every on-disk artifact of this server (scrub
    /// integrity pass): WAL segments, index snapshots (btree) or LSM runs,
    /// and the document store's runs (lsm backend; heap pages carry no
    /// CRCs and are skipped).
    ///
    /// WAL segments and btree snapshots are prefix-stable / swapped by
    /// rename, so they are verified lock-free; LSM runs are swapped in
    /// place by flush/compaction and are verified under the shard data
    /// lock (store read lock for the doc store).
    ///
    /// # Errors
    /// [`StorageError::Corrupt`] on *confirmed* corruption — a bad-CRC
    /// record in the middle of a WAL (valid records follow it), a snapshot
    /// or run checksum mismatch. Torn WAL tails are repairable, counted in
    /// the findings, and never an error. I/O errors are transient.
    pub fn verify_files(&self) -> Result<ScrubFindings> {
        let mut findings = ScrubFindings::default();
        let Some(dir) = self.dir.clone() else {
            return Ok(findings);
        };
        let mut wal_paths: Vec<std::path::PathBuf> = (0..self.shards.len())
            .map(|i| dir.join(journal_file(i)))
            .collect();
        wal_paths.push(dir.join(if self.backend == BackendKind::Lsm {
            "doc.wal"
        } else {
            "store.wal"
        }));
        for path in &wal_paths {
            match sse_storage::wal::verify_file(self.vfs.as_ref(), path)? {
                sse_storage::wal::WalVerdict::Clean { .. } => findings.artifacts_verified += 1,
                sse_storage::wal::WalVerdict::TornTail { .. } => {
                    findings.artifacts_verified += 1;
                    findings.torn_tails_seen += 1;
                }
                sse_storage::wal::WalVerdict::Corrupt { at } => {
                    return Err(SseError::Storage(StorageError::Corrupt {
                        what: "wal segment",
                        detail: format!(
                            "scrub: mid-log checksum mismatch at byte {at} in {}",
                            path.display()
                        ),
                    }));
                }
            }
        }
        match self.backend {
            BackendKind::Btree => {
                for i in 0..self.shards.len() {
                    if verify_index_snapshot(self.vfs.as_ref(), &dir.join(index_file(i)))? {
                        findings.artifacts_verified += 1;
                    }
                }
            }
            BackendKind::Lsm => {
                for i in 0..self.shards.len() {
                    let data = self.lock_data(i);
                    if let Some(map) = &data.kw_map {
                        findings.artifacts_verified += map.verify_runs()?;
                    }
                }
            }
        }
        findings.artifacts_verified += self.store.read().verify()?;
        Ok(findings)
    }

    /// What the last [`Scheme2Server::open_durable`] had to repair.
    #[must_use]
    pub fn recovery(&self) -> ServerRecovery {
        self.recovery
    }

    /// Number of index shards.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Contended shard-lock acquisitions since startup, per shard.
    #[must_use]
    pub fn shard_contention(&self) -> Vec<u64> {
        self.contention
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Group-commit pipeline counters (groups, ops, fsyncs saved,
    /// snapshot swaps) since startup.
    #[must_use]
    pub fn commit_counters(&self) -> CommitCounters {
        self.commit_stats.counters()
    }

    /// The storage backend persisting this server's state.
    #[must_use]
    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    /// Per-backend storage counters (runs, compactions, bloom hit rates):
    /// the document store's plus every shard keyword map's. All zero
    /// under the btree backend.
    #[must_use]
    pub fn backend_counters(&self) -> BackendCounters {
        let mut c = self.store.read().counters();
        for i in 0..self.shards.len() {
            let data = self.lock_data(i);
            if let Some(map) = &data.kw_map {
                c.merge(&map.counters());
            }
        }
        c
    }

    /// Checkpoint everything durable, in crash-safe order: document store
    /// snapshot, then every shard's index snapshot (each recording its
    /// `applied_seq` as `last_op_seq`), then every journal truncation.
    /// The barrier write lock quiesces the mutation pipeline first, so
    /// every staged record is both durable and applied — no journal may
    /// be reset while a group is in flight, and the snapshots-before-any-
    /// reset order keeps cross-shard batch slices resolvable.
    ///
    /// # Errors
    /// Filesystem errors. No-op index-wise for in-memory servers.
    pub fn checkpoint(&self, dir: &Path) -> Result<()> {
        let _quiesce = self.barrier.write();
        let mut datas = self.lock_all_data();
        self.store.write().checkpoint()?;
        match self.backend {
            BackendKind::Btree => {
                for (i, data) in datas.iter().enumerate() {
                    self.save_shard_snapshot(data, &dir.join(index_file(i)))?;
                }
                // The snapshots committed via rename; one dir fsync makes
                // all the renames durable before any journal is reset.
                self.vfs.sync_dir(dir).map_err(StorageError::Io)?;
            }
            BackendKind::Lsm => {
                for data in datas.iter_mut() {
                    flush_shard_kw_map(data)?;
                }
            }
        }
        for slot in &self.shards {
            slot.committer.reset_journal()?;
        }
        Ok(())
    }

    /// Checkpoint into the server's own home directory; no-op for
    /// in-memory servers.
    ///
    /// # Errors
    /// Filesystem errors.
    pub fn checkpoint_home(&self) -> Result<()> {
        match self.dir.clone() {
            Some(dir) => self.checkpoint(&dir),
            None => Ok(()),
        }
    }

    /// Number of unique keywords indexed (`u`).
    #[must_use]
    pub fn unique_keywords(&self) -> usize {
        (0..self.shards.len())
            .map(|i| self.lock_data(i).tree.len())
            .sum()
    }

    /// Number of stored documents.
    #[must_use]
    pub fn stored_docs(&self) -> usize {
        self.store.read().len()
    }

    /// Height of the tallest shard's tag tree.
    #[must_use]
    pub fn tree_height(&self) -> usize {
        (0..self.shards.len())
            .map(|i| self.lock_data(i).tree.height())
            .max()
            .unwrap_or(0)
    }

    /// Observability counters.
    #[must_use]
    pub fn stats(&self) -> Scheme2ServerStats {
        Scheme2ServerStats {
            searches: self.stats.searches.load(Ordering::Relaxed),
            chain_steps: self.stats.chain_steps.load(Ordering::Relaxed),
            generations_decrypted: self.stats.generations_decrypted.load(Ordering::Relaxed),
            generations_from_cache: self.stats.generations_from_cache.load(Ordering::Relaxed),
            generations_appended: self.stats.generations_appended.load(Ordering::Relaxed),
            tree_nodes_visited: self.stats.tree_nodes_visited.load(Ordering::Relaxed),
            cache_hits: self.stats.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.stats.cache_misses.load(Ordering::Relaxed),
            walk_steps_saved: self.stats.walk_steps_saved.load(Ordering::Relaxed),
        }
    }

    /// Reset the observability counters.
    pub fn reset_stats(&self) {
        self.stats.searches.store(0, Ordering::Relaxed);
        self.stats.chain_steps.store(0, Ordering::Relaxed);
        self.stats.generations_decrypted.store(0, Ordering::Relaxed);
        self.stats
            .generations_from_cache
            .store(0, Ordering::Relaxed);
        self.stats.generations_appended.store(0, Ordering::Relaxed);
        self.stats.tree_nodes_visited.store(0, Ordering::Relaxed);
        self.stats.cache_hits.store(0, Ordering::Relaxed);
        self.stats.cache_misses.store(0, Ordering::Relaxed);
        self.stats.walk_steps_saved.store(0, Ordering::Relaxed);
    }

    /// Total stored index bytes across all generation lists (diagnostic).
    #[must_use]
    pub fn index_bytes(&self) -> usize {
        self.lock_all_data()
            .iter()
            .map(|s| s.tree.iter().map(|(_, l)| l.stored_bytes()).sum::<usize>())
            .sum()
    }

    /// Serve one request without exclusive access — the entry point the
    /// multi-tenant daemon's workers call concurrently. Searches run
    /// against immutable snapshots; mutations pipeline through the
    /// per-shard group committers.
    pub fn handle_shared(&self, request: &[u8]) -> Vec<u8> {
        self.handle_shared_with(request, Vec::new())
    }

    /// [`Self::handle_shared`] with a recycled response buffer: the hot
    /// `Search` branch encodes its result into `scratch` (capacity
    /// reused, contents discarded) so a steady-state search response
    /// costs no allocation when the caller recycles buffers through a
    /// pool. Every other request kind ignores the scratch — mutations
    /// and admin requests are not on the serving hot path.
    pub fn handle_shared_with(&self, request: &[u8], scratch: Vec<u8>) -> Vec<u8> {
        match protocol::decode_request(request) {
            Ok(Request::Search { tag, t_prime }) => match self.search_one(tag, t_prime) {
                Ok(docs) => proto_common::encode_result_with(&docs, scratch),
                Err(msg) => proto_common::encode_error(&msg),
            },
            Ok(req) => self.handle_request(req),
            Err(e) => proto_common::encode_error(&e.to_string()),
        }
    }

    /// Apply an `UPDATE_MANY` batch: every part must be a mutation
    /// (`PutDocs` or `AppendGenerations`). All parts are decoded first,
    /// then journaled as one cross-shard batch and applied all-or-nothing
    /// with respect to racing searches (all touched shards' snapshots swap
    /// inside one epoch window).
    pub fn apply_batch(&self, parts: &[&[u8]]) -> Vec<u8> {
        let mut docs: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut entries: Vec<GenerationEntry> = Vec::new();
        for part in parts {
            match protocol::decode_request(part) {
                Ok(Request::PutDocs(d)) => docs.extend(d),
                Ok(Request::AppendGenerations(e)) => entries.extend(e),
                Ok(_) => {
                    return proto_common::encode_error(
                        "batch parts must be mutations (PutDocs / AppendGenerations)",
                    )
                }
                Err(e) => return proto_common::encode_error(&e.to_string()),
            }
        }
        if !docs.is_empty() {
            let mut store = self.store.write();
            for (id, blob) in &docs {
                if let Err(e) = store.put(*id, blob) {
                    drop(store);
                    return self.mutation_failed(&SseError::Storage(e));
                }
            }
        }
        self.append_sharded(entries)
    }

    /// Acquire shard `i`'s data lock, counting a contended acquisition
    /// when the lock was not immediately free.
    fn lock_data(&self, i: usize) -> MutexGuard<'_, ShardData> {
        match self.shards[i].data.try_lock() {
            Some(guard) => guard,
            None => {
                self.contention[i].fetch_add(1, Ordering::Relaxed);
                self.shards[i].data.lock()
            }
        }
    }

    /// Lock every shard's data in ascending order (checkpoint / export).
    fn lock_all_data(&self) -> Vec<MutexGuard<'_, ShardData>> {
        (0..self.shards.len()).map(|i| self.lock_data(i)).collect()
    }

    /// Fetch shard `i`'s search snapshot, retrying around multi-shard
    /// swap windows (odd epoch) so a reader never observes a half-swapped
    /// batch across shards.
    fn snap(&self, i: usize) -> Arc<SnapShard> {
        loop {
            let before = self.epoch.load(Ordering::Acquire);
            if before & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let snap = Arc::clone(&self.shards[i].snap.read());
            if self.epoch.load(Ordering::Acquire) == before {
                return snap;
            }
        }
    }

    /// Publish shard `i`'s current tree as the immutable search snapshot.
    /// O(1): the tree clone shares all nodes copy-on-write.
    fn publish(&self, i: usize, data: &ShardData) {
        *self.shards[i].snap.write() = Arc::new(SnapShard {
            tree: data.tree.clone(),
            applied_seq: data.applied_seq,
        });
        self.commit_stats.note_swap();
    }

    /// Wait until shard `i` has applied every predecessor of `seq`, then
    /// run `apply`, advance `applied_seq`, publish the snapshot and wake
    /// successors. The caller must have made `seq` durable first.
    fn apply_at(&self, i: usize, seq: u64, apply: impl FnOnce(&mut ShardData)) {
        let slot = &self.shards[i];
        let mut data = self.lock_data(i);
        while data.applied_seq + 1 != seq {
            data = slot
                .applied
                .wait(data)
                .unwrap_or_else(PoisonError::into_inner);
        }
        apply(&mut data);
        data.applied_seq = seq;
        self.publish(i, &data);
        drop(data);
        slot.applied.notify_all();
    }

    /// Run one mutation through the full pipeline: stage its journal
    /// record(s) (one per affected shard, batch slices when several),
    /// wait for the group fsync(s), then apply in seq order and publish
    /// new snapshots. `idxs` must be ascending and non-empty. The caller
    /// must hold the barrier read lock.
    ///
    /// On partial durability (some shard's journal failed) nothing is
    /// applied anywhere: durable shards advance `applied_seq` without
    /// mutating (recovery's sibling-completeness check discards their
    /// on-disk slices too), failed shards are poisoned, and the client
    /// gets an error — the mutation is never acknowledged.
    fn commit_mutation(
        &self,
        idxs: &[usize],
        encode_for: impl Fn(usize) -> Vec<u8>,
        mut apply_for: impl FnMut(usize, &mut ShardData),
    ) -> Result<()> {
        debug_assert!(idxs.windows(2).all(|w| w[0] < w[1]));
        if idxs.len() == 1 {
            let i = idxs[0];
            let seq = self.shards[i].committer.stage(&encode_for(i))?;
            self.shards[i].committer.wait_durable(seq)?;
            self.apply_at(i, seq, |data| apply_for(i, data));
            return Ok(());
        }

        // Phase S — stage every slice atomically under all stage locks
        // (ascending), so the batch id (coordinator shard, coordinator
        // seq) is consistent and no foreign record interleaves.
        let shard_set: Vec<u32> = idxs.iter().map(|&i| i as u32).collect();
        let mut guards: Vec<_> = idxs
            .iter()
            .map(|&i| self.shards[i].committer.lock())
            .collect();
        if guards.iter().any(crate::commit::StageGuard::poisoned) {
            return Err(journal_unavailable());
        }
        let batch = BatchId {
            coordinator: shard_set[0],
            seq: guards[0].next_seq(),
        };
        let mut seqs = Vec::with_capacity(idxs.len());
        for (guard, &i) in guards.iter_mut().zip(idxs) {
            // Cannot fail: staging only errors on poison, checked above
            // while continuously holding every stage lock.
            seqs.push(guard.stage(&shard::encode_slice(batch, &shard_set, &encode_for(i)))?);
        }
        drop(guards);

        // Phase D — wait for every shard's group fsync.
        let mut durable = vec![false; idxs.len()];
        let mut first_err = None;
        for (k, &i) in idxs.iter().enumerate() {
            match self.shards[i].committer.wait_durable(seqs[k]) {
                Ok(()) => durable[k] = true,
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        let apply = first_err.is_none();

        // Phase R — wait (one shard at a time, holding nothing else)
        // until each durable shard has applied all our predecessors.
        // Stable once reached: our seq is the only possible successor.
        for (k, &i) in idxs.iter().enumerate() {
            if !durable[k] {
                continue;
            }
            let slot = &self.shards[i];
            let mut data = self.lock_data(i);
            while data.applied_seq + 1 != seqs[k] {
                data = slot
                    .applied
                    .wait(data)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        // Phase A — lock all durable shards (ascending) and swap them
        // atomically inside an odd-epoch window so snapshot readers see
        // the batch all-or-nothing.
        if apply {
            self.epoch.fetch_add(1, Ordering::AcqRel);
        }
        let mut held: Vec<(usize, MutexGuard<'_, ShardData>)> = Vec::with_capacity(idxs.len());
        for (k, &i) in idxs.iter().enumerate() {
            if durable[k] {
                held.push((k, self.lock_data(i)));
            }
        }
        for (k, data) in &mut held {
            debug_assert_eq!(data.applied_seq + 1, seqs[*k], "readiness must be stable");
            if apply {
                apply_for(idxs[*k], data);
            }
            data.applied_seq = seqs[*k];
        }
        if apply {
            for (k, data) in &held {
                self.publish(idxs[*k], data);
            }
        }
        drop(held);
        if apply {
            self.epoch.fetch_add(1, Ordering::AcqRel);
        }
        for (k, &i) in idxs.iter().enumerate() {
            if durable[k] {
                self.shards[i].applied.notify_all();
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Append generation entries: group per shard (preserving input order
    /// within each shard), then run the group-commit pipeline. The
    /// barrier read lock is held across the whole pipeline so barrier
    /// writers (checkpoints) always see it quiesced.
    fn append_sharded(&self, entries: Vec<GenerationEntry>) -> Vec<u8> {
        if entries.is_empty() {
            return proto_common::encode_ack();
        }
        let _pipeline = self.barrier.read();
        let n = self.shards.len();
        let mut groups: BTreeMap<usize, Vec<GenerationEntry>> = BTreeMap::new();
        for entry in entries {
            groups
                .entry(shard_of(&entry.tag, n))
                .or_default()
                .push(entry);
        }
        let idxs: Vec<usize> = groups.keys().copied().collect();
        let result = self.commit_mutation(
            &idxs,
            |i| protocol::encode_append_generations(&groups[&i]),
            |i, data| {
                for entry in &groups[&i] {
                    data.note_mutated(entry.tag);
                    append_entry(&mut data.tree, entry.clone());
                    self.stats
                        .generations_appended
                        .fetch_add(1, Ordering::Relaxed);
                }
            },
        );
        match result {
            Ok(()) => proto_common::encode_ack(),
            Err(e) => self.mutation_failed(&e),
        }
    }

    fn handle_reset_index(&self) -> Vec<u8> {
        // ResetIndex rewrites every shard, so the batch spans all N.
        let _pipeline = self.barrier.read();
        let idxs: Vec<usize> = (0..self.shards.len()).collect();
        let result = self.commit_mutation(
            &idxs,
            |_| protocol::encode_reset_index(),
            |_, data| {
                data.note_cleared();
                data.tree = BpTree::new();
            },
        );
        match result {
            Ok(()) => proto_common::encode_ack(),
            Err(e) => self.mutation_failed(&e),
        }
    }

    fn handle_request(&self, request: Request) -> Vec<u8> {
        match request {
            Request::PutDocs(docs) => {
                let mut store = self.store.write();
                for (id, blob) in docs {
                    if let Err(e) = store.put(id, &blob) {
                        drop(store);
                        return self.mutation_failed(&SseError::Storage(e));
                    }
                }
                proto_common::encode_ack()
            }
            Request::AppendGenerations(entries) => self.append_sharded(entries),
            Request::Search { tag, t_prime } => match self.search_one(tag, t_prime) {
                Ok(docs) => proto_common::encode_result(&docs),
                Err(msg) => proto_common::encode_error(&msg),
            },
            Request::SearchMany(trapdoors) => {
                let mut results = Vec::with_capacity(trapdoors.len());
                for (tag, t_prime) in trapdoors {
                    match self.search_one(tag, t_prime) {
                        Ok(docs) => results.push(docs),
                        Err(msg) => return proto_common::encode_error(&msg),
                    }
                }
                proto_common::encode_result_many(&results)
            }
            Request::ResetIndex => self.handle_reset_index(),
            Request::Checkpoint => {
                let Some(dir) = self.dir.clone() else {
                    return proto_common::encode_error(
                        "checkpoint requested on an in-memory server",
                    );
                };
                match self.checkpoint(&dir) {
                    Ok(()) => proto_common::encode_ack(),
                    Err(e) => self.mutation_failed(&e),
                }
            }
            Request::RemoveDocs(ids) => {
                let mut store = self.store.write();
                for id in ids {
                    // Deleting an unknown id is a no-op, not an error: the
                    // posting-side delete entries may arrive first.
                    let _ = store.delete(id);
                }
                proto_common::encode_ack()
            }
        }
    }

    /// Execute one Fig. 4 search, returning the matching encrypted
    /// documents or an error description. Lock-free against the index:
    /// the tag lookup and the entire chain walk run on the shard's
    /// immutable snapshot, never waiting on a shard mutex or an fsync.
    /// The Optimization-1 cache write-back afterwards is opportunistic
    /// (see [`Scheme2Server::write_back_cache`]).
    fn search_one(
        &self,
        tag: [u8; 32],
        t_prime: [u8; 32],
    ) -> std::result::Result<Vec<(u64, Vec<u8>)>, String> {
        let max_walk = self.config.chain_length as usize + 1;
        let use_cache = self.config.server_cache;

        let si = shard_of(&tag, self.shards.len());
        let snap = self.snap(si);

        // Memo fast path: if this keyword was searched before and the
        // shard has not changed since, answer without touching the tree
        // or the chain (same trapdoor), or after walking only the delta
        // between the new trapdoor and the memoized one (newer trapdoor).
        if use_cache {
            if let Some(docs) = self.try_memo(si, snap.applied_seq, &tag, &t_prime, max_walk) {
                return Ok(docs);
            }
        }

        let (found, tree_stats) = snap.tree.get_with_stats(&tag);
        self.stats
            .tree_nodes_visited
            .fetch_add(tree_stats.nodes_visited as u64, Ordering::Relaxed);
        let Some(list) = found else {
            self.stats.searches.fetch_add(1, Ordering::Relaxed);
            return Ok(Vec::new());
        };
        if use_cache {
            self.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
        }

        self.stats
            .generations_from_cache
            .fetch_add(list.cached_generations() as u64, Ordering::Relaxed);

        // Unlock the undecrypted suffix newest-to-oldest while walking the
        // chain forward from the trapdoor. Each generation decrypts to an
        // (added ids, deleted ids) pair; deletions are the beyond-paper
        // dynamic-SSE extension (an empty delete list is the paper's case).
        let locked: &[Generation] = list.undecrypted();
        let mut decoded: Vec<(Vec<u64>, Vec<u64>)> = vec![(Vec::new(), Vec::new()); locked.len()];
        let mut element = t_prime;
        let mut steps_used = 0usize;
        for (pos, generation) in locked.iter().enumerate().rev() {
            // Advance until the commitment matches this generation's key.
            let mut matched = key_commitment(&element) == generation.key_commitment;
            while !matched {
                if steps_used >= max_walk {
                    self.stats.searches.fetch_add(1, Ordering::Relaxed);
                    self.stats
                        .chain_steps
                        .fetch_add(steps_used as u64, Ordering::Relaxed);
                    return Err(format!(
                        "chain walk exceeded {max_walk} steps; client/server desync"
                    ));
                }
                element = chain_step(&element);
                steps_used += 1;
                matched = key_commitment(&element) == generation.key_commitment;
            }
            // `element` is the generation key: decrypt the posting entry.
            let etm = EtmKey::new(&element);
            let plain = match etm.open(&generation.masked_ids) {
                Ok(p) => p,
                Err(e) => {
                    self.stats.searches.fetch_add(1, Ordering::Relaxed);
                    return Err(format!("generation decryption failed: {e}"));
                }
            };
            let mut r = WireReader::new(&plain);
            let parsed: std::result::Result<(Vec<u64>, Vec<u64>), _> = (|| {
                let adds = r.get_u64_vec()?;
                let dels = r.get_u64_vec()?;
                r.finish()?;
                Ok::<_, sse_net::wire::WireError>((adds, dels))
            })();
            match parsed {
                Ok(pair) => decoded[pos] = pair,
                Err(e) => {
                    self.stats.searches.fetch_add(1, Ordering::Relaxed);
                    return Err(format!("generation payload malformed: {e}"));
                }
            }
        }
        self.stats
            .chain_steps
            .fetch_add(steps_used as u64, Ordering::Relaxed);
        self.stats
            .generations_decrypted
            .fetch_add(locked.len() as u64, Ordering::Relaxed);
        self.stats.searches.fetch_add(1, Ordering::Relaxed);

        // Apply generations in chronological order on top of the
        // Optimization-1 cache: adds union in, deletes remove.
        let mut all_ids: Vec<u64> = list.cached_ids().to_vec();
        for (adds, dels) in &decoded {
            for id in adds {
                if !all_ids.contains(id) {
                    all_ids.push(*id);
                }
            }
            for id in dels {
                all_ids.retain(|x| x != id);
            }
        }
        if use_cache && !locked.is_empty() {
            self.write_back_cache(si, &tag, list, all_ids.clone());
        }

        all_ids.sort_unstable();
        if use_cache {
            self.store_memo(
                si,
                SearchMemo {
                    applied_seq: snap.applied_seq,
                    t_prime,
                    ids: all_ids.clone(),
                    walk_cost: steps_used as u64,
                    gens: list.len() as u64,
                },
                tag,
            );
        }
        Ok(self.store.read().get_many(&all_ids))
    }

    /// Try to answer a search from the per-keyword memo. Returns the
    /// documents on a hit, `None` on any miss (no entry, shard changed,
    /// or the delta walk from the new trapdoor never reaches the
    /// memoized one within the walk bound — the cold path then produces
    /// the correct answer or the correct desync error).
    fn try_memo(
        &self,
        si: usize,
        snap_seq: u64,
        tag: &[u8; 32],
        t_prime: &[u8; 32],
        max_walk: usize,
    ) -> Option<Vec<(u64, Vec<u8>)>> {
        let memo = self.shards[si].memo.lock().get(tag).cloned()?;
        if memo.applied_seq != snap_seq {
            return None;
        }
        let delta = if t_prime == &memo.t_prime {
            0u64
        } else {
            // Walk forward from the newer trapdoor until it meets the
            // memoized one; the shard is unchanged, so the id set is too.
            let mut element = *t_prime;
            let mut steps = 0u64;
            loop {
                if steps as usize >= max_walk {
                    return None;
                }
                element = chain_step(&element);
                steps += 1;
                if element == memo.t_prime {
                    break;
                }
            }
            steps
        };
        self.stats.searches.fetch_add(1, Ordering::Relaxed);
        self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
        self.stats.chain_steps.fetch_add(delta, Ordering::Relaxed);
        self.stats
            .walk_steps_saved
            .fetch_add(memo.walk_cost, Ordering::Relaxed);
        self.stats
            .generations_from_cache
            .fetch_add(memo.gens, Ordering::Relaxed);
        if delta > 0 {
            // Advance the memo to the newer trapdoor so the next repeat
            // of *this* trapdoor is a zero-walk hit.
            let mut map = self.shards[si].memo.lock();
            if let Some(live) = map.get_mut(tag) {
                if live.applied_seq == memo.applied_seq && live.t_prime == memo.t_prime {
                    live.t_prime = *t_prime;
                    live.walk_cost = memo.walk_cost + delta;
                }
            }
        }
        Some(self.store.read().get_many(&memo.ids))
    }

    /// Record a cold search's answer in the shard's memo map.
    fn store_memo(&self, si: usize, memo: SearchMemo, tag: [u8; 32]) {
        let mut map = self.shards[si].memo.lock();
        if map.len() >= MEMO_CAP && !map.contains_key(&tag) {
            map.clear();
        }
        map.insert(tag, memo);
    }

    /// Opportunistically record the Optimization-1 plaintext cache
    /// computed by a snapshot search back into the live shard. Best
    /// effort by design — the search already has its answer, and the
    /// cache is a pure optimization the next search can rebuild:
    ///
    /// * `try_lock` only — a search must never queue behind a mutation
    ///   (that is the whole point of the snapshot read path);
    /// * skipped unless the live list is exactly the one the search saw
    ///   (same length, same cache point, same newest commitment) — a
    ///   racing append or reset invalidates the computed id set.
    fn write_back_cache(
        &self,
        si: usize,
        tag: &[u8; 32],
        seen: &GenerationList,
        all_ids: Vec<u64>,
    ) {
        let Some(mut data) = self.shards[si].data.try_lock() else {
            return;
        };
        let Some(live) = data.tree.get_mut(tag) else {
            return;
        };
        let unchanged = live.len() == seen.len()
            && live.cached_generations() == seen.cached_generations()
            && live.undecrypted().last().map(|g| g.key_commitment)
                == seen.undecrypted().last().map(|g| g.key_commitment);
        if !unchanged {
            return;
        }
        live.set_cached(all_ids);
        self.publish(si, &data);
    }

    /// Persist one shard's generation lists to a CRC-protected snapshot
    /// (carrying the shard's `applied_seq` as `last_op_seq`). The
    /// Optimization-1 plaintext cache is *not* persisted — it is an
    /// optimization the next search rebuilds, and keeping recovered state
    /// minimal follows the principle of storing only what is necessary.
    fn save_shard_snapshot(&self, data: &ShardData, path: &Path) -> Result<()> {
        let mut body = WireWriter::new();
        body.put_u64(data.applied_seq);
        body.put_u64(data.tree.len() as u64);
        for (tag, list) in data.tree.iter() {
            body.put_array(tag);
            body.put_u64(list.len() as u64);
            for generation in list.iter() {
                body.put_bytes(&generation.masked_ids);
                body.put_array(&generation.key_commitment);
            }
        }
        let body = body.finish();
        let tmp = path.with_extension("tmp");
        {
            let mut f = self.vfs.create(&tmp).map_err(StorageError::Io)?;
            let mut header = Vec::with_capacity(12);
            header.extend_from_slice(INDEX_MAGIC);
            header.extend_from_slice(&crc32(&body).to_le_bytes());
            f.write_all(&header).map_err(StorageError::Io)?;
            f.write_all(&body).map_err(StorageError::Io)?;
            f.sync_data().map_err(StorageError::Io)?;
        }
        self.vfs.rename(&tmp, path).map_err(StorageError::Io)?;
        Ok(())
    }
}

/// The error surfaced when a mutation reaches a shard whose journal was
/// disabled by an earlier failed group commit.
fn journal_unavailable() -> SseError {
    SseError::Storage(StorageError::Io(std::io::Error::other(
        "shard journal disabled by failed group commit",
    )))
}

/// Append one generation entry to the shard tree.
fn append_entry(tree: &mut BpTree<[u8; 32], GenerationList>, entry: GenerationEntry) {
    let GenerationEntry {
        tag,
        sealed_ids,
        commitment,
    } = entry;
    let generation = Generation {
        masked_ids: sealed_ids,
        key_commitment: commitment,
    };
    match tree.get_mut(&tag) {
        Some(list) => list.push(generation),
        None => {
            let mut list = GenerationList::new();
            list.push(generation);
            tree.insert(tag, list);
        }
    }
}

/// Re-apply one journaled shard-local mutation during recovery (no
/// re-journaling), recording the touched tags into `dirty` / `cleared` so
/// an lsm-backed server can flush the replayed state at its next
/// checkpoint.
fn replay_into(
    tree: &mut BpTree<[u8; 32], GenerationList>,
    raw: &[u8],
    dirty: &mut HashSet<[u8; 32]>,
    cleared: &mut bool,
) -> Result<()> {
    match protocol::decode_request(raw)? {
        Request::AppendGenerations(entries) => {
            for entry in entries {
                dirty.insert(entry.tag);
                append_entry(tree, entry);
            }
            Ok(())
        }
        Request::ResetIndex => {
            dirty.clear();
            *cleared = true;
            *tree = BpTree::new();
            Ok(())
        }
        _ => Err(SseError::Storage(StorageError::Corrupt {
            what: "scheme2 index journal",
            detail: "journal holds a non-mutating request".to_string(),
        })),
    }
}

/// Flush one lsm-backed shard: clear if the shard was reset, write every
/// dirty tag's current generation list (or a tombstone if it vanished),
/// then commit one run carrying `applied_seq`. No-op for btree shards.
fn flush_shard_kw_map(data: &mut ShardData) -> Result<()> {
    let ShardData {
        tree,
        applied_seq,
        dirty,
        cleared,
        kw_map,
    } = data;
    let Some(map) = kw_map else { return Ok(()) };
    if *cleared {
        map.clear()?;
    }
    for tag in dirty.iter() {
        match tree.get(tag) {
            Some(list) => map.put(*tag, encode_generation_list(list))?,
            None => map.delete(tag)?,
        }
    }
    map.flush(*applied_seq, &[])?;
    dirty.clear();
    *cleared = false;
    Ok(())
}

/// Serialize one generation list as a keyword-map value: the per-tag body
/// of the monolithic snapshot format, minus the tag itself.
fn encode_generation_list(list: &GenerationList) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u64(list.len() as u64);
    for generation in list.iter() {
        w.put_bytes(&generation.masked_ids);
        w.put_array(&generation.key_commitment);
    }
    w.finish()
}

/// Inverse of [`encode_generation_list`].
fn decode_generation_list(bytes: &[u8]) -> Result<GenerationList> {
    let mut r = WireReader::new(bytes);
    let gens = r.get_count(40)?;
    let mut list = GenerationList::new();
    for _ in 0..gens {
        let masked_ids = r.get_bytes()?.to_vec();
        let key_commitment = r.get_array32()?;
        list.push(Generation {
            masked_ids,
            key_commitment,
        });
    }
    r.finish()?;
    Ok(list)
}

/// Checksum-check one index snapshot without decoding it (scrub path).
/// Returns `Ok(false)` if the snapshot does not exist (a tenant that has
/// never checkpointed), `Ok(true)` if it verified.
fn verify_index_snapshot(vfs: &dyn Vfs, path: &Path) -> Result<bool> {
    let bytes = match vfs.read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(false),
        Err(e) => return Err(SseError::Storage(StorageError::Io(e))),
    };
    if bytes.len() < 12 || &bytes[..8] != INDEX_MAGIC {
        return Err(SseError::Storage(StorageError::Corrupt {
            what: "index snapshot",
            detail: format!("scrub: bad magic or truncated in {}", path.display()),
        }));
    }
    let stored_crc = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if crc32(&bytes[12..]) != stored_crc {
        return Err(SseError::Storage(StorageError::Corrupt {
            what: "index snapshot",
            detail: format!("scrub: checksum mismatch in {}", path.display()),
        }));
    }
    Ok(true)
}

/// Decode one shard snapshot into `tree`, returning the `last_op_seq` it
/// covers.
fn load_shard_snapshot(tree: &mut BpTree<[u8; 32], GenerationList>, bytes: &[u8]) -> Result<u64> {
    if bytes.len() < 12 || &bytes[..8] != INDEX_MAGIC {
        return Err(SseError::Storage(StorageError::Corrupt {
            what: "scheme2 index snapshot",
            detail: "bad magic or truncated".to_string(),
        }));
    }
    let stored_crc = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    let body = &bytes[12..];
    if crc32(body) != stored_crc {
        return Err(SseError::Storage(StorageError::Corrupt {
            what: "scheme2 index snapshot",
            detail: "checksum mismatch".to_string(),
        }));
    }
    let mut r = WireReader::new(body);
    let last_op_seq = r.get_u64()?;
    let n = r.get_count(40)?;
    let mut fresh = BpTree::new();
    for _ in 0..n {
        let tag = r.get_array32()?;
        let gens = r.get_count(40)?;
        let mut list = GenerationList::new();
        for _ in 0..gens {
            let masked_ids = r.get_bytes()?.to_vec();
            let key_commitment = r.get_array32()?;
            list.push(Generation {
                masked_ids,
                key_commitment,
            });
        }
        fresh.insert(tag, list);
    }
    r.finish()?;
    *tree = fresh;
    Ok(last_op_seq)
}

impl Service for Scheme2Server {
    fn handle(&mut self, request: &[u8]) -> Vec<u8> {
        self.handle_shared(request)
    }

    fn on_shutdown(&mut self) {
        // Collapse the WAL + journal into snapshots so a clean shutdown
        // leaves nothing to replay. Best effort: a failing disk at
        // shutdown must not abort the process, and recovery replays the
        // logs anyway.
        let _ = self.checkpoint_home();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto_common::{decode_ack, decode_result};
    use sse_net::wire::WireWriter;
    use sse_primitives::hashchain::{walk_forward, HashChain};

    fn sealed_ids(key: &[u8; 32], ids: &[u64]) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.put_u64_vec(ids);
        w.put_u64_vec(&[]); // no deletions
        EtmKey::new(key).seal(&w.finish())
    }

    fn server() -> Scheme2Server {
        Scheme2Server::new_in_memory(Scheme2Config::standard().with_chain_length(64))
    }

    #[test]
    fn append_then_search_single_generation() {
        let mut s = server();
        s.handle(&protocol::encode_put_docs(&[
            (1, b"one".to_vec()),
            (2, b"two".to_vec()),
        ]));

        let chain = HashChain::new(&[b"kw", b"key"], 64);
        let k1 = chain.key_for_counter(1).unwrap();
        let tag = [9u8; 32];
        let resp = s.handle(&protocol::encode_append_generations(&[GenerationEntry {
            tag,
            sealed_ids: sealed_ids(&k1, &[1, 2]),
            commitment: key_commitment(&k1),
        }]));
        decode_ack(&resp).unwrap();

        // Trapdoor at the same counter: zero walk steps.
        let resp = s.handle(&protocol::encode_search(&tag, &k1));
        let docs = decode_result(&resp).unwrap();
        assert_eq!(docs, vec![(1, b"one".to_vec()), (2, b"two".to_vec())]);
        assert_eq!(s.stats().chain_steps, 0);
        assert_eq!(s.stats().generations_decrypted, 1);
    }

    #[test]
    fn newer_trapdoor_unlocks_older_generations() {
        let mut s = server();
        s.handle(&protocol::encode_put_docs(&[
            (1, b"a".to_vec()),
            (2, b"b".to_vec()),
        ]));
        let chain = HashChain::new(&[b"kw", b"key"], 64);
        let tag = [7u8; 32];
        // Two generations at counters 1 and 5.
        for (ctr, id) in [(1u64, 1u64), (5, 2)] {
            let k = chain.key_for_counter(ctr).unwrap();
            s.handle(&protocol::encode_append_generations(&[GenerationEntry {
                tag,
                sealed_ids: sealed_ids(&k, &[id]),
                commitment: key_commitment(&k),
            }]));
        }
        // Trapdoor at counter 9: walk 4 steps to reach k(5), then 4 more to
        // k(1).
        let t9 = chain.key_for_counter(9).unwrap();
        let resp = s.handle(&protocol::encode_search(&tag, &t9));
        let docs = decode_result(&resp).unwrap();
        assert_eq!(docs.len(), 2);
        assert_eq!(s.stats().chain_steps, 8);
    }

    #[test]
    fn cache_skips_decrypted_generations() {
        let mut s = server();
        s.handle(&protocol::encode_put_docs(&[
            (1, b"a".to_vec()),
            (2, b"b".to_vec()),
        ]));
        let chain = HashChain::new(&[b"kw", b"key"], 64);
        let tag = [3u8; 32];
        let k1 = chain.key_for_counter(1).unwrap();
        s.handle(&protocol::encode_append_generations(&[GenerationEntry {
            tag,
            sealed_ids: sealed_ids(&k1, &[1]),
            commitment: key_commitment(&k1),
        }]));

        let t = chain.key_for_counter(2).unwrap();
        decode_result(&s.handle(&protocol::encode_search(&tag, &t))).unwrap();
        assert_eq!(s.stats().generations_decrypted, 1);

        // Second search: generation already cached, nothing to decrypt.
        decode_result(&s.handle(&protocol::encode_search(&tag, &t))).unwrap();
        assert_eq!(s.stats().generations_decrypted, 1, "no re-decryption");
        assert_eq!(s.stats().generations_from_cache, 1);

        // Append another generation; only the new one is decrypted.
        let k3 = chain.key_for_counter(3).unwrap();
        s.handle(&protocol::encode_append_generations(&[GenerationEntry {
            tag,
            sealed_ids: sealed_ids(&k3, &[2]),
            commitment: key_commitment(&k3),
        }]));
        let t4 = chain.key_for_counter(4).unwrap();
        let docs = decode_result(&s.handle(&protocol::encode_search(&tag, &t4))).unwrap();
        assert_eq!(docs.len(), 2);
        assert_eq!(s.stats().generations_decrypted, 2);
    }

    #[test]
    fn cache_disabled_redecrypts_every_time() {
        let mut s = Scheme2Server::new_in_memory(
            Scheme2Config::standard()
                .with_chain_length(64)
                .with_server_cache(false),
        );
        s.handle(&protocol::encode_put_docs(&[(1, b"a".to_vec())]));
        let chain = HashChain::new(&[b"kw", b"key"], 64);
        let tag = [3u8; 32];
        let k1 = chain.key_for_counter(1).unwrap();
        s.handle(&protocol::encode_append_generations(&[GenerationEntry {
            tag,
            sealed_ids: sealed_ids(&k1, &[1]),
            commitment: key_commitment(&k1),
        }]));
        let t = chain.key_for_counter(2).unwrap();
        decode_result(&s.handle(&protocol::encode_search(&tag, &t))).unwrap();
        decode_result(&s.handle(&protocol::encode_search(&tag, &t))).unwrap();
        assert_eq!(
            s.stats().generations_decrypted,
            2,
            "no cache: decrypt twice"
        );
    }

    #[test]
    fn memo_exact_hit_skips_walk_and_tree() {
        let mut s = server();
        s.handle(&protocol::encode_put_docs(&[(1, b"a".to_vec())]));
        let chain = HashChain::new(&[b"kw", b"key"], 64);
        let tag = [5u8; 32];
        let k1 = chain.key_for_counter(1).unwrap();
        s.handle(&protocol::encode_append_generations(&[GenerationEntry {
            tag,
            sealed_ids: sealed_ids(&k1, &[1]),
            commitment: key_commitment(&k1),
        }]));
        let t3 = chain.key_for_counter(3).unwrap();
        let cold = decode_result(&s.handle(&protocol::encode_search(&tag, &t3))).unwrap();
        let after_cold = s.stats();
        assert_eq!(after_cold.chain_steps, 2);
        assert_eq!(after_cold.cache_misses, 1);

        let warm = decode_result(&s.handle(&protocol::encode_search(&tag, &t3))).unwrap();
        assert_eq!(warm, cold, "memo hit must be byte-identical");
        let after_warm = s.stats();
        assert_eq!(after_warm.cache_hits, 1);
        assert_eq!(after_warm.chain_steps, 2, "zero additional walk");
        assert_eq!(after_warm.walk_steps_saved, 2);
        assert_eq!(after_warm.tree_nodes_visited, after_cold.tree_nodes_visited);
        assert_eq!(after_warm.generations_decrypted, 1);
    }

    #[test]
    fn memo_delta_walk_only_covers_the_gap() {
        let mut s = server();
        s.handle(&protocol::encode_put_docs(&[(1, b"a".to_vec())]));
        let chain = HashChain::new(&[b"kw", b"key"], 64);
        let tag = [6u8; 32];
        let k1 = chain.key_for_counter(1).unwrap();
        s.handle(&protocol::encode_append_generations(&[GenerationEntry {
            tag,
            sealed_ids: sealed_ids(&k1, &[1]),
            commitment: key_commitment(&k1),
        }]));
        let t2 = chain.key_for_counter(2).unwrap();
        let cold = decode_result(&s.handle(&protocol::encode_search(&tag, &t2))).unwrap();
        assert_eq!(s.stats().chain_steps, 1);

        // A search from a *newer* trapdoor (fake updates advanced the
        // counter) walks only the 3-step delta down to the memoized one.
        let t5 = chain.key_for_counter(5).unwrap();
        let delta = decode_result(&s.handle(&protocol::encode_search(&tag, &t5))).unwrap();
        assert_eq!(delta, cold);
        let st = s.stats();
        assert_eq!(st.cache_hits, 1);
        assert_eq!(st.chain_steps, 1 + 3);
        assert_eq!(st.walk_steps_saved, 1);

        // Repeating the newer trapdoor is now a zero-walk hit.
        decode_result(&s.handle(&protocol::encode_search(&tag, &t5))).unwrap();
        let st = s.stats();
        assert_eq!(st.cache_hits, 2);
        assert_eq!(st.chain_steps, 4, "no additional steps");
        assert_eq!(st.walk_steps_saved, 1 + 4);
    }

    #[test]
    fn memo_invalidated_by_append_and_reset() {
        let mut s = server();
        s.handle(&protocol::encode_put_docs(&[
            (1, b"a".to_vec()),
            (2, b"b".to_vec()),
        ]));
        let chain = HashChain::new(&[b"kw", b"key"], 64);
        let tag = [7u8; 32];
        let k1 = chain.key_for_counter(1).unwrap();
        s.handle(&protocol::encode_append_generations(&[GenerationEntry {
            tag,
            sealed_ids: sealed_ids(&k1, &[1]),
            commitment: key_commitment(&k1),
        }]));
        let t2 = chain.key_for_counter(2).unwrap();
        decode_result(&s.handle(&protocol::encode_search(&tag, &t2))).unwrap();

        // Append invalidates: the next search must see the new generation.
        let k3 = chain.key_for_counter(3).unwrap();
        s.handle(&protocol::encode_append_generations(&[GenerationEntry {
            tag,
            sealed_ids: sealed_ids(&k3, &[2]),
            commitment: key_commitment(&k3),
        }]));
        let t4 = chain.key_for_counter(4).unwrap();
        let docs = decode_result(&s.handle(&protocol::encode_search(&tag, &t4))).unwrap();
        assert_eq!(docs.len(), 2, "append visible despite memo");
        assert_eq!(s.stats().cache_hits, 0);
        assert_eq!(s.stats().cache_misses, 2);

        // Reset invalidates: the tag is gone.
        decode_ack(&s.handle(&protocol::encode_reset_index())).unwrap();
        let docs = decode_result(&s.handle(&protocol::encode_search(&tag, &t4))).unwrap();
        assert!(docs.is_empty(), "reset visible despite memo");
    }

    #[test]
    fn memo_declines_stale_trapdoors() {
        // A trapdoor *older* than the memoized one can never reach the
        // memo key by walking forward, so the memo declines and the cold
        // path answers — here from the Optimization-1 plaintext cache,
        // byte-identically to a server without the memo layer.
        let mut s = server();
        s.handle(&protocol::encode_put_docs(&[(1, b"a".to_vec())]));
        let chain = HashChain::new(&[b"kw", b"key"], 64);
        let tag = [8u8; 32];
        let k5 = chain.key_for_counter(5).unwrap();
        s.handle(&protocol::encode_append_generations(&[GenerationEntry {
            tag,
            sealed_ids: sealed_ids(&k5, &[1]),
            commitment: key_commitment(&k5),
        }]));
        let t6 = chain.key_for_counter(6).unwrap();
        let cold = decode_result(&s.handle(&protocol::encode_search(&tag, &t6))).unwrap();
        let t1 = chain.key_for_counter(1).unwrap();
        let resp = s.handle(&protocol::encode_search(&tag, &t1));
        assert_eq!(decode_result(&resp).unwrap(), cold);
        assert_eq!(s.stats().cache_hits, 0, "memo must not hit");

        // With a still-locked newer generation the desync error is
        // preserved exactly as without the memo.
        let k10 = chain.key_for_counter(10).unwrap();
        s.handle(&protocol::encode_append_generations(&[GenerationEntry {
            tag,
            sealed_ids: sealed_ids(&k10, &[2]),
            commitment: key_commitment(&k10),
        }]));
        let t7 = chain.key_for_counter(7).unwrap();
        let resp = s.handle(&protocol::encode_search(&tag, &t7));
        assert!(decode_result(&resp).is_err(), "must not unlock the future");
    }

    #[test]
    fn unknown_tag_returns_empty() {
        let mut s = server();
        let resp = s.handle(&protocol::encode_search(&[1u8; 32], &[2u8; 32]));
        assert_eq!(decode_result(&resp).unwrap(), vec![]);
    }

    #[test]
    fn stale_trapdoor_cannot_unlock_newer_generation() {
        // One-wayness in action: a trapdoor issued at counter 1 cannot
        // unlock a generation keyed at counter 5 (the walk would need to go
        // backwards). The server reports desync after exhausting the bound.
        let mut s = server();
        let chain = HashChain::new(&[b"kw", b"key"], 64);
        let tag = [8u8; 32];
        let k5 = chain.key_for_counter(5).unwrap();
        s.handle(&protocol::encode_append_generations(&[GenerationEntry {
            tag,
            sealed_ids: sealed_ids(&k5, &[1]),
            commitment: key_commitment(&k5),
        }]));
        let t1 = chain.key_for_counter(1).unwrap();
        let resp = s.handle(&protocol::encode_search(&tag, &t1));
        assert!(decode_result(&resp).is_err(), "must not decrypt the future");
    }

    #[test]
    fn reset_index_clears_keywords_keeps_docs() {
        let mut s = server();
        s.handle(&protocol::encode_put_docs(&[(1, b"kept".to_vec())]));
        let chain = HashChain::new(&[b"kw", b"key"], 64);
        let k = chain.key_for_counter(1).unwrap();
        s.handle(&protocol::encode_append_generations(&[GenerationEntry {
            tag: [1u8; 32],
            sealed_ids: sealed_ids(&k, &[1]),
            commitment: key_commitment(&k),
        }]));
        assert_eq!(s.unique_keywords(), 1);
        decode_ack(&s.handle(&protocol::encode_reset_index())).unwrap();
        assert_eq!(s.unique_keywords(), 0);
        assert_eq!(s.stored_docs(), 1);
    }

    #[test]
    fn corrupted_generation_yields_error_response() {
        let mut s = server();
        let chain = HashChain::new(&[b"kw", b"key"], 64);
        let k = chain.key_for_counter(1).unwrap();
        let mut sealed = sealed_ids(&k, &[1]);
        let len = sealed.len();
        sealed[len / 2] ^= 0xFF;
        s.handle(&protocol::encode_append_generations(&[GenerationEntry {
            tag: [1u8; 32],
            sealed_ids: sealed,
            commitment: key_commitment(&k),
        }]));
        let resp = s.handle(&protocol::encode_search(&[1u8; 32], &k));
        assert!(decode_result(&resp).is_err());
    }

    #[test]
    fn walk_costs_scale_with_counter_gap() {
        let mut s = server();
        let chain = HashChain::new(&[b"kw", b"key"], 64);
        let tag = [2u8; 32];
        let k10 = chain.key_for_counter(10).unwrap();
        s.handle(&protocol::encode_append_generations(&[GenerationEntry {
            tag,
            sealed_ids: sealed_ids(&k10, &[1]),
            commitment: key_commitment(&k10),
        }]));
        // Sanity: walking forward from counter 30's key passes counter 10's.
        let t30 = chain.key_for_counter(30).unwrap();
        assert_eq!(walk_forward(&t30, 20), k10);
        decode_result(&s.handle(&protocol::encode_search(&tag, &t30))).unwrap();
        assert_eq!(s.stats().chain_steps, 20);
    }

    #[test]
    fn sharded_server_answers_like_single_shard() {
        // The same append/search conversation against 1 and 5 shards must
        // be indistinguishable on the wire.
        let mut single = server();
        let mut sharded = Scheme2Server::new_in_memory_sharded(
            Scheme2Config::standard().with_chain_length(64),
            5,
        );
        assert_eq!(sharded.num_shards(), 5);
        let chain = HashChain::new(&[b"kw", b"key"], 64);
        let docs: Vec<(u64, Vec<u8>)> = (0..8u64).map(|i| (i, vec![i as u8; 4])).collect();
        let mut tags = Vec::new();
        let mut entries = Vec::new();
        for i in 0..16u8 {
            let mut tag = [0u8; 32];
            tag[0] = i.wrapping_mul(41);
            tag[1] = i;
            tags.push(tag);
            let k = chain.key_for_counter(1).unwrap();
            entries.push(GenerationEntry {
                tag,
                sealed_ids: sealed_ids(&k, &[u64::from(i % 8)]),
                commitment: key_commitment(&k),
            });
        }
        for s in [&mut single, &mut sharded] {
            decode_ack(&s.handle(&protocol::encode_put_docs(&docs))).unwrap();
            decode_ack(&s.handle(&protocol::encode_append_generations(&entries))).unwrap();
        }
        assert_eq!(single.unique_keywords(), sharded.unique_keywords());
        let t2 = chain.key_for_counter(2).unwrap();
        for tag in &tags {
            let a = single.handle(&protocol::encode_search(tag, &t2));
            let b = sharded.handle(&protocol::encode_search(tag, &t2));
            assert_eq!(a, b);
        }
    }

    #[test]
    fn apply_batch_combines_docs_and_generations() {
        let s = server();
        let chain = HashChain::new(&[b"kw", b"key"], 64);
        let k = chain.key_for_counter(1).unwrap();
        let tag = [4u8; 32];
        let docs = protocol::encode_put_docs(&[(1, b"d".to_vec())]);
        let gens = protocol::encode_append_generations(&[GenerationEntry {
            tag,
            sealed_ids: sealed_ids(&k, &[1]),
            commitment: key_commitment(&k),
        }]);
        decode_ack(&s.apply_batch(&[&docs, &gens])).unwrap();
        assert_eq!(s.stored_docs(), 1);
        assert_eq!(s.unique_keywords(), 1);

        let resp = s.handle_shared(&protocol::encode_search(&tag, &k));
        assert_eq!(decode_result(&resp).unwrap(), vec![(1, b"d".to_vec())]);
    }

    #[test]
    fn apply_batch_rejects_non_mutations() {
        let s = server();
        let resp = s.apply_batch(&[&protocol::encode_reset_index()]);
        assert!(decode_ack(&resp).is_err());
    }

    #[test]
    fn searches_see_acked_appends_through_snapshots() {
        // Read-your-writes through the snapshot path: an acked append is
        // immediately visible to a search, and the cache write-back
        // republishes so the *next* search decrypts nothing.
        let s = Scheme2Server::new_in_memory_sharded(
            Scheme2Config::standard().with_chain_length(64),
            4,
        );
        let chain = HashChain::new(&[b"kw", b"key"], 64);
        for i in 0..16u8 {
            let mut tag = [0u8; 32];
            tag[0] = i;
            tag[1] = i.wrapping_mul(59);
            let k = chain.key_for_counter(1).unwrap();
            s.handle_shared(&protocol::encode_put_docs(&[(u64::from(i), vec![i; 3])]));
            let resp = s.handle_shared(&protocol::encode_append_generations(&[GenerationEntry {
                tag,
                sealed_ids: sealed_ids(&k, &[u64::from(i)]),
                commitment: key_commitment(&k),
            }]));
            decode_ack(&resp).unwrap();
            let docs = decode_result(&s.handle_shared(&protocol::encode_search(&tag, &k))).unwrap();
            assert_eq!(docs, vec![(u64::from(i), vec![i; 3])]);
            // Repeat search hits the written-back cache.
            decode_result(&s.handle_shared(&protocol::encode_search(&tag, &k))).unwrap();
        }
        assert_eq!(
            s.stats().generations_decrypted,
            16,
            "second searches cached"
        );
        assert_eq!(s.stats().generations_from_cache, 16);
        // 16 appends + 16 cache write-backs published snapshots.
        assert_eq!(s.commit_counters().snapshot_swaps, 32);
    }
}
