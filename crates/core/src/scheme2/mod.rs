//! Scheme 2 — the communication-efficient variant (§5.4–5.6).
//!
//! Instead of a fixed-width bit array, the posting set of a keyword is a
//! list of *generations*, one per update that touched the keyword:
//!
//! ```text
//! S(w) = ( f_kw(w),
//!          E_{k1(w)}(I_1(w)), f'(k_1(w)),
//!          ...,
//!          E_{kj(w)}(I_j(w)), f'(k_j(w)) )
//! ```
//!
//! Generation keys walk a Lamport hash chain *backwards*:
//! `k_j(w) = h^{l-ctr}(w ‖ k_w)` where `ctr` is a global update counter and
//! `l` the chain length. The client (knowing the seed) derives any key; the
//! server can only step *forward*, so a trapdoor
//! `T_w = (f_kw(w), h^{l-ctr}(w ‖ k_w))` unlocks every generation appended
//! so far — and, crucially, every *future* trapdoor unlocks them too, while
//! past trapdoors never unlock future generations.
//!
//! **Update** (Fig. 3): one message per batch — for each touched keyword,
//! `(f_kw(w), E_k(I_new), f'(k))`. The server appends blindly. One round,
//! bandwidth proportional to the batch, not the database.
//!
//! **Search** (Fig. 4): one message `(t_w, t'_w)`. The server finds the tag
//! in `O(log u)`, then walks `t'_w` forward matching key commitments to
//! unlock generations newest-to-oldest. The walk costs on average `l/2x`
//! hash steps when updates and searches interleave every `x` updates
//! (Table 1).
//!
//! **Optimization 1** (§5.6): the server caches plaintext ids after a
//! search, so repeat searches only decrypt generations added since.
//!
//! **Optimization 2** (§5.6): the client advances `ctr` only when a search
//! has happened since the last update, stretching chain lifetime from `l`
//! updates to `l` update/search alternations.

mod client;
pub mod protocol;
mod server;

pub use client::{InMemoryScheme2Client, Scheme2Client, Scheme2ClientState};
pub use server::{Scheme2Server, Scheme2ServerStats};

use sse_primitives::sha256::sha256_concat;

/// When the client advances the global update counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CtrPolicy {
    /// Advance on every update (the base scheme of §5.5).
    Always,
    /// Advance only if a search happened since the last update
    /// (Optimization 2, §5.6).
    OnSearchOnly,
}

/// Scheme 2 configuration shared by client and server.
#[derive(Clone, Debug)]
pub struct Scheme2Config {
    /// Hash-chain length `l`: the number of counter values available before
    /// the database must be re-initialized with a fresh epoch.
    pub chain_length: u64,
    /// Counter-advance policy (Optimization 2 toggle).
    pub ctr_policy: CtrPolicy,
    /// Server-side plaintext caching after searches (Optimization 1
    /// toggle).
    pub server_cache: bool,
}

impl Scheme2Config {
    /// Defaults used by the examples: both optimizations on, `l = 4096`.
    #[must_use]
    pub fn standard() -> Self {
        Scheme2Config {
            chain_length: 4096,
            ctr_policy: CtrPolicy::OnSearchOnly,
            server_cache: true,
        }
    }

    /// The base scheme exactly as §5.5 describes it (no optimizations).
    #[must_use]
    pub fn base(chain_length: u64) -> Self {
        Scheme2Config {
            chain_length,
            ctr_policy: CtrPolicy::Always,
            server_cache: false,
        }
    }

    /// Override the chain length.
    #[must_use]
    pub fn with_chain_length(mut self, l: u64) -> Self {
        self.chain_length = l;
        self
    }

    /// Toggle Optimization 1 (server cache).
    #[must_use]
    pub fn with_server_cache(mut self, on: bool) -> Self {
        self.server_cache = on;
        self
    }

    /// Toggle Optimization 2 (counter policy).
    #[must_use]
    pub fn with_ctr_policy(mut self, policy: CtrPolicy) -> Self {
        self.ctr_policy = policy;
        self
    }
}

/// The commitment PRF `f'`: publicly computable (the *server* evaluates it
/// while walking the chain), so it is an unkeyed domain-separated hash of
/// the chain element.
#[must_use]
pub fn key_commitment(chain_key: &[u8; 32]) -> [u8; 32] {
    sha256_concat(&[b"sse/scheme2-commit", chain_key])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commitment_is_deterministic_and_injective_in_practice() {
        let a = key_commitment(&[1u8; 32]);
        let b = key_commitment(&[1u8; 32]);
        let c = key_commitment(&[2u8; 32]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn commitment_differs_from_chain_step() {
        // f'(k) must not collide with h(k), or the server's walk would
        // confuse commitments with chain elements.
        let k = [7u8; 32];
        assert_ne!(
            key_commitment(&k),
            sse_primitives::hashchain::chain_step(&k)
        );
    }

    #[test]
    fn config_builders() {
        let c = Scheme2Config::standard()
            .with_chain_length(64)
            .with_server_cache(false)
            .with_ctr_policy(CtrPolicy::Always);
        assert_eq!(c.chain_length, 64);
        assert!(!c.server_cache);
        assert_eq!(c.ctr_policy, CtrPolicy::Always);
        assert_eq!(Scheme2Config::base(10).ctr_policy, CtrPolicy::Always);
    }
}
