//! Index write-ahead journal: LSN-stamped protocol requests.
//!
//! Both schemes' index mutations are **not idempotent**: re-applying a
//! Scheme 1 `ApplyUpdates` XOR-cancels the delta back out, and re-applying
//! a Scheme 2 `AppendGenerations` duplicates generations. A plain redo log
//! would therefore corrupt the index whenever a crash lands between the
//! snapshot and the log reset. The journal solves this with log sequence
//! numbers: every record is `[op_seq: u64 LE][request bytes]`, the index
//! snapshot stores the last `op_seq` it covers, and recovery re-applies
//! only records *newer* than the snapshot.
//!
//! Protocol: the server appends to the journal **before** mutating the
//! in-memory index, so an acknowledged mutation is always durable and a
//! crash mid-append tears inside one CRC-framed record (truncated on
//! reopen). Checkpointing writes the snapshot (carrying `last_op_seq`)
//! and then resets the journal; a crash between those two steps is safe
//! because replay skips everything the snapshot already covers.

use crate::error::Result;
use sse_storage::wal::Wal;
use sse_storage::Vfs;
use std::path::Path;
use std::sync::Arc;

/// What [`IndexJournal::open_with_vfs`] found on disk.
#[derive(Debug, Default)]
pub struct JournalRecovery {
    /// Request bytes with `op_seq` greater than the snapshot's, in log
    /// order — exactly the mutations the caller must re-apply.
    pub replay: Vec<Vec<u8>>,
    /// Records skipped because the snapshot already covered them.
    pub skipped: u64,
    /// The request bytes of the skipped records, in log order. Cross-shard
    /// batch recovery ([`crate::shard::resolve_shard_recoveries`]) needs
    /// these: a batch slice replayed on one shard commits only if every
    /// sibling shard *journaled* its slice — whether or not the sibling's
    /// snapshot has since absorbed it.
    pub skipped_raw: Vec<Vec<u8>>,
    /// Bytes of torn tail truncated from the journal file.
    pub torn_bytes_truncated: u64,
}

/// Combined recovery evidence from a durable scheme server's open —
/// what the document store and the index journal each had to repair.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerRecovery {
    /// Index mutations re-applied from the journal.
    pub index_ops_replayed: u64,
    /// Torn bytes truncated from the index journal's tail.
    pub index_torn_bytes: u64,
    /// Whether the document store loaded a snapshot.
    pub store_snapshot_loaded: bool,
    /// WAL records the document store re-applied.
    pub store_wal_records_replayed: u64,
    /// Torn bytes truncated from the document-store WAL's tail.
    pub store_torn_bytes: u64,
}

impl ServerRecovery {
    /// True when opening found crash evidence (replayed ops or torn tails).
    #[must_use]
    pub fn recovered_anything(&self) -> bool {
        self.index_ops_replayed > 0
            || self.store_wal_records_replayed > 0
            || self.index_torn_bytes > 0
            || self.store_torn_bytes > 0
    }

    /// Total torn bytes truncated across both logs.
    #[must_use]
    pub fn torn_bytes(&self) -> u64 {
        self.index_torn_bytes + self.store_torn_bytes
    }
}

/// An append-only journal of index mutations, each stamped with a
/// monotonically increasing operation sequence number.
pub struct IndexJournal {
    wal: Wal,
    next_seq: u64,
}

impl IndexJournal {
    /// Open (or create) the journal at `path`, replaying records newer
    /// than `snapshot_seq` (the `last_op_seq` recorded by the index
    /// snapshot, or 0 when there is no snapshot).
    ///
    /// # Errors
    /// I/O errors from the VFS (including injected faults), or a corrupt
    /// record shorter than its sequence-number header.
    pub fn open_with_vfs(
        vfs: Arc<dyn Vfs>,
        path: &Path,
        sync_on_append: bool,
        snapshot_seq: u64,
    ) -> Result<(Self, JournalRecovery)> {
        let mut recovery = JournalRecovery::default();
        let mut max_seq = snapshot_seq;
        for record in Wal::replay_with_vfs(vfs.as_ref(), path)? {
            if record.len() < 8 {
                return Err(sse_storage::StorageError::Corrupt {
                    what: "index journal record",
                    detail: format!("record of {} bytes lacks op_seq header", record.len()),
                }
                .into());
            }
            let seq = u64::from_le_bytes(record[0..8].try_into().expect("8 bytes"));
            if seq > snapshot_seq {
                recovery.replay.push(record[8..].to_vec());
            } else {
                recovery.skipped += 1;
                recovery.skipped_raw.push(record[8..].to_vec());
            }
            max_seq = max_seq.max(seq);
        }
        let wal = Wal::open_with_vfs(vfs, path, sync_on_append)?;
        recovery.torn_bytes_truncated = wal.torn_bytes_truncated();
        Ok((
            IndexJournal {
                wal,
                next_seq: max_seq + 1,
            },
            recovery,
        ))
    }

    /// Append one request, assigning and returning its sequence number.
    /// Durable on return (subject to the journal's sync policy).
    ///
    /// The seq header and request bytes go through the WAL's scattered
    /// (iovec) batch path, so the record is assembled once, directly in
    /// the frame buffer — no intermediate `[seq][request]` copy.
    ///
    /// # Errors
    /// I/O errors from the VFS (including injected faults). On error the
    /// sequence number is *not* consumed.
    pub fn append(&mut self, request: &[u8]) -> Result<u64> {
        let seq = self.next_seq;
        let header = seq.to_le_bytes();
        self.wal.append_batch(&[&[&header, request]])?;
        self.next_seq = seq + 1;
        Ok(seq)
    }

    /// Append a group of records that are **already stamped** with their
    /// sequence numbers (`[op_seq: u64 LE][request bytes]` each), as one
    /// write + one fsync. The group committer assigns seqs at stage time
    /// (so cross-shard batch ids are known before the write); `first_seq`
    /// is the seq stamped into `records[0]` and must equal this journal's
    /// `next_seq` — group order and journal order are the same order.
    ///
    /// # Errors
    /// I/O errors from the VFS (including injected faults). On error no
    /// sequence number is consumed and nothing in the group is durable.
    ///
    /// # Panics
    /// Panics if `first_seq` disagrees with the journal's `next_seq` —
    /// that is a committer bug, not a runtime condition.
    pub fn append_stamped_batch(&mut self, records: &[&[u8]], first_seq: u64) -> Result<()> {
        assert_eq!(
            first_seq, self.next_seq,
            "stamped group must start at the journal's next_seq"
        );
        if records.is_empty() {
            return Ok(());
        }
        let group: Vec<&[&[u8]]> = records.iter().map(std::slice::from_ref).collect();
        self.wal.append_batch(&group)?;
        self.next_seq += records.len() as u64;
        Ok(())
    }

    /// The sequence number the next [`IndexJournal::append`] will assign.
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The sequence number of the last appended record (what a snapshot
    /// taken *now* should record as `last_op_seq`).
    #[must_use]
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Truncate the journal after a checkpoint. Sequence numbers keep
    /// increasing — they are never reused across a reset.
    ///
    /// # Errors
    /// I/O errors from the VFS (including injected faults).
    pub fn reset(&mut self) -> Result<()> {
        self.wal.reset()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sse_storage::RealVfs;
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sse-journal-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("index.wal")
    }

    #[test]
    fn seq_numbers_are_monotonic_and_replay_skips_snapshot() {
        let path = temp_path("monotonic");
        let (mut j, rec) = IndexJournal::open_with_vfs(RealVfs::arc(), &path, true, 0).unwrap();
        assert!(rec.replay.is_empty());
        assert_eq!(j.append(b"op-a").unwrap(), 1);
        assert_eq!(j.append(b"op-b").unwrap(), 2);
        assert_eq!(j.append(b"op-c").unwrap(), 3);
        drop(j);

        // Snapshot covered up to seq 2: only op-c replays.
        let (j2, rec2) = IndexJournal::open_with_vfs(RealVfs::arc(), &path, true, 2).unwrap();
        assert_eq!(rec2.replay, vec![b"op-c".to_vec()]);
        assert_eq!(rec2.skipped, 2);
        assert_eq!(j2.next_seq(), 4);
    }

    #[test]
    fn reset_preserves_seq_progression() {
        let path = temp_path("reset");
        let (mut j, _) = IndexJournal::open_with_vfs(RealVfs::arc(), &path, true, 0).unwrap();
        j.append(b"one").unwrap();
        j.append(b"two").unwrap();
        j.reset().unwrap();
        assert_eq!(j.append(b"three").unwrap(), 3);
        drop(j);

        // Snapshot at seq 2 (taken just before the reset): only seq 3 replays.
        let (_, rec) = IndexJournal::open_with_vfs(RealVfs::arc(), &path, true, 2).unwrap();
        assert_eq!(rec.replay, vec![b"three".to_vec()]);
        assert_eq!(rec.skipped, 0);
    }

    #[test]
    fn stamped_batch_replays_like_individual_appends() {
        let path = temp_path("stamped");
        let (mut j, _) = IndexJournal::open_with_vfs(RealVfs::arc(), &path, true, 0).unwrap();
        let first = j.next_seq();
        assert_eq!(first, 1);
        let records: Vec<Vec<u8>> = (0..3u64)
            .map(|i| {
                let mut rec = (first + i).to_le_bytes().to_vec();
                rec.extend_from_slice(format!("grouped-{i}").as_bytes());
                rec
            })
            .collect();
        let refs: Vec<&[u8]> = records.iter().map(Vec::as_slice).collect();
        j.append_stamped_batch(&refs, first).unwrap();
        assert_eq!(j.next_seq(), 4);
        assert_eq!(j.append(b"solo").unwrap(), 4);
        drop(j);

        let (_, rec) = IndexJournal::open_with_vfs(RealVfs::arc(), &path, true, 0).unwrap();
        assert_eq!(
            rec.replay,
            vec![
                b"grouped-0".to_vec(),
                b"grouped-1".to_vec(),
                b"grouped-2".to_vec(),
                b"solo".to_vec()
            ]
        );
    }

    #[test]
    #[should_panic(expected = "stamped group must start")]
    fn stamped_batch_rejects_wrong_first_seq() {
        let path = temp_path("stamped-wrong");
        let (mut j, _) = IndexJournal::open_with_vfs(RealVfs::arc(), &path, true, 0).unwrap();
        let rec = 7u64.to_le_bytes().to_vec();
        let _ = j.append_stamped_batch(&[rec.as_slice()], 7);
    }

    #[test]
    fn short_record_is_corrupt() {
        let path = temp_path("short");
        {
            let mut wal = Wal::open(&path, true).unwrap();
            wal.append(b"tiny").unwrap(); // 4 bytes: no room for op_seq
        }
        assert!(IndexJournal::open_with_vfs(RealVfs::arc(), &path, true, 0).is_err());
    }
}
