//! Per-tenant health state machine: graceful degradation under storage
//! failure.
//!
//! A tenant database is `Healthy` until a **storage** write error (journal
//! append, group-commit fsync, LSM flush/compact, checkpoint) moves it to
//! `Degraded`: read-only serving. Searches keep answering from the
//! already-immutable epoch snapshots — they never touch the failed write
//! path — while mutations are rejected with a typed degraded error
//! carrying a retry-after hint, so clients back off instead of dropping
//! the op. A background scrub promotes a `Degraded` tenant back to
//! `Healthy` once a repair/probe write succeeds, and demotes a tenant
//! with *confirmed corruption* (a CRC mismatch in the middle of a log,
//! a bad snapshot checksum) to `Quarantined` — terminal until operator
//! intervention, served as plain errors, never silently dropped.
//!
//! ```text
//!            storage write error              confirmed corruption
//!  Healthy ───────────────────────▶ Degraded ─────────────────────▶ Quarantined
//!     ▲                                │                                 │
//!     └────────────────────────────────┘                            (terminal)
//!          scrub repair + probe write ok
//! ```
//!
//! The state cell is a single atomic so the daemon's request routing can
//! check it without any lock; the reason string (for error payloads and
//! logs) sits behind a mutex touched only on transitions and rejections.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// The three tenant health states. Ordering is meaningful: transitions
/// only ever move "down" (towards `Quarantined`) except for the explicit
/// scrub-probe recovery `Degraded → Healthy`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthState {
    /// Full service: reads and writes.
    Healthy,
    /// Read-only: a storage write failed. Searches serve from snapshots;
    /// mutations are rejected with a retry-after hint until a scrub
    /// repair succeeds.
    Degraded,
    /// Confirmed corruption: every request is rejected with an error.
    /// Terminal — the scrub never promotes out of quarantine.
    Quarantined,
}

impl HealthState {
    fn from_u8(v: u8) -> Self {
        match v {
            0 => HealthState::Healthy,
            1 => HealthState::Degraded,
            _ => HealthState::Quarantined,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            HealthState::Healthy => 0,
            HealthState::Degraded => 1,
            HealthState::Quarantined => 2,
        }
    }
}

impl std::fmt::Display for HealthState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HealthState::Healthy => write!(f, "healthy"),
            HealthState::Degraded => write!(f, "degraded"),
            HealthState::Quarantined => write!(f, "quarantined"),
        }
    }
}

/// Retry-after hint (milliseconds) carried by degraded rejections: long
/// enough for a scrub pass to run, short enough that a recovered tenant
/// is picked up promptly.
pub const DEGRADED_RETRY_AFTER_MS: u32 = 100;

/// What one integrity pass over a tenant database's on-disk artifacts
/// found (scrub reporting; confirmed corruption is returned as an error,
/// not a finding).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScrubFindings {
    /// Artifacts whose checksums all verified (WAL segments, index
    /// snapshots, LSM runs).
    pub artifacts_verified: u64,
    /// WAL segments ending in a torn tail — repairable residue of a crash
    /// or an append in flight, never corruption.
    pub torn_tails_seen: u64,
}

impl ScrubFindings {
    /// Element-wise accumulate.
    pub fn merge(&mut self, other: &ScrubFindings) {
        self.artifacts_verified += other.artifacts_verified;
        self.torn_tails_seen += other.torn_tails_seen;
    }
}

/// One tenant database's health cell, shared between the serving path
/// (lock-free state reads), the scheme servers (error-site transitions)
/// and the scrub thread (repair + probe transitions).
#[derive(Default)]
pub struct TenantHealth {
    state: AtomicU8,
    reason: Mutex<String>,
    /// `Healthy → Degraded` transitions.
    degradations: AtomicU64,
    /// `Degraded → Healthy` recoveries (scrub probe succeeded).
    recoveries: AtomicU64,
    /// `→ Quarantined` transitions.
    quarantines: AtomicU64,
}

impl TenantHealth {
    /// A fresh, healthy cell.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Current state (lock-free; the daemon checks this per request).
    #[must_use]
    pub fn state(&self) -> HealthState {
        HealthState::from_u8(self.state.load(Ordering::Acquire))
    }

    /// Why the tenant is not healthy (empty string while healthy).
    #[must_use]
    pub fn reason(&self) -> String {
        self.reason.lock().clone()
    }

    /// Record a storage *write* failure: `Healthy → Degraded`. A tenant
    /// already `Degraded` keeps its original reason; a `Quarantined`
    /// tenant never leaves quarantine.
    pub fn note_storage_error(&self, reason: &str) {
        // Only the Healthy→Degraded edge: CAS so a racing quarantine (or
        // an earlier degradation) is never overwritten.
        if self
            .state
            .compare_exchange(
                HealthState::Healthy.as_u8(),
                HealthState::Degraded.as_u8(),
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
        {
            *self.reason.lock() = reason.to_string();
            self.degradations.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record confirmed corruption: any state `→ Quarantined` (terminal).
    pub fn note_corruption(&self, reason: &str) {
        let prev = self
            .state
            .swap(HealthState::Quarantined.as_u8(), Ordering::AcqRel);
        if prev != HealthState::Quarantined.as_u8() {
            *self.reason.lock() = reason.to_string();
            self.quarantines.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record a successful repair + probe write: `Degraded → Healthy`.
    /// No-op from any other state (in particular, never un-quarantines).
    pub fn note_probe_ok(&self) {
        if self
            .state
            .compare_exchange(
                HealthState::Degraded.as_u8(),
                HealthState::Healthy.as_u8(),
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
        {
            self.reason.lock().clear();
            self.recoveries.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Lifetime transition counts: (degradations, recoveries, quarantines).
    #[must_use]
    pub fn transition_counts(&self) -> (u64, u64, u64) {
        (
            self.degradations.load(Ordering::Relaxed),
            self.recoveries.load(Ordering::Relaxed),
            self.quarantines.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_degrades_on_storage_error_and_recovers_on_probe() {
        let h = TenantHealth::new();
        assert_eq!(h.state(), HealthState::Healthy);
        h.note_storage_error("fsync failed");
        assert_eq!(h.state(), HealthState::Degraded);
        assert_eq!(h.reason(), "fsync failed");
        // A second error keeps the first reason.
        h.note_storage_error("another");
        assert_eq!(h.reason(), "fsync failed");
        h.note_probe_ok();
        assert_eq!(h.state(), HealthState::Healthy);
        assert_eq!(h.reason(), "");
        assert_eq!(h.transition_counts(), (1, 1, 0));
    }

    #[test]
    fn quarantine_is_terminal() {
        let h = TenantHealth::new();
        h.note_corruption("wal crc mismatch");
        assert_eq!(h.state(), HealthState::Quarantined);
        h.note_probe_ok();
        assert_eq!(h.state(), HealthState::Quarantined);
        h.note_storage_error("later write error");
        assert_eq!(h.state(), HealthState::Quarantined);
        assert_eq!(h.reason(), "wal crc mismatch");
        assert_eq!(h.transition_counts(), (0, 0, 1));
    }

    #[test]
    fn probe_from_healthy_is_a_no_op() {
        let h = TenantHealth::new();
        h.note_probe_ok();
        assert_eq!(h.state(), HealthState::Healthy);
        assert_eq!(h.transition_counts(), (0, 0, 0));
    }
}
