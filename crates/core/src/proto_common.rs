//! Protocol fragments shared by both schemes' wire formats: document
//! upload, acknowledgements, search results and error responses.

use crate::error::{Result, SseError};
use sse_net::wire::{WireReader, WireWriter};

/// Shared response tag bytes.
pub mod resp {
    /// Generic acknowledgement.
    pub const ACK: u8 = 0x81;
    /// Search result: list of `(doc id, encrypted blob)`.
    pub const RESULT: u8 = 0x85;
    /// Batched search result: one result list per queried keyword.
    pub const RESULT_MANY: u8 = 0x86;
    /// Server-side error with a message.
    pub const ERROR: u8 = 0xFF;
}

/// Encode `Ack`.
#[must_use]
pub fn encode_ack() -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u8(resp::ACK);
    w.finish()
}

/// Encode an error response.
#[must_use]
pub fn encode_error(msg: &str) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u8(resp::ERROR).put_bytes(msg.as_bytes());
    w.finish()
}

/// Encode a search result.
#[must_use]
pub fn encode_result(docs: &[(u64, Vec<u8>)]) -> Vec<u8> {
    encode_result_with(docs, Vec::new())
}

/// Encode a search result into a recycled buffer (capacity is reused;
/// contents are discarded). The serving hot path hands a pool-acquired
/// buffer here so a steady-state search response costs no allocation.
#[must_use]
pub fn encode_result_with(docs: &[(u64, Vec<u8>)], buf: Vec<u8>) -> Vec<u8> {
    let mut w = WireWriter::with_buf(buf);
    w.put_u8(resp::RESULT).put_u64(docs.len() as u64);
    for (id, blob) in docs {
        w.put_u64(*id).put_bytes(blob);
    }
    w.finish()
}

/// Read and check a response tag; converts server `Error` responses into
/// [`SseError::ProtocolViolation`].
pub fn expect_tag(r: &mut WireReader<'_>, want: u8, what: &'static str) -> Result<()> {
    let got = r.get_u8()?;
    if got == resp::ERROR {
        let msg = String::from_utf8_lossy(r.get_bytes()?).into_owned();
        return Err(SseError::ProtocolViolation {
            expected: what,
            got: format!("server error: {msg}"),
        });
    }
    if got != want {
        return Err(SseError::ProtocolViolation {
            expected: what,
            got: format!("tag {got:#04x}"),
        });
    }
    Ok(())
}

/// Decode `Ack`.
///
/// # Errors
/// Protocol violations and wire errors.
pub fn decode_ack(buf: &[u8]) -> Result<()> {
    let mut r = WireReader::new(buf);
    expect_tag(&mut r, resp::ACK, "Ack")?;
    r.finish()?;
    Ok(())
}

/// Decode a search result.
///
/// # Errors
/// Protocol violations and wire errors.
pub fn decode_result(buf: &[u8]) -> Result<Vec<(u64, Vec<u8>)>> {
    let mut r = WireReader::new(buf);
    expect_tag(&mut r, resp::RESULT, "Result")?;
    let n = r.get_count(16)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let id = r.get_u64()?;
        out.push((id, r.get_bytes()?.to_vec()));
    }
    r.finish()?;
    Ok(out)
}

/// Encode a batched search result: one `(id, blob)` list per queried
/// keyword, position-aligned with the request.
#[must_use]
pub fn encode_result_many(results: &[Vec<(u64, Vec<u8>)>]) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u8(resp::RESULT_MANY).put_u64(results.len() as u64);
    for docs in results {
        w.put_u64(docs.len() as u64);
        for (id, blob) in docs {
            w.put_u64(*id).put_bytes(blob);
        }
    }
    w.finish()
}

/// One `(doc id, encrypted blob)` result list per queried keyword.
pub type ResultLists = Vec<Vec<(u64, Vec<u8>)>>;

/// Decode a batched search result.
///
/// # Errors
/// Protocol violations and wire errors.
pub fn decode_result_many(buf: &[u8]) -> Result<ResultLists> {
    let mut r = WireReader::new(buf);
    expect_tag(&mut r, resp::RESULT_MANY, "ResultMany")?;
    let n = r.get_count(8)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let m = r.get_count(16)?;
        let mut docs = Vec::with_capacity(m);
        for _ in 0..m {
            let id = r.get_u64()?;
            docs.push((id, r.get_bytes()?.to_vec()));
        }
        out.push(docs);
    }
    r.finish()?;
    Ok(out)
}

/// Encode a `PutDocs` body (after the scheme-specific request tag byte).
pub fn put_docs_body(w: &mut WireWriter, docs: &[(u64, Vec<u8>)]) {
    w.put_u64(docs.len() as u64);
    for (id, blob) in docs {
        w.put_u64(*id).put_bytes(blob);
    }
}

/// Decode a `PutDocs` body.
///
/// # Errors
/// Wire errors.
pub fn decode_put_docs_body(r: &mut WireReader<'_>) -> Result<Vec<(u64, Vec<u8>)>> {
    let n = r.get_count(16)?;
    let mut docs = Vec::with_capacity(n);
    for _ in 0..n {
        let id = r.get_u64()?;
        docs.push((id, r.get_bytes()?.to_vec()));
    }
    Ok(docs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ack_round_trip() {
        decode_ack(&encode_ack()).unwrap();
    }

    #[test]
    fn result_round_trip() {
        let docs = vec![(1u64, vec![1, 2]), (2, vec![])];
        assert_eq!(decode_result(&encode_result(&docs)).unwrap(), docs);
    }

    #[test]
    fn error_surfaces_message() {
        let e = decode_ack(&encode_error("nope")).unwrap_err();
        assert!(e.to_string().contains("nope"));
    }

    #[test]
    fn result_many_round_trip() {
        let results = vec![
            vec![(1u64, vec![1, 2]), (2, vec![])],
            vec![],
            vec![(9, vec![9])],
        ];
        assert_eq!(
            decode_result_many(&encode_result_many(&results)).unwrap(),
            results
        );
    }

    #[test]
    fn put_docs_body_round_trip() {
        let docs = vec![(7u64, b"x".to_vec())];
        let mut w = WireWriter::new();
        put_docs_body(&mut w, &docs);
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert_eq!(decode_put_docs_body(&mut r).unwrap(), docs);
        r.finish().unwrap();
    }
}
