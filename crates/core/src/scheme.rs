//! The common SSE client interface.
//!
//! The paper's conventional-scheme skeleton (§3) — `Keygen`, `Storage`
//! (= `DataStorage` + `MetadataStorage`), `Trapdoor`, `Search` — maps onto
//! one client-side trait so that both schemes, and every baseline, can be
//! driven by the same experiments and examples.
//!
//! `Storage` and update are the *same operation* in both schemes (adding
//! documents to an existing database is just `MetadataStorage` again); the
//! trait exposes it as [`SseClientApi::add_documents`].

use crate::error::Result;
use crate::types::{Document, Keyword, SearchHits};

/// Client-side interface shared by the two schemes and the baselines.
pub trait SseClientApi {
    /// Store documents on the server (`Storage`): encrypt each data item,
    /// and merge each unique keyword's posting information into the
    /// searchable representations. Calling this again later *is* the
    /// paper's update operation.
    fn add_documents(&mut self, docs: &[Document]) -> Result<()>;

    /// Search for one keyword (`Trapdoor` + `Search`): returns the matching
    /// documents, decrypted client-side.
    fn search(&mut self, keyword: &Keyword) -> Result<SearchHits>;

    /// Search several keywords, returning one hit list per keyword
    /// (position-aligned). The default loops over [`SseClientApi::search`];
    /// the paper's schemes override it with batched protocol rounds
    /// (2 rounds total for Scheme 1, 1 for Scheme 2).
    fn search_many(&mut self, keywords: &[Keyword]) -> Result<Vec<SearchHits>> {
        keywords.iter().map(|w| self.search(w)).collect()
    }

    /// Human-readable scheme name for experiment output.
    fn scheme_name(&self) -> &'static str;
}
