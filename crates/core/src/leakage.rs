//! Update-leakage analysis and the §5.7 mitigations.
//!
//! The paper concedes that updates leak: the server sees *how many
//! keywords* each update touches, and which keyword tags recur across
//! updates. Two mitigations are proposed:
//!
//! * **Batched updates** — update many documents at once so only the
//!   aggregate keyword count is visible; per-document inference degrades as
//!   the batch grows ("the information leakage goes asymptotically towards
//!   zero bits").
//! * **Fake updates** — pad every update to an identical keyword count
//!   with no-op entries, making all updates look alike.
//!
//! This module quantifies both. The *observation* available to the
//! honest-but-curious server is exactly the number of entries in an
//! update message (`ApplyUpdates` / `AppendGenerations`); we measure how
//! well per-document keyword counts can be estimated from it, and how much
//! entropy the observation stream itself carries.

use crate::types::Document;
use std::collections::BTreeSet;

/// What the server observes for one update batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UpdateObservation {
    /// Number of documents in the batch (public: PutDocs count).
    pub batch_docs: usize,
    /// Number of keyword entries in the metadata message.
    pub keyword_entries: usize,
}

/// Leakage report over a sequence of update batches.
#[derive(Clone, Debug)]
pub struct LeakageReport {
    /// Per-batch observations.
    pub observations: Vec<UpdateObservation>,
    /// Mean absolute error of the adversary's per-document keyword-count
    /// estimates (higher = less leaked).
    pub per_doc_mae: f64,
    /// Shannon entropy (bits) of the keyword-entry observation stream
    /// (0 = every update looks identical, i.e. nothing to learn).
    pub observation_entropy_bits: f64,
}

/// Unique keyword count over a batch of documents — the entry count of an
/// *unpadded* update message (both schemes send one entry per unique
/// keyword in the batch).
#[must_use]
pub fn unique_keywords(batch: &[Document]) -> usize {
    batch
        .iter()
        .flat_map(|d| d.keywords.iter())
        .collect::<BTreeSet<_>>()
        .len()
}

/// Analyze what a sequence of update batches leaks.
///
/// `pad_to`: if set, every update is padded with fake entries up to this
/// count (entries beyond it are *not* truncated — a batch with more unique
/// keywords than the pad target still sends them all, as the paper's fake
/// updates can only add).
#[must_use]
pub fn analyze_updates(batches: &[Vec<Document>], pad_to: Option<usize>) -> LeakageReport {
    let observations: Vec<UpdateObservation> = batches
        .iter()
        .map(|batch| {
            let real = unique_keywords(batch);
            let sent = match pad_to {
                Some(p) => real.max(p),
                None => real,
            };
            UpdateObservation {
                batch_docs: batch.len(),
                keyword_entries: sent,
            }
        })
        .collect();

    // Adversary's best per-document estimate from one observation: the
    // average `keyword_entries / batch_docs`. Compare against ground truth.
    let mut abs_err_sum = 0.0;
    let mut doc_count = 0usize;
    for (batch, obs) in batches.iter().zip(observations.iter()) {
        if batch.is_empty() {
            continue;
        }
        let estimate = obs.keyword_entries as f64 / obs.batch_docs as f64;
        for d in batch {
            abs_err_sum += (d.keywords.len() as f64 - estimate).abs();
            doc_count += 1;
        }
    }
    let per_doc_mae = if doc_count == 0 {
        0.0
    } else {
        abs_err_sum / doc_count as f64
    };

    LeakageReport {
        per_doc_mae,
        observation_entropy_bits: shannon_entropy(observations.iter().map(|o| o.keyword_entries)),
        observations,
    }
}

/// Shannon entropy (bits) of a discrete observation stream.
fn shannon_entropy(values: impl Iterator<Item = usize>) -> f64 {
    let mut counts: std::collections::BTreeMap<usize, u64> = std::collections::BTreeMap::new();
    let mut total = 0u64;
    for v in values {
        *counts.entry(v).or_insert(0) += 1;
        total += 1;
    }
    if total == 0 {
        return 0.0;
    }
    counts
        .values()
        .map(|&c| {
            let p = c as f64 / total as f64;
            -p * p.log2()
        })
        .sum()
}

/// Split a document stream into batches of `batch_size` (the batched-update
/// mitigation: the caller chooses how much to aggregate).
#[must_use]
pub fn batch_documents(docs: &[Document], batch_size: usize) -> Vec<Vec<Document>> {
    assert!(batch_size > 0, "batch size must be positive");
    docs.chunks(batch_size).map(<[Document]>::to_vec).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Documents with varying keyword counts (1..=5).
    fn corpus() -> Vec<Document> {
        (0..40u64)
            .map(|i| {
                let k = (i % 5) + 1;
                let kws: Vec<String> = (0..k).map(|j| format!("kw-{i}-{j}")).collect();
                Document::new(i, vec![], kws.iter().map(String::as_str))
            })
            .collect()
    }

    #[test]
    fn unique_keywords_deduplicates() {
        let batch = vec![
            Document::new(0, vec![], ["a", "b"]),
            Document::new(1, vec![], ["b", "c"]),
        ];
        assert_eq!(unique_keywords(&batch), 3);
    }

    #[test]
    fn single_doc_updates_leak_exact_counts() {
        let docs = corpus();
        let batches = batch_documents(&docs, 1);
        let report = analyze_updates(&batches, None);
        // With batch = 1 and disjoint keywords, the estimate is exact.
        assert!(report.per_doc_mae < 1e-9, "mae = {}", report.per_doc_mae);
        // Five distinct observation values -> about log2(5) bits.
        assert!(report.observation_entropy_bits > 2.0);
    }

    #[test]
    fn batching_degrades_per_doc_inference() {
        let docs = corpus();
        let mae_1 = analyze_updates(&batch_documents(&docs, 1), None).per_doc_mae;
        let mae_8 = analyze_updates(&batch_documents(&docs, 8), None).per_doc_mae;
        let mae_40 = analyze_updates(&batch_documents(&docs, 40), None).per_doc_mae;
        assert!(mae_1 < mae_8, "batching must increase estimation error");
        assert!(mae_8 <= mae_40 + 1e-9);
        assert!(mae_40 > 1.0, "full-corpus batch leaves only the mean");
    }

    #[test]
    fn padding_flattens_observations_to_zero_entropy() {
        let docs = corpus();
        let batches = batch_documents(&docs, 1);
        let padded = analyze_updates(&batches, Some(8));
        assert_eq!(
            padded.observation_entropy_bits, 0.0,
            "all updates look identical under padding"
        );
        for obs in &padded.observations {
            assert_eq!(obs.keyword_entries, 8);
        }
    }

    #[test]
    fn padding_never_truncates() {
        let batch = vec![Document::new(0, vec![], ["a", "b", "c", "d", "e", "f"])];
        let report = analyze_updates(&[batch], Some(3));
        assert_eq!(report.observations[0].keyword_entries, 6);
    }

    #[test]
    fn entropy_of_constant_stream_is_zero() {
        assert_eq!(shannon_entropy([4usize, 4, 4, 4].into_iter()), 0.0);
    }

    #[test]
    fn entropy_of_uniform_pair_is_one_bit() {
        let h = shannon_entropy([1usize, 2, 1, 2].into_iter());
        assert!((h - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_batch_size_panics() {
        let _ = batch_documents(&corpus(), 0);
    }

    #[test]
    fn empty_input_is_benign() {
        let report = analyze_updates(&[], None);
        assert_eq!(report.per_doc_mae, 0.0);
        assert_eq!(report.observation_entropy_bits, 0.0);
        assert!(report.observations.is_empty());
    }
}
