//! Scheme 1 client.
//!
//! Holds the master key and runs the two-round protocols of Figures 1–2
//! against any [`Transport`]. The client is stateless between operations —
//! everything it needs is re-derivable from `K = (k_m, k_w)` — which is the
//! property that lets the paper's traveler use PHR+ "anywhere she prefers".

use super::protocol::{self, UpdateEntry};
use super::Scheme1Config;
use crate::error::{Result, SseError};
use crate::scheme::SseClientApi;
use crate::types::{Document, Keyword, MasterKey, SearchHits};
use sse_index::bitset::DocBitSet;
use sse_net::link::{MeteredLink, Transport};
use sse_net::meter::Meter;
use sse_primitives::drbg::HmacDrbg;
use sse_primitives::elgamal::{element_to_seed, ElGamal, ElGamalCiphertext};
use sse_primitives::etm::EtmKey;
use sse_primitives::prf::Prf;
use sse_primitives::prg::Prg;
use std::collections::BTreeMap;

/// The Scheme 1 client, generic over the transport to the server.
pub struct Scheme1Client<T: Transport> {
    link: T,
    config: Scheme1Config,
    /// Tag PRF `f` under a `k_w` subkey.
    prf: Prf,
    /// Data-item encryption `E_km`.
    etm: EtmKey,
    /// The trapdoor permutation `F` (keys derived from `k_w`).
    elgamal: ElGamal,
    /// Client-side randomness (nonces, ElGamal encryption coins).
    drbg: HmacDrbg,
}

/// Convenience alias: a client wired directly to an in-process server.
pub type InMemoryScheme1Client = Scheme1Client<MeteredLink<super::server::Scheme1Server>>;

impl InMemoryScheme1Client {
    /// Build client + in-memory server + metered link in one call.
    #[must_use]
    pub fn new_in_memory(key: MasterKey, config: Scheme1Config) -> Self {
        let server = super::server::Scheme1Server::new_in_memory(config.capacity_docs);
        let link = MeteredLink::new(server, Meter::new());
        Scheme1Client::new(link, key, config)
    }

    /// The traffic meter shared with the link.
    #[must_use]
    pub fn meter(&self) -> Meter {
        self.link.meter().clone()
    }

    /// Peek at the server (experiments read its counters).
    pub fn server_mut(&mut self) -> &mut super::server::Scheme1Server {
        self.link.service_mut()
    }
}

impl<T: Transport> Scheme1Client<T> {
    /// Construct a client over an established transport.
    #[must_use]
    pub fn new(link: T, key: MasterKey, config: Scheme1Config) -> Self {
        let prf = Prf::new(key.derive_w("scheme1/tag"));
        let etm = EtmKey::new(&key.derive_m("scheme1/data"));
        let elgamal =
            ElGamal::from_master_key(config.group.clone(), &key.derive_w("scheme1/trapdoor"));
        // Mix OS entropy with a key-derived personalization string.
        let mut seed_material = key.derive_w("scheme1/client-rng").to_vec();
        let mut os = [0u8; 32];
        sse_primitives::os_random(&mut os);
        seed_material.extend_from_slice(&os);
        let drbg = HmacDrbg::new(&seed_material);
        Scheme1Client {
            link,
            config,
            prf,
            etm,
            elgamal,
            drbg,
        }
    }

    /// Deterministic variant for tests and reproducible experiments.
    #[must_use]
    pub fn new_seeded(link: T, key: MasterKey, config: Scheme1Config, rng_seed: u64) -> Self {
        let mut c = Self::new(link, key, config);
        c.drbg = HmacDrbg::from_u64(rng_seed);
        c
    }

    /// The PRF tag `f_kw(w)` — also the `Trapdoor(w)` of Scheme 1.
    #[must_use]
    pub fn tag(&self, keyword: &Keyword) -> [u8; 32] {
        self.prf.eval(keyword.as_bytes()).0
    }

    /// `Storage` / update: upload documents and merge their keywords.
    ///
    /// # Errors
    /// Rejects ids beyond the configured capacity; propagates protocol and
    /// crypto failures.
    pub fn store(&mut self, docs: &[Document]) -> Result<()> {
        for d in docs {
            if d.id >= self.config.capacity_docs {
                return Err(SseError::DocIdOutOfRange {
                    id: d.id,
                    capacity: self.config.capacity_docs,
                });
            }
        }

        // DataStorage: ship E_km(M_i).
        if !docs.is_empty() {
            let blobs: Vec<(u64, Vec<u8>)> = docs
                .iter()
                .map(|d| (d.id, self.seal_blob(&d.data)))
                .collect();
            let resp = self.link.round_trip(&protocol::encode_put_docs(&blobs))?;
            protocol::decode_ack(&resp)?;
        }

        // MetadataStorage: gather U(w) for each unique keyword.
        let mut updates: BTreeMap<[u8; 32], DocBitSet> = BTreeMap::new();
        for d in docs {
            for w in &d.keywords {
                updates
                    .entry(self.tag(w))
                    .or_insert_with(|| DocBitSet::new(self.config.capacity_docs as usize))
                    .toggle(d.id);
            }
        }
        if updates.is_empty() {
            return Ok(());
        }
        self.send_masked_updates(updates)
    }

    /// [`Scheme1Client::store`] with the final two mutations (`PutDocs`,
    /// `ApplyUpdates`) shipped through [`Transport::round_trip_batch`]: the
    /// nonce fetch stays its own round, but over a batching transport (the
    /// TCP `UPDATE_MANY` envelope) blobs and masked deltas land in one
    /// message the server applies atomically — a racing search sees either
    /// none or all of the update, and each index shard takes one journal
    /// append. On non-batching transports this degrades to exactly the
    /// message sequence of [`Scheme1Client::store`] with the `PutDocs`
    /// reordered after the nonce fetch.
    ///
    /// # Errors
    /// Same failure modes as [`Scheme1Client::store`].
    pub fn store_batch(&mut self, docs: &[Document]) -> Result<()> {
        for d in docs {
            if d.id >= self.config.capacity_docs {
                return Err(SseError::DocIdOutOfRange {
                    id: d.id,
                    capacity: self.config.capacity_docs,
                });
            }
        }
        let mut updates: BTreeMap<[u8; 32], DocBitSet> = BTreeMap::new();
        for d in docs {
            for w in &d.keywords {
                updates
                    .entry(self.tag(w))
                    .or_insert_with(|| DocBitSet::new(self.config.capacity_docs as usize))
                    .toggle(d.id);
            }
        }

        let mut parts: Vec<Vec<u8>> = Vec::with_capacity(2);
        if !docs.is_empty() {
            let blobs: Vec<(u64, Vec<u8>)> = docs
                .iter()
                .map(|d| (d.id, self.seal_blob(&d.data)))
                .collect();
            parts.push(protocol::encode_put_docs(&blobs));
        }
        if !updates.is_empty() {
            // Round 1: fetch F(r) for every touched keyword.
            let tags: Vec<[u8; 32]> = updates.keys().copied().collect();
            let resp = self.link.round_trip(&protocol::encode_get_nonces(&tags))?;
            let nonces = protocol::decode_nonces(&resp)?;
            if nonces.len() != tags.len() {
                return Err(SseError::ProtocolViolation {
                    expected: "one nonce slot per requested tag",
                    got: format!("{} slots for {} tags", nonces.len(), tags.len()),
                });
            }
            let entries = self.build_masked_entries(updates, nonces)?;
            parts.push(protocol::encode_apply_updates(&entries));
        }
        if parts.is_empty() {
            return Ok(());
        }
        let responses = self.link.round_trip_batch(&parts)?;
        for resp in &responses {
            protocol::decode_ack(resp)?;
        }
        Ok(())
    }

    /// The two-round masked-update exchange of Fig. 1 for pre-built
    /// `tag → U(w)` arrays. Shared by [`Scheme1Client::store`] and the
    /// leakage-hiding fake updates.
    fn send_masked_updates(&mut self, updates: BTreeMap<[u8; 32], DocBitSet>) -> Result<()> {
        let tags: Vec<[u8; 32]> = updates.keys().copied().collect();

        // Round 1: fetch F(r) for every touched keyword.
        let resp = self.link.round_trip(&protocol::encode_get_nonces(&tags))?;
        let nonces = protocol::decode_nonces(&resp)?;
        if nonces.len() != tags.len() {
            return Err(SseError::ProtocolViolation {
                expected: "one nonce slot per requested tag",
                got: format!("{} slots for {} tags", nonces.len(), tags.len()),
            });
        }

        // Round 2: build and send the masked deltas.
        let entries = self.build_masked_entries(updates, nonces)?;
        let resp = self
            .link
            .round_trip(&protocol::encode_apply_updates(&entries))?;
        protocol::decode_ack(&resp)
    }

    /// Turn `tag → U(w)` arrays plus their fetched `F(r)` slots into masked
    /// [`UpdateEntry`]s: strip the old mask where a nonce exists, apply a
    /// fresh `G(r')`.
    fn build_masked_entries(
        &mut self,
        updates: BTreeMap<[u8; 32], DocBitSet>,
        nonces: Vec<Option<Vec<u8>>>,
    ) -> Result<Vec<UpdateEntry>> {
        let mut entries = Vec::with_capacity(updates.len());
        for ((tag, u_w), stored_f_r) in updates.into_iter().zip(nonces) {
            let mut delta = u_w.as_bytes().to_vec();
            if let Some(f_r_bytes) = stored_f_r {
                // Existing keyword: recover r and strip the old mask.
                let ct = ElGamalCiphertext::from_bytes(self.elgamal.group(), &f_r_bytes)?;
                let old_seed = self.elgamal.decrypt_to_seed(&ct)?;
                Prg::mask_in_place(&old_seed, &mut delta);
            }
            // Apply the fresh mask G(r').
            let (new_seed, f_r_new) = self.fresh_nonce();
            Prg::mask_in_place(&new_seed, &mut delta);
            entries.push(UpdateEntry {
                tag,
                delta,
                f_r: f_r_new,
            });
        }
        Ok(entries)
    }

    /// `Trapdoor` + `Search` (Fig. 2, two rounds).
    ///
    /// # Errors
    /// Propagates protocol and crypto failures; an unknown keyword returns
    /// an empty hit list.
    pub fn search(&mut self, keyword: &Keyword) -> Result<SearchHits> {
        let tag = self.tag(keyword);

        // Round 1: T_w = f_kw(w); expect F(r).
        let resp = self.link.round_trip(&protocol::encode_search_find(&tag))?;
        let Some(f_r_bytes) = protocol::decode_found(&resp)? else {
            return Ok(Vec::new());
        };
        let ct = ElGamalCiphertext::from_bytes(self.elgamal.group(), &f_r_bytes)?;
        let seed = self.elgamal.decrypt_to_seed(&ct)?;

        // Round 2: reveal r; expect the matching encrypted documents.
        let resp = self
            .link
            .round_trip(&protocol::encode_search_reveal(&tag, &seed))?;
        let encrypted = protocol::decode_result(&resp)?;
        let mut hits = Vec::with_capacity(encrypted.len());
        for (id, blob) in encrypted {
            hits.push((id, self.etm.open(&blob)?));
        }

        if self.config.remask_after_search {
            self.remask(tag, &seed)?;
        }
        Ok(hits)
    }

    /// Batched search (protocol extension): search `q` keywords in **two
    /// rounds total** instead of `2q` — round 1 fetches every `F(r)` (the
    /// same exchange `MetadataStorage` uses), round 2 reveals all seeds at
    /// once. Returns one hit list per keyword, position-aligned.
    ///
    /// # Errors
    /// Propagates protocol and crypto failures.
    pub fn search_many(&mut self, keywords: &[Keyword]) -> Result<Vec<SearchHits>> {
        if keywords.is_empty() {
            return Ok(Vec::new());
        }
        let tags: Vec<[u8; 32]> = keywords.iter().map(|w| self.tag(w)).collect();

        // Round 1: F(r) for every tag (unknown keywords come back absent).
        let resp = self.link.round_trip(&protocol::encode_get_nonces(&tags))?;
        let nonces = protocol::decode_nonces(&resp)?;
        if nonces.len() != tags.len() {
            return Err(SseError::ProtocolViolation {
                expected: "one nonce slot per requested tag",
                got: format!("{} slots for {} tags", nonces.len(), tags.len()),
            });
        }

        // Recover seeds for the keywords that exist.
        let mut reveal: Vec<([u8; 32], [u8; 32])> = Vec::new();
        let mut reveal_pos: Vec<usize> = Vec::new();
        for (i, stored) in nonces.iter().enumerate() {
            if let Some(f_r_bytes) = stored {
                let ct = ElGamalCiphertext::from_bytes(self.elgamal.group(), f_r_bytes)?;
                let seed = self.elgamal.decrypt_to_seed(&ct)?;
                reveal.push((tags[i], seed));
                reveal_pos.push(i);
            }
        }
        let mut out: Vec<SearchHits> = vec![Vec::new(); keywords.len()];
        if reveal.is_empty() {
            return Ok(out);
        }

        // Round 2: reveal everything at once.
        let resp = self
            .link
            .round_trip(&protocol::encode_search_reveal_many(&reveal))?;
        let results = crate::proto_common::decode_result_many(&resp)?;
        if results.len() != reveal.len() {
            return Err(SseError::ProtocolViolation {
                expected: "one result list per revealed tag",
                got: format!("{} lists for {} reveals", results.len(), reveal.len()),
            });
        }
        for (slot, encrypted) in reveal_pos.iter().zip(results) {
            let mut hits = Vec::with_capacity(encrypted.len());
            for (id, blob) in encrypted {
                hits.push((id, self.etm.open(&blob)?));
            }
            out[*slot] = hits;
        }

        if self.config.remask_after_search {
            // One extra round re-randomizes every revealed mask at once.
            let entries: Vec<UpdateEntry> = reveal
                .iter()
                .map(|(tag, seed)| {
                    let mut delta = vec![0u8; self.config.index_bytes()];
                    Prg::mask_in_place(seed, &mut delta);
                    let (new_seed, f_r_new) = self.fresh_nonce();
                    Prg::mask_in_place(&new_seed, &mut delta);
                    UpdateEntry {
                        tag: *tag,
                        delta,
                        f_r: f_r_new,
                    }
                })
                .collect();
            let resp = self
                .link
                .round_trip(&protocol::encode_apply_updates(&entries))?;
            protocol::decode_ack(&resp)?;
        }
        Ok(out)
    }

    /// [`Scheme1Client::search_many`] with one scheme message per keyword
    /// in each round, shipped through
    /// [`Transport::round_trip_search_batch`]: over the TCP `SEARCH_MANY`
    /// envelope this is a batched `SearchFind` round followed by a batched
    /// `SearchReveal` round — **two rounds total**, with the daemon
    /// evaluating the per-keyword lookups and unmaskings concurrently
    /// across its shard snapshots. On non-batching transports this
    /// degrades to the per-keyword sequence of [`Scheme1Client::search`].
    /// Returns one hit list per keyword, position-aligned.
    ///
    /// # Errors
    /// Propagates protocol and crypto failures.
    pub fn search_batch(&mut self, keywords: &[Keyword]) -> Result<Vec<SearchHits>> {
        if keywords.is_empty() {
            return Ok(Vec::new());
        }
        let tags: Vec<[u8; 32]> = keywords.iter().map(|w| self.tag(w)).collect();

        // Round 1: one SearchFind part per tag, fanned out server-side.
        let find_parts: Vec<Vec<u8>> = tags.iter().map(protocol::encode_search_find).collect();
        let find_responses = self.link.round_trip_search_batch(&find_parts)?;
        if find_responses.len() != tags.len() {
            return Err(SseError::ProtocolViolation {
                expected: "one find response per search part",
                got: format!(
                    "{} responses for {} parts",
                    find_responses.len(),
                    tags.len()
                ),
            });
        }

        // Recover seeds for the keywords that exist.
        let mut reveal: Vec<([u8; 32], [u8; 32])> = Vec::new();
        let mut reveal_pos: Vec<usize> = Vec::new();
        for (i, resp) in find_responses.iter().enumerate() {
            if let Some(f_r_bytes) = protocol::decode_found(resp)? {
                let ct = ElGamalCiphertext::from_bytes(self.elgamal.group(), &f_r_bytes)?;
                let seed = self.elgamal.decrypt_to_seed(&ct)?;
                reveal.push((tags[i], seed));
                reveal_pos.push(i);
            }
        }
        let mut out: Vec<SearchHits> = vec![Vec::new(); keywords.len()];
        if reveal.is_empty() {
            return Ok(out);
        }

        // Round 2: one SearchReveal part per present keyword.
        let reveal_parts: Vec<Vec<u8>> = reveal
            .iter()
            .map(|(tag, seed)| protocol::encode_search_reveal(tag, seed))
            .collect();
        let reveal_responses = self.link.round_trip_search_batch(&reveal_parts)?;
        if reveal_responses.len() != reveal.len() {
            return Err(SseError::ProtocolViolation {
                expected: "one reveal response per revealed tag",
                got: format!(
                    "{} responses for {} reveals",
                    reveal_responses.len(),
                    reveal.len()
                ),
            });
        }
        for (slot, resp) in reveal_pos.iter().zip(&reveal_responses) {
            let encrypted = protocol::decode_result(resp)?;
            let mut hits = Vec::with_capacity(encrypted.len());
            for (id, blob) in encrypted {
                hits.push((id, self.etm.open(&blob)?));
            }
            out[*slot] = hits;
        }

        if self.config.remask_after_search {
            // One extra round re-randomizes every revealed mask at once.
            let entries: Vec<UpdateEntry> = reveal
                .iter()
                .map(|(tag, seed)| {
                    let mut delta = vec![0u8; self.config.index_bytes()];
                    Prg::mask_in_place(seed, &mut delta);
                    let (new_seed, f_r_new) = self.fresh_nonce();
                    Prg::mask_in_place(&new_seed, &mut delta);
                    UpdateEntry {
                        tag: *tag,
                        delta,
                        f_r: f_r_new,
                    }
                })
                .collect();
            let resp = self
                .link
                .round_trip(&protocol::encode_apply_updates(&entries))?;
            protocol::decode_ack(&resp)?;
        }
        Ok(out)
    }

    /// §5.7 *fake update*: run the full two-round update exchange with
    /// all-zero `U(w)` arrays. On the wire this is indistinguishable from a
    /// real update touching the same number of keywords, and it leaves every
    /// posting set unchanged (`I ⊕ 0 = I`) while refreshing the masks.
    ///
    /// # Errors
    /// Propagates protocol and crypto failures.
    pub fn fake_update(&mut self, keywords: &[Keyword]) -> Result<()> {
        let updates: BTreeMap<[u8; 32], DocBitSet> = keywords
            .iter()
            .map(|w| {
                (
                    self.tag(w),
                    DocBitSet::new(self.config.capacity_docs as usize),
                )
            })
            .collect();
        if updates.is_empty() {
            return Ok(());
        }
        self.send_masked_updates(updates)
    }

    /// Ask a durable server to checkpoint its document store and keyword
    /// index to disk (one round). Errors if the server is in-memory.
    ///
    /// # Errors
    /// Protocol failures, or a server-side error for in-memory servers.
    pub fn request_checkpoint(&mut self) -> Result<()> {
        let resp = self.link.round_trip(&protocol::encode_checkpoint())?;
        protocol::decode_ack(&resp)
    }

    /// Capacity migration (extension; two rounds): grow the database's
    /// document capacity by downloading every searchable representation,
    /// unmasking it with the recovered nonce, re-masking at the new width
    /// under fresh nonces, and atomically replacing the server's index.
    ///
    /// The client never needs to know the keyword *strings* — tags carry
    /// through unchanged — so this works for the paper's stateless client.
    ///
    /// # Errors
    /// Rejects shrinking below the current capacity; propagates protocol
    /// and crypto failures.
    pub fn migrate_capacity(&mut self, new_capacity: u64) -> Result<()> {
        if new_capacity < self.config.capacity_docs {
            return Err(SseError::DocIdOutOfRange {
                id: new_capacity,
                capacity: self.config.capacity_docs,
            });
        }
        let old_width = self.config.index_bytes();
        let new_width = (new_capacity as usize).div_ceil(8);

        // Round 1: download the index.
        let resp = self.link.round_trip(&protocol::encode_export_index())?;
        let dump = protocol::decode_index_dump(&resp)?;

        // Re-mask every entry at the new width.
        let mut entries = Vec::with_capacity(dump.len());
        for (tag, masked, f_r_bytes) in dump {
            if masked.len() != old_width {
                return Err(SseError::ProtocolViolation {
                    expected: "index entries at the current width",
                    got: format!("width {}", masked.len()),
                });
            }
            let ct = ElGamalCiphertext::from_bytes(self.elgamal.group(), &f_r_bytes)?;
            let seed = self.elgamal.decrypt_to_seed(&ct)?;
            let mut plain = Prg::mask(&seed, &masked);
            plain.resize(new_width, 0);
            let (new_seed, f_r_new) = self.fresh_nonce();
            Prg::mask_in_place(&new_seed, &mut plain);
            entries.push(UpdateEntry {
                tag,
                delta: plain,
                f_r: f_r_new,
            });
        }

        // Round 2: atomic replace.
        let resp = self
            .link
            .round_trip(&protocol::encode_replace_index(new_capacity, &entries))?;
        protocol::decode_ack(&resp)?;
        self.config.capacity_docs = new_capacity;
        Ok(())
    }

    /// Post-search re-masking (extension): replace the revealed mask `G(r)`
    /// with a fresh `G(r')` via a zero-delta update, without a nonce
    /// round-trip (the client just learned `r`).
    fn remask(&mut self, tag: [u8; 32], revealed_seed: &[u8; 32]) -> Result<()> {
        let mut delta = vec![0u8; self.config.index_bytes()];
        Prg::mask_in_place(revealed_seed, &mut delta);
        let (new_seed, f_r_new) = self.fresh_nonce();
        Prg::mask_in_place(&new_seed, &mut delta);
        let resp = self
            .link
            .round_trip(&protocol::encode_apply_updates(&[UpdateEntry {
                tag,
                delta,
                f_r: f_r_new,
            }]))?;
        protocol::decode_ack(&resp)
    }

    /// Sample a fresh nonce `r'`, returning its PRG seed and serialized
    /// `F(r')`.
    fn fresh_nonce(&mut self) -> ([u8; 32], Vec<u8>) {
        let nonce = self.drbg.gen_key();
        let embedded = self.elgamal.embed_nonce(&nonce);
        let seed = element_to_seed(self.elgamal.group(), &embedded);
        let ct = self.elgamal.encrypt_element(&embedded, &mut self.drbg);
        (seed, ct.to_bytes(self.elgamal.group()))
    }

    fn seal_blob(&mut self, data: &[u8]) -> Vec<u8> {
        // Draw the IV from the client DRBG so runs are reproducible.
        let mut iv = [0u8; 12];
        self.drbg.fill(&mut iv);
        self.etm.seal_with_iv(&iv, data)
    }

    /// Access the underlying transport (benchmarks swap meters, examples
    /// read counters).
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.link
    }
}

impl<T: Transport> SseClientApi for Scheme1Client<T> {
    fn add_documents(&mut self, docs: &[Document]) -> Result<()> {
        self.store(docs)
    }

    fn search(&mut self, keyword: &Keyword) -> Result<SearchHits> {
        Scheme1Client::search(self, keyword)
    }

    fn search_many(&mut self, keywords: &[Keyword]) -> Result<Vec<SearchHits>> {
        Scheme1Client::search_many(self, keywords)
    }

    fn scheme_name(&self) -> &'static str {
        "scheme1"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Document;

    fn client(capacity: u64) -> InMemoryScheme1Client {
        let mut c = InMemoryScheme1Client::new_in_memory(
            MasterKey::from_seed(42),
            Scheme1Config::fast_profile(capacity),
        );
        c.drbg = HmacDrbg::from_u64(7);
        c
    }

    fn docs() -> Vec<Document> {
        vec![
            Document::new(0, b"doc zero".to_vec(), ["flu", "fever"]),
            Document::new(1, b"doc one".to_vec(), ["fever"]),
            Document::new(2, b"doc two".to_vec(), ["measles"]),
        ]
    }

    #[test]
    fn store_and_search_end_to_end() {
        let mut c = client(64);
        c.store(&docs()).unwrap();
        let hits = c.search(&Keyword::new("fever")).unwrap();
        assert_eq!(
            hits,
            vec![(0, b"doc zero".to_vec()), (1, b"doc one".to_vec())]
        );
        let hits = c.search(&Keyword::new("measles")).unwrap();
        assert_eq!(hits, vec![(2, b"doc two".to_vec())]);
    }

    #[test]
    fn unknown_keyword_finds_nothing() {
        let mut c = client(64);
        c.store(&docs()).unwrap();
        assert!(c.search(&Keyword::new("nonexistent")).unwrap().is_empty());
    }

    #[test]
    fn incremental_update_extends_results() {
        let mut c = client(64);
        c.store(&docs()).unwrap();
        // Later: a new document with an existing keyword.
        c.store(&[Document::new(5, b"doc five".to_vec(), ["fever", "new-kw"])])
            .unwrap();
        let hits = c.search(&Keyword::new("fever")).unwrap();
        let ids: Vec<u64> = hits.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![0, 1, 5]);
        assert_eq!(
            c.search(&Keyword::new("new-kw")).unwrap(),
            vec![(5, b"doc five".to_vec())]
        );
    }

    #[test]
    fn xor_update_removes_documents() {
        let mut c = client(64);
        c.store(&docs()).unwrap();
        // Re-sending id 1 under "fever" toggles it out of I(fever).
        c.store(&[Document::new(1, b"doc one".to_vec(), ["fever"])])
            .unwrap();
        let ids: Vec<u64> = c
            .search(&Keyword::new("fever"))
            .unwrap()
            .iter()
            .map(|(id, _)| *id)
            .collect();
        assert_eq!(ids, vec![0]);
    }

    #[test]
    fn search_works_after_interleaved_updates_and_searches() {
        let mut c = client(128);
        c.store(&docs()).unwrap();
        for round in 0u64..5 {
            let id = 10 + round;
            c.store(&[Document::new(
                id,
                format!("gen {round}").into_bytes(),
                ["fever"],
            )])
            .unwrap();
            let hits = c.search(&Keyword::new("fever")).unwrap();
            assert_eq!(hits.len(), 2 + (round as usize) + 1);
        }
    }

    #[test]
    fn capacity_is_enforced_client_side() {
        let mut c = client(4);
        let err = c.store(&[Document::new(4, vec![], ["x"])]).unwrap_err();
        assert!(matches!(err, SseError::DocIdOutOfRange { id: 4, .. }));
    }

    #[test]
    fn round_counts_match_table_1() {
        let mut c = client(64);
        let meter = c.meter();

        // Storage: 1 (PutDocs) + 2 (update rounds).
        c.store(&docs()).unwrap();
        assert_eq!(meter.snapshot().rounds, 3);

        // Search: exactly 2 rounds.
        meter.reset();
        c.search(&Keyword::new("fever")).unwrap();
        assert_eq!(meter.snapshot().rounds, 2);

        // Metadata-only update (no new docs): exactly 2 rounds.
        meter.reset();
        c.fake_update(&[Keyword::new("fever")]).unwrap();
        assert_eq!(meter.snapshot().rounds, 2);
    }

    #[test]
    fn fake_update_preserves_results_and_changes_stored_bytes() {
        let mut c = client(64);
        c.store(&docs()).unwrap();
        let before = c.search(&Keyword::new("fever")).unwrap();
        c.fake_update(&[Keyword::new("fever"), Keyword::new("measles")])
            .unwrap();
        let after = c.search(&Keyword::new("fever")).unwrap();
        assert_eq!(before, after);
    }

    #[test]
    fn remask_extension_keeps_correctness() {
        let mut c = InMemoryScheme1Client::new_in_memory(
            MasterKey::from_seed(42),
            Scheme1Config::fast_profile(64).with_remask(),
        );
        c.store(&docs()).unwrap();
        for _ in 0..3 {
            let hits = c.search(&Keyword::new("fever")).unwrap();
            assert_eq!(hits.len(), 2);
        }
    }

    #[test]
    fn wrong_master_key_cannot_read_results() {
        // Client B shares the transport-visible state but not the key:
        // simulate by storing with one key and searching with another.
        let mut c1 = client(64);
        c1.store(&docs()).unwrap();
        // Fresh client with a different key over the *same* server.
        let server = std::mem::replace(
            c1.server_mut(),
            super::super::server::Scheme1Server::new_in_memory(64),
        );
        let link = MeteredLink::new(server, Meter::new());
        let mut c2 = Scheme1Client::new_seeded(
            link,
            MasterKey::from_seed(999),
            Scheme1Config::fast_profile(64),
            1,
        );
        // Different k_w -> different tags -> nothing found.
        assert!(c2.search(&Keyword::new("fever")).unwrap().is_empty());
    }

    #[test]
    fn search_many_matches_individual_searches_in_two_rounds() {
        let mut c = client(64);
        c.store(&docs()).unwrap();
        let kws = [
            Keyword::new("fever"),
            Keyword::new("absent"),
            Keyword::new("measles"),
        ];
        let individual: Vec<_> = kws.iter().map(|w| c.search(w).unwrap()).collect();
        let meter = c.meter();
        meter.reset();
        let batched = c.search_many(&kws).unwrap();
        assert_eq!(
            meter.snapshot().rounds,
            2,
            "batched search is 2 rounds total"
        );
        assert_eq!(batched, individual);
    }

    #[test]
    fn search_many_empty_and_all_unknown() {
        let mut c = client(64);
        c.store(&docs()).unwrap();
        assert!(c.search_many(&[]).unwrap().is_empty());
        let r = c
            .search_many(&[Keyword::new("nope1"), Keyword::new("nope2")])
            .unwrap();
        assert_eq!(r, vec![Vec::new(), Vec::new()]);
    }

    #[test]
    fn store_batch_matches_store_results() {
        let mut a = client(64);
        let mut b = client(64);
        a.store(&docs()).unwrap();
        b.store_batch(&docs()).unwrap();
        for w in ["flu", "fever", "measles", "absent"] {
            assert_eq!(
                a.search(&Keyword::new(w)).unwrap(),
                b.search(&Keyword::new(w)).unwrap(),
                "keyword {w}"
            );
        }
        // Batched updates toggle like plain ones.
        b.store_batch(&[Document::new(1, b"doc one".to_vec(), ["fever"])])
            .unwrap();
        let ids: Vec<u64> = b
            .search(&Keyword::new("fever"))
            .unwrap()
            .iter()
            .map(|(id, _)| *id)
            .collect();
        assert_eq!(ids, vec![0]);
    }

    #[test]
    fn empty_store_call_is_a_noop() {
        let mut c = client(64);
        let meter = c.meter();
        c.store(&[]).unwrap();
        assert_eq!(meter.snapshot().rounds, 0);
    }

    #[test]
    fn documents_without_keywords_are_stored_but_unsearchable() {
        let mut c = client(64);
        c.store(&[Document::new(0, b"orphan".to_vec(), Vec::<&str>::new())])
            .unwrap();
        assert_eq!(c.server_mut().stored_docs(), 1);
        assert_eq!(c.server_mut().unique_keywords(), 0);
    }

    #[test]
    fn capacity_migration_preserves_postings_and_allows_growth() {
        let mut c = client(8);
        c.store(&[
            Document::new(0, b"zero".to_vec(), ["kw-a"]),
            Document::new(7, b"seven".to_vec(), ["kw-a", "kw-b"]),
        ])
        .unwrap();
        // Id 8 is out of range before migration.
        assert!(c.store(&[Document::new(8, vec![], ["kw-a"])]).is_err());

        c.migrate_capacity(64).unwrap();
        // Old postings intact.
        let ids: Vec<u64> = c
            .search(&Keyword::new("kw-a"))
            .unwrap()
            .iter()
            .map(|(id, _)| *id)
            .collect();
        assert_eq!(ids, vec![0, 7]);
        // New ids fit now.
        c.store(&[Document::new(40, b"forty".to_vec(), ["kw-b"])])
            .unwrap();
        let ids: Vec<u64> = c
            .search(&Keyword::new("kw-b"))
            .unwrap()
            .iter()
            .map(|(id, _)| *id)
            .collect();
        assert_eq!(ids, vec![7, 40]);
    }

    #[test]
    fn chained_migrations_and_batched_search() {
        let mut c = client(8);
        c.store(&[
            Document::new(0, b"a".to_vec(), ["k1"]),
            Document::new(1, b"b".to_vec(), ["k1", "k2"]),
        ])
        .unwrap();
        // Grow twice in a row; all state must carry through both hops.
        c.migrate_capacity(32).unwrap();
        c.migrate_capacity(512).unwrap();
        c.store(&[Document::new(400, b"c".to_vec(), ["k2"])])
            .unwrap();
        let results = c
            .search_many(&[Keyword::new("k1"), Keyword::new("k2")])
            .unwrap();
        let ids1: Vec<u64> = results[0].iter().map(|(id, _)| *id).collect();
        let ids2: Vec<u64> = results[1].iter().map(|(id, _)| *id).collect();
        assert_eq!(ids1, vec![0, 1]);
        assert_eq!(ids2, vec![1, 400]);
    }

    #[test]
    fn migration_of_empty_database_works() {
        let mut c = client(8);
        c.migrate_capacity(64).unwrap();
        c.store(&[Document::new(50, b"x".to_vec(), ["kw"])])
            .unwrap();
        assert_eq!(c.search(&Keyword::new("kw")).unwrap().len(), 1);
    }

    #[test]
    fn migration_rejects_shrinking() {
        let mut c = client(64);
        assert!(c.migrate_capacity(32).is_err());
    }

    #[test]
    fn migration_costs_two_rounds() {
        let mut c = client(8);
        c.store(&docs().into_iter().take(2).collect::<Vec<_>>())
            .unwrap();
        let meter = c.meter();
        meter.reset();
        c.migrate_capacity(128).unwrap();
        assert_eq!(meter.snapshot().rounds, 2);
    }

    #[test]
    fn update_bandwidth_scales_with_capacity_not_batch() {
        // Table-1 claim: Scheme 1 update ships Θ(capacity) bits per keyword.
        let mut small = client(64);
        let mut large = client(4096);
        let m_small = small.meter();
        let m_large = large.meter();
        let doc = vec![Document::new(1, b"d".to_vec(), ["kw"])];
        small.store(&doc).unwrap();
        large.store(&doc).unwrap();
        let up_small = m_small.snapshot().bytes_up;
        let up_large = m_large.snapshot().bytes_up;
        // 4096/8 - 64/8 = 504 extra delta bytes for the same single doc.
        assert!(
            up_large >= up_small + 500,
            "expected capacity-driven growth: {up_small} vs {up_large}"
        );
    }
}
