//! Scheme 1 — the computationally efficient variant (§5.2).
//!
//! Searchable representation per unique keyword:
//!
//! ```text
//! S(w) = ( f_kw(w),  I(w) ⊕ G(r),  F(r) )
//! ```
//!
//! * `f_kw(w)` — HMAC tag identifying the representation; the server keeps
//!   all representations in a B+-tree keyed by tag (`O(log u)` lookup).
//! * `I(w)` — bit array over document ids (bit `i` set iff `w ∈ W_i`).
//! * `G(r)` — ChaCha20 PRG mask under a per-keyword nonce `r`.
//! * `F(r)` — ElGamal encryption of the nonce, so only the client can
//!   recover `r`.
//!
//! **Update** (Fig. 1, two rounds): the client fetches `F(r)`, recovers `r`,
//! picks a fresh `r'`, and sends `U(w) ⊕ G(r) ⊕ G(r')` together with
//! `F(r')`; the server XORs blindly, landing on `I'(w) ⊕ G(r')`. XOR
//! *toggles* document membership, so the same message adds and removes.
//!
//! **Search** (Fig. 2, two rounds): the client sends the tag, receives
//! `F(r)`, returns the recovered `r`; the server unmasks `I(w)` and ships
//! every matching encrypted document back.
//!
//! The extension flag [`Scheme1Config::remask_after_search`] (beyond the
//! paper — see DESIGN.md §4) makes the client refresh the mask right after
//! each search, restoring the at-rest hiding that the literal protocol
//! gives up once `r` has been revealed.

mod client;
pub mod protocol;
mod server;

pub use client::{InMemoryScheme1Client, Scheme1Client};
pub use protocol::REQ_TAGS;
pub use server::{Scheme1Server, Scheme1ServerStats};

use sse_primitives::modp::ModpGroup;

/// Scheme 1 configuration shared by client and server.
#[derive(Clone)]
pub struct Scheme1Config {
    /// Database capacity in documents: every bit array is
    /// `ceil(capacity/8)` bytes. Fixed at setup — the paper's bit-array
    /// representation cannot grow without re-masking every keyword.
    pub capacity_docs: u64,
    /// The ElGamal group instantiating `F`.
    pub group: ModpGroup,
    /// Beyond-paper extension: re-randomize `I(w) ⊕ G(r)` after each search
    /// so revealed nonces do not linger.
    pub remask_after_search: bool,
}

impl Scheme1Config {
    /// Fast profile: 256-bit ElGamal group (tests, experiments).
    #[must_use]
    pub fn fast_profile(capacity_docs: u64) -> Self {
        Scheme1Config {
            capacity_docs,
            group: ModpGroup::modp_256(),
            remask_after_search: false,
        }
    }

    /// Security profile: RFC 3526 2048-bit group (the paper's "large
    /// prime p").
    #[must_use]
    pub fn secure_profile(capacity_docs: u64) -> Self {
        Scheme1Config {
            capacity_docs,
            group: ModpGroup::modp_2048(),
            remask_after_search: false,
        }
    }

    /// Bit-array byte length implied by the capacity.
    #[must_use]
    pub fn index_bytes(&self) -> usize {
        (self.capacity_docs as usize).div_ceil(8)
    }

    /// Enable the post-search re-masking extension.
    #[must_use]
    pub fn with_remask(mut self) -> Self {
        self.remask_after_search = true;
        self
    }
}
