//! Scheme 1 wire protocol.
//!
//! Message layout mirrors Figures 1 and 2 of the paper exactly — one
//! request/response pair per arrow. All encoding goes through the
//! [`sse_net::wire`] codec; the server treats every field as untrusted.

use crate::error::{Result, SseError};
use sse_net::wire::{WireReader, WireWriter};

/// Request tag bytes (client → server).
pub mod REQ_TAGS {
    #![allow(missing_docs, non_snake_case)]
    /// Store encrypted data items (`DataStorage`).
    pub const PUT_DOCS: u8 = 0x01;
    /// `MetadataStorage` round 1: fetch `F(r)` for a batch of tags.
    pub const GET_NONCES: u8 = 0x02;
    /// `MetadataStorage` round 2: apply masked deltas.
    pub const APPLY_UPDATES: u8 = 0x03;
    /// `Search` round 1: look up a tag, expect `F(r)`.
    pub const SEARCH_FIND: u8 = 0x04;
    /// `Search` round 2: reveal the nonce, expect matching documents.
    pub const SEARCH_REVEAL: u8 = 0x05;
    /// Batched `Search` round 2: reveal several nonces at once (protocol
    /// extension — lets a q-keyword boolean query finish in 2 rounds
    /// instead of 2q; round 1 reuses `GET_NONCES`).
    pub const SEARCH_REVEAL_MANY: u8 = 0x06;
    /// Capacity migration round 1 (extension): dump every searchable
    /// representation so the client can re-mask at a new width.
    pub const EXPORT_INDEX: u8 = 0x07;
    /// Capacity migration round 2 (extension): atomically replace the
    /// index with re-masked entries at a new capacity.
    pub const REPLACE_INDEX: u8 = 0x08;
    /// Ask a durable server to checkpoint its store + index to disk.
    pub const CHECKPOINT: u8 = 0x09;
}

/// Response tag bytes (server → client).
mod RESP_TAGS {
    #![allow(non_snake_case)]
    pub const ACK: u8 = 0x81;
    pub const NONCES: u8 = 0x82;
    pub const FOUND: u8 = 0x84;
    pub const RESULT: u8 = 0x85;
    pub const INDEX_DUMP: u8 = 0x87;
    pub const ERROR: u8 = 0xFF;
}

/// One update entry of `ApplyUpdates`: the tag, the XOR delta to fold into
/// the stored masked array, and the replacement `F(r')`.
pub struct UpdateEntry {
    /// `f_kw(w)`.
    pub tag: [u8; 32],
    /// `U(w) ⊕ G(r) ⊕ G(r')` — or `U(w) ⊕ G(r')` for a fresh keyword.
    pub delta: Vec<u8>,
    /// Serialized ElGamal ciphertext `F(r')`.
    pub f_r: Vec<u8>,
}

// ---- client-side encoders -------------------------------------------------

/// Encode `PutDocs`.
#[must_use]
pub fn encode_put_docs(docs: &[(u64, Vec<u8>)]) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u8(REQ_TAGS::PUT_DOCS).put_u64(docs.len() as u64);
    for (id, blob) in docs {
        w.put_u64(*id).put_bytes(blob);
    }
    w.finish()
}

/// Encode `GetNonces`.
#[must_use]
pub fn encode_get_nonces(tags: &[[u8; 32]]) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u8(REQ_TAGS::GET_NONCES).put_u64(tags.len() as u64);
    for t in tags {
        w.put_array(t);
    }
    w.finish()
}

/// Encode `ApplyUpdates`.
#[must_use]
pub fn encode_apply_updates(entries: &[UpdateEntry]) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u8(REQ_TAGS::APPLY_UPDATES)
        .put_u64(entries.len() as u64);
    for e in entries {
        w.put_array(&e.tag);
        w.put_bytes(&e.delta);
        w.put_bytes(&e.f_r);
    }
    w.finish()
}

/// Encode `SearchFind`.
#[must_use]
pub fn encode_search_find(tag: &[u8; 32]) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u8(REQ_TAGS::SEARCH_FIND).put_array(tag);
    w.finish()
}

/// Encode `SearchReveal`.
#[must_use]
pub fn encode_search_reveal(tag: &[u8; 32], seed: &[u8; 32]) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u8(REQ_TAGS::SEARCH_REVEAL)
        .put_array(tag)
        .put_array(seed);
    w.finish()
}

/// Encode `SearchRevealMany`.
#[must_use]
pub fn encode_search_reveal_many(items: &[([u8; 32], [u8; 32])]) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u8(REQ_TAGS::SEARCH_REVEAL_MANY)
        .put_u64(items.len() as u64);
    for (tag, seed) in items {
        w.put_array(tag).put_array(seed);
    }
    w.finish()
}

/// Encode `Checkpoint`.
#[must_use]
pub fn encode_checkpoint() -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u8(REQ_TAGS::CHECKPOINT);
    w.finish()
}

/// Encode `ExportIndex`.
#[must_use]
pub fn encode_export_index() -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u8(REQ_TAGS::EXPORT_INDEX);
    w.finish()
}

/// Encode `ReplaceIndex` with the new capacity and re-masked entries.
#[must_use]
pub fn encode_replace_index(capacity: u64, entries: &[UpdateEntry]) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u8(REQ_TAGS::REPLACE_INDEX)
        .put_u64(capacity)
        .put_u64(entries.len() as u64);
    for e in entries {
        w.put_array(&e.tag);
        w.put_bytes(&e.delta);
        w.put_bytes(&e.f_r);
    }
    w.finish()
}

// ---- server-side encoders -------------------------------------------------

/// Encode `Ack`.
#[must_use]
pub fn encode_ack() -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u8(RESP_TAGS::ACK);
    w.finish()
}

/// Encode `Nonces`: per requested tag, the stored `F(r)` or absence.
#[must_use]
pub fn encode_nonces(items: &[Option<Vec<u8>>]) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u8(RESP_TAGS::NONCES).put_u64(items.len() as u64);
    for item in items {
        match item {
            Some(f_r) => {
                w.put_u8(1).put_bytes(f_r);
            }
            None => {
                w.put_u8(0);
            }
        }
    }
    w.finish()
}

/// Encode `Found` (search round 1 response).
#[must_use]
pub fn encode_found(f_r: Option<&[u8]>) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u8(RESP_TAGS::FOUND);
    match f_r {
        Some(ct) => {
            w.put_u8(1).put_bytes(ct);
        }
        None => {
            w.put_u8(0);
        }
    }
    w.finish()
}

/// Encode `Result` (search round 2 response).
#[must_use]
pub fn encode_result(docs: &[(u64, Vec<u8>)]) -> Vec<u8> {
    encode_result_with(docs, Vec::new())
}

/// Encode `Result` into a recycled buffer (capacity reused, contents
/// discarded) — see [`crate::proto_common::encode_result_with`].
#[must_use]
pub fn encode_result_with(docs: &[(u64, Vec<u8>)], buf: Vec<u8>) -> Vec<u8> {
    let mut w = WireWriter::with_buf(buf);
    w.put_u8(RESP_TAGS::RESULT).put_u64(docs.len() as u64);
    for (id, blob) in docs {
        w.put_u64(*id).put_bytes(blob);
    }
    w.finish()
}

/// Encode `IndexDump` — the full set of searchable representations.
#[must_use]
pub fn encode_index_dump(entries: &[([u8; 32], Vec<u8>, Vec<u8>)]) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u8(RESP_TAGS::INDEX_DUMP)
        .put_u64(entries.len() as u64);
    for (tag, masked, f_r) in entries {
        w.put_array(tag);
        w.put_bytes(masked);
        w.put_bytes(f_r);
    }
    w.finish()
}

/// One dumped searchable representation: `(tag, masked array, F(r))`.
pub type DumpedEntry = ([u8; 32], Vec<u8>, Vec<u8>);

/// Decode `IndexDump`.
///
/// # Errors
/// Protocol violations and wire errors.
pub fn decode_index_dump(buf: &[u8]) -> Result<Vec<DumpedEntry>> {
    let mut r = WireReader::new(buf);
    expect_tag(&mut r, RESP_TAGS::INDEX_DUMP, "IndexDump")?;
    let n = r.get_count(48)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let tag = r.get_array32()?;
        let masked = r.get_bytes()?.to_vec();
        let f_r = r.get_bytes()?.to_vec();
        out.push((tag, masked, f_r));
    }
    r.finish()?;
    Ok(out)
}

/// Encode `Error`.
#[must_use]
pub fn encode_error(msg: &str) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u8(RESP_TAGS::ERROR).put_bytes(msg.as_bytes());
    w.finish()
}

// ---- client-side decoders -------------------------------------------------

fn expect_tag(r: &mut WireReader<'_>, want: u8, what: &'static str) -> Result<()> {
    let got = r.get_u8()?;
    if got == RESP_TAGS::ERROR {
        let msg = String::from_utf8_lossy(r.get_bytes()?).into_owned();
        return Err(SseError::ProtocolViolation {
            expected: what,
            got: format!("server error: {msg}"),
        });
    }
    if got != want {
        return Err(SseError::ProtocolViolation {
            expected: what,
            got: format!("tag {got:#04x}"),
        });
    }
    Ok(())
}

/// Decode `Ack`.
pub fn decode_ack(buf: &[u8]) -> Result<()> {
    let mut r = WireReader::new(buf);
    expect_tag(&mut r, RESP_TAGS::ACK, "Ack")?;
    r.finish()?;
    Ok(())
}

/// Decode `Nonces`.
pub fn decode_nonces(buf: &[u8]) -> Result<Vec<Option<Vec<u8>>>> {
    let mut r = WireReader::new(buf);
    expect_tag(&mut r, RESP_TAGS::NONCES, "Nonces")?;
    let n = r.get_count(1)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let present = r.get_u8()?;
        if present == 1 {
            out.push(Some(r.get_bytes()?.to_vec()));
        } else {
            out.push(None);
        }
    }
    r.finish()?;
    Ok(out)
}

/// Decode `Found`.
pub fn decode_found(buf: &[u8]) -> Result<Option<Vec<u8>>> {
    let mut r = WireReader::new(buf);
    expect_tag(&mut r, RESP_TAGS::FOUND, "Found")?;
    let present = r.get_u8()?;
    let out = if present == 1 {
        Some(r.get_bytes()?.to_vec())
    } else {
        None
    };
    r.finish()?;
    Ok(out)
}

/// Decode `Result`.
pub fn decode_result(buf: &[u8]) -> Result<Vec<(u64, Vec<u8>)>> {
    let mut r = WireReader::new(buf);
    expect_tag(&mut r, RESP_TAGS::RESULT, "Result")?;
    let n = r.get_count(16)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let id = r.get_u64()?;
        let blob = r.get_bytes()?.to_vec();
        out.push((id, blob));
    }
    r.finish()?;
    Ok(out)
}

// ---- server-side decoders (defined here, used by server.rs) ----------------

/// A decoded client request.
pub enum Request {
    /// `DataStorage` upload.
    PutDocs(Vec<(u64, Vec<u8>)>),
    /// Update round 1.
    GetNonces(Vec<[u8; 32]>),
    /// Update round 2.
    ApplyUpdates(Vec<UpdateEntry>),
    /// Search round 1.
    SearchFind([u8; 32]),
    /// Search round 2.
    SearchReveal {
        /// The keyword tag.
        tag: [u8; 32],
        /// The revealed PRG seed.
        seed: [u8; 32],
    },
    /// Batched search round 2: several `(tag, seed)` reveals.
    SearchRevealMany(Vec<([u8; 32], [u8; 32])>),
    /// Flush durable state to disk.
    Checkpoint,
    /// Migration round 1: dump the index.
    ExportIndex,
    /// Migration round 2: replace the index at a new capacity.
    ReplaceIndex {
        /// New database capacity in documents.
        capacity: u64,
        /// Fresh entries (delta field holds the complete new masked array).
        entries: Vec<UpdateEntry>,
    },
}

/// Decode any client request (server side).
pub fn decode_request(buf: &[u8]) -> Result<Request> {
    let mut r = WireReader::new(buf);
    let tag = r.get_u8()?;
    let req = match tag {
        REQ_TAGS::PUT_DOCS => {
            let n = r.get_count(16)?;
            let mut docs = Vec::with_capacity(n);
            for _ in 0..n {
                let id = r.get_u64()?;
                let blob = r.get_bytes()?.to_vec();
                docs.push((id, blob));
            }
            Request::PutDocs(docs)
        }
        REQ_TAGS::GET_NONCES => {
            let n = r.get_count(32)?;
            let mut tags = Vec::with_capacity(n);
            for _ in 0..n {
                tags.push(r.get_array32()?);
            }
            Request::GetNonces(tags)
        }
        REQ_TAGS::APPLY_UPDATES => {
            let n = r.get_count(48)?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let tag = r.get_array32()?;
                let delta = r.get_bytes()?.to_vec();
                let f_r = r.get_bytes()?.to_vec();
                entries.push(UpdateEntry { tag, delta, f_r });
            }
            Request::ApplyUpdates(entries)
        }
        REQ_TAGS::SEARCH_FIND => Request::SearchFind(r.get_array32()?),
        REQ_TAGS::SEARCH_REVEAL => Request::SearchReveal {
            tag: r.get_array32()?,
            seed: r.get_array32()?,
        },
        REQ_TAGS::SEARCH_REVEAL_MANY => {
            let n = r.get_count(64)?;
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                let tag = r.get_array32()?;
                let seed = r.get_array32()?;
                items.push((tag, seed));
            }
            Request::SearchRevealMany(items)
        }
        REQ_TAGS::CHECKPOINT => Request::Checkpoint,
        REQ_TAGS::EXPORT_INDEX => Request::ExportIndex,
        REQ_TAGS::REPLACE_INDEX => {
            let capacity = r.get_u64()?;
            let n = r.get_count(48)?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let tag = r.get_array32()?;
                let delta = r.get_bytes()?.to_vec();
                let f_r = r.get_bytes()?.to_vec();
                entries.push(UpdateEntry { tag, delta, f_r });
            }
            Request::ReplaceIndex { capacity, entries }
        }
        other => {
            return Err(SseError::Wire(sse_net::wire::WireError::UnknownTag(other)));
        }
    };
    r.finish()?;
    Ok(req)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_docs_round_trip() {
        let docs = vec![(1u64, vec![1, 2, 3]), (9, vec![])];
        let msg = encode_put_docs(&docs);
        match decode_request(&msg).unwrap() {
            Request::PutDocs(d) => assert_eq!(d, docs),
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn get_nonces_round_trip() {
        let tags = vec![[1u8; 32], [2u8; 32]];
        match decode_request(&encode_get_nonces(&tags)).unwrap() {
            Request::GetNonces(t) => assert_eq!(t, tags),
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn apply_updates_round_trip() {
        let entries = vec![UpdateEntry {
            tag: [7u8; 32],
            delta: vec![0xAA; 16],
            f_r: vec![0xBB; 64],
        }];
        match decode_request(&encode_apply_updates(&entries)).unwrap() {
            Request::ApplyUpdates(e) => {
                assert_eq!(e.len(), 1);
                assert_eq!(e[0].tag, [7u8; 32]);
                assert_eq!(e[0].delta, vec![0xAA; 16]);
                assert_eq!(e[0].f_r, vec![0xBB; 64]);
            }
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn search_messages_round_trip() {
        match decode_request(&encode_search_find(&[3u8; 32])).unwrap() {
            Request::SearchFind(t) => assert_eq!(t, [3u8; 32]),
            _ => panic!("wrong variant"),
        }
        match decode_request(&encode_search_reveal(&[3u8; 32], &[4u8; 32])).unwrap() {
            Request::SearchReveal { tag, seed } => {
                assert_eq!(tag, [3u8; 32]);
                assert_eq!(seed, [4u8; 32]);
            }
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn responses_round_trip() {
        decode_ack(&encode_ack()).unwrap();
        let nonces =
            decode_nonces(&encode_nonces(&[Some(vec![1, 2]), None, Some(vec![])])).unwrap();
        assert_eq!(nonces, vec![Some(vec![1, 2]), None, Some(vec![])]);
        assert_eq!(decode_found(&encode_found(None)).unwrap(), None);
        assert_eq!(
            decode_found(&encode_found(Some(&[9, 9]))).unwrap(),
            Some(vec![9, 9])
        );
        let docs = vec![(5u64, b"blob".to_vec())];
        assert_eq!(decode_result(&encode_result(&docs)).unwrap(), docs);
    }

    #[test]
    fn migration_messages_round_trip() {
        assert!(matches!(
            decode_request(&encode_export_index()).unwrap(),
            Request::ExportIndex
        ));
        let entries = vec![UpdateEntry {
            tag: [2u8; 32],
            delta: vec![1, 2, 3],
            f_r: vec![4, 5],
        }];
        match decode_request(&encode_replace_index(512, &entries)).unwrap() {
            Request::ReplaceIndex { capacity, entries } => {
                assert_eq!(capacity, 512);
                assert_eq!(entries.len(), 1);
                assert_eq!(entries[0].delta, vec![1, 2, 3]);
            }
            _ => panic!("wrong variant"),
        }
        let dump = vec![([7u8; 32], vec![8, 8], vec![9])];
        assert_eq!(decode_index_dump(&encode_index_dump(&dump)).unwrap(), dump);
    }

    #[test]
    fn error_response_surfaces_as_protocol_violation() {
        let err = decode_ack(&encode_error("boom")).unwrap_err();
        assert!(matches!(err, SseError::ProtocolViolation { .. }));
        assert!(err.to_string().contains("boom"));
    }

    #[test]
    fn wrong_tag_is_rejected() {
        assert!(decode_ack(&encode_found(None)).is_err());
        assert!(decode_request(&[0x77]).is_err());
    }

    #[test]
    fn truncated_request_is_rejected() {
        let msg = encode_get_nonces(&[[1u8; 32]]);
        assert!(decode_request(&msg[..msg.len() - 1]).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut msg = encode_ack();
        msg.push(0);
        assert!(decode_ack(&msg).is_err());
    }

    #[test]
    fn forged_entry_counts_are_rejected() {
        // Regression for the fuzz finding: a message declaring billions of
        // entries with a tiny body must produce a wire error, not an
        // allocation abort.
        let mut w = sse_net::wire::WireWriter::new();
        w.put_u8(REQ_TAGS::APPLY_UPDATES).put_u64(u64::MAX / 4);
        assert!(decode_request(&w.finish()).is_err());

        let mut w = sse_net::wire::WireWriter::new();
        w.put_u8(REQ_TAGS::GET_NONCES).put_u64(1 << 40);
        assert!(decode_request(&w.finish()).is_err());
    }
}
