//! Scheme 1 server.
//!
//! The honest-but-curious party. It holds, per unique keyword, the triple
//! `(f_kw(w), I(w) ⊕ G(r), F(r))` in a B+-tree keyed by the tag, plus the
//! encrypted document blobs in a [`sse_storage::store::DocStore`]. It never
//! sees a keyword, a plaintext, or — until a search reveals one — a PRG
//! nonce. Every request is decoded defensively; malformed input produces an
//! error response, never a panic.
//!
//! ## Sharding, group commit and snapshot reads
//!
//! The keyword index is partitioned into N shards by
//! [`crate::shard::shard_of`] over the tag — a public function of data the
//! server already sees, so the leakage profile is unchanged (DESIGN.md
//! §4d/§4e). Each shard is a pipeline, not a single mutex:
//!
//! * **Mutations** stage their journal record into the shard's
//!   [`GroupCommitter`], which batches concurrent records into one
//!   vectored write + one fsync (the PR 3 benchmark showed per-op fsyncs
//!   dominate serving cost). Only after its group's fsync does a mutation
//!   apply to the shard tree — in sequence-number order, enforced by a
//!   per-shard condvar — and only after applying is it acknowledged. The
//!   journal-then-ack durability contract is exactly as before; the fsync
//!   is merely shared.
//! * **Searches** never touch the shard mutex: every apply publishes an
//!   immutable copy-on-write snapshot ([`sse_index::bptree::BpTree`]
//!   clones are O(1) structural shares), and reads resolve tags against
//!   the snapshot. A search therefore never queues behind an in-flight
//!   fsync. A global epoch seqlock makes multi-shard batch swaps atomic
//!   to readers: the coordinator publishes all touched shards inside an
//!   odd-epoch window and readers retry around it.
//!
//! Mutations touching several shards stage [`crate::shard`] batch slices
//! under every affected committer's stage lock (ascending), so crash
//! recovery keeps them all-or-nothing; they apply under all affected data
//! locks. Lock order everywhere: geometry → stage locks ascending → data
//! locks ascending → document store. Mutations hold the geometry read
//! lock across their whole stage→apply pipeline, so `ReplaceIndex` and
//! checkpoints (geometry writers) run fully quiesced.

use super::protocol::{self, Request, UpdateEntry};
use crate::commit::{CommitCounters, CommitStats, GroupCommitter};
use crate::error::{Result, SseError};
use crate::health::{ScrubFindings, TenantHealth};
use crate::journal::{IndexJournal, ServerRecovery};
use crate::shard::{self, shard_of, BatchId};
use parking_lot::{Mutex, MutexGuard, RwLock};
use sse_index::bitset::DocBitSet;
use sse_index::bptree::BpTree;
use sse_net::link::Service;
use sse_net::wire::{WireReader, WireWriter};
use sse_primitives::prg::Prg;
use sse_storage::crc32::crc32;
use sse_storage::lsm::{LsmDocStore, LsmKeywordMap};
use sse_storage::store::DocStore;
use sse_storage::{
    resolve_backend, BackendCounters, BackendKind, DocBlobStore, KeywordMap, RealVfs, StorageError,
    Vfs,
};
use std::collections::{BTreeMap, HashSet};
use std::path::Path;
use std::result::Result as StdResult;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, PoisonError};

/// Snapshot magic, v2: the body leads with the `last_op_seq` covered by
/// the snapshot so journal replay can skip already-applied mutations.
const INDEX_MAGIC: &[u8; 8] = b"SSE1IDX2";
/// Shard manifest file inside the server's home directory.
const MANIFEST_FILE: &str = "scheme1.meta";

/// Index snapshot file for shard `i`. Shard 0 keeps the pre-sharding name
/// so single-shard directories stay readable by (and from) older layouts.
fn index_file(i: usize) -> String {
    if i == 0 {
        "scheme1.index".to_string()
    } else {
        format!("scheme1.{i}.index")
    }
}

/// Journal file for shard `i` (same legacy-name rule as [`index_file`]).
fn journal_file(i: usize) -> String {
    if i == 0 {
        "scheme1.wal".to_string()
    } else {
        format!("scheme1.{i}.wal")
    }
}

/// LSM keyword-map file prefix for shard `i` (lsm backend only).
fn kw_prefix(i: usize) -> String {
    format!("scheme1.kw{i}")
}

/// One searchable representation as stored by the server.
#[derive(Clone)]
struct Entry {
    /// `I(w) ⊕ G(r)`.
    masked_index: Vec<u8>,
    /// Serialized `F(r)`.
    f_r: Vec<u8>,
}

/// A shard's mutable state: the live tree plus the highest op-seq applied
/// to it. Mutations apply in seq order (`applied_seq + 1 == my_seq`).
struct ShardData {
    tree: BpTree<[u8; 32], Entry>,
    applied_seq: u64,
    /// Tags mutated since the last checkpoint. Only tracked under the lsm
    /// backend, which flushes exactly these into its keyword map; the
    /// btree backend rewrites the whole snapshot file and never records.
    dirty: HashSet<[u8; 32]>,
    /// A `ReplaceIndex` happened since the last checkpoint (lsm backend).
    cleared: bool,
    /// Durable per-shard keyword-map persistence (lsm backend only; the
    /// btree backend keeps the monolithic `scheme1.index` snapshot).
    kw_map: Option<LsmKeywordMap>,
}

impl ShardData {
    /// Record a durable mutation of `tag` for the next checkpoint flush.
    fn note_mutated(&mut self, tag: [u8; 32]) {
        if self.kw_map.is_some() {
            self.dirty.insert(tag);
        }
    }

    /// Record a full index replacement for the next checkpoint flush.
    fn note_cleared(&mut self) {
        if self.kw_map.is_some() {
            self.dirty.clear();
            self.cleared = true;
        }
    }
}

/// The immutable view searches resolve against. Carries the capacity so
/// the read path needs no geometry lock; a `ReplaceIndex` swaps tree and
/// capacity together.
struct SnapShard {
    tree: BpTree<[u8; 32], Entry>,
    capacity_docs: u64,
}

/// One index shard: group-commit pipeline + live tree + search snapshot.
struct ShardSlot {
    data: Mutex<ShardData>,
    /// Signaled whenever `applied_seq` advances.
    applied: Condvar,
    committer: GroupCommitter,
    snap: RwLock<Arc<SnapShard>>,
}

/// Index width geometry — read (and held) by every mutation pipeline,
/// rewritten only under full quiescence (`ReplaceIndex`, checkpoint).
struct Geometry {
    capacity_docs: u64,
    index_bytes: usize,
}

/// Counters the experiments read out-of-band (they are *not* part of the
/// protocol surface).
#[derive(Clone, Copy, Debug, Default)]
pub struct Scheme1ServerStats {
    /// Tag lookups served (search round 1 + updates).
    pub tree_lookups: u64,
    /// Total B+-tree nodes visited across lookups.
    pub tree_nodes_visited: u64,
    /// Searches completed (round 2).
    pub searches: u64,
    /// Update entries applied.
    pub updates_applied: u64,
    /// Documents stored.
    pub docs_stored: u64,
}

/// Lock-free cells behind [`Scheme1ServerStats`], so concurrent requests
/// can count without taking any index lock.
#[derive(Default)]
struct StatsCells {
    tree_lookups: AtomicU64,
    tree_nodes_visited: AtomicU64,
    searches: AtomicU64,
    updates_applied: AtomicU64,
    docs_stored: AtomicU64,
}

/// The Scheme 1 server.
pub struct Scheme1Server {
    geometry: RwLock<Geometry>,
    shards: Vec<ShardSlot>,
    /// Seqlock epoch: odd while a multi-shard batch swaps its snapshots.
    epoch: AtomicU64,
    /// Contended shard-lock acquisitions, per shard (served via STATS).
    contention: Vec<AtomicU64>,
    /// Group-commit pipeline counters, shared by every shard's committer.
    commit_stats: Arc<CommitStats>,
    store: RwLock<Box<dyn DocBlobStore>>,
    /// Which storage backend persists this server's state.
    backend: BackendKind,
    stats: StatsCells,
    /// Durable home directory (None for in-memory servers).
    dir: Option<std::path::PathBuf>,
    /// The VFS every index file goes through (real or fault-injecting).
    vfs: Arc<dyn Vfs>,
    /// What the last [`Scheme1Server::open_durable`] had to repair.
    recovery: ServerRecovery,
    /// Per-tenant health cell: storage write failures degrade the server
    /// to read-only until [`Scheme1Server::repair`] succeeds.
    health: Arc<TenantHealth>,
}

impl Scheme1Server {
    /// In-memory server for a database of at most `capacity_docs`
    /// documents, with a single index shard.
    #[must_use]
    pub fn new_in_memory(capacity_docs: u64) -> Self {
        Self::new_in_memory_sharded(capacity_docs, 1)
    }

    /// In-memory server with `shards` independently locked index shards.
    #[must_use]
    pub fn new_in_memory_sharded(capacity_docs: u64, shards: usize) -> Self {
        let n = shards.max(1);
        let commit_stats = Arc::new(CommitStats::default());
        Scheme1Server {
            geometry: RwLock::new(Geometry {
                capacity_docs,
                index_bytes: (capacity_docs as usize).div_ceil(8),
            }),
            shards: (0..n)
                .map(|_| ShardSlot {
                    data: Mutex::new(ShardData {
                        tree: BpTree::new(),
                        applied_seq: 0,
                        dirty: HashSet::new(),
                        cleared: false,
                        kw_map: None,
                    }),
                    applied: Condvar::new(),
                    committer: GroupCommitter::new_in_memory(Arc::clone(&commit_stats)),
                    snap: RwLock::new(Arc::new(SnapShard {
                        tree: BpTree::new(),
                        capacity_docs,
                    })),
                })
                .collect(),
            epoch: AtomicU64::new(0),
            contention: (0..n).map(|_| AtomicU64::new(0)).collect(),
            commit_stats,
            store: RwLock::new(Box::new(DocStore::in_memory())),
            backend: BackendKind::Btree,
            stats: StatsCells::default(),
            dir: None,
            vfs: RealVfs::arc(),
            recovery: ServerRecovery::default(),
            health: Arc::new(TenantHealth::new()),
        }
    }

    /// Durable server persisting blobs under `dir`, single index shard.
    /// Recovery brings back everything acknowledged before a crash: the
    /// document store replays its WAL, each shard's index snapshot (if
    /// any) is loaded, and index mutations journaled after the snapshots
    /// are re-applied in order (incomplete cross-shard batches excluded).
    ///
    /// # Errors
    /// Storage errors while opening or recovering the document store, a
    /// corrupt index snapshot, or a corrupt journal record.
    pub fn open_durable(capacity_docs: u64, dir: &Path) -> Result<Self> {
        Self::open_durable_with_vfs(RealVfs::arc(), capacity_docs, dir)
    }

    /// [`Scheme1Server::open_durable`] with an index sharded `shards`
    /// ways. The count is fixed at directory creation (recorded in the
    /// shard manifest); reopening adopts whatever the directory holds.
    ///
    /// # Errors
    /// As [`Scheme1Server::open_durable`].
    pub fn open_durable_sharded(capacity_docs: u64, dir: &Path, shards: usize) -> Result<Self> {
        Self::open_durable_with_vfs_sharded(RealVfs::arc(), capacity_docs, dir, shards)
    }

    /// [`Scheme1Server::open_durable`] over an explicit [`Vfs`] (fault
    /// injection runs the whole server through a
    /// [`sse_storage::FaultVfs`]).
    ///
    /// # Errors
    /// As [`Scheme1Server::open_durable`], plus injected faults.
    pub fn open_durable_with_vfs(
        vfs: Arc<dyn Vfs>,
        capacity_docs: u64,
        dir: &Path,
    ) -> Result<Self> {
        Self::open_durable_with_vfs_sharded(vfs, capacity_docs, dir, 1)
    }

    /// [`Scheme1Server::open_durable_sharded`] over an explicit [`Vfs`],
    /// with group commit enabled.
    ///
    /// # Errors
    /// As [`Scheme1Server::open_durable`], plus injected faults.
    pub fn open_durable_with_vfs_sharded(
        vfs: Arc<dyn Vfs>,
        capacity_docs: u64,
        dir: &Path,
        shards: usize,
    ) -> Result<Self> {
        Self::open_durable_with_vfs_opts(vfs, capacity_docs, dir, shards, true)
    }

    /// [`Scheme1Server::open_durable_with_vfs_sharded`] with group commit
    /// switchable: when `group_commit` is false every journal record is
    /// flushed on its own (one fsync per op) — the benchmark's baseline
    /// arm. Durability and recovery semantics are identical either way.
    ///
    /// # Errors
    /// As [`Scheme1Server::open_durable`], plus injected faults.
    pub fn open_durable_with_vfs_opts(
        vfs: Arc<dyn Vfs>,
        capacity_docs: u64,
        dir: &Path,
        shards: usize,
        group_commit: bool,
    ) -> Result<Self> {
        Self::open_durable_with_backend(
            vfs,
            capacity_docs,
            dir,
            shards,
            group_commit,
            BackendKind::Btree,
        )
    }

    /// [`Scheme1Server::open_durable_with_vfs_opts`] with an explicit
    /// storage backend. The backend is fixed at directory creation
    /// (recorded in `backend.meta`); reopening under the other backend is
    /// a clean [`StorageError::BackendMismatch`], never silent corruption.
    /// Directories created before backend manifests existed are `btree`.
    ///
    /// Under [`BackendKind::Lsm`] the document store is an
    /// [`LsmDocStore`] and each shard's masked entries persist in an
    /// [`LsmKeywordMap`]: checkpoints flush only the tags mutated since
    /// the previous checkpoint as one new sorted run, instead of
    /// rewriting the whole index snapshot. The index geometry rides in
    /// the keyword map's `meta` blob and is validated on reopen exactly
    /// like the btree snapshot's embedded capacity.
    ///
    /// # Errors
    /// As [`Scheme1Server::open_durable`], plus backend mismatch.
    pub fn open_durable_with_backend(
        vfs: Arc<dyn Vfs>,
        capacity_docs: u64,
        dir: &Path,
        shards: usize,
        group_commit: bool,
        backend: BackendKind,
    ) -> Result<Self> {
        let backend = resolve_backend(
            vfs.as_ref(),
            dir,
            backend,
            &[
                MANIFEST_FILE,
                "store.wal",
                "store.snapshot",
                &index_file(0),
                &journal_file(0),
            ],
        )?;
        let opts = sse_storage::store::StoreOptions::default();
        let store: Box<dyn DocBlobStore> = match backend {
            BackendKind::Btree => Box::new(DocStore::open_with_vfs(vfs.clone(), dir, opts)?),
            BackendKind::Lsm => Box::new(LsmDocStore::open_with_vfs(vfs.clone(), dir, opts)?),
        };
        let store_recovery = store.recovery_report();
        let n =
            shard::resolve_shard_count(vfs.as_ref(), dir, MANIFEST_FILE, &index_file(0), shards)?;
        let mut geometry = Geometry {
            capacity_docs,
            index_bytes: (capacity_docs as usize).div_ceil(8),
        };
        let mut trees: Vec<BpTree<[u8; 32], Entry>> = Vec::with_capacity(n);
        let mut kw_maps: Vec<Option<LsmKeywordMap>> = Vec::with_capacity(n);
        let mut journals: Vec<IndexJournal> = Vec::with_capacity(n);
        let mut recoveries = Vec::with_capacity(n);
        for i in 0..n {
            let mut tree = BpTree::new();
            let mut snapshot_seq = 0u64;
            let mut kw_map = None;
            match backend {
                BackendKind::Btree => {
                    let index_path = dir.join(index_file(i));
                    if vfs.exists(&index_path) {
                        let bytes = vfs.read(&index_path).map_err(StorageError::Io)?;
                        snapshot_seq = load_shard_snapshot(&mut tree, &geometry, &bytes)?;
                    }
                }
                BackendKind::Lsm => {
                    let map = LsmKeywordMap::open(vfs.clone(), dir, &kw_prefix(i))?;
                    snapshot_seq = map.last_seq();
                    check_kw_meta(&map.meta(), &geometry)?;
                    for (tag, value) in map.iter_all()? {
                        tree.insert(tag, decode_entry(&value, &geometry)?);
                    }
                    kw_map = Some(map);
                }
            }
            let (journal, recovery) = IndexJournal::open_with_vfs(
                vfs.clone(),
                &dir.join(journal_file(i)),
                true,
                snapshot_seq,
            )?;
            trees.push(tree);
            kw_maps.push(kw_map);
            journals.push(journal);
            recoveries.push(recovery);
        }
        let plan = shard::resolve_shard_recoveries(&recoveries)?;
        let mut replayed = 0u64;
        let mut dirty_sets: Vec<HashSet<[u8; 32]>> = vec![HashSet::new(); n];
        let mut cleared_flags = vec![false; n];
        for (si, (tree, apply)) in trees.iter_mut().zip(&plan.apply).enumerate() {
            for raw in apply {
                replay_into(
                    tree,
                    &mut geometry,
                    raw,
                    &mut dirty_sets[si],
                    &mut cleared_flags[si],
                )?;
                replayed += 1;
            }
        }
        let commit_stats = Arc::new(CommitStats::default());
        let capacity_docs = geometry.capacity_docs;
        let shards: Vec<ShardSlot> = trees
            .into_iter()
            .zip(journals)
            .zip(kw_maps)
            .zip(dirty_sets.into_iter().zip(cleared_flags))
            .map(|(((tree, journal), kw_map), (dirty, cleared))| {
                let applied_seq = journal.last_seq();
                // Replayed journal records are not yet in the keyword map;
                // keep their tags dirty so the next checkpoint flushes
                // them. Irrelevant for btree (whole-snapshot rewrites).
                let (dirty, cleared) = if kw_map.is_some() {
                    (dirty, cleared)
                } else {
                    (HashSet::new(), false)
                };
                ShardSlot {
                    snap: RwLock::new(Arc::new(SnapShard {
                        tree: tree.clone(),
                        capacity_docs,
                    })),
                    data: Mutex::new(ShardData {
                        tree,
                        applied_seq,
                        dirty,
                        cleared,
                        kw_map,
                    }),
                    applied: Condvar::new(),
                    committer: GroupCommitter::new_durable(
                        journal,
                        group_commit,
                        Arc::clone(&commit_stats),
                    ),
                }
            })
            .collect();
        Ok(Scheme1Server {
            geometry: RwLock::new(geometry),
            shards,
            epoch: AtomicU64::new(0),
            contention: (0..n).map(|_| AtomicU64::new(0)).collect(),
            commit_stats,
            store: RwLock::new(store),
            backend,
            stats: StatsCells::default(),
            dir: Some(dir.to_path_buf()),
            vfs,
            recovery: ServerRecovery {
                index_ops_replayed: replayed,
                index_torn_bytes: recoveries.iter().map(|r| r.torn_bytes_truncated).sum(),
                store_snapshot_loaded: store_recovery.snapshot_loaded,
                store_wal_records_replayed: store_recovery.wal_records_replayed,
                store_torn_bytes: store_recovery.torn_bytes_truncated,
            },
            health: Arc::new(TenantHealth::new()),
        })
    }

    /// This server's health cell, shared with the serving daemon's request
    /// router and the background scrub.
    #[must_use]
    pub fn health(&self) -> &Arc<TenantHealth> {
        &self.health
    }

    /// Report a failed mutation: storage-typed failures degrade the tenant
    /// to read-only (validation and protocol errors do not — they say
    /// nothing about the disk), then encode the protocol error response.
    fn mutation_failed(&self, e: &SseError) -> Vec<u8> {
        if matches!(e, SseError::Storage(_)) {
            self.health.note_storage_error(&e.to_string());
        }
        protocol::encode_error(&e.to_string())
    }

    /// Attempt to repair a degraded server — the scrub's probe-write path.
    ///
    /// Under full quiescence (geometry write lock + all data locks, so no
    /// mutation is staging, flushing or applying), re-persist every
    /// shard's *applied* state — document-store checkpoint, then index
    /// snapshots (btree) or keyword-map flushes (lsm) — and then replace
    /// each shard's journal with a freshly opened empty one, clearing any
    /// group-commit poison. Seqs of failed groups are reclaimed: those
    /// records were never acknowledged and the fresh journal restarts
    /// densely at `applied_seq + 1`. The end-to-end write pass is itself
    /// the probe write: on success the health cell returns to Healthy.
    ///
    /// # Errors
    /// Filesystem errors (the disk is still bad); the server stays
    /// Degraded and the scrub retries later. In-memory servers have
    /// nothing to repair and always succeed.
    pub fn repair(&self) -> Result<()> {
        let Some(dir) = self.dir.clone() else {
            self.health.note_probe_ok();
            return Ok(());
        };
        let geometry = self.geometry.write();
        let mut datas = self.lock_all_data();
        self.store.write().checkpoint()?;
        match self.backend {
            BackendKind::Btree => {
                for (i, data) in datas.iter().enumerate() {
                    self.save_shard_snapshot(data, &geometry, &dir.join(index_file(i)))?;
                }
                self.vfs.sync_dir(&dir).map_err(StorageError::Io)?;
            }
            BackendKind::Lsm => {
                for data in datas.iter_mut() {
                    flush_shard_kw_map(data, &geometry)?;
                }
            }
        }
        for (i, data) in datas.iter().enumerate() {
            let path = dir.join(journal_file(i));
            let _ = self.vfs.remove_file(&path);
            let (journal, _) =
                IndexJournal::open_with_vfs(self.vfs.clone(), &path, true, data.applied_seq)?;
            self.shards[i].committer.replace_journal(journal);
        }
        self.health.note_probe_ok();
        Ok(())
    }

    /// Background integrity pass over this server's on-disk artifacts.
    ///
    /// Checks every checksum the storage formats carry: the per-shard
    /// index journals and the document store's WAL (CRC-framed records —
    /// append-only and prefix-stable, so scanning a live log is safe),
    /// the btree index snapshots (magic + body CRC; replaced atomically
    /// via temp-file + rename, so a concurrent checkpoint can never be
    /// seen half-written), and under the lsm backend every live run's
    /// index and value CRCs (under the shard/store lock, since flushes
    /// swap run files). Heap pages carry no checksums and are skipped.
    ///
    /// A torn WAL tail is a *repairable* finding, not corruption — it is
    /// exactly what a crash (or a read racing an append) leaves behind.
    /// A checksum mismatch anywhere else is confirmed corruption.
    ///
    /// # Errors
    /// [`StorageError::Corrupt`] (wrapped) on confirmed corruption — the
    /// caller quarantines; plain I/O errors are transient and do not.
    pub fn verify_files(&self) -> Result<ScrubFindings> {
        let mut findings = ScrubFindings::default();
        let Some(dir) = self.dir.clone() else {
            return Ok(findings);
        };
        let mut wal_paths: Vec<std::path::PathBuf> = (0..self.shards.len())
            .map(|i| dir.join(journal_file(i)))
            .collect();
        wal_paths.push(dir.join(if self.backend == BackendKind::Lsm {
            "doc.wal"
        } else {
            "store.wal"
        }));
        for path in &wal_paths {
            match sse_storage::wal::verify_file(self.vfs.as_ref(), path)? {
                sse_storage::wal::WalVerdict::Clean { .. } => findings.artifacts_verified += 1,
                sse_storage::wal::WalVerdict::TornTail { .. } => {
                    findings.artifacts_verified += 1;
                    findings.torn_tails_seen += 1;
                }
                sse_storage::wal::WalVerdict::Corrupt { at } => {
                    return Err(SseError::Storage(StorageError::Corrupt {
                        what: "wal segment",
                        detail: format!(
                            "scrub: mid-log checksum mismatch at byte {at} in {}",
                            path.display()
                        ),
                    }));
                }
            }
        }
        match self.backend {
            BackendKind::Btree => {
                for i in 0..self.shards.len() {
                    if verify_index_snapshot(self.vfs.as_ref(), &dir.join(index_file(i)))? {
                        findings.artifacts_verified += 1;
                    }
                }
            }
            BackendKind::Lsm => {
                for i in 0..self.shards.len() {
                    let data = self.lock_data(i);
                    if let Some(map) = &data.kw_map {
                        findings.artifacts_verified += map.verify_runs()?;
                    }
                }
            }
        }
        findings.artifacts_verified += self.store.read().verify()?;
        Ok(findings)
    }

    /// What the last [`Scheme1Server::open_durable`] had to repair.
    #[must_use]
    pub fn recovery(&self) -> ServerRecovery {
        self.recovery
    }

    /// Number of index shards.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Contended shard-lock acquisitions since startup, per shard.
    #[must_use]
    pub fn shard_contention(&self) -> Vec<u64> {
        self.contention
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Group-commit pipeline counters (groups, ops, fsyncs saved,
    /// snapshot swaps) since startup.
    #[must_use]
    pub fn commit_counters(&self) -> CommitCounters {
        self.commit_stats.counters()
    }

    /// The storage backend persisting this server's state.
    #[must_use]
    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    /// Per-backend storage counters (runs, compactions, bloom hit rates):
    /// the document store's plus every shard keyword map's. All zero
    /// under the btree backend.
    #[must_use]
    pub fn backend_counters(&self) -> BackendCounters {
        let mut c = self.store.read().counters();
        for i in 0..self.shards.len() {
            let data = self.lock_data(i);
            if let Some(map) = &data.kw_map {
                c.merge(&map.counters());
            }
        }
        c
    }

    /// Checkpoint everything durable, in crash-safe order: document store
    /// snapshot, then every shard's index snapshot (each recording its
    /// `applied_seq` as `last_op_seq`), then every journal truncation.
    /// The geometry write lock quiesces the mutation pipeline first, so
    /// every staged record is both durable and applied — no journal may
    /// be reset while a group is in flight, and the snapshots-before-any-
    /// reset order keeps cross-shard batch slices resolvable.
    ///
    /// # Errors
    /// Filesystem errors. No-op index-wise for in-memory servers.
    pub fn checkpoint(&self, dir: &Path) -> Result<()> {
        let geometry = self.geometry.write();
        let mut datas = self.lock_all_data();
        self.store.write().checkpoint()?;
        match self.backend {
            BackendKind::Btree => {
                for (i, data) in datas.iter().enumerate() {
                    self.save_shard_snapshot(data, &geometry, &dir.join(index_file(i)))?;
                }
                // The snapshots committed via rename; one dir fsync makes
                // all the renames durable before any journal is reset.
                self.vfs.sync_dir(dir).map_err(StorageError::Io)?;
            }
            BackendKind::Lsm => {
                for data in datas.iter_mut() {
                    flush_shard_kw_map(data, &geometry)?;
                }
            }
        }
        for slot in &self.shards {
            slot.committer.reset_journal()?;
        }
        Ok(())
    }

    /// Checkpoint into the server's own home directory; no-op for
    /// in-memory servers.
    ///
    /// # Errors
    /// Filesystem errors.
    pub fn checkpoint_home(&self) -> Result<()> {
        match self.dir.clone() {
            Some(dir) => self.checkpoint(&dir),
            None => Ok(()),
        }
    }

    /// Number of unique keywords indexed (`u`).
    #[must_use]
    pub fn unique_keywords(&self) -> usize {
        (0..self.shards.len())
            .map(|i| self.lock_data(i).tree.len())
            .sum()
    }

    /// Number of stored documents.
    #[must_use]
    pub fn stored_docs(&self) -> usize {
        self.store.read().len()
    }

    /// Height of the tallest shard's tag tree (the `O(log u)` factor,
    /// observable).
    #[must_use]
    pub fn tree_height(&self) -> usize {
        (0..self.shards.len())
            .map(|i| self.lock_data(i).tree.height())
            .max()
            .unwrap_or(0)
    }

    /// Observability counters.
    #[must_use]
    pub fn stats(&self) -> Scheme1ServerStats {
        Scheme1ServerStats {
            tree_lookups: self.stats.tree_lookups.load(Ordering::Relaxed),
            tree_nodes_visited: self.stats.tree_nodes_visited.load(Ordering::Relaxed),
            searches: self.stats.searches.load(Ordering::Relaxed),
            updates_applied: self.stats.updates_applied.load(Ordering::Relaxed),
            docs_stored: self.stats.docs_stored.load(Ordering::Relaxed),
        }
    }

    /// Reset the observability counters.
    pub fn reset_stats(&self) {
        self.stats.tree_lookups.store(0, Ordering::Relaxed);
        self.stats.tree_nodes_visited.store(0, Ordering::Relaxed);
        self.stats.searches.store(0, Ordering::Relaxed);
        self.stats.updates_applied.store(0, Ordering::Relaxed);
        self.stats.docs_stored.store(0, Ordering::Relaxed);
    }

    /// Byte size of every (masked) index array.
    #[must_use]
    pub fn index_bytes(&self) -> usize {
        self.geometry.read().index_bytes
    }

    /// Export the stored searchable representations
    /// `(f_kw(w), I(w) ⊕ G(r), F(r))` — this *is* the set `S` in the
    /// adversary's view (Definition 2), merged across shards in tag order.
    /// Used by the security harness.
    #[must_use]
    pub fn export_representations(&self) -> Vec<([u8; 32], Vec<u8>, Vec<u8>)> {
        let guards = self.lock_all_data();
        let mut out: Vec<([u8; 32], Vec<u8>, Vec<u8>)> = guards
            .iter()
            .flat_map(|s| {
                s.tree
                    .iter()
                    .map(|(tag, e)| (*tag, e.masked_index.clone(), e.f_r.clone()))
            })
            .collect();
        out.sort_unstable_by_key(|a| a.0);
        out
    }

    /// Export the stored encrypted documents `(id, E_km(M_i))` in id order
    /// (the other half of the adversary's view).
    #[must_use]
    pub fn export_blobs(&self) -> Vec<(u64, Vec<u8>)> {
        let store = self.store.read();
        let ids = store.doc_ids();
        store.get_many(&ids)
    }

    /// Serve one request without exclusive access — the entry point the
    /// multi-tenant daemon's workers call concurrently. Searches run
    /// against immutable snapshots; mutations pipeline through the
    /// per-shard group committers.
    pub fn handle_shared(&self, request: &[u8]) -> Vec<u8> {
        self.handle_shared_with(request, Vec::new())
    }

    /// [`Self::handle_shared`] with a recycled response buffer: the hot
    /// `SearchReveal` branch encodes its result into `scratch` (capacity
    /// reused, contents discarded) so a steady-state reveal response
    /// costs no allocation when the caller recycles buffers through a
    /// pool. Every other request kind ignores the scratch.
    pub fn handle_shared_with(&self, request: &[u8], scratch: Vec<u8>) -> Vec<u8> {
        match protocol::decode_request(request) {
            Ok(Request::SearchReveal { tag, seed }) => match self.reveal_one(&tag, &seed) {
                Ok(docs) => protocol::encode_result_with(&docs, scratch),
                Err(msg) => protocol::encode_error(&msg),
            },
            Ok(req) => self.handle_request(req),
            Err(e) => protocol::encode_error(&e.to_string()),
        }
    }

    /// Apply an `UPDATE_MANY` batch: every part must be a mutation
    /// (`PutDocs` or `ApplyUpdates`). All parts are decoded and validated
    /// first, then journaled as one cross-shard batch and applied
    /// all-or-nothing with respect to racing searches (all touched
    /// shards' snapshots swap inside one epoch window).
    pub fn apply_batch(&self, parts: &[&[u8]]) -> Vec<u8> {
        let mut docs: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut entries: Vec<UpdateEntry> = Vec::new();
        for part in parts {
            match protocol::decode_request(part) {
                Ok(Request::PutDocs(d)) => docs.extend(d),
                Ok(Request::ApplyUpdates(e)) => entries.extend(e),
                Ok(_) => {
                    return protocol::encode_error(
                        "batch parts must be mutations (PutDocs / ApplyUpdates)",
                    )
                }
                Err(e) => return protocol::encode_error(&e.to_string()),
            }
        }
        {
            let geometry = self.geometry.read();
            if let Some(resp) = self.put_docs_checked(&geometry, &docs) {
                return resp;
            }
        }
        self.apply_updates_sharded(entries)
    }

    /// Acquire shard `i`'s data lock, counting a contended acquisition
    /// when the lock was not immediately free.
    fn lock_data(&self, i: usize) -> MutexGuard<'_, ShardData> {
        match self.shards[i].data.try_lock() {
            Some(guard) => guard,
            None => {
                self.contention[i].fetch_add(1, Ordering::Relaxed);
                self.shards[i].data.lock()
            }
        }
    }

    /// Lock every shard's data in ascending order (checkpoint / export).
    fn lock_all_data(&self) -> Vec<MutexGuard<'_, ShardData>> {
        (0..self.shards.len()).map(|i| self.lock_data(i)).collect()
    }

    /// Fetch shard `i`'s search snapshot, retrying around multi-shard
    /// swap windows (odd epoch) so a reader never observes a half-swapped
    /// batch across shards.
    fn snap(&self, i: usize) -> Arc<SnapShard> {
        loop {
            let before = self.epoch.load(Ordering::Acquire);
            if before & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let snap = Arc::clone(&self.shards[i].snap.read());
            if self.epoch.load(Ordering::Acquire) == before {
                return snap;
            }
        }
    }

    /// Publish shard `i`'s current tree as the immutable search snapshot.
    /// O(1): the tree clone shares all nodes copy-on-write.
    fn publish(&self, i: usize, data: &ShardData, capacity_docs: u64) {
        *self.shards[i].snap.write() = Arc::new(SnapShard {
            tree: data.tree.clone(),
            capacity_docs,
        });
        self.commit_stats.note_swap();
    }

    /// Wait until shard `i` has applied every predecessor of `seq`, then
    /// run `apply`, advance `applied_seq`, publish the snapshot and wake
    /// successors. The caller must have made `seq` durable first.
    fn apply_at(&self, i: usize, seq: u64, capacity_docs: u64, apply: impl FnOnce(&mut ShardData)) {
        let slot = &self.shards[i];
        let mut data = self.lock_data(i);
        while data.applied_seq + 1 != seq {
            data = slot
                .applied
                .wait(data)
                .unwrap_or_else(PoisonError::into_inner);
        }
        apply(&mut data);
        data.applied_seq = seq;
        self.publish(i, &data, capacity_docs);
        drop(data);
        slot.applied.notify_all();
    }

    /// Run one mutation through the full pipeline: stage its journal
    /// record(s) (one per affected shard, batch slices when several),
    /// wait for the group fsync(s), then apply in seq order and publish
    /// new snapshots. `idxs` must be ascending and non-empty.
    ///
    /// On partial durability (some shard's journal failed) nothing is
    /// applied anywhere: durable shards advance `applied_seq` without
    /// mutating (recovery's sibling-completeness check discards their
    /// on-disk slices too), failed shards are poisoned, and the client
    /// gets an error — the mutation is never acknowledged.
    fn commit_mutation(
        &self,
        idxs: &[usize],
        encode_for: impl Fn(usize) -> Vec<u8>,
        mut apply_for: impl FnMut(usize, &mut ShardData),
        capacity_docs: u64,
    ) -> Result<()> {
        debug_assert!(idxs.windows(2).all(|w| w[0] < w[1]));
        if idxs.len() == 1 {
            let i = idxs[0];
            let seq = self.shards[i].committer.stage(&encode_for(i))?;
            self.shards[i].committer.wait_durable(seq)?;
            self.apply_at(i, seq, capacity_docs, |data| apply_for(i, data));
            return Ok(());
        }

        // Phase S — stage every slice atomically under all stage locks
        // (ascending), so the batch id (coordinator shard, coordinator
        // seq) is consistent and no foreign record interleaves.
        let shard_set: Vec<u32> = idxs.iter().map(|&i| i as u32).collect();
        let mut guards: Vec<_> = idxs
            .iter()
            .map(|&i| self.shards[i].committer.lock())
            .collect();
        if guards.iter().any(crate::commit::StageGuard::poisoned) {
            return Err(journal_unavailable());
        }
        let batch = BatchId {
            coordinator: shard_set[0],
            seq: guards[0].next_seq(),
        };
        let mut seqs = Vec::with_capacity(idxs.len());
        for (guard, &i) in guards.iter_mut().zip(idxs) {
            // Cannot fail: staging only errors on poison, checked above
            // while continuously holding every stage lock.
            seqs.push(guard.stage(&shard::encode_slice(batch, &shard_set, &encode_for(i)))?);
        }
        drop(guards);

        // Phase D — wait for every shard's group fsync.
        let mut durable = vec![false; idxs.len()];
        let mut first_err = None;
        for (k, &i) in idxs.iter().enumerate() {
            match self.shards[i].committer.wait_durable(seqs[k]) {
                Ok(()) => durable[k] = true,
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        let apply = first_err.is_none();

        // Phase R — wait (one shard at a time, holding nothing else)
        // until each durable shard has applied all our predecessors.
        // Stable once reached: our seq is the only possible successor.
        for (k, &i) in idxs.iter().enumerate() {
            if !durable[k] {
                continue;
            }
            let slot = &self.shards[i];
            let mut data = self.lock_data(i);
            while data.applied_seq + 1 != seqs[k] {
                data = slot
                    .applied
                    .wait(data)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        // Phase A — lock all durable shards (ascending) and swap them
        // atomically inside an odd-epoch window so snapshot readers see
        // the batch all-or-nothing.
        if apply {
            self.epoch.fetch_add(1, Ordering::AcqRel);
        }
        let mut held: Vec<(usize, MutexGuard<'_, ShardData>)> = Vec::with_capacity(idxs.len());
        for (k, &i) in idxs.iter().enumerate() {
            if durable[k] {
                held.push((k, self.lock_data(i)));
            }
        }
        for (k, data) in &mut held {
            debug_assert_eq!(data.applied_seq + 1, seqs[*k], "readiness must be stable");
            if apply {
                apply_for(idxs[*k], data);
            }
            data.applied_seq = seqs[*k];
        }
        if apply {
            for (k, data) in &held {
                self.publish(idxs[*k], data, capacity_docs);
            }
        }
        drop(held);
        if apply {
            self.epoch.fetch_add(1, Ordering::AcqRel);
        }
        for (k, &i) in idxs.iter().enumerate() {
            if durable[k] {
                self.shards[i].applied.notify_all();
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Store `docs`, enforcing the capacity bound. Returns an error
    /// response on failure, `None` on success.
    fn put_docs_checked(&self, geometry: &Geometry, docs: &[(u64, Vec<u8>)]) -> Option<Vec<u8>> {
        if docs.is_empty() {
            return None;
        }
        for (id, _) in docs {
            if *id >= geometry.capacity_docs {
                return Some(protocol::encode_error(&format!(
                    "doc id {id} exceeds capacity {}",
                    geometry.capacity_docs
                )));
            }
        }
        let mut store = self.store.write();
        for (id, blob) in docs {
            if let Err(e) = store.put(*id, blob) {
                drop(store);
                return Some(self.mutation_failed(&SseError::Storage(e)));
            }
            self.stats.docs_stored.fetch_add(1, Ordering::Relaxed);
        }
        None
    }

    /// Apply validated update entries: group per shard (preserving input
    /// order within each shard), then run the group-commit pipeline. The
    /// geometry read lock is held across the whole pipeline so geometry
    /// writers (`ReplaceIndex`, checkpoint) always see it quiesced.
    fn apply_updates_sharded(&self, entries: Vec<UpdateEntry>) -> Vec<u8> {
        let geometry = self.geometry.read();
        for entry in &entries {
            if entry.delta.len() != geometry.index_bytes {
                return protocol::encode_error(&format!(
                    "delta length {} != index width {}",
                    entry.delta.len(),
                    geometry.index_bytes
                ));
            }
        }
        if entries.is_empty() {
            return protocol::encode_ack();
        }
        let n = self.shards.len();
        let mut groups: BTreeMap<usize, Vec<UpdateEntry>> = BTreeMap::new();
        for entry in entries {
            groups
                .entry(shard_of(&entry.tag, n))
                .or_default()
                .push(entry);
        }
        let idxs: Vec<usize> = groups.keys().copied().collect();
        let result = self.commit_mutation(
            &idxs,
            |i| protocol::encode_apply_updates(&groups[&i]),
            |i, data| {
                for UpdateEntry { tag, delta, f_r } in &groups[&i] {
                    data.note_mutated(*tag);
                    apply_entry(&mut data.tree, *tag, delta.clone(), f_r.clone());
                    self.stats.updates_applied.fetch_add(1, Ordering::Relaxed);
                }
            },
            geometry.capacity_docs,
        );
        match result {
            Ok(()) => protocol::encode_ack(),
            Err(e) => self.mutation_failed(&e),
        }
    }

    fn handle_replace_index(&self, capacity: u64, entries: Vec<UpdateEntry>) -> Vec<u8> {
        let new_width = (capacity as usize).div_ceil(8);
        if let Some(bad) = entries.iter().find(|e| e.delta.len() != new_width) {
            return protocol::encode_error(&format!(
                "entry width {} != new index width {new_width}",
                bad.delta.len()
            ));
        }
        // Migration must not lose keywords: the replacement set must cover
        // every currently stored tag. The geometry write lock quiesces
        // every mutation pipeline, so the data trees are stable while we
        // validate and replace.
        let mut geometry = self.geometry.write();
        let new_tags: std::collections::HashSet<[u8; 32]> = entries.iter().map(|e| e.tag).collect();
        for i in 0..self.shards.len() {
            let data = self.lock_data(i);
            for (tag, _) in data.tree.iter() {
                if !new_tags.contains(tag) {
                    return protocol::encode_error(
                        "replacement index is missing a stored keyword tag",
                    );
                }
            }
        }
        let n = self.shards.len();
        let mut groups: Vec<Vec<UpdateEntry>> = (0..n).map(|_| Vec::new()).collect();
        for entry in entries {
            groups[shard_of(&entry.tag, n)].push(entry);
        }
        // ReplaceIndex rewrites every shard (a shard with no entries must
        // still clear), so the batch spans all N shards.
        let idxs: Vec<usize> = (0..n).collect();
        let result = self.commit_mutation(
            &idxs,
            |i| protocol::encode_replace_index(capacity, &groups[i]),
            |i, data| {
                data.note_cleared();
                let mut tree = BpTree::new();
                for UpdateEntry { tag, delta, f_r } in &groups[i] {
                    data.note_mutated(*tag);
                    tree.insert(
                        *tag,
                        Entry {
                            masked_index: delta.clone(),
                            f_r: f_r.clone(),
                        },
                    );
                }
                data.tree = tree;
            },
            capacity,
        );
        match result {
            Ok(()) => {
                geometry.capacity_docs = capacity;
                geometry.index_bytes = new_width;
                protocol::encode_ack()
            }
            Err(e) => self.mutation_failed(&e),
        }
    }

    fn handle_request(&self, req: Request) -> Vec<u8> {
        match req {
            Request::PutDocs(docs) => {
                let geometry = self.geometry.read();
                match self.put_docs_checked(&geometry, &docs) {
                    Some(err) => err,
                    None => protocol::encode_ack(),
                }
            }
            Request::GetNonces(tags) => {
                let n = self.shards.len();
                let items: Vec<Option<Vec<u8>>> = tags
                    .iter()
                    .map(|tag| {
                        let snap = self.snap(shard_of(tag, n));
                        let (entry, s) = snap.tree.get_with_stats(tag);
                        self.stats.tree_lookups.fetch_add(1, Ordering::Relaxed);
                        self.stats
                            .tree_nodes_visited
                            .fetch_add(s.nodes_visited as u64, Ordering::Relaxed);
                        entry.map(|e| e.f_r.clone())
                    })
                    .collect();
                protocol::encode_nonces(&items)
            }
            Request::ApplyUpdates(entries) => self.apply_updates_sharded(entries),
            Request::SearchFind(tag) => {
                let snap = self.snap(shard_of(&tag, self.shards.len()));
                let (entry, s) = snap.tree.get_with_stats(&tag);
                self.stats.tree_lookups.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .tree_nodes_visited
                    .fetch_add(s.nodes_visited as u64, Ordering::Relaxed);
                protocol::encode_found(entry.map(|e| e.f_r.as_slice()))
            }
            Request::SearchReveal { tag, seed } => match self.reveal_one(&tag, &seed) {
                Ok(docs) => protocol::encode_result(&docs),
                Err(msg) => protocol::encode_error(&msg),
            },
            Request::SearchRevealMany(items) => {
                let mut results: Vec<Vec<(u64, Vec<u8>)>> = Vec::with_capacity(items.len());
                for (tag, seed) in &items {
                    match self.reveal_one(tag, seed) {
                        Ok(docs) => results.push(docs),
                        Err(msg) => return protocol::encode_error(&msg),
                    }
                }
                crate::proto_common::encode_result_many(&results)
            }
            Request::Checkpoint => {
                let Some(dir) = self.dir.clone() else {
                    return protocol::encode_error("checkpoint requested on an in-memory server");
                };
                match self.checkpoint(&dir) {
                    Ok(()) => protocol::encode_ack(),
                    Err(e) => self.mutation_failed(&e),
                }
            }
            Request::ExportIndex => protocol::encode_index_dump(&self.export_representations()),
            Request::ReplaceIndex { capacity, entries } => {
                self.handle_replace_index(capacity, entries)
            }
        }
    }

    /// Unmask one posting array with the revealed seed and fetch matches.
    /// Lock-free against the index: resolves the tag on the shard's
    /// immutable snapshot, never waiting on a shard mutex or an fsync.
    ///
    /// # Errors
    /// A stored array whose width disagrees with the snapshot's document
    /// capacity (possible only through a corrupted or adversarial index
    /// import) is reported as a protocol-level error — it must never become
    /// a `DocBitSet` capacity panic on a worker thread.
    fn reveal_one(
        &self,
        tag: &[u8; 32],
        seed: &[u8; 32],
    ) -> StdResult<Vec<(u64, Vec<u8>)>, String> {
        let snap = self.snap(shard_of(tag, self.shards.len()));
        self.stats.searches.fetch_add(1, Ordering::Relaxed);
        let Some(entry) = snap.tree.get(tag) else {
            return Ok(Vec::new());
        };
        // Unmask: (I(w) ⊕ G(r)) ⊕ G(r) = I(w).
        let plain = Prg::mask(seed, &entry.masked_index);
        let want = (snap.capacity_docs as usize).div_ceil(8);
        if plain.len() != want {
            return Err(format!(
                "index entry width {} does not match capacity {} ({} bytes expected)",
                plain.len(),
                snap.capacity_docs,
                want
            ));
        }
        let ids = DocBitSet::from_bytes(snap.capacity_docs as usize, &plain).to_ids();
        Ok(self.store.read().get_many(&ids))
    }

    /// Persist one shard's index snapshot (CRC-protected; carries the
    /// shard's `applied_seq` as `last_op_seq`). The index contains only
    /// what the server already sees — masked arrays, tags and `F(r)`
    /// ciphertexts — so persisting it leaks nothing new.
    fn save_shard_snapshot(
        &self,
        data: &ShardData,
        geometry: &Geometry,
        path: &Path,
    ) -> Result<()> {
        let mut body = WireWriter::new();
        body.put_u64(data.applied_seq);
        body.put_u64(geometry.capacity_docs);
        body.put_u64(data.tree.len() as u64);
        for (tag, entry) in data.tree.iter() {
            body.put_array(tag);
            body.put_bytes(&entry.masked_index);
            body.put_bytes(&entry.f_r);
        }
        let body = body.finish();
        let tmp = path.with_extension("tmp");
        {
            let mut f = self.vfs.create(&tmp).map_err(StorageError::Io)?;
            let mut header = Vec::with_capacity(12);
            header.extend_from_slice(INDEX_MAGIC);
            header.extend_from_slice(&crc32(&body).to_le_bytes());
            f.write_all(&header).map_err(StorageError::Io)?;
            f.write_all(&body).map_err(StorageError::Io)?;
            f.sync_data().map_err(StorageError::Io)?;
        }
        self.vfs.rename(&tmp, path).map_err(StorageError::Io)?;
        Ok(())
    }

    /// One shard's stored entry, exposed for in-crate tests.
    #[cfg(test)]
    fn entry_for(&self, tag: &[u8; 32]) -> Option<(Vec<u8>, Vec<u8>)> {
        let data = self.lock_data(shard_of(tag, self.shards.len()));
        data.tree
            .get(tag)
            .map(|e| (e.masked_index.clone(), e.f_r.clone()))
    }
}

/// The error surfaced when a mutation reaches a shard whose journal was
/// disabled by an earlier failed group commit.
fn journal_unavailable() -> SseError {
    SseError::Storage(StorageError::Io(std::io::Error::other(
        "shard journal disabled by failed group commit",
    )))
}

/// XOR-merge an update into the tree (or insert a fresh keyword).
fn apply_entry(tree: &mut BpTree<[u8; 32], Entry>, tag: [u8; 32], delta: Vec<u8>, f_r: Vec<u8>) {
    match tree.get_mut(&tag) {
        Some(entry) => {
            // I(w)⊕G(r) ⊕ (U(w)⊕G(r)⊕G(r')) = I'(w)⊕G(r')
            for (d, s) in entry.masked_index.iter_mut().zip(delta.iter()) {
                *d ^= s;
            }
            entry.f_r = f_r;
        }
        None => {
            // Fresh keyword: I(w) = 0, so the delta *is* I'(w)⊕G(r').
            tree.insert(
                tag,
                Entry {
                    masked_index: delta,
                    f_r,
                },
            );
        }
    }
}

/// Re-apply one journaled shard-local mutation during recovery (no
/// re-journaling, no width validation — the record was validated before it
/// was ever journaled, and each shard's log is internally ordered across
/// capacity migrations). Touched tags are recorded into `dirty` /
/// `cleared` so an lsm-backed server can flush the replayed state at its
/// next checkpoint.
fn replay_into(
    tree: &mut BpTree<[u8; 32], Entry>,
    geometry: &mut Geometry,
    raw: &[u8],
    dirty: &mut HashSet<[u8; 32]>,
    cleared: &mut bool,
) -> Result<()> {
    match protocol::decode_request(raw)? {
        Request::ApplyUpdates(entries) => {
            for UpdateEntry { tag, delta, f_r } in entries {
                dirty.insert(tag);
                apply_entry(tree, tag, delta, f_r);
            }
            Ok(())
        }
        Request::ReplaceIndex { capacity, entries } => {
            dirty.clear();
            *cleared = true;
            let mut fresh = BpTree::new();
            for UpdateEntry { tag, delta, f_r } in entries {
                dirty.insert(tag);
                fresh.insert(
                    tag,
                    Entry {
                        masked_index: delta,
                        f_r,
                    },
                );
            }
            *tree = fresh;
            geometry.capacity_docs = capacity;
            geometry.index_bytes = (capacity as usize).div_ceil(8);
            Ok(())
        }
        _ => Err(SseError::Storage(StorageError::Corrupt {
            what: "scheme1 index journal",
            detail: "journal holds a non-mutating request".to_string(),
        })),
    }
}

/// Flush one lsm-backed shard: clear if the index was replaced, write
/// every dirty tag's current entry (or a tombstone if it vanished), then
/// commit one run carrying `applied_seq` and the geometry capacity as the
/// map's `meta` blob. No-op for btree shards.
fn flush_shard_kw_map(data: &mut ShardData, geometry: &Geometry) -> Result<()> {
    let ShardData {
        tree,
        applied_seq,
        dirty,
        cleared,
        kw_map,
    } = data;
    let Some(map) = kw_map else { return Ok(()) };
    if *cleared {
        map.clear()?;
    }
    for tag in dirty.iter() {
        match tree.get(tag) {
            Some(entry) => map.put(*tag, encode_entry(entry))?,
            None => map.delete(tag)?,
        }
    }
    map.flush(*applied_seq, &geometry.capacity_docs.to_le_bytes())?;
    dirty.clear();
    *cleared = false;
    Ok(())
}

/// Validate the keyword map's `meta` blob (the persisted geometry)
/// against the server's capacity — same contract as the btree snapshot's
/// embedded capacity field. An empty blob means the map was never
/// flushed.
fn check_kw_meta(meta: &[u8], geometry: &Geometry) -> Result<()> {
    if meta.is_empty() {
        return Ok(());
    }
    let capacity = u64::from_le_bytes(meta.try_into().map_err(|_| {
        SseError::Storage(StorageError::Corrupt {
            what: "scheme1 keyword map",
            detail: format!("geometry meta is {} bytes, expected 8", meta.len()),
        })
    })?);
    if capacity != geometry.capacity_docs {
        return Err(SseError::Storage(StorageError::Corrupt {
            what: "scheme1 keyword map",
            detail: format!(
                "capacity {capacity} does not match server capacity {}",
                geometry.capacity_docs
            ),
        }));
    }
    Ok(())
}

/// Serialize one stored entry as a keyword-map value: the per-tag body of
/// the monolithic snapshot format, minus the tag itself.
fn encode_entry(entry: &Entry) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_bytes(&entry.masked_index);
    w.put_bytes(&entry.f_r);
    w.finish()
}

/// Inverse of [`encode_entry`], validating the masked-array width against
/// the geometry like [`load_shard_snapshot`] does.
fn decode_entry(bytes: &[u8], geometry: &Geometry) -> Result<Entry> {
    let mut r = WireReader::new(bytes);
    let masked_index = r.get_bytes()?.to_vec();
    if masked_index.len() != geometry.index_bytes {
        return Err(SseError::Storage(StorageError::Corrupt {
            what: "scheme1 keyword map",
            detail: format!(
                "entry width {} != expected {}",
                masked_index.len(),
                geometry.index_bytes
            ),
        }));
    }
    let f_r = r.get_bytes()?.to_vec();
    r.finish()?;
    Ok(Entry { masked_index, f_r })
}

/// Scrub check of one shard snapshot file: magic + body CRC, without
/// decoding the body. `Ok(false)` when the file does not exist (no
/// checkpoint has happened yet — nothing to verify).
fn verify_index_snapshot(vfs: &dyn Vfs, path: &Path) -> Result<bool> {
    let bytes = match vfs.read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(false),
        Err(e) => return Err(SseError::Storage(StorageError::Io(e))),
    };
    if bytes.len() < 12 || &bytes[..8] != INDEX_MAGIC {
        return Err(SseError::Storage(StorageError::Corrupt {
            what: "index snapshot",
            detail: format!("scrub: bad magic or truncated in {}", path.display()),
        }));
    }
    let stored_crc = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if crc32(&bytes[12..]) != stored_crc {
        return Err(SseError::Storage(StorageError::Corrupt {
            what: "index snapshot",
            detail: format!("scrub: checksum mismatch in {}", path.display()),
        }));
    }
    Ok(true)
}

/// Decode one shard snapshot into `tree`, returning the `last_op_seq` it
/// covers.
fn load_shard_snapshot(
    tree: &mut BpTree<[u8; 32], Entry>,
    geometry: &Geometry,
    bytes: &[u8],
) -> Result<u64> {
    if bytes.len() < 12 || &bytes[..8] != INDEX_MAGIC {
        return Err(SseError::Storage(StorageError::Corrupt {
            what: "scheme1 index snapshot",
            detail: "bad magic or truncated".to_string(),
        }));
    }
    let stored_crc = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    let body = &bytes[12..];
    if crc32(body) != stored_crc {
        return Err(SseError::Storage(StorageError::Corrupt {
            what: "scheme1 index snapshot",
            detail: "checksum mismatch".to_string(),
        }));
    }
    let mut r = WireReader::new(body);
    let last_op_seq = r.get_u64()?;
    let capacity = r.get_u64()?;
    if capacity != geometry.capacity_docs {
        return Err(SseError::Storage(StorageError::Corrupt {
            what: "scheme1 index snapshot",
            detail: format!(
                "capacity {capacity} does not match server capacity {}",
                geometry.capacity_docs
            ),
        }));
    }
    let n = r.get_count(48)?;
    let mut fresh = BpTree::new();
    for _ in 0..n {
        let tag = r.get_array32()?;
        let masked_index = r.get_bytes()?.to_vec();
        if masked_index.len() != geometry.index_bytes {
            return Err(SseError::Storage(StorageError::Corrupt {
                what: "scheme1 index snapshot",
                detail: format!(
                    "entry width {} != expected {}",
                    masked_index.len(),
                    geometry.index_bytes
                ),
            }));
        }
        let f_r = r.get_bytes()?.to_vec();
        fresh.insert(tag, Entry { masked_index, f_r });
    }
    r.finish()?;
    *tree = fresh;
    Ok(last_op_seq)
}

impl Service for Scheme1Server {
    fn handle(&mut self, request: &[u8]) -> Vec<u8> {
        self.handle_shared(request)
    }

    fn on_shutdown(&mut self) {
        // Collapse the WAL + journal into snapshots so a clean shutdown
        // leaves nothing to replay. Best effort: a failing disk at
        // shutdown must not abort the process, and recovery replays the
        // logs anyway.
        let _ = self.checkpoint_home();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme1::protocol::{
        decode_ack, decode_found, decode_nonces, decode_result, encode_apply_updates,
        encode_get_nonces, encode_put_docs, encode_search_find, encode_search_reveal,
    };

    fn server() -> Scheme1Server {
        Scheme1Server::new_in_memory(64)
    }

    #[test]
    fn put_docs_and_capacity_enforcement() {
        let mut s = server();
        let ok = s.handle(&encode_put_docs(&[(0, vec![1]), (63, vec![2])]));
        decode_ack(&ok).unwrap();
        assert_eq!(s.stored_docs(), 2);

        let too_big = s.handle(&encode_put_docs(&[(64, vec![3])]));
        assert!(decode_ack(&too_big).is_err());
    }

    #[test]
    fn nonces_for_unknown_tags_are_absent() {
        let mut s = server();
        let resp = s.handle(&encode_get_nonces(&[[1u8; 32], [2u8; 32]]));
        assert_eq!(decode_nonces(&resp).unwrap(), vec![None, None]);
    }

    #[test]
    fn update_insert_then_merge() {
        let mut s = server();
        let tag = [9u8; 32];
        // Fresh insert: delta is the initial masked array.
        let delta1 = vec![0x0Fu8; 8];
        let r = s.handle(&encode_apply_updates(&[UpdateEntry {
            tag,
            delta: delta1.clone(),
            f_r: vec![1],
        }]));
        decode_ack(&r).unwrap();
        assert_eq!(s.unique_keywords(), 1);

        // Merge: stored becomes XOR of both deltas.
        let delta2 = vec![0xFFu8; 8];
        let r = s.handle(&encode_apply_updates(&[UpdateEntry {
            tag,
            delta: delta2,
            f_r: vec![2],
        }]));
        decode_ack(&r).unwrap();
        assert_eq!(s.unique_keywords(), 1);
        let (masked, f_r) = s.entry_for(&tag).unwrap();
        assert_eq!(masked, vec![0xF0u8; 8]);
        assert_eq!(f_r, vec![2]);
    }

    #[test]
    fn update_rejects_wrong_width() {
        let mut s = server();
        let r = s.handle(&encode_apply_updates(&[UpdateEntry {
            tag: [1u8; 32],
            delta: vec![0u8; 7], // index width is 8
            f_r: vec![],
        }]));
        assert!(decode_ack(&r).is_err());
    }

    #[test]
    fn search_find_reports_presence() {
        let mut s = server();
        let tag = [5u8; 32];
        assert_eq!(
            decode_found(&s.handle(&encode_search_find(&tag))).unwrap(),
            None
        );
        s.handle(&encode_apply_updates(&[UpdateEntry {
            tag,
            delta: vec![0u8; 8],
            f_r: vec![0xAB, 0xCD],
        }]));
        assert_eq!(
            decode_found(&s.handle(&encode_search_find(&tag))).unwrap(),
            Some(vec![0xAB, 0xCD])
        );
    }

    #[test]
    fn search_reveal_unmasks_and_returns_docs() {
        let mut s = server();
        s.handle(&encode_put_docs(&[
            (3, b"three".to_vec()),
            (7, b"seven".to_vec()),
        ]));

        // Build I(w) = {3, 7} masked under a known seed.
        let seed = [0x42u8; 32];
        let ids = DocBitSet::from_ids(64, &[3, 7]);
        let masked = Prg::mask(&seed, ids.as_bytes());
        let tag = [6u8; 32];
        s.handle(&encode_apply_updates(&[UpdateEntry {
            tag,
            delta: masked,
            f_r: vec![],
        }]));

        let resp = s.handle(&encode_search_reveal(&tag, &seed));
        let docs = decode_result(&resp).unwrap();
        assert_eq!(docs, vec![(3, b"three".to_vec()), (7, b"seven".to_vec())]);
    }

    #[test]
    fn search_reveal_unknown_tag_is_empty() {
        let mut s = server();
        let resp = s.handle(&encode_search_reveal(&[1u8; 32], &[0u8; 32]));
        assert_eq!(decode_result(&resp).unwrap(), vec![]);
    }

    #[test]
    fn corrupted_entry_width_is_a_protocol_error_not_a_panic() {
        let mut s = server();
        let tag = [0x6Bu8; 32];
        // Plant an entry whose array width disagrees with the capacity,
        // bypassing the update path's width validation (models a corrupted
        // or adversarially imported index, not reachable via ApplyUpdates).
        {
            let mut data = s.shards[0].data.lock();
            data.tree.insert(
                tag,
                Entry {
                    masked_index: vec![0u8; 3], // capacity 64 needs 8 bytes
                    f_r: vec![],
                },
            );
            s.publish(0, &data, 64);
        }
        let resp = s.handle(&encode_search_reveal(&tag, &[0u8; 32]));
        assert!(
            decode_result(&resp).is_err(),
            "width mismatch must surface as a protocol ERR"
        );

        // The batched reveal path must take the same guard.
        let resp = s.handle(&protocol::encode_search_reveal_many(&[(tag, [0u8; 32])]));
        assert!(crate::proto_common::decode_result_many(&resp).is_err());
    }

    #[test]
    fn garbage_request_yields_error_response_not_panic() {
        let mut s = server();
        let resp = s.handle(&[0xEE, 0xFF, 0x00]);
        assert!(decode_ack(&resp).is_err());
    }

    #[test]
    fn stats_track_lookups() {
        let mut s = server();
        s.handle(&encode_search_find(&[1u8; 32]));
        s.handle(&encode_get_nonces(&[[2u8; 32], [3u8; 32]]));
        let st = s.stats();
        assert_eq!(st.tree_lookups, 3);
        assert!(st.tree_nodes_visited >= 3);
        s.reset_stats();
        assert_eq!(s.stats().tree_lookups, 0);
    }

    #[test]
    fn sharded_server_answers_like_single_shard() {
        // The same update/search conversation against 1 and 5 shards must
        // be indistinguishable on the wire.
        let mut single = Scheme1Server::new_in_memory(64);
        let mut sharded = Scheme1Server::new_in_memory_sharded(64, 5);
        assert_eq!(sharded.num_shards(), 5);
        let docs: Vec<(u64, Vec<u8>)> = (0..10u64).map(|i| (i, vec![i as u8; 4])).collect();
        let seed = [0x21u8; 32];
        let mut tags = Vec::new();
        let mut updates = Vec::new();
        for i in 0..20u8 {
            let mut tag = [0u8; 32];
            tag[0] = i.wrapping_mul(37);
            tag[1] = i;
            tags.push(tag);
            let ids = DocBitSet::from_ids(64, &[u64::from(i % 10)]);
            updates.push(UpdateEntry {
                tag,
                delta: Prg::mask(&seed, ids.as_bytes()),
                f_r: vec![i],
            });
        }
        for s in [&mut single, &mut sharded] {
            decode_ack(&s.handle(&encode_put_docs(&docs))).unwrap();
            decode_ack(&s.handle(&encode_apply_updates(&updates))).unwrap();
        }
        assert_eq!(single.unique_keywords(), sharded.unique_keywords());
        for tag in &tags {
            let a = single.handle(&encode_search_reveal(tag, &seed));
            let b = sharded.handle(&encode_search_reveal(tag, &seed));
            assert_eq!(a, b);
        }
        assert_eq!(
            single.export_representations(),
            sharded.export_representations()
        );
    }

    #[test]
    fn apply_batch_is_all_or_nothing_on_validation() {
        let s = server();
        let good = encode_apply_updates(&[UpdateEntry {
            tag: [1u8; 32],
            delta: vec![0xFF; 8],
            f_r: vec![1],
        }]);
        let bad = encode_apply_updates(&[UpdateEntry {
            tag: [2u8; 32],
            delta: vec![0xFF; 3], // wrong width
            f_r: vec![2],
        }]);
        let resp = s.apply_batch(&[&good, &bad]);
        assert!(decode_ack(&resp).is_err());
        assert_eq!(s.unique_keywords(), 0, "no part of the batch applied");

        let resp = s.apply_batch(&[&good]);
        decode_ack(&resp).unwrap();
        assert_eq!(s.unique_keywords(), 1);
    }

    #[test]
    fn apply_batch_rejects_non_mutations() {
        let s = server();
        let resp = s.apply_batch(&[&encode_search_find(&[1u8; 32])]);
        assert!(decode_ack(&resp).is_err());
    }

    #[test]
    fn searches_see_acked_updates_through_snapshots() {
        // Read-your-writes through the snapshot path: an acked update is
        // immediately visible to GetNonces / SearchFind / reveal.
        let s = Scheme1Server::new_in_memory_sharded(64, 4);
        let seed = [0x37u8; 32];
        for i in 0..32u8 {
            let mut tag = [0u8; 32];
            tag[0] = i;
            tag[1] = i.wrapping_mul(101);
            let ids = DocBitSet::from_ids(64, &[u64::from(i % 16)]);
            let resp = s.handle_shared(&encode_apply_updates(&[UpdateEntry {
                tag,
                delta: Prg::mask(&seed, ids.as_bytes()),
                f_r: vec![i, 0xEE],
            }]));
            decode_ack(&resp).unwrap();
            let found = s.handle_shared(&encode_search_find(&tag));
            assert_eq!(decode_found(&found).unwrap(), Some(vec![i, 0xEE]));
        }
        let counters = s.commit_counters();
        assert_eq!(counters.snapshot_swaps, 32);
    }
}
