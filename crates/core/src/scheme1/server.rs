//! Scheme 1 server.
//!
//! The honest-but-curious party. It holds, per unique keyword, the triple
//! `(f_kw(w), I(w) ⊕ G(r), F(r))` in a B+-tree keyed by the tag, plus the
//! encrypted document blobs in a [`sse_storage::store::DocStore`]. It never
//! sees a keyword, a plaintext, or — until a search reveals one — a PRG
//! nonce. Every request is decoded defensively; malformed input produces an
//! error response, never a panic.

use super::protocol::{self, Request, UpdateEntry};
use crate::error::{Result, SseError};
use crate::journal::{IndexJournal, ServerRecovery};
use sse_index::bitset::DocBitSet;
use sse_index::bptree::BpTree;
use sse_net::link::Service;
use sse_net::wire::{WireReader, WireWriter};
use sse_primitives::prg::Prg;
use sse_storage::crc32::crc32;
use sse_storage::store::DocStore;
use sse_storage::{RealVfs, StorageError, Vfs};
use std::path::Path;
use std::sync::Arc;

/// Snapshot magic, v2: the body now leads with the `last_op_seq` covered
/// by the snapshot so journal replay can skip already-applied mutations.
const INDEX_MAGIC: &[u8; 8] = b"SSE1IDX2";
/// Index journal file name inside the server's home directory.
const JOURNAL_FILE: &str = "scheme1.wal";

/// One searchable representation as stored by the server.
struct Entry {
    /// `I(w) ⊕ G(r)`.
    masked_index: Vec<u8>,
    /// Serialized `F(r)`.
    f_r: Vec<u8>,
}

/// Counters the experiments read out-of-band (they are *not* part of the
/// protocol surface).
#[derive(Clone, Copy, Debug, Default)]
pub struct Scheme1ServerStats {
    /// Tag lookups served (search round 1 + updates).
    pub tree_lookups: u64,
    /// Total B+-tree nodes visited across lookups.
    pub tree_nodes_visited: u64,
    /// Searches completed (round 2).
    pub searches: u64,
    /// Update entries applied.
    pub updates_applied: u64,
    /// Documents stored.
    pub docs_stored: u64,
}

/// The Scheme 1 server.
pub struct Scheme1Server {
    index_bytes: usize,
    capacity_docs: u64,
    tree: BpTree<[u8; 32], Entry>,
    store: DocStore,
    stats: Scheme1ServerStats,
    /// Durable home directory (None for in-memory servers).
    dir: Option<std::path::PathBuf>,
    /// The VFS every index file goes through (real or fault-injecting).
    vfs: Arc<dyn Vfs>,
    /// Index mutation journal (None for in-memory servers).
    journal: Option<IndexJournal>,
    /// What the last [`Scheme1Server::open_durable`] had to repair.
    recovery: ServerRecovery,
}

impl Scheme1Server {
    /// In-memory server for a database of at most `capacity_docs` documents.
    #[must_use]
    pub fn new_in_memory(capacity_docs: u64) -> Self {
        Scheme1Server {
            index_bytes: (capacity_docs as usize).div_ceil(8),
            capacity_docs,
            tree: BpTree::new(),
            store: DocStore::in_memory(),
            stats: Scheme1ServerStats::default(),
            dir: None,
            vfs: RealVfs::arc(),
            journal: None,
            recovery: ServerRecovery::default(),
        }
    }

    /// Durable server persisting blobs under `dir`. Recovery brings back
    /// everything acknowledged before a crash: the document store replays
    /// its WAL, the index snapshot (if any) is loaded, and index mutations
    /// journaled after the snapshot are re-applied in order.
    ///
    /// # Errors
    /// Storage errors while opening or recovering the document store, a
    /// corrupt index snapshot, or a corrupt journal record.
    pub fn open_durable(capacity_docs: u64, dir: &Path) -> Result<Self> {
        Self::open_durable_with_vfs(RealVfs::arc(), capacity_docs, dir)
    }

    /// [`Scheme1Server::open_durable`] over an explicit [`Vfs`] (fault
    /// injection runs the whole server through a
    /// [`sse_storage::FaultVfs`]).
    ///
    /// # Errors
    /// As [`Scheme1Server::open_durable`], plus injected faults.
    pub fn open_durable_with_vfs(
        vfs: Arc<dyn Vfs>,
        capacity_docs: u64,
        dir: &Path,
    ) -> Result<Self> {
        let store = DocStore::open_with_vfs(
            vfs.clone(),
            dir,
            sse_storage::store::StoreOptions::default(),
        )?;
        let store_recovery = store.recovery_report();
        let mut server = Scheme1Server {
            index_bytes: (capacity_docs as usize).div_ceil(8),
            capacity_docs,
            tree: BpTree::new(),
            store,
            stats: Scheme1ServerStats::default(),
            dir: Some(dir.to_path_buf()),
            vfs: vfs.clone(),
            journal: None,
            recovery: ServerRecovery::default(),
        };
        let index_path = dir.join("scheme1.index");
        let mut snapshot_seq = 0u64;
        if vfs.exists(&index_path) {
            let bytes = vfs.read(&index_path).map_err(StorageError::Io)?;
            snapshot_seq = server.load_index_bytes(&bytes)?;
        }
        let (journal, journal_recovery) =
            IndexJournal::open_with_vfs(vfs, &dir.join(JOURNAL_FILE), true, snapshot_seq)?;
        for raw in &journal_recovery.replay {
            server.replay_mutation(raw)?;
        }
        server.journal = Some(journal);
        server.recovery = ServerRecovery {
            index_ops_replayed: journal_recovery.replay.len() as u64,
            index_torn_bytes: journal_recovery.torn_bytes_truncated,
            store_snapshot_loaded: store_recovery.snapshot_loaded,
            store_wal_records_replayed: store_recovery.wal_records_replayed,
            store_torn_bytes: store_recovery.torn_bytes_truncated,
        };
        Ok(server)
    }

    /// What the last [`Scheme1Server::open_durable`] had to repair.
    #[must_use]
    pub fn recovery(&self) -> ServerRecovery {
        self.recovery
    }

    /// Persist the keyword index (the searchable representations) to a
    /// CRC-protected snapshot. The index contains only what the server
    /// already sees — masked arrays, tags and `F(r)` ciphertexts — so
    /// persisting it leaks nothing new.
    ///
    /// # Errors
    /// Filesystem errors.
    pub fn save_index(&self, path: &Path) -> Result<()> {
        let mut body = WireWriter::new();
        body.put_u64(self.journal.as_ref().map_or(0, IndexJournal::last_seq));
        body.put_u64(self.capacity_docs);
        body.put_u64(self.tree.len() as u64);
        for (tag, entry) in self.tree.iter() {
            body.put_array(tag);
            body.put_bytes(&entry.masked_index);
            body.put_bytes(&entry.f_r);
        }
        let body = body.finish();
        let tmp = path.with_extension("tmp");
        {
            let mut f = self.vfs.create(&tmp).map_err(StorageError::Io)?;
            let mut header = Vec::with_capacity(12);
            header.extend_from_slice(INDEX_MAGIC);
            header.extend_from_slice(&crc32(&body).to_le_bytes());
            f.write_all(&header).map_err(StorageError::Io)?;
            f.write_all(&body).map_err(StorageError::Io)?;
            f.sync_data().map_err(StorageError::Io)?;
        }
        self.vfs.rename(&tmp, path).map_err(StorageError::Io)?;
        Ok(())
    }

    /// Load an index snapshot written by [`Scheme1Server::save_index`].
    ///
    /// # Errors
    /// Corruption (bad magic/CRC), capacity mismatch, or I/O failures.
    pub fn load_index(&mut self, path: &Path) -> Result<()> {
        let bytes = self.vfs.read(path).map_err(StorageError::Io)?;
        self.load_index_bytes(&bytes)?;
        Ok(())
    }

    /// Decode snapshot `bytes`, returning the `last_op_seq` it covers.
    fn load_index_bytes(&mut self, bytes: &[u8]) -> Result<u64> {
        if bytes.len() < 12 || &bytes[..8] != INDEX_MAGIC {
            return Err(SseError::Storage(StorageError::Corrupt {
                what: "scheme1 index snapshot",
                detail: "bad magic or truncated".to_string(),
            }));
        }
        let stored_crc = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        let body = &bytes[12..];
        if crc32(body) != stored_crc {
            return Err(SseError::Storage(StorageError::Corrupt {
                what: "scheme1 index snapshot",
                detail: "checksum mismatch".to_string(),
            }));
        }
        let mut r = WireReader::new(body);
        let last_op_seq = r.get_u64()?;
        let capacity = r.get_u64()?;
        if capacity != self.capacity_docs {
            return Err(SseError::Storage(StorageError::Corrupt {
                what: "scheme1 index snapshot",
                detail: format!(
                    "capacity {capacity} does not match server capacity {}",
                    self.capacity_docs
                ),
            }));
        }
        let n = r.get_count(48)?;
        let mut tree = BpTree::new();
        for _ in 0..n {
            let tag = r.get_array32()?;
            let masked_index = r.get_bytes()?.to_vec();
            if masked_index.len() != self.index_bytes {
                return Err(SseError::Storage(StorageError::Corrupt {
                    what: "scheme1 index snapshot",
                    detail: format!(
                        "entry width {} != expected {}",
                        masked_index.len(),
                        self.index_bytes
                    ),
                }));
            }
            let f_r = r.get_bytes()?.to_vec();
            tree.insert(tag, Entry { masked_index, f_r });
        }
        r.finish()?;
        self.tree = tree;
        Ok(last_op_seq)
    }

    /// Checkpoint everything durable, in crash-safe order: document store
    /// snapshot, then the index snapshot (which records the journal's
    /// `last_op_seq`), then journal truncation. A crash between any two
    /// steps recovers correctly: the snapshot's sequence number tells
    /// replay exactly which journaled mutations are already inside it.
    ///
    /// # Errors
    /// Filesystem errors. No-op index-wise for in-memory servers.
    pub fn checkpoint(&mut self, dir: &Path) -> Result<()> {
        self.store.checkpoint()?;
        self.save_index(&dir.join("scheme1.index"))?;
        if let Some(journal) = &mut self.journal {
            journal.reset()?;
        }
        Ok(())
    }

    /// Checkpoint into the server's own home directory; no-op for
    /// in-memory servers.
    ///
    /// # Errors
    /// Filesystem errors.
    pub fn checkpoint_home(&mut self) -> Result<()> {
        match self.dir.clone() {
            Some(dir) => self.checkpoint(&dir),
            None => Ok(()),
        }
    }

    /// Number of unique keywords indexed (`u`).
    #[must_use]
    pub fn unique_keywords(&self) -> usize {
        self.tree.len()
    }

    /// Number of stored documents.
    #[must_use]
    pub fn stored_docs(&self) -> usize {
        self.store.len()
    }

    /// Height of the tag tree (the `O(log u)` factor, observable).
    #[must_use]
    pub fn tree_height(&self) -> usize {
        self.tree.height()
    }

    /// Observability counters.
    #[must_use]
    pub fn stats(&self) -> Scheme1ServerStats {
        self.stats
    }

    /// Reset the observability counters.
    pub fn reset_stats(&mut self) {
        self.stats = Scheme1ServerStats::default();
    }

    /// Byte size of every (masked) index array.
    #[must_use]
    pub fn index_bytes(&self) -> usize {
        self.index_bytes
    }

    /// Export the stored searchable representations
    /// `(f_kw(w), I(w) ⊕ G(r), F(r))` — this *is* the set `S` in the
    /// adversary's view (Definition 2). Used by the security harness.
    #[must_use]
    pub fn export_representations(&self) -> Vec<([u8; 32], Vec<u8>, Vec<u8>)> {
        self.tree
            .iter()
            .map(|(tag, e)| (*tag, e.masked_index.clone(), e.f_r.clone()))
            .collect()
    }

    /// Export the stored encrypted documents `(id, E_km(M_i))` in id order
    /// (the other half of the adversary's view).
    #[must_use]
    pub fn export_blobs(&self) -> Vec<(u64, Vec<u8>)> {
        let ids: Vec<u64> = self.store.ids().collect();
        self.store.get_many(&ids)
    }

    /// Append `raw` to the index journal (durable servers only). A failed
    /// append refuses the mutation: nothing may be acknowledged that a
    /// restart would lose.
    fn journal_mutation(&mut self, raw: &[u8]) -> Result<()> {
        if let Some(journal) = &mut self.journal {
            journal.append(raw)?;
        }
        Ok(())
    }

    /// Re-apply one journaled mutation during recovery (no re-journaling).
    fn replay_mutation(&mut self, raw: &[u8]) -> Result<()> {
        let resp = match protocol::decode_request(raw)? {
            Request::ApplyUpdates(entries) => self.handle_apply_updates(raw, entries, false),
            Request::ReplaceIndex { capacity, entries } => {
                self.handle_replace_index(raw, capacity, entries, false)
            }
            _ => {
                return Err(SseError::Storage(StorageError::Corrupt {
                    what: "scheme1 index journal",
                    detail: "journal holds a non-mutating request".to_string(),
                }))
            }
        };
        protocol::decode_ack(&resp)
    }

    fn handle_apply_updates(
        &mut self,
        raw: &[u8],
        entries: Vec<UpdateEntry>,
        durable: bool,
    ) -> Vec<u8> {
        // Validate before journaling so the journal only ever holds
        // mutations that actually applied.
        for entry in &entries {
            if entry.delta.len() != self.index_bytes {
                return protocol::encode_error(&format!(
                    "delta length {} != index width {}",
                    entry.delta.len(),
                    self.index_bytes
                ));
            }
        }
        if durable {
            if let Err(e) = self.journal_mutation(raw) {
                return protocol::encode_error(&e.to_string());
            }
        }
        for UpdateEntry { tag, delta, f_r } in entries {
            match self.tree.get_mut(&tag) {
                Some(entry) => {
                    // I(w)⊕G(r) ⊕ (U(w)⊕G(r)⊕G(r')) = I'(w)⊕G(r')
                    for (d, s) in entry.masked_index.iter_mut().zip(delta.iter()) {
                        *d ^= s;
                    }
                    entry.f_r = f_r;
                }
                None => {
                    // Fresh keyword: I(w) = 0, so the delta *is*
                    // I'(w)⊕G(r').
                    self.tree.insert(
                        tag,
                        Entry {
                            masked_index: delta,
                            f_r,
                        },
                    );
                }
            }
            self.stats.updates_applied += 1;
        }
        protocol::encode_ack()
    }

    fn handle_replace_index(
        &mut self,
        raw: &[u8],
        capacity: u64,
        entries: Vec<UpdateEntry>,
        durable: bool,
    ) -> Vec<u8> {
        let new_width = (capacity as usize).div_ceil(8);
        if let Some(bad) = entries.iter().find(|e| e.delta.len() != new_width) {
            return protocol::encode_error(&format!(
                "entry width {} != new index width {new_width}",
                bad.delta.len()
            ));
        }
        // Migration must not lose keywords: the replacement set
        // must cover every currently stored tag.
        let new_tags: std::collections::HashSet<[u8; 32]> = entries.iter().map(|e| e.tag).collect();
        for (tag, _) in self.tree.iter() {
            if !new_tags.contains(tag) {
                return protocol::encode_error("replacement index is missing a stored keyword tag");
            }
        }
        if durable {
            if let Err(e) = self.journal_mutation(raw) {
                return protocol::encode_error(&e.to_string());
            }
        }
        let mut tree = BpTree::new();
        for UpdateEntry { tag, delta, f_r } in entries {
            tree.insert(
                tag,
                Entry {
                    masked_index: delta,
                    f_r,
                },
            );
        }
        self.tree = tree;
        self.capacity_docs = capacity;
        self.index_bytes = new_width;
        protocol::encode_ack()
    }

    fn handle_request(&mut self, raw: &[u8], req: Request) -> Vec<u8> {
        match req {
            Request::PutDocs(docs) => {
                for (id, blob) in docs {
                    if id >= self.capacity_docs {
                        return protocol::encode_error(&format!(
                            "doc id {id} exceeds capacity {}",
                            self.capacity_docs
                        ));
                    }
                    if let Err(e) = self.store.put(id, &blob) {
                        return protocol::encode_error(&e.to_string());
                    }
                    self.stats.docs_stored += 1;
                }
                protocol::encode_ack()
            }
            Request::GetNonces(tags) => {
                let items: Vec<Option<Vec<u8>>> = tags
                    .iter()
                    .map(|tag| {
                        let (entry, s) = self.tree.get_with_stats(tag);
                        self.stats.tree_lookups += 1;
                        self.stats.tree_nodes_visited += s.nodes_visited as u64;
                        entry.map(|e| e.f_r.clone())
                    })
                    .collect();
                protocol::encode_nonces(&items)
            }
            Request::ApplyUpdates(entries) => self.handle_apply_updates(raw, entries, true),
            Request::SearchFind(tag) => {
                let (entry, s) = self.tree.get_with_stats(&tag);
                self.stats.tree_lookups += 1;
                self.stats.tree_nodes_visited += s.nodes_visited as u64;
                protocol::encode_found(entry.map(|e| e.f_r.as_slice()))
            }
            Request::SearchReveal { tag, seed } => {
                let docs = self.reveal_one(&tag, &seed);
                protocol::encode_result(&docs)
            }
            Request::SearchRevealMany(items) => {
                let results: Vec<Vec<(u64, Vec<u8>)>> = items
                    .iter()
                    .map(|(tag, seed)| self.reveal_one(tag, seed))
                    .collect();
                crate::proto_common::encode_result_many(&results)
            }
            Request::Checkpoint => {
                let Some(dir) = self.dir.clone() else {
                    return protocol::encode_error("checkpoint requested on an in-memory server");
                };
                match self.checkpoint(&dir) {
                    Ok(()) => protocol::encode_ack(),
                    Err(e) => protocol::encode_error(&e.to_string()),
                }
            }
            Request::ExportIndex => protocol::encode_index_dump(&self.export_representations()),
            Request::ReplaceIndex { capacity, entries } => {
                self.handle_replace_index(raw, capacity, entries, true)
            }
        }
    }

    /// Unmask one posting array with the revealed seed and fetch matches.
    fn reveal_one(&mut self, tag: &[u8; 32], seed: &[u8; 32]) -> Vec<(u64, Vec<u8>)> {
        let capacity = self.capacity_docs as usize;
        let Some(entry) = self.tree.get(tag) else {
            self.stats.searches += 1;
            return Vec::new();
        };
        // Unmask: (I(w) ⊕ G(r)) ⊕ G(r) = I(w).
        let plain = Prg::mask(seed, &entry.masked_index);
        debug_assert_eq!(plain.len(), self.index_bytes);
        let ids = DocBitSet::from_bytes(capacity, &plain).to_ids();
        self.stats.searches += 1;
        self.store.get_many(&ids)
    }
}

impl Service for Scheme1Server {
    fn handle(&mut self, request: &[u8]) -> Vec<u8> {
        match protocol::decode_request(request) {
            Ok(req) => self.handle_request(request, req),
            Err(e) => protocol::encode_error(&e.to_string()),
        }
    }

    fn on_shutdown(&mut self) {
        // Collapse the WAL + journal into snapshots so a clean shutdown
        // leaves nothing to replay. Best effort: a failing disk at
        // shutdown must not abort the process, and recovery replays the
        // logs anyway.
        let _ = self.checkpoint_home();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme1::protocol::{
        decode_ack, decode_found, decode_nonces, decode_result, encode_apply_updates,
        encode_get_nonces, encode_put_docs, encode_search_find, encode_search_reveal,
    };

    fn server() -> Scheme1Server {
        Scheme1Server::new_in_memory(64)
    }

    #[test]
    fn put_docs_and_capacity_enforcement() {
        let mut s = server();
        let ok = s.handle(&encode_put_docs(&[(0, vec![1]), (63, vec![2])]));
        decode_ack(&ok).unwrap();
        assert_eq!(s.stored_docs(), 2);

        let too_big = s.handle(&encode_put_docs(&[(64, vec![3])]));
        assert!(decode_ack(&too_big).is_err());
    }

    #[test]
    fn nonces_for_unknown_tags_are_absent() {
        let mut s = server();
        let resp = s.handle(&encode_get_nonces(&[[1u8; 32], [2u8; 32]]));
        assert_eq!(decode_nonces(&resp).unwrap(), vec![None, None]);
    }

    #[test]
    fn update_insert_then_merge() {
        let mut s = server();
        let tag = [9u8; 32];
        // Fresh insert: delta is the initial masked array.
        let delta1 = vec![0x0Fu8; 8];
        let r = s.handle(&encode_apply_updates(&[UpdateEntry {
            tag,
            delta: delta1.clone(),
            f_r: vec![1],
        }]));
        decode_ack(&r).unwrap();
        assert_eq!(s.unique_keywords(), 1);

        // Merge: stored becomes XOR of both deltas.
        let delta2 = vec![0xFFu8; 8];
        let r = s.handle(&encode_apply_updates(&[UpdateEntry {
            tag,
            delta: delta2,
            f_r: vec![2],
        }]));
        decode_ack(&r).unwrap();
        assert_eq!(s.unique_keywords(), 1);
        let entry = s.tree.get(&tag).unwrap();
        assert_eq!(entry.masked_index, vec![0xF0u8; 8]);
        assert_eq!(entry.f_r, vec![2]);
    }

    #[test]
    fn update_rejects_wrong_width() {
        let mut s = server();
        let r = s.handle(&encode_apply_updates(&[UpdateEntry {
            tag: [1u8; 32],
            delta: vec![0u8; 7], // index width is 8
            f_r: vec![],
        }]));
        assert!(decode_ack(&r).is_err());
    }

    #[test]
    fn search_find_reports_presence() {
        let mut s = server();
        let tag = [5u8; 32];
        assert_eq!(
            decode_found(&s.handle(&encode_search_find(&tag))).unwrap(),
            None
        );
        s.handle(&encode_apply_updates(&[UpdateEntry {
            tag,
            delta: vec![0u8; 8],
            f_r: vec![0xAB, 0xCD],
        }]));
        assert_eq!(
            decode_found(&s.handle(&encode_search_find(&tag))).unwrap(),
            Some(vec![0xAB, 0xCD])
        );
    }

    #[test]
    fn search_reveal_unmasks_and_returns_docs() {
        let mut s = server();
        s.handle(&encode_put_docs(&[
            (3, b"three".to_vec()),
            (7, b"seven".to_vec()),
        ]));

        // Build I(w) = {3, 7} masked under a known seed.
        let seed = [0x42u8; 32];
        let ids = DocBitSet::from_ids(64, &[3, 7]);
        let masked = Prg::mask(&seed, ids.as_bytes());
        let tag = [6u8; 32];
        s.handle(&encode_apply_updates(&[UpdateEntry {
            tag,
            delta: masked,
            f_r: vec![],
        }]));

        let resp = s.handle(&encode_search_reveal(&tag, &seed));
        let docs = decode_result(&resp).unwrap();
        assert_eq!(docs, vec![(3, b"three".to_vec()), (7, b"seven".to_vec())]);
    }

    #[test]
    fn search_reveal_unknown_tag_is_empty() {
        let mut s = server();
        let resp = s.handle(&encode_search_reveal(&[1u8; 32], &[0u8; 32]));
        assert_eq!(decode_result(&resp).unwrap(), vec![]);
    }

    #[test]
    fn garbage_request_yields_error_response_not_panic() {
        let mut s = server();
        let resp = s.handle(&[0xEE, 0xFF, 0x00]);
        assert!(decode_ack(&resp).is_err());
    }

    #[test]
    fn stats_track_lookups() {
        let mut s = server();
        s.handle(&encode_search_find(&[1u8; 32]));
        s.handle(&encode_get_nonces(&[[2u8; 32], [3u8; 32]]));
        let st = s.stats();
        assert_eq!(st.tree_lookups, 3);
        assert!(st.tree_nodes_visited >= 3);
        s.reset_stats();
        assert_eq!(s.stats().tree_lookups, 0);
    }
}
