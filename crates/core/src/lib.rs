//! # sse-core
//!
//! Reproduction of the searchable symmetric encryption schemes of
//! *Adaptively Secure Computationally Efficient Searchable Symmetric
//! Encryption* (Sedghi, van Liesdonk, Doumen, Hartel, Jonker — SDM@VLDB
//! 2010).
//!
//! Both schemes share the paper's basic design (§5.1): every *unique
//! keyword* `w` gets one searchable representation `S(w)` stored in a
//! server-side tree keyed by the PRF tag `f_kw(w)`, so locating a keyword is
//! `O(log u)` in the number of unique keywords — not `O(n)` in the number
//! of documents as in prior linear-scan schemes.
//!
//! * [`scheme1`] — the *computationally efficient* variant (§5.2):
//!   `S(w) = (f_kw(w), I(w) ⊕ G(r), F(r))` with `I(w)` a document-id bit
//!   array, `G` a PRG and `F` an ElGamal trapdoor permutation. Search and
//!   update each take two communication rounds.
//! * [`scheme2`] — the *communication efficient* variant (§5.4–5.6):
//!   posting-id generations appended under keys walked backwards along a
//!   Lamport hash chain, `k_j(w) = h^{l-ctr}(w‖k_w)`. One round per
//!   operation; search pays a forward chain walk bounded by the number of
//!   updates since the last search. Includes both published optimizations.
//! * [`security`] — Definitions 1–4 made executable: history/view/trace
//!   extraction, the §5.3 simulator, and a statistical distinguishing game
//!   that validates Theorem 1 empirically (and catches deliberately broken
//!   schemes).
//! * [`leakage`] — the §5.7 update-leakage mitigations (batched updates,
//!   fake updates) and an adversary model that quantifies what updates
//!   reveal.
//!
//! ## Quick start
//!
//! ```
//! use sse_core::types::{Document, Keyword, MasterKey};
//! use sse_core::scheme1::{Scheme1Client, Scheme1Config};
//!
//! let key = MasterKey::from_seed(7);
//! let mut client = Scheme1Client::new_in_memory(key, Scheme1Config::fast_profile(1024));
//! let docs = vec![
//!     Document::new(0, b"visit notes".to_vec(), ["flu", "fever"]),
//!     Document::new(1, b"lab results".to_vec(), ["fever"]),
//! ];
//! client.store(&docs).unwrap();
//! let hits = client.search(&Keyword::new("fever")).unwrap();
//! assert_eq!(hits.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commit;
pub mod error;
pub mod health;
pub mod journal;
pub mod leakage;
pub mod proto_common;
pub mod query;
pub mod scheme;
pub mod scheme1;
pub mod scheme2;
pub mod security;
pub mod shard;
pub mod types;

pub use error::{Result, SseError};
