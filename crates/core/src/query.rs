//! Boolean multi-keyword queries, evaluated client-side.
//!
//! The paper's schemes (like nearly all SSE of their generation) support
//! single-keyword trapdoors only. Richer queries compose on the client: run
//! one search per mentioned keyword and combine the id sets. This leaks the
//! access pattern of *every* mentioned keyword — the standard trade-off,
//! stated here so callers can account for it.

use crate::error::Result;
use crate::scheme::SseClientApi;
use crate::types::{DocId, Keyword, SearchHits};
use std::collections::{BTreeMap, BTreeSet};

/// A boolean keyword query.
///
/// ```
/// use sse_core::query::{execute_query, Query};
/// use sse_core::scheme2::{InMemoryScheme2Client, Scheme2Config};
/// use sse_core::types::{Document, MasterKey};
///
/// let mut client = InMemoryScheme2Client::new_in_memory(
///     MasterKey::from_seed(1),
///     Scheme2Config::standard(),
/// );
/// client.store(&[
///     Document::new(0, b"a".to_vec(), ["flu", "fever"]),
///     Document::new(1, b"b".to_vec(), ["fever"]),
/// ])?;
/// let hits = execute_query(&mut client, &Query::all_of(["flu", "fever"]))?;
/// assert_eq!(hits.len(), 1);
/// # Ok::<(), sse_core::SseError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Query {
    /// Documents containing the keyword.
    Keyword(Keyword),
    /// Documents matching every sub-query (intersection).
    And(Vec<Query>),
    /// Documents matching any sub-query (union).
    Or(Vec<Query>),
    /// Documents matching the first but not the second sub-query.
    AndNot(Box<Query>, Box<Query>),
}

impl Query {
    /// Convenience: a single keyword.
    #[must_use]
    pub fn keyword(w: impl Into<Keyword>) -> Self {
        Query::Keyword(w.into())
    }

    /// Convenience: conjunction of keywords.
    #[must_use]
    pub fn all_of<K: Into<Keyword>, I: IntoIterator<Item = K>>(kws: I) -> Self {
        Query::And(kws.into_iter().map(|k| Query::Keyword(k.into())).collect())
    }

    /// Convenience: disjunction of keywords.
    #[must_use]
    pub fn any_of<K: Into<Keyword>, I: IntoIterator<Item = K>>(kws: I) -> Self {
        Query::Or(kws.into_iter().map(|k| Query::Keyword(k.into())).collect())
    }

    /// Every keyword mentioned anywhere in the query (what the server will
    /// observe being searched — the leakage surface).
    #[must_use]
    pub fn mentioned_keywords(&self) -> BTreeSet<Keyword> {
        let mut out = BTreeSet::new();
        self.collect_keywords(&mut out);
        out
    }

    fn collect_keywords(&self, out: &mut BTreeSet<Keyword>) {
        match self {
            Query::Keyword(w) => {
                out.insert(w.clone());
            }
            Query::And(qs) | Query::Or(qs) => {
                for q in qs {
                    q.collect_keywords(out);
                }
            }
            Query::AndNot(a, b) => {
                a.collect_keywords(out);
                b.collect_keywords(out);
            }
        }
    }
}

/// Execute a boolean query: one scheme search per mentioned keyword, then
/// set algebra over the returned ids. Returns hits sorted by document id;
/// payloads come from whichever single-keyword search returned them.
///
/// # Errors
/// Propagates the underlying scheme's search errors.
pub fn execute_query<C: SseClientApi + ?Sized>(
    client: &mut C,
    query: &Query,
) -> Result<SearchHits> {
    // Fetch each mentioned keyword once, in a single batched exchange
    // (2 rounds on Scheme 1, 1 round on Scheme 2).
    let keywords: Vec<Keyword> = query.mentioned_keywords().into_iter().collect();
    let per_keyword = client.search_many(&keywords)?;
    let mut fetched: BTreeMap<Keyword, BTreeSet<DocId>> = BTreeMap::new();
    let mut payloads: BTreeMap<DocId, Vec<u8>> = BTreeMap::new();
    for (w, hits) in keywords.into_iter().zip(per_keyword) {
        let ids: BTreeSet<DocId> = hits.iter().map(|(id, _)| *id).collect();
        for (id, payload) in hits {
            payloads.entry(id).or_insert(payload);
        }
        fetched.insert(w, ids);
    }
    let ids = evaluate(query, &fetched);
    Ok(ids
        .into_iter()
        .filter_map(|id| payloads.get(&id).map(|p| (id, p.clone())))
        .collect())
}

fn evaluate(query: &Query, fetched: &BTreeMap<Keyword, BTreeSet<DocId>>) -> BTreeSet<DocId> {
    match query {
        Query::Keyword(w) => fetched.get(w).cloned().unwrap_or_default(),
        Query::And(qs) => {
            let mut iter = qs.iter().map(|q| evaluate(q, fetched));
            let Some(first) = iter.next() else {
                return BTreeSet::new();
            };
            iter.fold(first, |acc, s| acc.intersection(&s).copied().collect())
        }
        Query::Or(qs) => qs
            .iter()
            .map(|q| evaluate(q, fetched))
            .fold(BTreeSet::new(), |acc, s| acc.union(&s).copied().collect()),
        Query::AndNot(a, b) => {
            let a = evaluate(a, fetched);
            let b = evaluate(b, fetched);
            a.difference(&b).copied().collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme1::{InMemoryScheme1Client, Scheme1Config};
    use crate::scheme2::{InMemoryScheme2Client, Scheme2Config};
    use crate::types::{Document, MasterKey};

    fn docs() -> Vec<Document> {
        vec![
            Document::new(0, b"d0".to_vec(), ["a", "b"]),
            Document::new(1, b"d1".to_vec(), ["a"]),
            Document::new(2, b"d2".to_vec(), ["b", "c"]),
            Document::new(3, b"d3".to_vec(), ["a", "b", "c"]),
        ]
    }

    fn ids(hits: &SearchHits) -> Vec<DocId> {
        hits.iter().map(|(id, _)| *id).collect()
    }

    #[test]
    fn and_or_andnot_over_scheme1() {
        let mut c = InMemoryScheme1Client::new_in_memory(
            MasterKey::from_seed(1),
            Scheme1Config::fast_profile(16),
        );
        c.store(&docs()).unwrap();
        let and = execute_query(&mut c, &Query::all_of(["a", "b"])).unwrap();
        assert_eq!(ids(&and), vec![0, 3]);
        let or = execute_query(&mut c, &Query::any_of(["a", "c"])).unwrap();
        assert_eq!(ids(&or), vec![0, 1, 2, 3]);
        let andnot = execute_query(
            &mut c,
            &Query::AndNot(Box::new(Query::keyword("a")), Box::new(Query::keyword("c"))),
        )
        .unwrap();
        assert_eq!(ids(&andnot), vec![0, 1]);
    }

    #[test]
    fn nested_queries_over_scheme2() {
        let mut c = InMemoryScheme2Client::new_in_memory(
            MasterKey::from_seed(2),
            Scheme2Config::standard().with_chain_length(64),
        );
        c.store(&docs()).unwrap();
        // (a AND b) OR c  -> {0,3} ∪ {2,3} = {0,2,3}
        let q = Query::Or(vec![Query::all_of(["a", "b"]), Query::keyword("c")]);
        let hits = execute_query(&mut c, &q).unwrap();
        assert_eq!(ids(&hits), vec![0, 2, 3]);
        // Payloads decrypt correctly through the composition.
        assert_eq!(hits[0].1, b"d0".to_vec());
    }

    #[test]
    fn empty_and_degenerate_queries() {
        let mut c = InMemoryScheme1Client::new_in_memory(
            MasterKey::from_seed(3),
            Scheme1Config::fast_profile(16),
        );
        c.store(&docs()).unwrap();
        assert!(execute_query(&mut c, &Query::And(vec![]))
            .unwrap()
            .is_empty());
        assert!(execute_query(&mut c, &Query::Or(vec![]))
            .unwrap()
            .is_empty());
        assert!(execute_query(&mut c, &Query::keyword("zzz"))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn mentioned_keywords_is_the_leakage_surface() {
        let q = Query::AndNot(
            Box::new(Query::all_of(["a", "b"])),
            Box::new(Query::any_of(["b", "c"])),
        );
        let mentioned: Vec<String> = q
            .mentioned_keywords()
            .iter()
            .map(|k| k.as_str().to_string())
            .collect();
        assert_eq!(mentioned, vec!["a", "b", "c"]);
    }

    #[test]
    fn each_keyword_is_searched_exactly_once() {
        let mut c = InMemoryScheme1Client::new_in_memory(
            MasterKey::from_seed(4),
            Scheme1Config::fast_profile(16),
        );
        c.store(&docs()).unwrap();
        let meter = c.meter();
        meter.reset();
        // "a" appears three times in the query but must be fetched once,
        // and batching makes the whole fetch exactly 2 rounds.
        let q = Query::Or(vec![
            Query::all_of(["a", "b"]),
            Query::keyword("a"),
            Query::AndNot(Box::new(Query::keyword("a")), Box::new(Query::keyword("b"))),
        ]);
        execute_query(&mut c, &q).unwrap();
        assert_eq!(meter.snapshot().rounds, 2);
    }
}
