//! Per-shard group commit: amortize one fsync across concurrent mutations.
//!
//! PR 3's serving benchmark showed per-mutation journal fsyncs dominate
//! throughput — sharding overlaps fsyncs but never amortizes them. The
//! [`GroupCommitter`] fixes that: concurrent mutations *stage* their
//! already-seq-stamped journal records into a pending group, and the first
//! waiter to find work becomes the **leader**, writing the whole group with
//! one vectored [`sse_storage::wal::Wal::append_batch`] call (one `write`
//! syscall + one `sync_data`). Followers sleep on a condvar until the
//! leader advances `durable_seq` past their record.
//!
//! The durability contract is unchanged from per-op journaling: a mutation
//! is acknowledged only after [`GroupCommitter::wait_durable`] returns
//! `Ok`, i.e. strictly after the fsync that covered its record. Sequence
//! numbers are assigned at stage time under the committer lock, so journal
//! order, group order, and apply order are all the same order, and
//! cross-shard batch ids can embed the coordinator's seq before anything
//! hits disk.
//!
//! Failure model: if a group's write or fsync fails, the committer is
//! **poisoned** — every record in that group and everything staged after
//! it reports an error, and no further staging is accepted. This mirrors a
//! crash (the only source of sync failures in this workspace is injected
//! faults, which kill all subsequent I/O anyway): the journal's on-disk
//! state is an acked prefix plus at most one in-doubt unacked group.

use crate::error::{Result, SseError};
use crate::journal::IndexJournal;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, MutexGuard, PoisonError};

/// Pipeline counters shared by every shard's committer in a server.
///
/// Consumers derive the headline ratios: mean group size is
/// `ops_committed / groups_committed` and fsyncs-per-op is its inverse
/// (`groups_committed / ops_committed`), since each group costs exactly
/// one fsync.
#[derive(Debug, Default)]
pub struct CommitStats {
    /// Groups flushed (each = one vectored write + one fsync).
    pub groups_committed: AtomicU64,
    /// Mutation records flushed across all groups.
    pub ops_committed: AtomicU64,
    /// Largest single group flushed.
    pub max_group: AtomicU64,
    /// Fsyncs avoided versus one-per-op journaling (`group_size - 1` per group).
    pub fsyncs_saved: AtomicU64,
    /// Immutable search-snapshot publications (one per shard apply).
    pub snapshot_swaps: AtomicU64,
}

/// A point-in-time copy of [`CommitStats`], cheap to aggregate and ship.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommitCounters {
    /// Groups flushed (each = one fsync).
    pub groups_committed: u64,
    /// Mutation records flushed across all groups.
    pub ops_committed: u64,
    /// Largest single group flushed.
    pub max_group: u64,
    /// Fsyncs avoided versus one-per-op journaling.
    pub fsyncs_saved: u64,
    /// Immutable search-snapshot publications.
    pub snapshot_swaps: u64,
}

impl CommitStats {
    /// Record one flushed group of `n` records.
    pub fn note_group(&self, n: u64) {
        self.groups_committed.fetch_add(1, Ordering::Relaxed);
        self.ops_committed.fetch_add(n, Ordering::Relaxed);
        self.max_group.fetch_max(n, Ordering::Relaxed);
        self.fsyncs_saved
            .fetch_add(n.saturating_sub(1), Ordering::Relaxed);
    }

    /// Record one search-snapshot publication.
    pub fn note_swap(&self) {
        self.snapshot_swaps.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot the counters.
    #[must_use]
    pub fn counters(&self) -> CommitCounters {
        CommitCounters {
            groups_committed: self.groups_committed.load(Ordering::Relaxed),
            ops_committed: self.ops_committed.load(Ordering::Relaxed),
            max_group: self.max_group.load(Ordering::Relaxed),
            fsyncs_saved: self.fsyncs_saved.load(Ordering::Relaxed),
            snapshot_swaps: self.snapshot_swaps.load(Ordering::Relaxed),
        }
    }
}

impl CommitCounters {
    /// Merge another snapshot into this one (`max_group` takes the max,
    /// everything else sums) — used to aggregate across tenants.
    pub fn merge(&mut self, other: &CommitCounters) {
        self.groups_committed += other.groups_committed;
        self.ops_committed += other.ops_committed;
        self.max_group = self.max_group.max(other.max_group);
        self.fsyncs_saved += other.fsyncs_saved;
        self.snapshot_swaps += other.snapshot_swaps;
    }

    /// Fsyncs per committed op (1.0 = no grouping; NaN-free: 0 when idle).
    #[must_use]
    pub fn fsyncs_per_op(&self) -> f64 {
        if self.ops_committed == 0 {
            0.0
        } else {
            self.groups_committed as f64 / self.ops_committed as f64
        }
    }

    /// Mean records per group (0 when idle).
    #[must_use]
    pub fn mean_group_size(&self) -> f64 {
        if self.groups_committed == 0 {
            0.0
        } else {
            self.ops_committed as f64 / self.groups_committed as f64
        }
    }
}

struct CommitState {
    /// The shard's journal; `None` only while a leader has it checked out
    /// for a flush (durable mode) or permanently in in-memory mode.
    journal: Option<IndexJournal>,
    /// Seq the next `stage` call will assign.
    next_seq: u64,
    /// Staged, stamped records awaiting flush, in seq order:
    /// `(seq, [seq u64 LE][request bytes])`.
    pending: VecDeque<(u64, Vec<u8>)>,
    /// True while a leader is flushing outside the lock.
    writing: bool,
    /// Highest seq covered by a completed fsync.
    durable_seq: u64,
    /// Set when a group flush failed: the shard journal is dead, every
    /// staged-or-later mutation errors out.
    poisoned: Option<String>,
}

/// A per-shard journal wrapper that batches concurrent appends into
/// single-fsync groups. See the module docs for the full protocol.
pub struct GroupCommitter {
    state: Mutex<CommitState>,
    cv: Condvar,
    /// When false, the leader flushes exactly one record per group —
    /// byte-identical journal, one fsync per op. This is the benchmark's
    /// A/B switch, not a fast path.
    group_commit: bool,
    /// In-memory servers journal nothing: staging is immediately durable.
    in_memory: bool,
    stats: Arc<CommitStats>,
}

impl GroupCommitter {
    /// Wrap a shard journal opened by the server. `last_seq` must be the
    /// journal's `next_seq - 1` (i.e. everything already on disk is
    /// trivially durable).
    #[must_use]
    pub fn new_durable(journal: IndexJournal, group_commit: bool, stats: Arc<CommitStats>) -> Self {
        let next_seq = journal.next_seq();
        GroupCommitter {
            state: Mutex::new(CommitState {
                journal: Some(journal),
                next_seq,
                pending: VecDeque::new(),
                writing: false,
                durable_seq: next_seq - 1,
                poisoned: None,
            }),
            cv: Condvar::new(),
            group_commit,
            in_memory: false,
            stats,
        }
    }

    /// A committer with no backing journal: sequence numbers still order
    /// applies, but staging is immediately durable.
    #[must_use]
    pub fn new_in_memory(stats: Arc<CommitStats>) -> Self {
        GroupCommitter {
            state: Mutex::new(CommitState {
                journal: None,
                next_seq: 1,
                pending: VecDeque::new(),
                writing: false,
                durable_seq: 0,
                poisoned: None,
            }),
            cv: Condvar::new(),
            group_commit: true,
            in_memory: true,
            stats,
        }
    }

    /// Stage one request, assigning and returning its sequence number.
    /// Durability comes later, from [`GroupCommitter::wait_durable`].
    ///
    /// # Errors
    /// [`SseError::Storage`]-wrapped I/O error if the shard journal was
    /// poisoned by an earlier failed group.
    pub fn stage(&self, request: &[u8]) -> Result<u64> {
        self.lock().stage(request)
    }

    /// Lock the stage queue. Cross-shard batches hold the [`StageGuard`]s
    /// of every affected shard (in ascending shard order) so all slices —
    /// whose batch id embeds the coordinator's seq — stage atomically.
    #[must_use]
    pub fn lock(&self) -> StageGuard<'_> {
        StageGuard {
            state: self.state.lock(),
            committer: self,
        }
    }

    /// Block until `seq` is covered by a completed fsync (or is trivially
    /// durable in in-memory mode). The calling thread may be drafted as
    /// the group leader and perform the flush itself.
    ///
    /// # Errors
    /// [`SseError::Storage`] if the group containing `seq` (or an earlier
    /// group) failed to flush — the record is *not* durable and the caller
    /// must not apply or ack it.
    pub fn wait_durable(&self, seq: u64) -> Result<()> {
        let mut state = self.state.lock();
        loop {
            if state.durable_seq >= seq {
                return Ok(());
            }
            if let Some(msg) = &state.poisoned {
                return Err(journal_dead(msg));
            }
            if !state.writing && !state.pending.is_empty() {
                // Become the leader: take the whole pending group (or just
                // the front record with grouping disabled), flush it
                // outside the lock, then report back.
                state.writing = true;
                let group: Vec<(u64, Vec<u8>)> = if self.group_commit {
                    state.pending.drain(..).collect()
                } else {
                    let front = state.pending.pop_front().expect("pending non-empty");
                    vec![front]
                };
                let mut journal = state
                    .journal
                    .take()
                    .expect("journal present when not writing");
                drop(state);

                let first_seq = group[0].0;
                let last_seq = group[group.len() - 1].0;
                let records: Vec<&[u8]> = group.iter().map(|(_, r)| r.as_slice()).collect();
                let outcome = journal.append_stamped_batch(&records, first_seq);

                state = self.state.lock();
                state.journal = Some(journal);
                state.writing = false;
                match outcome {
                    Ok(()) => {
                        state.durable_seq = last_seq;
                        self.stats.note_group(group.len() as u64);
                    }
                    Err(err) => {
                        state.poisoned = Some(err.to_string());
                    }
                }
                self.cv.notify_all();
                continue;
            }
            state = self.cv.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Highest seq assigned so far (the `last_op_seq` a checkpoint taken
    /// under full quiescence should record).
    #[must_use]
    pub fn last_seq(&self) -> u64 {
        self.state.lock().next_seq - 1
    }

    /// Truncate the journal after a checkpoint. Only call under full
    /// quiescence (no staged-but-unflushed records); seqs keep increasing.
    ///
    /// # Errors
    /// [`SseError::Storage`] if the journal is poisoned, mid-flush, has
    /// staged records, or the truncation itself fails.
    pub fn reset_journal(&self) -> Result<()> {
        let mut state = self.state.lock();
        if let Some(msg) = &state.poisoned {
            return Err(journal_dead(msg));
        }
        if state.writing || !state.pending.is_empty() {
            return Err(SseError::Storage(sse_storage::StorageError::Io(
                std::io::Error::other("journal reset while mutations are in flight"),
            )));
        }
        if let Some(journal) = state.journal.as_mut() {
            journal.reset()?;
        }
        Ok(())
    }

    /// True when this committer's journal was disabled by a failed group
    /// commit (the scrub checks this to decide whether a repair is due).
    #[must_use]
    pub fn is_poisoned(&self) -> bool {
        self.state.lock().poisoned.is_some()
    }

    /// Replace the backing journal wholesale — the scrub's repair path.
    ///
    /// The caller must hold the server fully quiesced (no mutation may be
    /// staging or waiting: every in-flight pipeline holds the server's
    /// barrier/geometry read lock, which the repair write-holds) and must
    /// have re-persisted the shard's applied state so the fresh journal's
    /// contents are redundant. Clears any poison, discards staged records
    /// of failed groups (they were never acked and are not on disk in the
    /// fresh journal), installs `journal`, and resets the seq counters to
    /// the journal's own `next_seq` — per-shard applies require dense
    /// seqs, so the failed groups' seq numbers are reclaimed.
    ///
    /// No-op (Ok) for in-memory committers: nothing to repair.
    pub fn replace_journal(&self, journal: IndexJournal) {
        if self.in_memory {
            return;
        }
        let next_seq = journal.next_seq();
        let mut state = self.state.lock();
        debug_assert!(!state.writing, "replace_journal requires quiescence");
        state.journal = Some(journal);
        state.pending.clear();
        state.poisoned = None;
        state.next_seq = next_seq;
        state.durable_seq = next_seq - 1;
        drop(state);
        self.cv.notify_all();
    }

    /// The shared pipeline counters.
    #[must_use]
    pub fn stats(&self) -> &Arc<CommitStats> {
        &self.stats
    }
}

/// Exclusive access to a committer's stage queue; see
/// [`GroupCommitter::lock`].
pub struct StageGuard<'a> {
    state: MutexGuard<'a, CommitState>,
    committer: &'a GroupCommitter,
}

impl StageGuard<'_> {
    /// The seq the next [`StageGuard::stage`] call will assign.
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.state.next_seq
    }

    /// True when this shard's journal was disabled by a failed group
    /// commit. Stable while the guard is held: poisoning requires the
    /// state lock. Cross-shard coordinators check every affected shard
    /// before staging anything, so a dead shard never strands a
    /// half-staged batch.
    #[must_use]
    pub fn poisoned(&self) -> bool {
        self.state.poisoned.is_some()
    }

    /// Stage one request, assigning and returning its sequence number.
    ///
    /// # Errors
    /// [`SseError::Storage`] if the shard journal is poisoned.
    pub fn stage(&mut self, request: &[u8]) -> Result<u64> {
        if let Some(msg) = &self.state.poisoned {
            return Err(journal_dead(msg));
        }
        let seq = self.state.next_seq;
        self.state.next_seq = seq + 1;
        if self.committer.in_memory {
            self.state.durable_seq = seq;
        } else {
            let mut record = Vec::with_capacity(8 + request.len());
            record.extend_from_slice(&seq.to_le_bytes());
            record.extend_from_slice(request);
            self.state.pending.push_back((seq, record));
        }
        Ok(seq)
    }
}

impl Drop for StageGuard<'_> {
    fn drop(&mut self) {
        // Wake sleepers so one of them can lead the newly staged group.
        if !self.state.pending.is_empty() {
            self.committer.cv.notify_all();
        }
    }
}

fn journal_dead(msg: &str) -> SseError {
    SseError::Storage(sse_storage::StorageError::Io(std::io::Error::other(
        format!("shard journal disabled by failed group commit: {msg}"),
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sse_storage::{FaultVfs, RealVfs};
    use std::path::{Path, PathBuf};
    use std::sync::Barrier;

    fn temp_journal(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sse-commit-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("shard.wal")
    }

    fn durable_committer(path: &Path, group_commit: bool) -> GroupCommitter {
        let (journal, _) = IndexJournal::open_with_vfs(RealVfs::arc(), path, true, 0).unwrap();
        GroupCommitter::new_durable(journal, group_commit, Arc::new(CommitStats::default()))
    }

    #[test]
    fn in_memory_staging_is_immediately_durable() {
        let c = GroupCommitter::new_in_memory(Arc::new(CommitStats::default()));
        let s1 = c.stage(b"a").unwrap();
        let s2 = c.stage(b"b").unwrap();
        assert_eq!((s1, s2), (1, 2));
        c.wait_durable(s2).unwrap();
        assert_eq!(c.stats().counters().groups_committed, 0);
    }

    #[test]
    fn single_writer_round_trips_through_the_journal() {
        let path = temp_journal("single");
        let c = durable_committer(&path, true);
        for i in 0..5u64 {
            let seq = c.stage(format!("op-{i}").as_bytes()).unwrap();
            assert_eq!(seq, i + 1);
            c.wait_durable(seq).unwrap();
        }
        let counters = c.stats().counters();
        assert_eq!(counters.ops_committed, 5);
        // Sequential writers can't group: every op is its own flush.
        assert_eq!(counters.groups_committed, 5);
        drop(c);

        let (_, rec) = IndexJournal::open_with_vfs(RealVfs::arc(), &path, true, 0).unwrap();
        let want: Vec<Vec<u8>> = (0..5).map(|i| format!("op-{i}").into_bytes()).collect();
        assert_eq!(rec.replay, want);
    }

    #[test]
    fn concurrent_writers_form_groups_and_all_become_durable() {
        let path = temp_journal("group");
        let c = Arc::new(durable_committer(&path, true));
        let writers = 8;
        let ops_per_writer = 20;
        let barrier = Arc::new(Barrier::new(writers));
        let handles: Vec<_> = (0..writers)
            .map(|w| {
                let c = Arc::clone(&c);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    for i in 0..ops_per_writer {
                        let seq = c.stage(format!("w{w}-{i}").as_bytes()).unwrap();
                        c.wait_durable(seq).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total = (writers * ops_per_writer) as u64;
        let counters = c.stats().counters();
        assert_eq!(counters.ops_committed, total);
        assert!(
            counters.groups_committed <= total,
            "groups must never exceed ops"
        );
        assert_eq!(
            counters.fsyncs_saved,
            total - counters.groups_committed,
            "every record beyond the first in a group saves one fsync"
        );
        drop(c);

        // Every staged record is on disk exactly once, in seq order.
        let (journal, rec) = IndexJournal::open_with_vfs(RealVfs::arc(), &path, true, 0).unwrap();
        assert_eq!(rec.replay.len() as u64, total);
        assert_eq!(journal.next_seq(), total + 1);
    }

    #[test]
    fn grouping_disabled_flushes_one_record_per_fsync() {
        let path = temp_journal("ungrouped");
        let c = Arc::new(durable_committer(&path, false));
        let writers = 4;
        let ops_per_writer = 10;
        let barrier = Arc::new(Barrier::new(writers));
        let handles: Vec<_> = (0..writers)
            .map(|w| {
                let c = Arc::clone(&c);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    for i in 0..ops_per_writer {
                        let seq = c.stage(format!("u{w}-{i}").as_bytes()).unwrap();
                        c.wait_durable(seq).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total = (writers * ops_per_writer) as u64;
        let counters = c.stats().counters();
        assert_eq!(counters.ops_committed, total);
        assert_eq!(counters.groups_committed, total, "no grouping allowed");
        assert_eq!(counters.max_group, 1);
        assert_eq!(counters.fsyncs_saved, 0);
    }

    #[test]
    fn forced_group_via_stage_guard_costs_one_fsync() {
        let path = temp_journal("forced");
        let c = durable_committer(&path, true);
        let mut guard = c.lock();
        let first = guard.next_seq();
        let s1 = guard.stage(b"batch-a").unwrap();
        let s2 = guard.stage(b"batch-b").unwrap();
        let s3 = guard.stage(b"batch-c").unwrap();
        drop(guard);
        assert_eq!((s1, s2, s3), (first, first + 1, first + 2));
        c.wait_durable(s3).unwrap();
        let counters = c.stats().counters();
        assert_eq!(counters.groups_committed, 1, "one flush for the group");
        assert_eq!(counters.ops_committed, 3);
        assert_eq!(counters.max_group, 3);
        assert_eq!(counters.fsyncs_saved, 2);
    }

    #[test]
    fn failed_flush_poisons_the_committer() {
        let path = temp_journal("poison");
        // First sync call dies (and all I/O after it).
        let vfs: Arc<dyn sse_storage::Vfs> = Arc::new(FaultVfs::crashing_at_sync(7, 1));
        let (journal, _) = IndexJournal::open_with_vfs(vfs, &path, true, 0).unwrap();
        let c = GroupCommitter::new_durable(journal, true, Arc::new(CommitStats::default()));
        let seq = c.stage(b"doomed").unwrap();
        let err = c.wait_durable(seq).unwrap_err();
        assert!(err.to_string().contains("injected fault"), "{err}");
        // Everything afterwards errors fast.
        let err2 = c.stage(b"after").unwrap_err();
        assert!(err2.to_string().contains("disabled"), "{err2}");
        let err3 = c.wait_durable(seq).unwrap_err();
        assert!(err3.to_string().contains("disabled"), "{err3}");
        assert!(c.reset_journal().is_err());
        assert_eq!(c.stats().counters().groups_committed, 0);
    }

    #[test]
    fn replace_journal_clears_poison_and_resumes_dense_seqs() {
        let path = temp_journal("replace");
        let vfs: Arc<dyn sse_storage::Vfs> = Arc::new(FaultVfs::crashing_at_sync(7, 1));
        let (journal, _) = IndexJournal::open_with_vfs(vfs, &path, true, 0).unwrap();
        let c = GroupCommitter::new_durable(journal, true, Arc::new(CommitStats::default()));
        let seq = c.stage(b"doomed").unwrap();
        assert!(c.wait_durable(seq).is_err());
        assert!(c.is_poisoned());

        // Repair: re-open a fresh journal (as if the applied state were
        // re-persisted with snapshot_seq = applied_seq) and install it.
        let _ = std::fs::remove_file(&path);
        let (fresh, _) = IndexJournal::open_with_vfs(RealVfs::arc(), &path, true, 0).unwrap();
        c.replace_journal(fresh);
        assert!(!c.is_poisoned());
        // The failed seq is reclaimed: staging resumes densely from 1.
        let seq2 = c.stage(b"after repair").unwrap();
        assert_eq!(seq2, 1);
        c.wait_durable(seq2).unwrap();
        drop(c);
        let (_, rec) = IndexJournal::open_with_vfs(RealVfs::arc(), &path, true, 0).unwrap();
        assert_eq!(rec.replay, vec![b"after repair".to_vec()]);
    }

    #[test]
    fn reset_journal_rejects_inflight_records() {
        let path = temp_journal("reset-inflight");
        let c = durable_committer(&path, true);
        let _seq = c.stage(b"staged-not-flushed").unwrap();
        let err = c.reset_journal().unwrap_err();
        assert!(err.to_string().contains("in flight"), "{err}");
    }
}
