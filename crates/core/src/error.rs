//! Error type for the SSE schemes.

use sse_net::wire::WireError;
use sse_primitives::CryptoError;
use sse_storage::StorageError;
use std::fmt;

/// Errors surfaced by the scheme clients and servers.
#[derive(Debug)]
pub enum SseError {
    /// A cryptographic primitive failed (bad ciphertext, exhausted chain...).
    Crypto(CryptoError),
    /// The server's document store failed.
    Storage(StorageError),
    /// A protocol message could not be decoded.
    Wire(WireError),
    /// The peer answered with an unexpected message kind.
    ProtocolViolation {
        /// What was expected.
        expected: &'static str,
        /// What arrived (tag byte or description).
        got: String,
    },
    /// A document id is outside the database capacity fixed at setup
    /// (Scheme 1's bit arrays share one capacity).
    DocIdOutOfRange {
        /// The offending id.
        id: u64,
        /// The capacity fixed at setup.
        capacity: u64,
    },
    /// The Scheme 2 hash chain is exhausted; the client must re-initialize
    /// the database with a fresh epoch (paper §5.6).
    ChainExhausted,
    /// The server failed to unlock a generation within the chain bound —
    /// indicates state divergence between client and server.
    ChainDesync {
        /// Steps walked before giving up.
        steps: usize,
    },
    /// The transport carrying a protocol round failed (connection lost,
    /// frame dropped or truncated, reconnect exhausted). The round's
    /// effect on the server is *unknown*: it may or may not have applied.
    Transport(std::io::Error),
}

impl fmt::Display for SseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SseError::Crypto(e) => write!(f, "crypto error: {e}"),
            SseError::Storage(e) => write!(f, "storage error: {e}"),
            SseError::Wire(e) => write!(f, "wire error: {e}"),
            SseError::ProtocolViolation { expected, got } => {
                write!(f, "protocol violation: expected {expected}, got {got}")
            }
            SseError::DocIdOutOfRange { id, capacity } => {
                write!(f, "document id {id} outside capacity {capacity}")
            }
            SseError::ChainExhausted => {
                write!(f, "hash chain exhausted; re-initialize with a new epoch")
            }
            SseError::ChainDesync { steps } => {
                write!(f, "chain walk failed after {steps} steps; state desync")
            }
            SseError::Transport(e) => {
                write!(f, "transport failed (round outcome unknown): {e}")
            }
        }
    }
}

impl std::error::Error for SseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SseError::Crypto(e) => Some(e),
            SseError::Storage(e) => Some(e),
            SseError::Wire(e) => Some(e),
            SseError::Transport(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CryptoError> for SseError {
    fn from(e: CryptoError) -> Self {
        match e {
            CryptoError::ChainExhausted => SseError::ChainExhausted,
            other => SseError::Crypto(other),
        }
    }
}

impl From<StorageError> for SseError {
    fn from(e: StorageError) -> Self {
        SseError::Storage(e)
    }
}

impl From<WireError> for SseError {
    fn from(e: WireError) -> Self {
        SseError::Wire(e)
    }
}

impl From<std::io::Error> for SseError {
    fn from(e: std::io::Error) -> Self {
        SseError::Transport(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, SseError>;
