//! Histories, traces and views — Definitions 1–3 made concrete.

use crate::scheme1::{InMemoryScheme1Client, Scheme1Config};
use crate::types::{DocId, Document, Keyword, MasterKey};
use std::collections::BTreeSet;

/// Definition 1: a history `H_q = (D, w_1, ..., w_q)` — the client's input,
/// which the scheme must hide.
#[derive(Clone, Debug)]
pub struct History {
    /// The document collection `D`.
    pub docs: Vec<Document>,
    /// The `q` consecutive search queries.
    pub queries: Vec<Keyword>,
}

impl History {
    /// Construct a history.
    #[must_use]
    pub fn new(docs: Vec<Document>, queries: Vec<Keyword>) -> Self {
        History { docs, queries }
    }

    /// Number of search queries `q`.
    #[must_use]
    pub fn q(&self) -> usize {
        self.queries.len()
    }
}

/// Definition 3: the trace — everything the server is *allowed* to learn.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    /// Document identifiers `id(M_1), ..., id(M_n)`.
    pub ids: Vec<DocId>,
    /// Document lengths `|M_1|, ..., |M_n|`.
    pub doc_lengths: Vec<usize>,
    /// `|W_D|`: total number of unique keywords over all documents.
    pub unique_keywords: usize,
    /// `D(w_i)`: for each query, the ids of the matching documents.
    pub results: Vec<Vec<DocId>>,
    /// The search pattern `Π_q`: `pattern[i][j] == true` iff `w_i == w_j`.
    pub search_pattern: Vec<Vec<bool>>,
}

impl Trace {
    /// Compute the trace of a history (what Definition 3 prescribes).
    #[must_use]
    pub fn from_history(h: &History) -> Self {
        let ids: Vec<DocId> = h.docs.iter().map(|d| d.id).collect();
        let doc_lengths: Vec<usize> = h.docs.iter().map(|d| d.data.len()).collect();
        let unique: BTreeSet<&Keyword> = h.docs.iter().flat_map(|d| d.keywords.iter()).collect();
        let results: Vec<Vec<DocId>> = h
            .queries
            .iter()
            .map(|w| {
                h.docs
                    .iter()
                    .filter(|d| d.has_keyword(w))
                    .map(|d| d.id)
                    .collect()
            })
            .collect();
        let q = h.queries.len();
        let mut search_pattern = vec![vec![false; q]; q];
        for (i, row) in search_pattern.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = h.queries[i] == h.queries[j];
            }
        }
        Trace {
            ids,
            doc_lengths,
            unique_keywords: unique.len(),
            results,
            search_pattern,
        }
    }
}

/// Definition 2: the server's view of a Scheme 1 run.
#[derive(Clone, Debug)]
pub struct View {
    /// Document identifiers (public).
    pub ids: Vec<DocId>,
    /// Encrypted data items `E_km(M_i)` in id order.
    pub encrypted_docs: Vec<Vec<u8>>,
    /// The set `S` of searchable representations
    /// `(f_kw(w), I(w) ⊕ G(r), F(r))`, in tag order.
    pub representations: Vec<([u8; 32], Vec<u8>, Vec<u8>)>,
    /// The trapdoors `T_{w_1}, ..., T_{w_t}` sent so far.
    pub trapdoors: Vec<[u8; 32]>,
}

impl View {
    /// Flatten to bytes for the statistical distinguisher. Layout is fixed
    /// so real and simulated views serialize identically when they carry
    /// the same structure.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for id in &self.ids {
            out.extend_from_slice(&id.to_le_bytes());
        }
        for blob in &self.encrypted_docs {
            out.extend_from_slice(blob);
        }
        for (tag, masked, f_r) in &self.representations {
            out.extend_from_slice(tag);
            out.extend_from_slice(masked);
            out.extend_from_slice(f_r);
        }
        for t in &self.trapdoors {
            out.extend_from_slice(t);
        }
        out
    }

    /// Only the index/trapdoor portion (excludes encrypted payloads) — the
    /// part Theorem 1's simulator must match structurally.
    #[must_use]
    pub fn index_bytes_only(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for (tag, masked, f_r) in &self.representations {
            out.extend_from_slice(tag);
            out.extend_from_slice(masked);
            out.extend_from_slice(f_r);
        }
        for t in &self.trapdoors {
            out.extend_from_slice(t);
        }
        out
    }
}

/// Execute a history against a real Scheme 1 deployment and capture the
/// server's view (Definition 2).
///
/// `break_mask` disables the PRG mask (stores `I(w)` in the clear) — the
/// deliberately broken variant used to validate the distinguishing harness;
/// see E8.
///
/// # Panics
/// Panics if the protocol run fails (test harness context).
#[must_use]
pub fn extract_scheme1_view(
    history: &History,
    key: &MasterKey,
    config: Scheme1Config,
    rng_seed: u64,
    break_mask: bool,
) -> View {
    let mut client = InMemoryScheme1Client::new_in_memory(key.clone(), config.clone());
    // Reseed deterministically for reproducible experiments.
    let server = std::mem::replace(
        client.server_mut(),
        crate::scheme1::Scheme1Server::new_in_memory(config.capacity_docs),
    );
    let link = sse_net::link::MeteredLink::new(server, sse_net::meter::Meter::new());
    let mut client =
        crate::scheme1::Scheme1Client::new_seeded(link, key.clone(), config.clone(), rng_seed);

    client.store(&history.docs).expect("storage succeeds");
    let mut trapdoors = Vec::with_capacity(history.queries.len());
    for w in &history.queries {
        client.search(w).expect("search succeeds");
        trapdoors.push(client.tag(w));
    }

    // Capture the server state.
    let server = client.transport_mut().service_mut();
    let blobs = server.export_blobs();
    let mut representations = server.export_representations();

    if break_mask {
        // Replace each masked array with the *unmasked* posting bit array —
        // what a broken PRG (all-zero keystream) would store.
        use sse_index::bitset::DocBitSet;
        let capacity = config.capacity_docs as usize;
        let mut by_keyword: std::collections::BTreeMap<[u8; 32], DocBitSet> =
            std::collections::BTreeMap::new();
        let prf = sse_primitives::prf::Prf::new(key.derive_w("scheme1/tag"));
        for d in &history.docs {
            for w in &d.keywords {
                by_keyword
                    .entry(prf.eval(w.as_bytes()).0)
                    .or_insert_with(|| DocBitSet::new(capacity))
                    .set(d.id);
            }
        }
        for (tag, masked, _) in &mut representations {
            if let Some(bits) = by_keyword.get(tag) {
                *masked = bits.as_bytes().to_vec();
            }
        }
    }

    View {
        ids: blobs.iter().map(|(id, _)| *id).collect(),
        encrypted_docs: blobs.into_iter().map(|(_, b)| b).collect(),
        representations,
        trapdoors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn history() -> History {
        History::new(
            vec![
                Document::new(0, b"aaaa".to_vec(), ["x", "y"]),
                Document::new(1, b"bbbbbbbb".to_vec(), ["y", "z"]),
                Document::new(2, b"cc".to_vec(), ["z"]),
            ],
            vec![Keyword::new("y"), Keyword::new("z"), Keyword::new("y")],
        )
    }

    #[test]
    fn trace_captures_allowed_leakage() {
        let t = Trace::from_history(&history());
        assert_eq!(t.ids, vec![0, 1, 2]);
        assert_eq!(t.doc_lengths, vec![4, 8, 2]);
        assert_eq!(t.unique_keywords, 3);
        assert_eq!(t.results, vec![vec![0, 1], vec![1, 2], vec![0, 1]]);
        // Π: queries 0 and 2 are the same keyword.
        assert!(t.search_pattern[0][2]);
        assert!(t.search_pattern[2][0]);
        assert!(!t.search_pattern[0][1]);
        assert!(t.search_pattern[1][1]);
    }

    #[test]
    fn trace_is_deterministic() {
        let h = history();
        assert_eq!(Trace::from_history(&h), Trace::from_history(&h));
    }

    #[test]
    fn real_view_has_expected_shape() {
        let h = history();
        let key = MasterKey::from_seed(1);
        let v = extract_scheme1_view(&h, &key, Scheme1Config::fast_profile(16), 7, false);
        assert_eq!(v.ids, vec![0, 1, 2]);
        assert_eq!(v.encrypted_docs.len(), 3);
        assert_eq!(v.representations.len(), 3, "u = 3 unique keywords");
        assert_eq!(v.trapdoors.len(), 3);
        // Repeated query -> repeated trapdoor (the search pattern leaks).
        assert_eq!(v.trapdoors[0], v.trapdoors[2]);
        assert_ne!(v.trapdoors[0], v.trapdoors[1]);
        // Ciphertext expansion: |E(M)| = |M| + IV + tag.
        assert_eq!(v.encrypted_docs[0].len(), 4 + 12 + 32);
    }

    #[test]
    fn broken_view_exposes_postings() {
        let h = history();
        let key = MasterKey::from_seed(1);
        let v = extract_scheme1_view(&h, &key, Scheme1Config::fast_profile(16), 7, true);
        // The keyword "y" occurs in docs {0, 1}: some representation holds
        // the raw bit pattern 0b00000011.
        assert!(
            v.representations.iter().any(|(_, m, _)| m[0] == 0b11),
            "broken mask must expose raw bits"
        );
    }

    #[test]
    fn view_serialization_is_stable() {
        let h = history();
        let key = MasterKey::from_seed(2);
        let v1 = extract_scheme1_view(&h, &key, Scheme1Config::fast_profile(16), 3, false);
        let v2 = extract_scheme1_view(&h, &key, Scheme1Config::fast_profile(16), 3, false);
        assert_eq!(v1.to_bytes(), v2.to_bytes(), "same seed, same view");
        assert!(!v1.index_bytes_only().is_empty());
    }
}
