//! The simulator `S` from the proof of Theorem 1 (§5.3).
//!
//! Given only the trace, the simulator fabricates a view:
//!
//! 1. random `R_i` with `|R_i| = |E_km(M_i)|` in place of each encrypted
//!    document (the ciphertext length is public: `|M_i| + IV + tag`);
//! 2. a table of `|W_D|` entries `(A_i, B_i, C_i)` with random `A_i`
//!    (tag-width), `B_i` (index-width) and `C_i` (ElGamal-ciphertext-width);
//! 3. trapdoors consistent with the search pattern: `T_t = T_j` whenever
//!    `Π[j][t]`, otherwise a previously unused `A_j`.
//!
//! Theorem 1 says this fabrication is computationally indistinguishable
//! from the real thing; experiment E8 checks that claim statistically.

use super::trace::{Trace, View};
use sse_primitives::bignum::BigUint;
use sse_primitives::drbg::HmacDrbg;
use sse_primitives::etm;
use sse_primitives::modp::ModpGroup;

/// Public structural parameters the simulator shares with the real scheme
/// (all derivable from the deployment configuration, none secret).
#[derive(Clone)]
pub struct SimulatorParams {
    /// Width of a masked index array in bytes (`ceil(capacity/8)`).
    pub index_bytes: usize,
    /// The ElGamal group — public, so the simulator can fabricate `C_i` as
    /// genuine random ciphertexts `(g^a, g^b)` rather than uniform bytes
    /// (uniform bytes would be distinguishable: real components are `< p`).
    pub group: ModpGroup,
}

impl SimulatorParams {
    /// Derive from a Scheme 1 configuration.
    #[must_use]
    pub fn from_config(config: &crate::scheme1::Scheme1Config) -> Self {
        SimulatorParams {
            index_bytes: config.index_bytes(),
            group: config.group.clone(),
        }
    }

    /// Width of a serialized ElGamal ciphertext.
    #[must_use]
    pub fn f_r_bytes(&self) -> usize {
        self.group.element_len * 2
    }

    /// A random ciphertext-shaped value: two uniform group elements.
    fn random_ciphertext(&self, drbg: &mut HmacDrbg) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.f_r_bytes());
        for _ in 0..2 {
            let e = BigUint::random_range(drbg, &BigUint::one(), &self.group.p);
            out.extend_from_slice(
                &e.to_bytes_be_padded(self.group.element_len)
                    .expect("element fits"),
            );
        }
        out
    }
}

/// Run the simulator: build a view from the trace alone.
#[must_use]
pub fn simulate_view(trace: &Trace, params: &SimulatorParams, rng_seed: u64) -> View {
    let mut drbg = HmacDrbg::from_u64(rng_seed);

    // Step 1: random stand-ins for the encrypted documents.
    let encrypted_docs: Vec<Vec<u8>> = trace
        .doc_lengths
        .iter()
        .map(|&len| {
            let mut blob = vec![0u8; etm::EtmKey::ciphertext_len(len)];
            drbg.fill(&mut blob);
            blob
        })
        .collect();

    // Step 2: the random index table (A_i, B_i, C_i).
    let mut representations: Vec<([u8; 32], Vec<u8>, Vec<u8>)> =
        Vec::with_capacity(trace.unique_keywords);
    for _ in 0..trace.unique_keywords {
        let a = drbg.gen_key();
        let mut b = vec![0u8; params.index_bytes];
        drbg.fill(&mut b);
        let c = params.random_ciphertext(&mut drbg);
        representations.push((a, b, c));
    }
    // The real server's tree iterates in tag order; match that order so the
    // distinguisher cannot win on sortedness alone.
    representations.sort_by_key(|x| x.0);

    // Step 3: Π-consistent trapdoors drawn from *random* unused A_j — the
    // real queried keywords sit at uniformly random positions of the
    // tag-sorted table, and the simulator must match that distribution.
    let q = trace.search_pattern.len();
    let mut trapdoors: Vec<[u8; 32]> = Vec::with_capacity(q);
    let mut unused: Vec<usize> = (0..representations.len()).collect();
    for t in 0..q {
        if let Some(j) = (0..t).find(|&j| trace.search_pattern[j][t]) {
            trapdoors.push(trapdoors[j]);
        } else if unused.is_empty() {
            // More distinct queries than keywords: synthesize a fresh tag.
            trapdoors.push(drbg.gen_key());
        } else {
            let pick = drbg.gen_range(unused.len() as u64) as usize;
            let idx = unused.swap_remove(pick);
            trapdoors.push(representations[idx].0);
        }
    }

    View {
        ids: trace.ids.clone(),
        encrypted_docs,
        representations,
        trapdoors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::security::trace::History;
    use crate::types::{Document, Keyword};

    fn trace() -> Trace {
        Trace::from_history(&History::new(
            vec![
                Document::new(0, b"aaaa".to_vec(), ["x", "y"]),
                Document::new(1, b"bbbbbbbb".to_vec(), ["y", "z"]),
            ],
            vec![Keyword::new("y"), Keyword::new("z"), Keyword::new("y")],
        ))
    }

    fn params() -> SimulatorParams {
        SimulatorParams {
            index_bytes: 2,
            group: ModpGroup::modp_256(),
        }
    }

    #[test]
    fn structure_matches_trace() {
        let t = trace();
        let v = simulate_view(&t, &params(), 1);
        assert_eq!(v.ids, t.ids);
        assert_eq!(v.encrypted_docs.len(), 2);
        // Simulated ciphertext lengths match the public expansion rule.
        assert_eq!(v.encrypted_docs[0].len(), 4 + 12 + 32);
        assert_eq!(v.encrypted_docs[1].len(), 8 + 12 + 32);
        assert_eq!(v.representations.len(), 3);
        assert_eq!(v.representations[0].1.len(), 2);
        assert_eq!(v.representations[0].2.len(), 64);
        assert_eq!(v.trapdoors.len(), 3);
    }

    #[test]
    fn trapdoors_respect_search_pattern() {
        let v = simulate_view(&trace(), &params(), 2);
        assert_eq!(v.trapdoors[0], v.trapdoors[2], "repeated query");
        assert_ne!(v.trapdoors[0], v.trapdoors[1], "distinct queries");
    }

    #[test]
    fn trapdoors_come_from_the_table() {
        let v = simulate_view(&trace(), &params(), 3);
        let table_tags: Vec<[u8; 32]> = v.representations.iter().map(|(a, _, _)| *a).collect();
        for t in &v.trapdoors {
            assert!(table_tags.contains(t), "trapdoor must point into the table");
        }
    }

    #[test]
    fn representations_are_tag_sorted() {
        let v = simulate_view(&trace(), &params(), 4);
        for w in v.representations.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }

    #[test]
    fn different_seeds_give_different_views() {
        let a = simulate_view(&trace(), &params(), 5);
        let b = simulate_view(&trace(), &params(), 6);
        assert_ne!(a.to_bytes(), b.to_bytes());
    }

    #[test]
    fn more_queries_than_keywords_is_handled() {
        // q > |W_D|: the simulator runs out of table tags and synthesizes.
        let t = Trace::from_history(&History::new(
            vec![Document::new(0, b"d".to_vec(), ["only"])],
            vec![Keyword::new("a"), Keyword::new("b"), Keyword::new("c")],
        ));
        let v = simulate_view(&t, &params(), 7);
        assert_eq!(v.trapdoors.len(), 3);
        // All distinct queries -> all distinct trapdoors.
        assert_ne!(v.trapdoors[0], v.trapdoors[1]);
        assert_ne!(v.trapdoors[1], v.trapdoors[2]);
    }
}
