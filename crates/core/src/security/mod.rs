//! Executable versions of the paper's security machinery (§4.1, §5.3).
//!
//! * [`trace`] — Definitions 1–3: histories, the information a scheme is
//!   *allowed* to leak (document ids/lengths, keyword count, result sets,
//!   the search-pattern matrix `Π_q`), and real-view extraction from an
//!   actual Scheme 1 run.
//! * [`simulator`] — the simulator `S` from the proof of Theorem 1: builds
//!   a view from the trace *alone* (random blobs, random index table,
//!   `Π`-consistent trapdoors).
//! * [`game`] — an empirical distinguishing experiment: statistical tests
//!   applied to populations of real and simulated views estimate the
//!   adversary's advantage. Theorem 1 predicts ≈ 0; the harness validates
//!   itself on a deliberately broken scheme (mask disabled) where the
//!   advantage must be large.
//!
//! This does not *prove* anything — proofs are in the paper — but it turns
//! the security claim into a regression test: any code change that
//! accidentally leaks structure (a reused nonce, an unmasked array) shows
//! up as a nonzero advantage in E8.

pub mod game;
pub mod simulator;
pub mod trace;

pub use game::{estimate_advantage, DistinguisherReport, Statistic};
pub use simulator::{simulate_view, SimulatorParams};
pub use trace::{extract_scheme1_view, History, Trace, View};
