//! The empirical distinguishing game.
//!
//! An adversary in Definition 4 gets a view and must compute *something*
//! about the history that the simulator, given only the trace, cannot.
//! This module approximates that with classical statistical distinguishers:
//! each [`Statistic`] maps a serialized view to a number; the measured
//! *advantage* is the total-variation distance between the statistic's
//! empirical distributions over real and simulated view populations.
//!
//! If the scheme is sound, every statistic's advantage is ≈ 0 (sampling
//! noise). The harness is validated on the broken-mask variant, where the
//! bit-density statistic separates the populations almost perfectly —
//! posting bit-arrays are overwhelmingly zero, masked ones are ~50% ones.

/// A scalar statistic over a serialized view.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Statistic {
    /// Mean byte value (uniform ≈ 127.5).
    ByteMean,
    /// Fraction of one bits (uniform ≈ 0.5).
    BitDensity,
    /// Chi-square distance of the byte histogram from uniform.
    ChiSquare,
    /// Longest run of identical bytes (structure detector).
    MaxByteRun,
    /// Number of repeated 16-byte blocks (ECB-style structure detector).
    RepeatedBlocks,
}

impl Statistic {
    /// All statistics, for sweeps.
    #[must_use]
    pub fn all() -> &'static [Statistic] {
        &[
            Statistic::ByteMean,
            Statistic::BitDensity,
            Statistic::ChiSquare,
            Statistic::MaxByteRun,
            Statistic::RepeatedBlocks,
        ]
    }

    /// Human-readable name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Statistic::ByteMean => "byte-mean",
            Statistic::BitDensity => "bit-density",
            Statistic::ChiSquare => "chi-square",
            Statistic::MaxByteRun => "max-byte-run",
            Statistic::RepeatedBlocks => "repeated-blocks",
        }
    }

    /// Evaluate over a byte string.
    #[must_use]
    pub fn eval(&self, data: &[u8]) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        match self {
            Statistic::ByteMean => {
                data.iter().map(|&b| f64::from(b)).sum::<f64>() / data.len() as f64
            }
            Statistic::BitDensity => {
                let ones: u64 = data.iter().map(|b| u64::from(b.count_ones())).sum();
                ones as f64 / (data.len() as f64 * 8.0)
            }
            Statistic::ChiSquare => {
                let mut counts = [0u64; 256];
                for &b in data {
                    counts[b as usize] += 1;
                }
                let expected = data.len() as f64 / 256.0;
                counts
                    .iter()
                    .map(|&c| {
                        let d = c as f64 - expected;
                        d * d / expected
                    })
                    .sum::<f64>()
            }
            Statistic::MaxByteRun => {
                let mut max_run = 1u64;
                let mut run = 1u64;
                for w in data.windows(2) {
                    if w[0] == w[1] {
                        run += 1;
                        max_run = max_run.max(run);
                    } else {
                        run = 1;
                    }
                }
                max_run as f64
            }
            Statistic::RepeatedBlocks => {
                let mut seen = std::collections::HashSet::new();
                let mut repeats = 0u64;
                for block in data.chunks_exact(16) {
                    if !seen.insert(block) {
                        repeats += 1;
                    }
                }
                repeats as f64
            }
        }
    }
}

/// Result of one statistic's distinguishing attempt.
#[derive(Clone, Debug)]
pub struct DistinguisherReport {
    /// Which statistic was used.
    pub statistic: Statistic,
    /// Estimated adversary advantage in `[0, 1]` (total-variation distance
    /// of the binned statistic distributions).
    pub advantage: f64,
    /// Mean statistic value over the first population.
    pub mean_a: f64,
    /// Mean statistic value over the second population.
    pub mean_b: f64,
}

/// Estimate a statistic's distinguishing advantage between two view
/// populations (as serialized bytes), via total-variation distance of
/// binned empirical distributions.
///
/// # Panics
/// Panics if either population is empty.
#[must_use]
pub fn estimate_advantage(
    statistic: Statistic,
    population_a: &[Vec<u8>],
    population_b: &[Vec<u8>],
) -> DistinguisherReport {
    assert!(
        !population_a.is_empty() && !population_b.is_empty(),
        "populations must be non-empty"
    );
    let values_a: Vec<f64> = population_a.iter().map(|v| statistic.eval(v)).collect();
    let values_b: Vec<f64> = population_b.iter().map(|v| statistic.eval(v)).collect();

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let mean_a = mean(&values_a);
    let mean_b = mean(&values_b);

    // Common binning across both populations.
    let lo = values_a
        .iter()
        .chain(values_b.iter())
        .copied()
        .fold(f64::INFINITY, f64::min);
    let hi = values_a
        .iter()
        .chain(values_b.iter())
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    let advantage = if (hi - lo).abs() < f64::EPSILON {
        0.0 // all values identical: nothing to distinguish
    } else {
        // Bin count ~ sqrt(samples): keeps TV estimates from saturating on
        // small populations.
        let bins = ((values_a.len() + values_b.len()) as f64).sqrt().ceil() as usize;
        let bins = bins.clamp(2, 64);
        let mut hist_a = vec![0f64; bins];
        let mut hist_b = vec![0f64; bins];
        let width = (hi - lo) / bins as f64;
        for &v in &values_a {
            let idx = (((v - lo) / width) as usize).min(bins - 1);
            hist_a[idx] += 1.0 / values_a.len() as f64;
        }
        for &v in &values_b {
            let idx = (((v - lo) / width) as usize).min(bins - 1);
            hist_b[idx] += 1.0 / values_b.len() as f64;
        }
        0.5 * hist_a
            .iter()
            .zip(hist_b.iter())
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
    };

    DistinguisherReport {
        statistic,
        advantage,
        mean_a,
        mean_b,
    }
}

/// Run every statistic and return the strongest distinguisher.
///
/// # Panics
/// Panics if either population is empty.
#[must_use]
pub fn best_distinguisher(
    population_a: &[Vec<u8>],
    population_b: &[Vec<u8>],
) -> DistinguisherReport {
    Statistic::all()
        .iter()
        .map(|&s| estimate_advantage(s, population_a, population_b))
        .max_by(|x, y| x.advantage.total_cmp(&y.advantage))
        .expect("at least one statistic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sse_primitives::drbg::HmacDrbg;

    fn random_population(n: usize, len: usize, seed: u64) -> Vec<Vec<u8>> {
        let mut drbg = HmacDrbg::from_u64(seed);
        (0..n)
            .map(|_| {
                let mut v = vec![0u8; len];
                drbg.fill(&mut v);
                v
            })
            .collect()
    }

    #[test]
    fn statistics_have_expected_values_on_known_inputs() {
        assert_eq!(Statistic::ByteMean.eval(&[0, 255]), 127.5);
        assert_eq!(Statistic::BitDensity.eval(&[0xFF, 0x00]), 0.5);
        assert_eq!(Statistic::BitDensity.eval(&[0x00; 8]), 0.0);
        assert_eq!(Statistic::MaxByteRun.eval(&[1, 1, 1, 2, 2]), 3.0);
        assert_eq!(Statistic::RepeatedBlocks.eval(&[7u8; 48]), 2.0);
        assert_eq!(Statistic::ByteMean.eval(&[]), 0.0);
    }

    #[test]
    fn identical_distributions_have_small_advantage() {
        let a = random_population(200, 512, 1);
        let b = random_population(200, 512, 2);
        for &s in Statistic::all() {
            let r = estimate_advantage(s, &a, &b);
            assert!(
                r.advantage < 0.35,
                "{}: advantage {} too high for identical distributions",
                s.name(),
                r.advantage
            );
        }
    }

    #[test]
    fn disjoint_distributions_have_large_advantage() {
        let random = random_population(100, 512, 3);
        let zeros: Vec<Vec<u8>> = (0..100).map(|_| vec![0u8; 512]).collect();
        let r = estimate_advantage(Statistic::BitDensity, &random, &zeros);
        assert!(
            r.advantage > 0.9,
            "bit density must separate zeros from random: {}",
            r.advantage
        );
        let best = best_distinguisher(&random, &zeros);
        assert!(best.advantage > 0.9);
    }

    #[test]
    fn constant_statistic_yields_zero_advantage() {
        let a = vec![vec![5u8; 16]; 50];
        let b = vec![vec![5u8; 16]; 50];
        let r = estimate_advantage(Statistic::ByteMean, &a, &b);
        assert_eq!(r.advantage, 0.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_population_panics() {
        let _ = estimate_advantage(Statistic::ByteMean, &[], &[vec![1]]);
    }
}
