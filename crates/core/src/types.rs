//! Shared domain types: documents, keywords, keys.
//!
//! The paper's data model (§3): each document `D_i = (M_i, W_i)` pairs a
//! data item `M_i` with a metadata item `W_i` — a set of keywords. The
//! client assigns each document an exclusive identifier `i`.

use sse_primitives::drbg::HmacDrbg;
use sse_primitives::kdf::derive_key32;
use sse_primitives::Key256;
use std::collections::BTreeSet;

/// Document identifier — the paper's `i`, assigned by the client.
pub type DocId = u64;

/// A search keyword.
///
/// Keywords are compared case-sensitively; normalisation (lower-casing,
/// stemming) is an application concern — see the PHR crate's workload
/// generator.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Keyword(String);

impl Keyword {
    /// Wrap a string as a keyword.
    #[must_use]
    pub fn new(s: impl Into<String>) -> Self {
        Keyword(s.into())
    }

    /// Byte view — the PRF input.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        self.0.as_bytes()
    }

    /// String view.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl From<&str> for Keyword {
    fn from(s: &str) -> Self {
        Keyword::new(s)
    }
}

impl From<String> for Keyword {
    fn from(s: String) -> Self {
        Keyword(s)
    }
}

impl From<&String> for Keyword {
    fn from(s: &String) -> Self {
        Keyword(s.clone())
    }
}

impl std::fmt::Display for Keyword {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A document `D_i = (M_i, W_i)` with its client-assigned identifier.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Document {
    /// The identifier `i`.
    pub id: DocId,
    /// The data item `M_i` (arbitrary bytes; encrypted with `E_km` before
    /// it ever reaches the server).
    pub data: Vec<u8>,
    /// The metadata item `W_i` — the set of keywords under which this
    /// document is retrievable.
    pub keywords: BTreeSet<Keyword>,
}

impl Document {
    /// Construct a document from its parts.
    pub fn new<K, I>(id: DocId, data: Vec<u8>, keywords: I) -> Self
    where
        K: Into<Keyword>,
        I: IntoIterator<Item = K>,
    {
        Document {
            id,
            data,
            keywords: keywords.into_iter().map(Into::into).collect(),
        }
    }

    /// True iff the document carries `keyword`.
    #[must_use]
    pub fn has_keyword(&self, keyword: &Keyword) -> bool {
        self.keywords.contains(keyword)
    }
}

/// The master key `K = (k_m, k_w)` of `Keygen(s)` with `s = 256`.
///
/// `k_m` encrypts data items; `k_w` drives everything keyword-related
/// (PRF tags, PRG seeds, the ElGamal trapdoor, chain seeds). Sub-keys are
/// derived by domain separation so the two halves never cross.
#[derive(Clone)]
pub struct MasterKey {
    /// Data-encryption key `k_m`.
    pub k_m: Key256,
    /// Keyword/metadata key `k_w`.
    pub k_w: Key256,
}

impl MasterKey {
    /// `Keygen(s)`: sample a fresh master key from OS entropy.
    #[must_use]
    pub fn generate() -> Self {
        MasterKey {
            k_m: sse_primitives::random_key(),
            k_w: sse_primitives::random_key(),
        }
    }

    /// Deterministic key for tests and reproducible experiments.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        let mut drbg = HmacDrbg::from_u64(seed);
        MasterKey {
            k_m: drbg.gen_key(),
            k_w: drbg.gen_key(),
        }
    }

    /// Derive a labelled 32-byte subkey of `k_w`.
    #[must_use]
    pub fn derive_w(&self, label: &str) -> Key256 {
        derive_key32(&self.k_w, label)
    }

    /// Derive a labelled 32-byte subkey of `k_m`.
    #[must_use]
    pub fn derive_m(&self, label: &str) -> Key256 {
        derive_key32(&self.k_m, label)
    }
}

/// Result of a search: the matching documents, decrypted.
pub type SearchHits = Vec<(DocId, Vec<u8>)>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_construction() {
        let d = Document::new(3, b"payload".to_vec(), ["alpha", "beta"]);
        assert_eq!(d.id, 3);
        assert!(d.has_keyword(&Keyword::new("alpha")));
        assert!(!d.has_keyword(&Keyword::new("gamma")));
        assert_eq!(d.keywords.len(), 2);
    }

    #[test]
    fn duplicate_keywords_collapse() {
        let d = Document::new(1, vec![], ["x", "x", "y"]);
        assert_eq!(d.keywords.len(), 2);
    }

    #[test]
    fn master_key_from_seed_is_deterministic() {
        let a = MasterKey::from_seed(5);
        let b = MasterKey::from_seed(5);
        let c = MasterKey::from_seed(6);
        assert_eq!(a.k_m, b.k_m);
        assert_eq!(a.k_w, b.k_w);
        assert_ne!(a.k_m, c.k_m);
        // The two halves are independent.
        assert_ne!(a.k_m, a.k_w);
    }

    #[test]
    fn generated_keys_differ() {
        let a = MasterKey::generate();
        let b = MasterKey::generate();
        assert_ne!(a.k_m, b.k_m);
    }

    #[test]
    fn derived_subkeys_are_domain_separated() {
        let k = MasterKey::from_seed(1);
        assert_ne!(k.derive_w("tag"), k.derive_w("chain"));
        assert_ne!(k.derive_w("tag"), k.derive_m("tag"));
        assert_eq!(k.derive_w("tag"), k.derive_w("tag"));
    }

    #[test]
    fn keyword_ordering_and_display() {
        let a = Keyword::new("apple");
        let b = Keyword::new("banana");
        assert!(a < b);
        assert_eq!(a.to_string(), "apple");
        assert_eq!(Keyword::from("x").as_str(), "x");
    }
}
