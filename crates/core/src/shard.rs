//! Index sharding: tag-prefix shard routing, cross-shard batch journal
//! records, and the per-directory shard manifest.
//!
//! Both scheme servers partition their keyword index into N independently
//! locked shards so searches against distinct shards proceed in parallel
//! (and, in durable mode, so a search never queues behind another shard's
//! journal fsync). The shard of a keyword is a **public function of its
//! tag** `f_kw(w)`: the server only ever sees tags the client has already
//! revealed (in updates and trapdoors), so routing by tag prefix adds
//! nothing to the leakage profile — see DESIGN.md §4d.
//!
//! ## Cross-shard batches
//!
//! A batched mutation (`UPDATE_MANY`) that touches several shards must be
//! all-or-nothing across a crash even though each shard journals
//! independently. The journal records for such a batch are **slices**: each
//! affected shard journals `[SLICE_MAGIC][batch id][shard set][its own
//! sub-mutation]`, appended in ascending shard order with every affected
//! shard's lock held. On recovery a replayed slice applies only if *every*
//! shard in its set journaled its slice (found in either the replay or the
//! already-snapshotted portion of that shard's journal) — a crash mid-batch
//! therefore rolls the whole batch back on every shard.
//!
//! `SLICE_MAGIC` (0x7E) is outside both schemes' request-tag ranges, so
//! plain journaled requests can never be misread as slices.

use crate::error::Result;
use crate::journal::JournalRecovery;
use sse_storage::crc32::crc32;
use sse_storage::{StorageError, Vfs};
use std::collections::{HashMap, HashSet};
use std::io;
use std::path::Path;

/// First byte of a batch-slice journal record. Chosen outside every
/// scheme-request tag range (Scheme 1 uses 0x01–0x09, Scheme 2 uses
/// 0x01 and 0x10–0x15).
pub const SLICE_MAGIC: u8 = 0x7E;

/// Route a 32-byte keyword tag to one of `shards` shards by its prefix.
///
/// The tag is PRF output, so any fixed prefix is uniformly distributed;
/// two bytes give even routing up to 65536 shards.
#[must_use]
pub fn shard_of(tag: &[u8; 32], shards: usize) -> usize {
    debug_assert!(shards >= 1);
    usize::from(u16::from_be_bytes([tag[0], tag[1]])) % shards.max(1)
}

/// Identity of one cross-shard batch: the coordinator shard (lowest
/// affected shard index) plus the journal sequence number the coordinator
/// assigned to its own slice. Unique because each shard's sequence numbers
/// are monotonic and never reused.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BatchId {
    /// Lowest affected shard index — the batch's coordinator.
    pub coordinator: u32,
    /// The coordinator's journal sequence number for its slice.
    pub seq: u64,
}

/// A decoded batch-slice journal record.
#[derive(Debug, PartialEq, Eq)]
pub struct SliceRecord<'a> {
    /// Which batch this slice belongs to.
    pub batch: BatchId,
    /// Every shard the batch touches (ascending, includes the coordinator).
    pub shards: Vec<u32>,
    /// The shard-local mutation request carried by this slice.
    pub inner: &'a [u8],
}

/// Encode a batch slice: `[SLICE_MAGIC][coordinator u32][seq u64]
/// [n_shards u32][shard u32 ...][inner bytes]`, all little-endian.
#[must_use]
pub fn encode_slice(batch: BatchId, shard_set: &[u32], inner: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(17 + 4 * shard_set.len() + inner.len());
    out.push(SLICE_MAGIC);
    out.extend_from_slice(&batch.coordinator.to_le_bytes());
    out.extend_from_slice(&batch.seq.to_le_bytes());
    out.extend_from_slice(&(shard_set.len() as u32).to_le_bytes());
    for s in shard_set {
        out.extend_from_slice(&s.to_le_bytes());
    }
    out.extend_from_slice(inner);
    out
}

/// Decode a journal record as a batch slice. Returns `Ok(None)` when the
/// record is a plain (non-slice) request.
///
/// # Errors
/// [`StorageError::Corrupt`] when the record starts with [`SLICE_MAGIC`]
/// but its header is malformed.
pub fn decode_slice(record: &[u8]) -> Result<Option<SliceRecord<'_>>> {
    if record.first() != Some(&SLICE_MAGIC) {
        return Ok(None);
    }
    let corrupt = |detail: &str| StorageError::Corrupt {
        what: "batch slice journal record",
        detail: detail.to_string(),
    };
    if record.len() < 17 {
        return Err(corrupt("header truncated").into());
    }
    let coordinator = u32::from_le_bytes(record[1..5].try_into().expect("4 bytes"));
    let seq = u64::from_le_bytes(record[5..13].try_into().expect("8 bytes"));
    let n = u32::from_le_bytes(record[13..17].try_into().expect("4 bytes")) as usize;
    if n == 0 || n > (record.len() - 17) / 4 {
        return Err(corrupt("shard set exceeds record").into());
    }
    let mut shards = Vec::with_capacity(n);
    for i in 0..n {
        let at = 17 + 4 * i;
        shards.push(u32::from_le_bytes(
            record[at..at + 4].try_into().expect("4 bytes"),
        ));
    }
    Ok(Some(SliceRecord {
        batch: BatchId { coordinator, seq },
        shards,
        inner: &record[17 + 4 * n..],
    }))
}

/// Per-shard mutation replay lists after cross-shard batch resolution.
#[derive(Debug, Default)]
pub struct ShardReplayPlan {
    /// For each shard, the shard-local request bytes to re-apply in log
    /// order (slices already unwrapped to their inner mutation).
    pub apply: Vec<Vec<Vec<u8>>>,
    /// Batch slices discarded because a sibling shard never journaled its
    /// slice — the crash landed mid-batch, so the whole batch rolls back.
    pub incomplete_slices_dropped: u64,
}

/// Resolve the per-shard [`JournalRecovery`] results of one server into
/// per-shard apply lists, discarding batch slices whose batch is
/// incomplete (some shard in the slice's set never journaled its slice).
///
/// # Errors
/// [`StorageError::Corrupt`] on a malformed slice record.
pub fn resolve_shard_recoveries(recoveries: &[JournalRecovery]) -> Result<ShardReplayPlan> {
    // Which shards are known to have journaled each batch — from replayed
    // records and from records the snapshot already covered.
    let mut present: HashMap<BatchId, HashSet<u32>> = HashMap::new();
    for (shard, rec) in recoveries.iter().enumerate() {
        for record in rec.replay.iter().chain(rec.skipped_raw.iter()) {
            if let Some(slice) = decode_slice(record)? {
                present.entry(slice.batch).or_default().insert(shard as u32);
            }
        }
    }
    let mut plan = ShardReplayPlan::default();
    for rec in recoveries {
        let mut apply = Vec::with_capacity(rec.replay.len());
        for record in &rec.replay {
            match decode_slice(record)? {
                None => apply.push(record.clone()),
                Some(slice) => {
                    let complete = slice.shards.iter().all(|s| {
                        present
                            .get(&slice.batch)
                            .is_some_and(|seen| seen.contains(s))
                    });
                    if complete {
                        apply.push(slice.inner.to_vec());
                    } else {
                        plan.incomplete_slices_dropped += 1;
                    }
                }
            }
        }
        plan.apply.push(apply);
    }
    Ok(plan)
}

// ---------------------------------------------------------------------------
// Shard manifest
// ---------------------------------------------------------------------------

/// Magic prefix of the shard manifest file.
const MANIFEST_MAGIC: &[u8; 8] = b"SSESHRD1";

/// Read a shard manifest, returning the shard count, or `None` when the
/// file does not exist (a legacy or fresh directory).
///
/// # Errors
/// I/O errors, or [`StorageError::Corrupt`] on a damaged manifest.
pub fn read_manifest(vfs: &dyn Vfs, path: &Path) -> Result<Option<u32>> {
    let bytes = match vfs.read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(StorageError::from(e).into()),
    };
    let corrupt = |detail: String| StorageError::Corrupt {
        what: "shard manifest",
        detail,
    };
    if bytes.len() != 16 || &bytes[0..8] != MANIFEST_MAGIC {
        return Err(corrupt(format!("bad length or magic ({} bytes)", bytes.len())).into());
    }
    let stored_crc = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
    if crc32(&bytes[0..12]) != stored_crc {
        return Err(corrupt("checksum mismatch".to_string()).into());
    }
    let shards = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if shards == 0 {
        return Err(corrupt("zero shard count".to_string()).into());
    }
    Ok(Some(shards))
}

/// Write the shard manifest atomically (tmp file + rename), fixing the
/// directory's shard count for all future opens.
///
/// # Errors
/// I/O errors from the VFS (including injected faults).
pub fn write_manifest(vfs: &dyn Vfs, path: &Path, shards: u32) -> Result<()> {
    let mut bytes = Vec::with_capacity(16);
    bytes.extend_from_slice(MANIFEST_MAGIC);
    bytes.extend_from_slice(&shards.to_le_bytes());
    bytes.extend_from_slice(&crc32(&bytes).to_le_bytes());
    let tmp = path.with_extension("meta.tmp");
    {
        let mut f = vfs.create(&tmp).map_err(StorageError::from)?;
        f.write_all(&bytes).map_err(StorageError::from)?;
        f.sync_data().map_err(StorageError::from)?;
    }
    vfs.rename(&tmp, path).map_err(StorageError::from)?;
    Ok(())
}

/// Decide how many shards a durable directory has. A manifest fixes the
/// count; otherwise a directory with legacy single-shard files stays
/// single-shard, and a fresh directory gets the requested count (recorded
/// in a new manifest either way).
///
/// # Errors
/// I/O errors or a corrupt manifest.
pub(crate) fn resolve_shard_count(
    vfs: &dyn Vfs,
    dir: &Path,
    manifest_file: &str,
    legacy_index_file: &str,
    requested: usize,
) -> Result<usize> {
    let manifest_path = dir.join(manifest_file);
    if let Some(n) = read_manifest(vfs, &manifest_path)? {
        return Ok(n as usize);
    }
    let legacy_wal = Path::new(legacy_index_file)
        .with_extension("wal")
        .to_string_lossy()
        .into_owned();
    let legacy = vfs.exists(&dir.join(legacy_index_file)) || vfs.exists(&dir.join(legacy_wal));
    let n = if legacy { 1 } else { requested.max(1) };
    write_manifest(vfs, &manifest_path, n as u32)?;
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sse_storage::RealVfs;

    #[test]
    fn shard_of_is_stable_and_in_range() {
        let mut tag = [0u8; 32];
        for b in 0..=255u8 {
            tag[0] = b;
            tag[1] = b.wrapping_mul(31);
            for shards in [1usize, 2, 4, 16, 63] {
                let s = shard_of(&tag, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(&tag, shards), "stable");
            }
            assert_eq!(shard_of(&tag, 1), 0);
        }
    }

    #[test]
    fn shard_of_spreads_tags() {
        // 256 random-ish tags over 4 shards: every shard gets some.
        let mut counts = [0usize; 4];
        for i in 0..256u32 {
            let mut tag = [0u8; 32];
            tag[0..4].copy_from_slice(&(i.wrapping_mul(0x9E37_79B9)).to_be_bytes());
            counts[shard_of(&tag, 4)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 16), "skewed: {counts:?}");
    }

    #[test]
    fn slice_round_trip() {
        let batch = BatchId {
            coordinator: 1,
            seq: 42,
        };
        let rec = encode_slice(batch, &[1, 3, 7], b"inner request");
        let slice = decode_slice(&rec).unwrap().expect("is a slice");
        assert_eq!(slice.batch, batch);
        assert_eq!(slice.shards, vec![1, 3, 7]);
        assert_eq!(slice.inner, b"inner request");
    }

    #[test]
    fn plain_records_are_not_slices() {
        assert!(decode_slice(&[0x01, 2, 3]).unwrap().is_none());
        assert!(decode_slice(&[]).unwrap().is_none());
    }

    #[test]
    fn truncated_slice_is_corrupt() {
        assert!(decode_slice(&[SLICE_MAGIC, 0, 0]).is_err());
        // Claims 100 shards but carries none.
        let mut bad = encode_slice(
            BatchId {
                coordinator: 0,
                seq: 1,
            },
            &[0],
            b"",
        );
        bad[13..17].copy_from_slice(&100u32.to_le_bytes());
        assert!(decode_slice(&bad).is_err());
    }

    fn recovery(replay: Vec<Vec<u8>>, skipped_raw: Vec<Vec<u8>>) -> JournalRecovery {
        JournalRecovery {
            skipped: skipped_raw.len() as u64,
            replay,
            skipped_raw,
            torn_bytes_truncated: 0,
        }
    }

    #[test]
    fn complete_batches_apply_and_incomplete_drop() {
        let batch = BatchId {
            coordinator: 0,
            seq: 5,
        };
        let orphan = BatchId {
            coordinator: 0,
            seq: 6,
        };
        let shard0 = recovery(
            vec![
                vec![0x01, 0xAA],
                encode_slice(batch, &[0, 1], b"s0-part"),
                // Orphan: shard 1 crashed before journaling its slice.
                encode_slice(orphan, &[0, 1], b"s0-lost"),
            ],
            vec![],
        );
        let shard1 = recovery(vec![encode_slice(batch, &[0, 1], b"s1-part")], vec![]);
        let plan = resolve_shard_recoveries(&[shard0, shard1]).unwrap();
        assert_eq!(
            plan.apply[0],
            vec![vec![0x01, 0xAA], b"s0-part".to_vec()],
            "plain op applies, complete slice unwraps, orphan drops"
        );
        assert_eq!(plan.apply[1], vec![b"s1-part".to_vec()]);
        assert_eq!(plan.incomplete_slices_dropped, 1);
    }

    #[test]
    fn snapshotted_sibling_slice_still_completes_a_batch() {
        // Shard 1 checkpointed after the batch: its slice is in the
        // snapshot-covered (skipped) region, not the replay region. The
        // batch is still complete and shard 0 must re-apply its part.
        let batch = BatchId {
            coordinator: 0,
            seq: 9,
        };
        let shard0 = recovery(vec![encode_slice(batch, &[0, 1], b"s0-part")], vec![]);
        let shard1 = recovery(vec![], vec![encode_slice(batch, &[0, 1], b"s1-part")]);
        let plan = resolve_shard_recoveries(&[shard0, shard1]).unwrap();
        assert_eq!(plan.apply[0], vec![b"s0-part".to_vec()]);
        assert!(plan.apply[1].is_empty());
        assert_eq!(plan.incomplete_slices_dropped, 0);
    }

    #[test]
    fn manifest_round_trip_and_corruption() {
        let dir = std::env::temp_dir().join(format!("sse-shard-meta-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("scheme1.meta");
        let _ = std::fs::remove_file(&path);
        let vfs = RealVfs;
        assert_eq!(read_manifest(&vfs, &path).unwrap(), None);
        write_manifest(&vfs, &path, 8).unwrap();
        assert_eq!(read_manifest(&vfs, &path).unwrap(), Some(8));
        // Flip a byte: corrupt, not silently wrong.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[9] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_manifest(&vfs, &path).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
