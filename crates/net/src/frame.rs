//! Length-prefixed message framing for the byte-stream transport.
//!
//! `[len: u32 LE][body]`. The decoder accepts bytes in arbitrary chunks
//! (as a TCP stream would deliver them) and yields complete frames.

use crate::pool::{BufPool, PooledBuf};
use bytes::{Buf, BufMut, BytesMut};

/// Maximum frame body size (64 MiB) — matches the wire codec's field limit.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// Encode one frame.
#[must_use]
pub fn encode_frame(body: &[u8]) -> Vec<u8> {
    assert!(
        body.len() <= MAX_FRAME_LEN as usize,
        "frame body too large: {}",
        body.len()
    );
    let mut out = BytesMut::with_capacity(4 + body.len());
    out.put_u32_le(body.len() as u32);
    out.put_slice(body);
    out.to_vec()
}

/// The 4-byte length prefix for a body of `len` bytes — the first segment
/// of a scatter-gather encode, where the header and the (borrowed) body
/// travel as separate iovecs instead of being copied into one buffer.
///
/// # Panics
/// Panics if `len` exceeds [`MAX_FRAME_LEN`].
#[must_use]
pub fn frame_header(len: usize) -> [u8; 4] {
    assert!(len <= MAX_FRAME_LEN as usize, "frame body too large: {len}");
    (len as u32).to_le_bytes()
}

/// Append one encoded frame to an existing buffer (typically one recycled
/// from a [`BufPool`]) instead of allocating a fresh `Vec` per frame.
///
/// # Panics
/// Panics if `body` exceeds [`MAX_FRAME_LEN`].
pub fn encode_frame_into(out: &mut Vec<u8>, body: &[u8]) {
    out.extend_from_slice(&frame_header(body.len()));
    out.extend_from_slice(body);
}

/// Incremental frame decoder.
pub struct FrameDecoder {
    buf: BytesMut,
    max_len: u32,
}

impl Default for FrameDecoder {
    fn default() -> Self {
        FrameDecoder {
            buf: BytesMut::default(),
            max_len: MAX_FRAME_LEN,
        }
    }
}

/// Decoder failure: a peer declared an oversized frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameTooLarge {
    /// The declared body length.
    pub declared: u32,
}

impl std::fmt::Display for FrameTooLarge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "frame body of {} bytes exceeds limit", self.declared)
    }
}

impl std::error::Error for FrameTooLarge {}

impl FrameDecoder {
    /// New empty decoder accepting bodies up to [`MAX_FRAME_LEN`].
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// New empty decoder accepting bodies up to `max_len` bytes. Servers
    /// facing untrusted sockets should set this to the largest message the
    /// protocol can legitimately produce: the length prefix is
    /// attacker-controlled, and the limit is what stops a forged prefix
    /// from driving an unbounded allocation (the TCP analogue of the wire
    /// codec's `get_count` hardening). Capped at [`MAX_FRAME_LEN`].
    #[must_use]
    pub fn with_max_len(max_len: u32) -> Self {
        FrameDecoder {
            buf: BytesMut::default(),
            max_len: max_len.min(MAX_FRAME_LEN),
        }
    }

    /// The configured per-frame body limit.
    #[must_use]
    pub fn max_len(&self) -> u32 {
        self.max_len
    }

    /// Feed received bytes into the decoder.
    pub fn push(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Pop the next complete frame, if one is buffered.
    ///
    /// # Errors
    /// [`FrameTooLarge`] when the length prefix exceeds the configured
    /// limit ([`MAX_FRAME_LEN`] by default); the decoder is then poisoned
    /// and the connection should be dropped.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameTooLarge> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]);
        if len > self.max_len {
            return Err(FrameTooLarge { declared: len });
        }
        let total = 4 + len as usize;
        if self.buf.len() < total {
            return Ok(None);
        }
        self.buf.advance(4);
        let body = self.buf.split_to(len as usize);
        Ok(Some(body.to_vec()))
    }

    /// Bytes buffered but not yet consumed.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

/// Resumable streaming decoder for readiness-driven IO.
///
/// Where [`FrameDecoder`] copies every received byte into one growing
/// buffer and carves frames out of it, `StreamingDecoder` consumes each
/// chunk in place and buffers **only the partial frame** straddling a
/// chunk boundary — a connection between frames holds zero bytes, which
/// is what keeps per-idle-connection memory flat with tens of thousands
/// of sockets parked on a reactor.
///
/// It is also hardened differently: the body allocation grows with the
/// bytes that actually arrive, so a forged length prefix costs the
/// attacker bandwidth, not server memory (the prefix is still bounded by
/// `max_len` and rejected up front when it exceeds it).
pub struct StreamingDecoder {
    max_len: u32,
    /// Partial length prefix (`header_filled` of 4 bytes present).
    header: [u8; 4],
    header_filled: usize,
    /// Partial body, once the prefix is complete.
    body: Vec<u8>,
    body_needed: usize,
    in_body: bool,
    poisoned: Option<FrameTooLarge>,
    /// When set, bodies are acquired from (and recycled into) this pool —
    /// see [`StreamingDecoder::feed_pooled`].
    pool: Option<BufPool>,
}

impl Default for StreamingDecoder {
    fn default() -> Self {
        Self::with_max_len(MAX_FRAME_LEN)
    }
}

impl StreamingDecoder {
    /// New empty decoder accepting bodies up to [`MAX_FRAME_LEN`].
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// New empty decoder accepting bodies up to `max_len` bytes (capped
    /// at [`MAX_FRAME_LEN`]; see [`FrameDecoder::with_max_len`]).
    #[must_use]
    pub fn with_max_len(max_len: u32) -> Self {
        StreamingDecoder {
            max_len: max_len.min(MAX_FRAME_LEN),
            header: [0; 4],
            header_filled: 0,
            body: Vec::new(),
            body_needed: 0,
            in_body: false,
            poisoned: None,
            pool: None,
        }
    }

    /// Like [`StreamingDecoder::with_max_len`], but frame bodies assembled
    /// by [`StreamingDecoder::feed_pooled`] are acquired from `pool` and
    /// recycled when their [`PooledBuf`] drops. Dropping the decoder
    /// mid-frame returns the partial body too — a half-received request on
    /// a dying connection must not leak its buffer.
    #[must_use]
    pub fn with_pool(max_len: u32, pool: BufPool) -> Self {
        let mut d = Self::with_max_len(max_len);
        d.pool = Some(pool);
        d
    }

    /// The configured per-frame body limit.
    #[must_use]
    pub fn max_len(&self) -> u32 {
        self.max_len
    }

    /// Consume one received chunk, appending every frame it completes to
    /// `out`. Bytes left over (a frame still in flight) stay buffered for
    /// the next call — feeding a byte at a time and feeding coalesced
    /// frames produce identical output.
    ///
    /// # Errors
    /// [`FrameTooLarge`] when a length prefix exceeds the configured
    /// limit; the decoder is then poisoned (every later call re-errors)
    /// and the connection should be dropped.
    pub fn feed(&mut self, mut chunk: &[u8], out: &mut Vec<Vec<u8>>) -> Result<(), FrameTooLarge> {
        if let Some(err) = self.poisoned {
            return Err(err);
        }
        while !chunk.is_empty() {
            if !self.in_body {
                let take = (4 - self.header_filled).min(chunk.len());
                self.header[self.header_filled..self.header_filled + take]
                    .copy_from_slice(&chunk[..take]);
                self.header_filled += take;
                chunk = &chunk[take..];
                if self.header_filled < 4 {
                    break;
                }
                let declared = u32::from_le_bytes(self.header);
                if declared > self.max_len {
                    let err = FrameTooLarge { declared };
                    self.poisoned = Some(err);
                    return Err(err);
                }
                self.body_needed = declared as usize;
                self.in_body = true;
            }
            // Body phase (an empty body completes immediately below).
            let take = (self.body_needed - self.body.len()).min(chunk.len());
            self.body.extend_from_slice(&chunk[..take]);
            chunk = &chunk[take..];
            if self.body.len() == self.body_needed {
                out.push(std::mem::take(&mut self.body));
                self.in_body = false;
                self.header_filled = 0;
            }
        }
        Ok(())
    }

    /// Like [`StreamingDecoder::feed`], but completed frames come out as
    /// [`PooledBuf`] views. On a decoder built with
    /// [`StreamingDecoder::with_pool`] the body buffer is acquired from the
    /// pool when the length prefix completes and recycled when the last
    /// view of the sealed frame drops — a pool hit makes the whole
    /// read→decode→dispatch path allocation-free. Without a pool the
    /// frames are plain owned buffers behind the same view type.
    ///
    /// # Errors
    /// [`FrameTooLarge`] exactly as [`StreamingDecoder::feed`].
    pub fn feed_pooled(
        &mut self,
        mut chunk: &[u8],
        out: &mut Vec<PooledBuf>,
    ) -> Result<(), FrameTooLarge> {
        if let Some(err) = self.poisoned {
            return Err(err);
        }
        while !chunk.is_empty() {
            if !self.in_body {
                let take = (4 - self.header_filled).min(chunk.len());
                self.header[self.header_filled..self.header_filled + take]
                    .copy_from_slice(&chunk[..take]);
                self.header_filled += take;
                chunk = &chunk[take..];
                if self.header_filled < 4 {
                    break;
                }
                let declared = u32::from_le_bytes(self.header);
                if declared > self.max_len {
                    let err = FrameTooLarge { declared };
                    self.poisoned = Some(err);
                    return Err(err);
                }
                self.body_needed = declared as usize;
                self.in_body = true;
                if let Some(pool) = &self.pool {
                    // `body` is empty on a frame boundary (taken at the
                    // previous completion); swap in a recycled buffer.
                    debug_assert!(self.body.is_empty());
                    if self.body.capacity() < self.body_needed {
                        self.body = pool.acquire(self.body_needed);
                    }
                }
            }
            // Body phase (an empty body completes immediately below).
            let take = (self.body_needed - self.body.len()).min(chunk.len());
            self.body.extend_from_slice(&chunk[..take]);
            chunk = &chunk[take..];
            if self.body.len() == self.body_needed {
                let body = std::mem::take(&mut self.body);
                out.push(match &self.pool {
                    Some(pool) => pool.seal(body),
                    None => PooledBuf::from_vec(body),
                });
                self.in_body = false;
                self.header_filled = 0;
            }
        }
        Ok(())
    }

    /// Bytes of the in-flight partial frame currently buffered. Zero
    /// whenever the stream sits on a frame boundary.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.header_filled + self.body.len()
    }
}

impl Drop for StreamingDecoder {
    fn drop(&mut self) {
        // A connection torn down mid-frame must hand its partial body back
        // to the pool; completed frames recycle through their own views.
        if let Some(pool) = &self.pool {
            let body = std::mem::take(&mut self.body);
            if body.capacity() > 0 {
                pool.release(body);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_frame_round_trip() {
        let mut d = FrameDecoder::new();
        d.push(&encode_frame(b"hello"));
        assert_eq!(d.next_frame().unwrap(), Some(b"hello".to_vec()));
        assert_eq!(d.next_frame().unwrap(), None);
    }

    #[test]
    fn empty_frame() {
        let mut d = FrameDecoder::new();
        d.push(&encode_frame(b""));
        assert_eq!(d.next_frame().unwrap(), Some(Vec::new()));
    }

    #[test]
    fn fragmented_delivery() {
        let frame = encode_frame(b"fragmented message body");
        let mut d = FrameDecoder::new();
        for chunk in frame.chunks(3) {
            d.push(chunk);
        }
        assert_eq!(
            d.next_frame().unwrap(),
            Some(b"fragmented message body".to_vec())
        );
    }

    #[test]
    fn coalesced_frames() {
        let mut stream = Vec::new();
        stream.extend_from_slice(&encode_frame(b"one"));
        stream.extend_from_slice(&encode_frame(b"two"));
        stream.extend_from_slice(&encode_frame(b"three"));
        let mut d = FrameDecoder::new();
        d.push(&stream);
        assert_eq!(d.next_frame().unwrap(), Some(b"one".to_vec()));
        assert_eq!(d.next_frame().unwrap(), Some(b"two".to_vec()));
        assert_eq!(d.next_frame().unwrap(), Some(b"three".to_vec()));
        assert_eq!(d.next_frame().unwrap(), None);
        assert_eq!(d.buffered(), 0);
    }

    #[test]
    fn partial_header_waits() {
        let mut d = FrameDecoder::new();
        d.push(&[5, 0]);
        assert_eq!(d.next_frame().unwrap(), None);
        d.push(&[0, 0]);
        assert_eq!(d.next_frame().unwrap(), None); // header complete, body missing
        d.push(b"abcde");
        assert_eq!(d.next_frame().unwrap(), Some(b"abcde".to_vec()));
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut d = FrameDecoder::new();
        d.push(&(MAX_FRAME_LEN + 1).to_le_bytes());
        assert!(d.next_frame().is_err());
    }

    #[test]
    fn configured_limit_rejects_before_allocating() {
        let mut d = FrameDecoder::with_max_len(1024);
        assert_eq!(d.max_len(), 1024);
        // A forged prefix above the limit errors with only 4 bytes on hand.
        d.push(&2048u32.to_le_bytes());
        assert_eq!(d.next_frame(), Err(FrameTooLarge { declared: 2048 }));
    }

    #[test]
    fn configured_limit_still_accepts_small_frames() {
        let mut d = FrameDecoder::with_max_len(16);
        d.push(&encode_frame(b"ok"));
        assert_eq!(d.next_frame().unwrap(), Some(b"ok".to_vec()));
        d.push(&encode_frame(&[0u8; 17]));
        assert!(d.next_frame().is_err());
    }

    #[test]
    fn limit_is_capped_at_protocol_maximum() {
        let d = FrameDecoder::with_max_len(u32::MAX);
        assert_eq!(d.max_len(), MAX_FRAME_LEN);
    }

    fn stream_all(decoder: &mut StreamingDecoder, chunks: &[&[u8]]) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        for chunk in chunks {
            decoder.feed(chunk, &mut out).unwrap();
        }
        out
    }

    #[test]
    fn streaming_byte_at_a_time_matches_coalesced() {
        let mut stream = Vec::new();
        stream.extend_from_slice(&encode_frame(b"one"));
        stream.extend_from_slice(&encode_frame(b""));
        stream.extend_from_slice(&encode_frame(b"three-is-longer"));

        let mut coalesced = StreamingDecoder::new();
        let whole = stream_all(&mut coalesced, &[&stream]);

        let mut trickled = StreamingDecoder::new();
        let mut out = Vec::new();
        for byte in &stream {
            trickled.feed(std::slice::from_ref(byte), &mut out).unwrap();
        }
        assert_eq!(out, whole);
        assert_eq!(
            whole,
            vec![b"one".to_vec(), Vec::new(), b"three-is-longer".to_vec()]
        );
        assert_eq!(trickled.buffered(), 0, "boundary holds zero bytes");
    }

    #[test]
    fn streaming_buffers_only_the_partial_frame() {
        let frame = encode_frame(&[7u8; 100]);
        let mut d = StreamingDecoder::new();
        let mut out = Vec::new();
        d.feed(&frame[..30], &mut out).unwrap();
        assert!(out.is_empty());
        assert_eq!(d.buffered(), 30, "prefix + partial body held");
        d.feed(&frame[30..], &mut out).unwrap();
        assert_eq!(out, vec![vec![7u8; 100]]);
        assert_eq!(d.buffered(), 0);
    }

    #[test]
    fn streaming_rejects_forged_prefix_and_stays_poisoned() {
        let mut d = StreamingDecoder::with_max_len(1024);
        assert_eq!(d.max_len(), 1024);
        let mut out = Vec::new();
        // The forged prefix arrives split across feeds and errors with
        // only 4 bytes on hand — nothing was allocated for the body.
        d.feed(&2048u32.to_le_bytes()[..2], &mut out).unwrap();
        let err = d.feed(&2048u32.to_le_bytes()[2..], &mut out).unwrap_err();
        assert_eq!(err, FrameTooLarge { declared: 2048 });
        assert_eq!(
            d.feed(b"more", &mut out).unwrap_err(),
            FrameTooLarge { declared: 2048 },
            "poisoned decoder keeps erroring"
        );
        assert!(out.is_empty());
    }

    #[test]
    fn streaming_limit_is_capped_at_protocol_maximum() {
        let d = StreamingDecoder::with_max_len(u32::MAX);
        assert_eq!(d.max_len(), MAX_FRAME_LEN);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn encode_rejects_oversized_body() {
        // Use a fake huge slice length via a zero-filled vec just over limit.
        let body = vec![0u8; MAX_FRAME_LEN as usize + 1];
        let _ = encode_frame(&body);
    }

    #[test]
    fn scatter_gather_header_matches_contiguous_encode() {
        let body = b"split encode";
        let mut sg = frame_header(body.len()).to_vec();
        sg.extend_from_slice(body);
        assert_eq!(sg, encode_frame(body));

        let mut reused = Vec::with_capacity(64);
        encode_frame_into(&mut reused, b"one");
        encode_frame_into(&mut reused, b"two");
        let mut expect = encode_frame(b"one");
        expect.extend_from_slice(&encode_frame(b"two"));
        assert_eq!(reused, expect);
    }

    #[test]
    fn pooled_feed_matches_plain_feed_and_recycles() {
        let pool = BufPool::with_config(&[64, 1024], 4);
        let mut stream = Vec::new();
        stream.extend_from_slice(&encode_frame(b"one"));
        stream.extend_from_slice(&encode_frame(b""));
        stream.extend_from_slice(&encode_frame(&[9u8; 300]));

        let mut plain = StreamingDecoder::new();
        let mut want = Vec::new();
        plain.feed(&stream, &mut want).unwrap();

        let mut pooled = StreamingDecoder::with_pool(MAX_FRAME_LEN, pool.clone());
        let mut got = Vec::new();
        for chunk in stream.chunks(5) {
            pooled.feed_pooled(chunk, &mut got).unwrap();
        }
        assert_eq!(
            got.iter()
                .map(|f| f.as_slice().to_vec())
                .collect::<Vec<_>>(),
            want
        );
        drop(got);
        // Both non-empty bodies came from and went back to the pool; the
        // empty frame never touched it (zero capacity after mem::take).
        assert_eq!(pool.counters().recycles, 2);
        assert_eq!(pool.free_buffers(), 2);
    }

    #[test]
    fn pooled_decoder_drop_mid_frame_releases_the_partial_body() {
        let pool = BufPool::with_config(&[64], 4);
        let frame = encode_frame(&[3u8; 40]);
        let mut d = StreamingDecoder::with_pool(MAX_FRAME_LEN, pool.clone());
        let mut out = Vec::new();
        d.feed_pooled(&frame[..20], &mut out).unwrap();
        assert!(out.is_empty());
        drop(d); // connection died mid-frame
        assert_eq!(pool.counters().recycles, 1, "partial body must recycle");
        assert_eq!(pool.free_buffers(), 1);
    }

    #[test]
    fn feed_pooled_without_a_pool_yields_owned_views() {
        let mut d = StreamingDecoder::new();
        let mut out = Vec::new();
        d.feed_pooled(&encode_frame(b"owned"), &mut out).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(&out[0][..], b"owned");
    }
}
