//! Request/response links between client and server.
//!
//! Two flavours:
//!
//! * [`MeteredLink`] — a synchronous in-process link: the client calls the
//!   server's handler directly, with every exchange recorded on a
//!   [`crate::meter::Meter`]. The SSE protocols run over this in tests and
//!   experiments (deterministic, zero scheduling noise).
//! * [`Duplex`] — a threaded channel-based transport using crossbeam and
//!   the frame codec, demonstrating that the same `Service` runs unchanged
//!   behind a real concurrent boundary.

use crate::frame::{encode_frame, FrameDecoder};
use crate::meter::Meter;
use crate::shutdown::ShutdownSignal;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Client-side view of a request/response channel. Implemented by
/// [`MeteredLink`] (synchronous, in-process), [`Duplex`] (threaded) and the
/// TCP transport, so protocol clients are written once and run over any.
pub trait Transport {
    /// Execute one round: send `request`, block for the response.
    ///
    /// # Errors
    /// An error means the round **failed in transit** — dropped, truncated,
    /// connection lost — and the caller must treat the request's server-side
    /// effect as unknown. Implementations never silently retransmit: the SSE
    /// index mutations are not idempotent, so at-most-once delivery is part
    /// of the transport contract.
    fn round_trip(&mut self, request: &[u8]) -> std::io::Result<Vec<u8>>;

    /// Execute a batch of mutation rounds, returning one response per
    /// part. The default sends the parts as individual rounds, stopping at
    /// the first transit failure — exactly the behaviour a caller looping
    /// over [`Transport::round_trip`] would get, so links that cannot
    /// coalesce lose nothing. Transports with a wire-level batch op (the
    /// TCP transport's `UPDATE_MANY`) override this to ship all parts in a
    /// single round and have the server journal them per index shard.
    ///
    /// # Errors
    /// As [`Transport::round_trip`]; on error, any prefix of the batch may
    /// already have taken effect server-side.
    fn round_trip_batch(&mut self, parts: &[Vec<u8>]) -> std::io::Result<Vec<Vec<u8>>> {
        parts.iter().map(|p| self.round_trip(p)).collect()
    }

    /// Execute a batch of **search** rounds, returning one response per
    /// part, position-aligned. Unlike [`Transport::round_trip_batch`] the
    /// parts produce distinct responses, and the server side is free to
    /// evaluate them concurrently — searches are read-only, so no
    /// atomicity is implied. The default sends the parts sequentially;
    /// the TCP transport overrides this with one `SEARCH_MANY` envelope
    /// that the daemon fans out across its shard snapshots.
    ///
    /// # Errors
    /// As [`Transport::round_trip`]; searches have no server-side effect,
    /// so a failed batch can simply be retried.
    fn round_trip_search_batch(&mut self, parts: &[Vec<u8>]) -> std::io::Result<Vec<Vec<u8>>> {
        parts.iter().map(|p| self.round_trip(p)).collect()
    }
}

impl<S: Service> Transport for MeteredLink<S> {
    fn round_trip(&mut self, request: &[u8]) -> std::io::Result<Vec<u8>> {
        Ok(self.call(request))
    }
}

impl Transport for Duplex {
    fn round_trip(&mut self, request: &[u8]) -> std::io::Result<Vec<u8>> {
        self.try_call(request)
    }
}

/// A request/response server: the SSE server implements this.
pub trait Service: Send {
    /// Handle one request message, producing the response message.
    fn handle(&mut self, request: &[u8]) -> Vec<u8>;

    /// Called exactly once when the hosting transport shuts down (graceful
    /// stop, client hang-up, poisoned stream). Durable servers override
    /// this to checkpoint so a clean shutdown leaves no WAL to replay.
    fn on_shutdown(&mut self) {}
}

impl<F> Service for F
where
    F: FnMut(&[u8]) -> Vec<u8> + Send,
{
    fn handle(&mut self, request: &[u8]) -> Vec<u8> {
        self(request)
    }
}

/// Synchronous metered link to a service.
pub struct MeteredLink<S: Service> {
    service: S,
    meter: Meter,
}

impl<S: Service> MeteredLink<S> {
    /// Wrap `service`, recording traffic on `meter`.
    pub fn new(service: S, meter: Meter) -> Self {
        MeteredLink { service, meter }
    }

    /// One round: send `request`, get the response.
    pub fn call(&mut self, request: &[u8]) -> Vec<u8> {
        let response = self.service.handle(request);
        self.meter.record_round(request.len(), response.len());
        response
    }

    /// The shared meter.
    #[must_use]
    pub fn meter(&self) -> &Meter {
        &self.meter
    }

    /// Access the wrapped service (e.g. for test inspection).
    pub fn service_mut(&mut self) -> &mut S {
        &mut self.service
    }

    /// Unwrap the service.
    pub fn into_service(self) -> S {
        self.service
    }
}

/// Slot holding the server thread's join handle; shared between the
/// [`Duplex`] (joins on drop) and the [`ServerHandle`] (explicit join).
/// Whichever side takes the handle first performs the join.
type JoinSlot = Arc<Mutex<Option<JoinHandle<()>>>>;

/// Client handle to a service running on its own thread.
///
/// Dropping the `Duplex` shuts the server thread down and **joins it**: no
/// detached thread outlives the link (the original implementation leaked
/// the thread unless [`ServerHandle::join`] was called explicitly).
pub struct Duplex {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    meter: Meter,
    shutdown: ShutdownSignal,
    join: JoinSlot,
}

/// Handle used to join the server thread after the client hangs up.
/// Optional since the [`Duplex`] itself joins on drop; kept for callers
/// that want to observe the join point explicitly.
pub struct ServerHandle {
    join: JoinSlot,
}

impl ServerHandle {
    /// Wait for the server thread to finish (it exits when the client side
    /// is dropped). A no-op if the dropped `Duplex` already joined it.
    ///
    /// # Panics
    /// Panics if the server thread panicked.
    pub fn join(self) {
        let handle = self
            .join
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take();
        if let Some(handle) = handle {
            handle.join().expect("server thread panicked");
        }
    }
}

impl Duplex {
    /// Spawn `service` on a background thread and return the client link.
    pub fn spawn<S: Service + 'static>(mut service: S, meter: Meter) -> (Duplex, ServerHandle) {
        let (req_tx, req_rx) = unbounded::<Vec<u8>>();
        let (resp_tx, resp_rx) = unbounded::<Vec<u8>>();
        let shutdown = ShutdownSignal::new();
        let server_shutdown = shutdown.clone();
        let join = std::thread::spawn(move || {
            let mut decoder = FrameDecoder::new();
            'serve: loop {
                if server_shutdown.is_requested() {
                    break;
                }
                let Ok(chunk) = req_rx.recv() else {
                    break;
                };
                decoder.push(&chunk);
                loop {
                    match decoder.next_frame() {
                        Ok(Some(request)) => {
                            let response = service.handle(&request);
                            if resp_tx.send(encode_frame(&response)).is_err() {
                                break 'serve;
                            }
                        }
                        Ok(None) => break,
                        Err(_) => break 'serve, // poisoned stream: drop connection
                    }
                }
            }
            // Every exit path lands here: give durable services their
            // chance to checkpoint unflushed state before the thread dies.
            service.on_shutdown();
        });
        let join: JoinSlot = Arc::new(Mutex::new(Some(join)));
        (
            Duplex {
                tx: req_tx,
                rx: resp_rx,
                meter,
                shutdown,
                join: join.clone(),
            },
            ServerHandle { join },
        )
    }

    /// One metered round over the threaded transport.
    ///
    /// # Panics
    /// Panics if the server thread has died (test environments only).
    pub fn call(&self, request: &[u8]) -> Vec<u8> {
        self.try_call(request).expect("server thread alive")
    }

    /// One metered round, surfacing a dead server thread or a corrupt
    /// response stream as an error instead of panicking.
    ///
    /// # Errors
    /// [`std::io::ErrorKind::BrokenPipe`] if the server thread is gone;
    /// [`std::io::ErrorKind::InvalidData`] for a corrupt response frame.
    pub fn try_call(&self, request: &[u8]) -> std::io::Result<Vec<u8>> {
        use std::io::{Error, ErrorKind};
        self.tx
            .send(encode_frame(request))
            .map_err(|_| Error::new(ErrorKind::BrokenPipe, "server thread exited"))?;
        let mut decoder = FrameDecoder::new();
        // Responses arrive frame-aligned from our server loop, but decode
        // defensively anyway.
        loop {
            let chunk = self
                .rx
                .recv()
                .map_err(|_| Error::new(ErrorKind::BrokenPipe, "server thread exited"))?;
            decoder.push(&chunk);
            if let Some(response) = decoder
                .next_frame()
                .map_err(|e| Error::new(ErrorKind::InvalidData, e.to_string()))?
            {
                self.meter.record_round(request.len(), response.len());
                return Ok(response);
            }
        }
    }

    /// The shared meter.
    #[must_use]
    pub fn meter(&self) -> &Meter {
        &self.meter
    }

    /// The shutdown signal driving the server thread — the same primitive
    /// the TCP daemon's drain logic uses.
    #[must_use]
    pub fn shutdown_signal(&self) -> ShutdownSignal {
        self.shutdown.clone()
    }
}

impl Drop for Duplex {
    fn drop(&mut self) {
        self.shutdown.request();
        // Wake the server loop if it is blocked on recv: an empty chunk is
        // a no-op for the frame decoder. (Send can only fail if the thread
        // already exited, which is fine.)
        let _ = self.tx.send(Vec::new());
        let handle = self
            .join
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take();
        if let Some(handle) = handle {
            // Swallow a server panic here: panicking in drop would abort.
            // ServerHandle::join (if still held) sees an empty slot.
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metered_link_counts_rounds() {
        let meter = Meter::new();
        let mut link = MeteredLink::new(
            |req: &[u8]| {
                let mut r = req.to_vec();
                r.reverse();
                r
            },
            meter.clone(),
        );
        assert_eq!(link.call(b"abc"), b"cba");
        assert_eq!(link.call(b"hello"), b"olleh");
        let s = meter.snapshot();
        assert_eq!(s.rounds, 2);
        assert_eq!(s.bytes_up, 8);
        assert_eq!(s.bytes_down, 8);
    }

    #[test]
    fn stateful_service_keeps_state() {
        struct Counter(u64);
        impl Service for Counter {
            fn handle(&mut self, _req: &[u8]) -> Vec<u8> {
                self.0 += 1;
                self.0.to_le_bytes().to_vec()
            }
        }
        let mut link = MeteredLink::new(Counter(0), Meter::new());
        link.call(b"");
        link.call(b"");
        let third = link.call(b"");
        assert_eq!(u64::from_le_bytes(third.try_into().unwrap()), 3);
        assert_eq!(link.into_service().0, 3);
    }

    #[test]
    fn duplex_round_trips_across_threads() {
        let meter = Meter::new();
        let (client, handle) = Duplex::spawn(
            |req: &[u8]| {
                let mut r = b"echo:".to_vec();
                r.extend_from_slice(req);
                r
            },
            meter.clone(),
        );
        for i in 0..20u8 {
            let resp = client.call(&[i]);
            assert_eq!(resp, [b"echo:".as_slice(), &[i]].concat());
        }
        assert_eq!(meter.snapshot().rounds, 20);
        drop(client);
        handle.join();
    }

    #[test]
    fn duplex_handles_large_messages() {
        let (client, handle) = Duplex::spawn(|req: &[u8]| req.to_vec(), Meter::new());
        let big = vec![0x42u8; 1 << 20];
        assert_eq!(client.call(&big), big);
        drop(client);
        handle.join();
    }
}
