//! Compact binary wire codec.
//!
//! Protocol messages are sequences of primitive fields. The codec is
//! deliberately minimal: little-endian fixed-width integers, length-prefixed
//! byte strings and vectors. Every read is bounds-checked; a malformed
//! message yields [`WireError`] rather than a panic — the server must never
//! crash on attacker-controlled bytes.

use std::fmt;

/// Decoding error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes were available than the field requires.
    Truncated {
        /// Field kind being read.
        what: &'static str,
        /// Bytes needed.
        needed: usize,
        /// Bytes available.
        available: usize,
    },
    /// A length prefix exceeds the sanity limit.
    LengthOverflow {
        /// Declared length.
        declared: u64,
    },
    /// Trailing garbage after the last expected field.
    TrailingBytes {
        /// How many bytes remained.
        count: usize,
    },
    /// A tag byte did not match any known message kind.
    UnknownTag(u8),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated {
                what,
                needed,
                available,
            } => write!(f, "truncated {what}: need {needed} bytes, have {available}"),
            WireError::LengthOverflow { declared } => {
                write!(f, "length prefix {declared} exceeds sanity limit")
            }
            WireError::TrailingBytes { count } => {
                write!(f, "{count} unexpected trailing bytes")
            }
            WireError::UnknownTag(t) => write!(f, "unknown message tag {t:#04x}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Sanity limit on any single length prefix (64 MiB).
pub const MAX_FIELD_LEN: u64 = 64 * 1024 * 1024;

/// Message writer.
#[derive(Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// Start an empty message.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Start with a capacity hint.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        WireWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Start from a recycled buffer, reusing its capacity — the hot-path
    /// variant for callers that hold a [`crate::pool::BufPool`] buffer:
    /// encoding into it keeps the steady state allocation-free.
    #[must_use]
    pub fn with_buf(mut buf: Vec<u8>) -> Self {
        buf.clear();
        WireWriter { buf }
    }

    /// Append a `u8`.
    pub fn put_u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) -> &mut Self {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
        self
    }

    /// Append a fixed-width byte array (no length prefix).
    pub fn put_array(&mut self, v: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(v);
        self
    }

    /// Append a fixed run of `u64`s with **no** length prefix — the
    /// caller's schema fixes the count, as with a counter block appended
    /// to an existing stats payload whose decoder reads a known number
    /// of trailing words. For a self-describing vector use
    /// [`Self::put_u64_vec`].
    pub fn put_u64s(&mut self, vs: &[u64]) -> &mut Self {
        for v in vs {
            self.put_u64(*v);
        }
        self
    }

    /// Append a length-prefixed vector of `u64`.
    pub fn put_u64_vec(&mut self, v: &[u64]) -> &mut Self {
        self.put_u64(v.len() as u64);
        for x in v {
            self.put_u64(*x);
        }
        self
    }

    /// Finish, returning the encoded message.
    #[must_use]
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Current encoded size.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True iff nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Message reader.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Wrap a received message.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.buf.len() {
            return Err(WireError::Truncated {
                what,
                needed: n,
                available: self.buf.len() - self.pos,
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a `u8`.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.take(4, "u32")?.try_into().expect("4 bytes"),
        ))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.take(8, "u64")?.try_into().expect("8 bytes"),
        ))
    }

    /// Read an item count and validate it against the bytes actually
    /// available: each item needs at least `min_item_bytes`, so a count
    /// exceeding `remaining / min_item_bytes` is a malformed (or malicious)
    /// message. Callers then allocate `Vec::with_capacity(count)` safely —
    /// without this check a forged count aborts the process on allocation.
    ///
    /// # Panics
    /// Panics if `min_item_bytes` is zero (caller bug).
    pub fn get_count(&mut self, min_item_bytes: usize) -> Result<usize, WireError> {
        assert!(min_item_bytes > 0, "min_item_bytes must be positive");
        let declared = self.get_u64()?;
        let max = (self.remaining() / min_item_bytes) as u64;
        if declared > max {
            return Err(WireError::LengthOverflow { declared });
        }
        Ok(declared as usize)
    }

    /// Read a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.get_u64()?;
        if len > MAX_FIELD_LEN {
            return Err(WireError::LengthOverflow { declared: len });
        }
        self.take(len as usize, "bytes body")
    }

    /// Read a fixed-width 32-byte array.
    pub fn get_array32(&mut self) -> Result<[u8; 32], WireError> {
        Ok(self.take(32, "array32")?.try_into().expect("32 bytes"))
    }

    /// Read a fixed-width array of `n` bytes.
    pub fn get_array(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n, "fixed array")
    }

    /// Read a length-prefixed vector of `u64`.
    pub fn get_u64_vec(&mut self) -> Result<Vec<u64>, WireError> {
        let len = self.get_u64()?;
        if len > MAX_FIELD_LEN / 8 {
            return Err(WireError::LengthOverflow { declared: len });
        }
        let mut out = Vec::with_capacity(len as usize);
        for _ in 0..len {
            out.push(self.get_u64()?);
        }
        Ok(out)
    }

    /// Assert the message is fully consumed.
    pub fn finish(self) -> Result<(), WireError> {
        if self.pos != self.buf.len() {
            return Err(WireError::TrailingBytes {
                count: self.buf.len() - self.pos,
            });
        }
        Ok(())
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_field_kinds() {
        let mut w = WireWriter::new();
        w.put_u8(7)
            .put_u32(0xDEAD_BEEF)
            .put_u64(u64::MAX)
            .put_bytes(b"payload")
            .put_array(&[1, 2, 3])
            .put_u64_vec(&[10, 20, 30]);
        let msg = w.finish();

        let mut r = WireReader::new(&msg);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_bytes().unwrap(), b"payload");
        assert_eq!(r.get_array(3).unwrap(), &[1, 2, 3]);
        assert_eq!(r.get_u64_vec().unwrap(), vec![10, 20, 30]);
        r.finish().unwrap();
    }

    #[test]
    fn unprefixed_u64_run_reads_back_word_by_word() {
        let mut w = WireWriter::new();
        w.put_u8(1).put_u64s(&[10, 20, 30]);
        let msg = w.finish();
        // No length prefix on the wire: 1 tag byte + 3 bare words.
        assert_eq!(msg.len(), 1 + 3 * 8);
        let mut r = WireReader::new(&msg);
        assert_eq!(r.get_u8().unwrap(), 1);
        for expected in [10, 20, 30] {
            assert_eq!(r.get_u64().unwrap(), expected);
        }
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_detected() {
        let mut w = WireWriter::new();
        w.put_u64(42);
        let msg = w.finish();
        let mut r = WireReader::new(&msg[..4]);
        assert!(matches!(r.get_u64(), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn length_bomb_is_rejected() {
        let mut w = WireWriter::new();
        w.put_u64(u64::MAX); // absurd length prefix
        let msg = w.finish();
        let mut r = WireReader::new(&msg);
        assert!(matches!(
            r.get_bytes(),
            Err(WireError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn declared_length_beyond_buffer_is_truncated_error() {
        let mut w = WireWriter::new();
        w.put_u64(100); // claims 100 bytes follow
        let msg = w.finish();
        let mut r = WireReader::new(&msg);
        assert!(matches!(r.get_bytes(), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn count_bomb_is_rejected_before_allocation() {
        // A forged count far beyond the available bytes must be rejected
        // by get_count — otherwise Vec::with_capacity aborts the process.
        let mut w = WireWriter::new();
        w.put_u64(u64::MAX / 2).put_u8(0);
        let msg = w.finish();
        let mut r = WireReader::new(&msg);
        assert!(matches!(
            r.get_count(16),
            Err(WireError::LengthOverflow { .. })
        ));
        // An honest count within bounds passes.
        let mut w = WireWriter::new();
        w.put_u64(2).put_array(&[0u8; 32]);
        let msg = w.finish();
        let mut r = WireReader::new(&msg);
        assert_eq!(r.get_count(16).unwrap(), 2);
    }

    #[test]
    fn trailing_bytes_are_detected() {
        let mut w = WireWriter::new();
        w.put_u8(1).put_u8(2);
        let msg = w.finish();
        let mut r = WireReader::new(&msg);
        r.get_u8().unwrap();
        assert_eq!(r.remaining(), 1);
        assert!(matches!(
            r.finish(),
            Err(WireError::TrailingBytes { count: 1 })
        ));
    }

    #[test]
    fn empty_collections_round_trip() {
        let mut w = WireWriter::new();
        w.put_bytes(b"").put_u64_vec(&[]);
        let msg = w.finish();
        let mut r = WireReader::new(&msg);
        assert_eq!(r.get_bytes().unwrap(), b"");
        assert_eq!(r.get_u64_vec().unwrap(), Vec::<u64>::new());
        r.finish().unwrap();
    }

    #[test]
    fn array32_round_trip() {
        let arr = [9u8; 32];
        let mut w = WireWriter::new();
        w.put_array(&arr);
        let msg = w.finish();
        let mut r = WireReader::new(&msg);
        assert_eq!(r.get_array32().unwrap(), arr);
    }
}
