//! Network latency model.
//!
//! Converts a metered transcript ([`MeterSnapshot`]) into simulated
//! wall-clock time: `rounds * RTT + bytes / bandwidth`. This is how the
//! paper's qualitative claim — "the time delay due to the second round of
//! communication" matters for thin links but not broadband (§6) — becomes a
//! quantitative experiment (E3): the same protocol transcript is priced
//! under different link profiles.

use crate::meter::MeterSnapshot;
use std::time::Duration;

/// A symmetric link profile.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkProfile {
    /// Round-trip time charged per protocol round.
    pub rtt: Duration,
    /// Link bandwidth in bytes/second (both directions), `None` = infinite.
    pub bandwidth_bps: Option<u64>,
    /// Profile name for experiment output.
    pub name: &'static str,
}

impl LinkProfile {
    /// A domestic broadband link: 20 ms RTT, 100 Mbit/s.
    #[must_use]
    pub fn broadband() -> Self {
        LinkProfile {
            rtt: Duration::from_millis(20),
            bandwidth_bps: Some(12_500_000),
            name: "broadband",
        }
    }

    /// A 2010-era mobile link (the paper's traveler): 300 ms RTT, 1 Mbit/s.
    #[must_use]
    pub fn mobile() -> Self {
        LinkProfile {
            rtt: Duration::from_millis(300),
            bandwidth_bps: Some(125_000),
            name: "mobile",
        }
    }

    /// A LAN link: 1 ms RTT, 1 Gbit/s.
    #[must_use]
    pub fn lan() -> Self {
        LinkProfile {
            rtt: Duration::from_millis(1),
            bandwidth_bps: Some(125_000_000),
            name: "lan",
        }
    }

    /// Zero-cost link (isolates computation in experiments).
    #[must_use]
    pub fn free() -> Self {
        LinkProfile {
            rtt: Duration::ZERO,
            bandwidth_bps: None,
            name: "free",
        }
    }

    /// Simulated time to execute a transcript over this link.
    #[must_use]
    pub fn simulate(&self, transcript: &MeterSnapshot) -> Duration {
        let round_cost = self.rtt * u32::try_from(transcript.rounds).unwrap_or(u32::MAX);
        let transfer_cost = match self.bandwidth_bps {
            None => Duration::ZERO,
            Some(bps) => {
                let bytes = transcript.bytes_total();
                Duration::from_secs_f64(bytes as f64 / bps as f64)
            }
        };
        round_cost + transfer_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transcript(rounds: u64, up: u64, down: u64) -> MeterSnapshot {
        MeterSnapshot {
            rounds,
            bytes_up: up,
            bytes_down: down,
        }
    }

    #[test]
    fn rtt_dominates_small_messages() {
        let p = LinkProfile::mobile();
        let one_round = p.simulate(&transcript(1, 100, 100));
        let two_rounds = p.simulate(&transcript(2, 100, 100));
        assert!(two_rounds > one_round);
        // The extra round costs ~one RTT.
        let diff = two_rounds - one_round;
        assert_eq!(diff, Duration::from_millis(300));
    }

    #[test]
    fn bandwidth_charges_for_bytes() {
        let p = LinkProfile {
            rtt: Duration::ZERO,
            bandwidth_bps: Some(1000),
            name: "test",
        };
        let t = p.simulate(&transcript(1, 500, 500));
        assert_eq!(t, Duration::from_secs(1));
    }

    #[test]
    fn free_link_is_free() {
        let p = LinkProfile::free();
        assert_eq!(
            p.simulate(&transcript(10, 1 << 30, 1 << 30)),
            Duration::ZERO
        );
    }

    #[test]
    fn profiles_are_ordered_sensibly() {
        let t = transcript(2, 10_000, 10_000);
        let lan = LinkProfile::lan().simulate(&t);
        let broadband = LinkProfile::broadband().simulate(&t);
        let mobile = LinkProfile::mobile().simulate(&t);
        assert!(lan < broadband);
        assert!(broadband < mobile);
    }

    #[test]
    fn empty_transcript_is_instant() {
        assert_eq!(
            LinkProfile::mobile().simulate(&MeterSnapshot::default()),
            Duration::ZERO
        );
    }
}
