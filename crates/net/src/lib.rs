//! # sse-net
//!
//! Client↔server transport simulation.
//!
//! The paper's two schemes differ in *communication rounds* (Table 1:
//! Scheme 1 needs two rounds per search/update, Scheme 2 one) and in
//! *bandwidth* (Scheme 1 ships a full bit-array per updated keyword). The
//! authors had no testbed; to turn their analytical claims into
//! measurements this crate provides:
//!
//! * [`wire`] — a compact, dependency-free binary codec for protocol
//!   messages;
//! * [`frame`] — length-prefixed framing over [`bytes`] buffers, for the
//!   threaded transport;
//! * [`meter`] — round/byte accounting shared by all protocol runs — the
//!   data source for experiments E3 and E4;
//! * [`link`] — [`link::MeteredLink`], the synchronous request/response
//!   channel the schemes run over, and a threaded [`link::Duplex`] variant;
//! * [`latency`] — converts a metered transcript into simulated wall-clock
//!   time under a configurable RTT/bandwidth model;
//! * [`fault`] — [`fault::FaultyLink`], a transport wrapper that drops,
//!   truncates, duplicates or delays whole rounds on a seeded schedule;
//! * [`pool`] — [`pool::BufPool`], size-classed recycled frame buffers and
//!   the [`pool::PooledBuf`] views the zero-copy serving path hands around.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod frame;
pub mod latency;
pub mod link;
pub mod meter;
pub mod pool;
pub mod shutdown;
pub mod wire;
