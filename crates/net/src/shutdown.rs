//! Cooperative shutdown signalling.
//!
//! One [`ShutdownSignal`] is shared between a serving loop and whoever owns
//! it. Requesting shutdown is idempotent and lock-free; serving loops poll
//! [`ShutdownSignal::is_requested`] between units of work. The same
//! primitive drives both the in-process [`crate::link::Duplex`] transport
//! and the TCP daemon's connection-draining logic (crates/server), so every
//! serving layer in the repo stops the same way.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A cloneable one-way "stop now" flag.
#[derive(Clone, Default, Debug)]
pub struct ShutdownSignal {
    flag: Arc<AtomicBool>,
}

impl ShutdownSignal {
    /// A signal in the "keep running" state.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Request shutdown. Idempotent; wakes nobody by itself — pair it with
    /// a wake-up message on whatever channel the serving loop blocks on.
    pub fn request(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    #[must_use]
    pub fn is_requested(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_unrequested_and_latches() {
        let s = ShutdownSignal::new();
        assert!(!s.is_requested());
        s.request();
        s.request();
        assert!(s.is_requested());
    }

    #[test]
    fn clones_share_the_flag() {
        let s = ShutdownSignal::new();
        let s2 = s.clone();
        s2.request();
        assert!(s.is_requested());
    }

    #[test]
    fn visible_across_threads() {
        let s = ShutdownSignal::new();
        let s2 = s.clone();
        let t = std::thread::spawn(move || {
            while !s2.is_requested() {
                std::thread::yield_now();
            }
        });
        s.request();
        t.join().unwrap();
    }
}
