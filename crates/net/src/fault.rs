//! Deterministic network fault injection for [`crate::link::Transport`]s.
//!
//! [`FaultyLink`] wraps any transport and perturbs whole protocol rounds on
//! a seeded schedule: a round can be **dropped** (request never sent),
//! **truncated** (request delivered and executed, response lost),
//! **duplicated** (response frame delivered twice; the copy is detected and
//! discarded) or **delayed** (bounded sleep, then delivered). The schedule
//! is a pure function of `(seed, round_number)`, so a failing test seed
//! reproduces exactly.
//!
//! Fault semantics respect the at-most-once transport contract: a faulty
//! round either surfaces a clean error to the caller or delivers the
//! correct response — never a silently wrong answer, and never a hidden
//! retransmission (the SSE index mutations are not idempotent; re-sending
//! an `ApplyUpdates` would XOR-cancel it).

use crate::link::Transport;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One kind of injected network fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetFault {
    /// The request is never sent; the peer sees nothing.
    Drop,
    /// The request is delivered and executed, but the response is lost in
    /// transit. The caller cannot know whether the operation applied.
    Truncate,
    /// The response frame arrives twice; the duplicate is discarded and
    /// counted. The caller sees the correct response.
    Duplicate,
    /// The response is delayed by a bounded sleep, then delivered intact.
    Delay,
}

/// Seeded schedule of which rounds fault and how.
#[derive(Clone, Debug, Default)]
pub struct NetFaultConfig {
    /// Seed for the per-round hash; same seed → same fault sequence.
    pub seed: u64,
    /// Out of 1000 rounds, how many are dropped.
    pub drop_per_mille: u16,
    /// Out of 1000 rounds, how many lose their response.
    pub truncate_per_mille: u16,
    /// Out of 1000 rounds, how many see a duplicated response.
    pub duplicate_per_mille: u16,
    /// Out of 1000 rounds, how many are delayed.
    pub delay_per_mille: u16,
    /// Length of an injected delay, in microseconds (bounded; keep small
    /// in tests).
    pub delay_micros: u64,
    /// Explicit overrides: fault exactly the given (1-based) rounds,
    /// regardless of the per-mille rates. Checked before the hash.
    pub forced: Vec<(u64, NetFault)>,
}

impl NetFaultConfig {
    /// A schedule that faults nothing (useful as a control).
    #[must_use]
    pub fn quiet(seed: u64) -> Self {
        NetFaultConfig {
            seed,
            ..Self::default()
        }
    }

    /// Decide the fault for (1-based) round `n` — a pure function.
    #[must_use]
    pub fn fault_for_round(&self, n: u64) -> Option<NetFault> {
        if let Some((_, fault)) = self.forced.iter().find(|(at, _)| *at == n) {
            return Some(*fault);
        }
        let roll = (splitmix64(self.seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15)) % 1000) as u16;
        let mut floor = 0u16;
        for (rate, fault) in [
            (self.drop_per_mille, NetFault::Drop),
            (self.truncate_per_mille, NetFault::Truncate),
            (self.duplicate_per_mille, NetFault::Duplicate),
            (self.delay_per_mille, NetFault::Delay),
        ] {
            if roll < floor.saturating_add(rate) {
                return Some(fault);
            }
            floor = floor.saturating_add(rate);
        }
        None
    }
}

/// Counters for what the wrapper actually injected. Shareable: keep a
/// clone of the [`Arc`] to read them while the link is owned by a client.
#[derive(Debug, Default)]
pub struct NetFaultStats {
    /// Rounds attempted through the wrapper.
    pub rounds: AtomicU64,
    /// Requests dropped before transmission.
    pub drops: AtomicU64,
    /// Responses lost after execution.
    pub truncations: AtomicU64,
    /// Duplicate response frames discarded.
    pub duplicates_discarded: AtomicU64,
    /// Rounds delayed.
    pub delays: AtomicU64,
}

impl NetFaultStats {
    /// Total faults injected.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.drops.load(Ordering::Relaxed)
            + self.truncations.load(Ordering::Relaxed)
            + self.duplicates_discarded.load(Ordering::Relaxed)
            + self.delays.load(Ordering::Relaxed)
    }
}

/// A [`Transport`] wrapper injecting scheduled faults on whole rounds.
pub struct FaultyLink<T: Transport> {
    inner: T,
    config: NetFaultConfig,
    round: u64,
    stats: Arc<NetFaultStats>,
}

impl<T: Transport> FaultyLink<T> {
    /// Wrap `inner` under the given fault schedule.
    pub fn new(inner: T, config: NetFaultConfig) -> Self {
        FaultyLink {
            inner,
            config,
            round: 0,
            stats: Arc::new(NetFaultStats::default()),
        }
    }

    /// Shared handle to the injection counters.
    #[must_use]
    pub fn stats(&self) -> Arc<NetFaultStats> {
        Arc::clone(&self.stats)
    }

    /// The wrapped transport.
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }

    /// The fault (if any) the schedule assigns to the *next* round. Tests
    /// use this to predict which operations will fail.
    #[must_use]
    pub fn next_round_fault(&self) -> Option<NetFault> {
        self.config.fault_for_round(self.round + 1)
    }
}

impl<T: Transport> Transport for FaultyLink<T> {
    fn round_trip(&mut self, request: &[u8]) -> std::io::Result<Vec<u8>> {
        use std::io::{Error, ErrorKind};
        self.round += 1;
        self.stats.rounds.fetch_add(1, Ordering::Relaxed);
        match self.config.fault_for_round(self.round) {
            None => self.inner.round_trip(request),
            Some(NetFault::Drop) => {
                self.stats.drops.fetch_add(1, Ordering::Relaxed);
                Err(Error::new(
                    ErrorKind::ConnectionReset,
                    "injected fault: request dropped before transmission",
                ))
            }
            Some(NetFault::Truncate) => {
                self.stats.truncations.fetch_add(1, Ordering::Relaxed);
                // The peer executes the request; only the response is lost.
                let _executed = self.inner.round_trip(request)?;
                Err(Error::new(
                    ErrorKind::UnexpectedEof,
                    "injected fault: response truncated in transit",
                ))
            }
            Some(NetFault::Duplicate) => {
                let response = self.inner.round_trip(request)?;
                // The duplicate frame would carry an already-consumed
                // sequence number; the receive path discards it.
                self.stats
                    .duplicates_discarded
                    .fetch_add(1, Ordering::Relaxed);
                Ok(response)
            }
            Some(NetFault::Delay) => {
                self.stats.delays.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(std::time::Duration::from_micros(self.config.delay_micros));
                self.inner.round_trip(request)
            }
        }
    }
}

/// SplitMix64 — the same tiny deterministic mixer the storage fault
/// injector uses.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::MeteredLink;
    use crate::meter::Meter;

    type EchoLink = MeteredLink<fn(&[u8]) -> Vec<u8>>;

    fn echo() -> EchoLink {
        MeteredLink::new(|req: &[u8]| req.to_vec(), Meter::new())
    }

    #[test]
    fn quiet_schedule_is_transparent() {
        let mut link = FaultyLink::new(echo(), NetFaultConfig::quiet(7));
        for i in 0..50u8 {
            assert_eq!(link.round_trip(&[i]).unwrap(), vec![i]);
        }
        assert_eq!(link.stats().injected(), 0);
    }

    #[test]
    fn forced_drop_fails_cleanly_without_delivery() {
        let counter = std::sync::Arc::new(AtomicU64::new(0));
        let c = counter.clone();
        let service = move |req: &[u8]| {
            c.fetch_add(1, Ordering::Relaxed);
            req.to_vec()
        };
        let mut link = FaultyLink::new(
            MeteredLink::new(service, Meter::new()),
            NetFaultConfig {
                forced: vec![(2, NetFault::Drop)],
                ..NetFaultConfig::quiet(0)
            },
        );
        assert!(link.round_trip(b"a").is_ok());
        assert!(link.round_trip(b"b").is_err(), "round 2 drops");
        assert!(link.round_trip(b"c").is_ok());
        // The dropped request never reached the service.
        assert_eq!(counter.load(Ordering::Relaxed), 2);
        assert_eq!(link.stats().drops.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn forced_truncate_executes_but_loses_response() {
        let counter = std::sync::Arc::new(AtomicU64::new(0));
        let c = counter.clone();
        let service = move |req: &[u8]| {
            c.fetch_add(1, Ordering::Relaxed);
            req.to_vec()
        };
        let mut link = FaultyLink::new(
            MeteredLink::new(service, Meter::new()),
            NetFaultConfig {
                forced: vec![(1, NetFault::Truncate)],
                ..NetFaultConfig::quiet(0)
            },
        );
        assert!(link.round_trip(b"x").is_err());
        // The request *was* executed — the in-doubt case.
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn duplicate_and_delay_still_deliver_correct_response() {
        let mut link = FaultyLink::new(
            echo(),
            NetFaultConfig {
                forced: vec![(1, NetFault::Duplicate), (2, NetFault::Delay)],
                delay_micros: 50,
                ..NetFaultConfig::quiet(0)
            },
        );
        assert_eq!(link.round_trip(b"dup").unwrap(), b"dup");
        assert_eq!(link.round_trip(b"slow").unwrap(), b"slow");
        assert_eq!(link.stats().duplicates_discarded.load(Ordering::Relaxed), 1);
        assert_eq!(link.stats().delays.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let cfg = NetFaultConfig {
            seed: 42,
            drop_per_mille: 100,
            truncate_per_mille: 100,
            duplicate_per_mille: 100,
            delay_per_mille: 100,
            ..NetFaultConfig::default()
        };
        let a: Vec<_> = (1..=500).map(|n| cfg.fault_for_round(n)).collect();
        let b: Vec<_> = (1..=500).map(|n| cfg.fault_for_round(n)).collect();
        assert_eq!(a, b);
        // ~40% fault rate over 500 rounds: expect a healthy mix.
        assert!(a.iter().filter(|f| f.is_some()).count() > 100);
        assert!(a.iter().filter(|f| f.is_none()).count() > 100);
    }
}
