//! Round and byte accounting for protocol runs.
//!
//! A *round* is one client→server request plus its server→client response —
//! the unit Table 1 counts ("two rounds" for Scheme 1's search, "one round"
//! for Scheme 2's). Byte counters separate uplink (client→server) from
//! downlink traffic, which is what distinguishes the schemes' update
//! bandwidth (experiment E4).
//!
//! The meter is cheap, thread-safe and cloneable: clones share counters, so
//! a link and the experiment harness observe the same totals.

use parking_lot::Mutex;
use std::sync::Arc;

/// A point-in-time copy of the counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MeterSnapshot {
    /// Completed request/response rounds.
    pub rounds: u64,
    /// Bytes sent client→server.
    pub bytes_up: u64,
    /// Bytes sent server→client.
    pub bytes_down: u64,
}

impl MeterSnapshot {
    /// Counter deltas from `earlier` to `self`.
    #[must_use]
    pub fn since(&self, earlier: &MeterSnapshot) -> MeterSnapshot {
        MeterSnapshot {
            rounds: self.rounds - earlier.rounds,
            bytes_up: self.bytes_up - earlier.bytes_up,
            bytes_down: self.bytes_down - earlier.bytes_down,
        }
    }

    /// Total bytes in both directions.
    #[must_use]
    pub fn bytes_total(&self) -> u64 {
        self.bytes_up + self.bytes_down
    }
}

/// Shared round/byte counters.
#[derive(Clone, Default)]
pub struct Meter {
    inner: Arc<Mutex<MeterSnapshot>>,
}

impl Meter {
    /// A meter with zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one completed round with the given request/response sizes.
    pub fn record_round(&self, request_bytes: usize, response_bytes: usize) {
        let mut m = self.inner.lock();
        m.rounds += 1;
        m.bytes_up += request_bytes as u64;
        m.bytes_down += response_bytes as u64;
    }

    /// Record a one-way client→server message that expects no response
    /// (still a round for Table-1 purposes — the paper counts message
    /// exchanges initiated by the client).
    pub fn record_oneway_up(&self, request_bytes: usize) {
        let mut m = self.inner.lock();
        m.rounds += 1;
        m.bytes_up += request_bytes as u64;
    }

    /// Current counter values.
    #[must_use]
    pub fn snapshot(&self) -> MeterSnapshot {
        *self.inner.lock()
    }

    /// Zero the counters.
    pub fn reset(&self) {
        *self.inner.lock() = MeterSnapshot::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_rounds_and_bytes() {
        let m = Meter::new();
        m.record_round(100, 2000);
        m.record_round(50, 10);
        let s = m.snapshot();
        assert_eq!(s.rounds, 2);
        assert_eq!(s.bytes_up, 150);
        assert_eq!(s.bytes_down, 2010);
        assert_eq!(s.bytes_total(), 2160);
    }

    #[test]
    fn oneway_counts_as_round_without_downlink() {
        let m = Meter::new();
        m.record_oneway_up(64);
        let s = m.snapshot();
        assert_eq!(s.rounds, 1);
        assert_eq!(s.bytes_up, 64);
        assert_eq!(s.bytes_down, 0);
    }

    #[test]
    fn clones_share_counters() {
        let m = Meter::new();
        let m2 = m.clone();
        m2.record_round(1, 1);
        assert_eq!(m.snapshot().rounds, 1);
    }

    #[test]
    fn snapshot_diff() {
        let m = Meter::new();
        m.record_round(10, 10);
        let before = m.snapshot();
        m.record_round(5, 7);
        m.record_round(5, 7);
        let delta = m.snapshot().since(&before);
        assert_eq!(delta.rounds, 2);
        assert_eq!(delta.bytes_up, 10);
        assert_eq!(delta.bytes_down, 14);
    }

    #[test]
    fn reset_zeroes() {
        let m = Meter::new();
        m.record_round(9, 9);
        m.reset();
        assert_eq!(m.snapshot(), MeterSnapshot::default());
    }

    #[test]
    fn concurrent_updates_are_consistent() {
        let m = Meter::new();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        m.record_round(3, 5);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = m.snapshot();
        assert_eq!(s.rounds, 8000);
        assert_eq!(s.bytes_up, 24_000);
        assert_eq!(s.bytes_down, 40_000);
    }
}
