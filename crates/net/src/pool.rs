//! Size-classed frame-buffer pool for the zero-copy serving path.
//!
//! Every inbound frame used to cost one fresh heap `Vec` (and every hop
//! after it another copy). [`BufPool`] recycles those buffers instead:
//! the streaming decoder acquires a cleared buffer of the right size
//! class, fills it from the socket, and seals it into a [`PooledBuf`] —
//! a handle that gives out `&[u8]` views, slices cheaply from the front,
//! and returns the backing buffer to the pool when the last holder drops
//! it. The hot path (acquire hit → seal → drop → recycle) performs **no
//! heap allocation at all**: sealing stores the buffer inline, and
//! sharing only upgrades to a reference count when a second holder
//! actually appears.
//!
//! Safety valves, because a pool that can't say no is a leak:
//!
//! * **Poisoning.** A holder that finds the bytes suspect (protocol
//!   violation, torn decode) calls [`PooledBuf::poison`]; a poisoned
//!   buffer is dropped on release, never recycled, and counted.
//! * **High-water trimming.** Each size class keeps at most
//!   `max_free_per_class` free buffers; surplus returns are dropped
//!   (counted as trims), so a burst does not become permanent RSS.
//! * **Bounded slack.** A returned buffer is recycled only while its
//!   capacity is within 4x of the class it would serve; anything larger
//!   (e.g. a 64 MiB oversize frame) is freed rather than parked.
//!
//! Counters ([`BufPool::counters`]) make the recycling rate a measured
//! number: hits/misses on acquire, recycles/trims/poisons on release.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};

/// Default size-class ladder (bytes). 4x steps: any recycled capacity in
/// `[256, 1 MiB]` lands in a class with at most 4x slack.
pub const DEFAULT_CLASSES: [usize; 6] = [256, 1024, 4096, 16384, 65536, 262144];

/// Default per-class free-list bound.
pub const DEFAULT_MAX_FREE_PER_CLASS: usize = 64;

/// Recycle a returned buffer only while `capacity <= SLACK * class_size`
/// — beyond that the buffer is freed instead of parked (a 64 MiB frame
/// must not squat in the 256 KiB class forever).
const SLACK: usize = 4;

#[derive(Debug, Default)]
struct PoolCountersAtomic {
    hits: AtomicU64,
    misses: AtomicU64,
    recycles: AtomicU64,
    trimmed: AtomicU64,
    poisoned: AtomicU64,
    oversize: AtomicU64,
}

/// Point-in-time pool statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolCounters {
    /// Acquires served from a free list.
    pub hits: u64,
    /// Acquires that had to allocate fresh.
    pub misses: u64,
    /// Buffers returned to a free list.
    pub recycles: u64,
    /// Returned buffers dropped by the high-water bound or the slack rule.
    pub trimmed: u64,
    /// Buffers dropped because a holder poisoned them.
    pub poisoned: u64,
    /// Acquires larger than the largest size class (allocated exact,
    /// never parked back beyond the slack rule).
    pub oversize: u64,
}

#[derive(Debug)]
struct PoolShared {
    /// Ascending class sizes, each with its bounded free list.
    classes: Vec<(usize, Mutex<Vec<Vec<u8>>>)>,
    max_free_per_class: usize,
    counters: PoolCountersAtomic,
}

impl PoolShared {
    /// Return `buf` to the free list of the largest class it can serve.
    fn put_back(&self, mut buf: Vec<u8>) {
        let cap = buf.capacity();
        let class = self
            .classes
            .iter()
            .rev()
            .find(|(size, _)| *size <= cap)
            .filter(|(size, _)| cap <= SLACK * *size);
        let Some((_, free)) = class else {
            // Smaller than the smallest class or too much slack: freeing
            // beats parking either way.
            self.counters.trimmed.fetch_add(1, Ordering::Relaxed);
            return;
        };
        buf.clear();
        let mut free = free.lock().expect("pool free list poisoned");
        if free.len() >= self.max_free_per_class {
            drop(free);
            self.counters.trimmed.fetch_add(1, Ordering::Relaxed);
        } else {
            free.push(buf);
            drop(free);
            self.counters.recycles.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A shared, size-classed pool of reusable byte buffers. Cloning shares
/// the pool (cheap `Arc` clone).
#[derive(Clone, Debug)]
pub struct BufPool {
    inner: Arc<PoolShared>,
}

impl Default for BufPool {
    fn default() -> Self {
        BufPool::new()
    }
}

impl BufPool {
    /// Pool with the default class ladder and high-water bound.
    #[must_use]
    pub fn new() -> BufPool {
        BufPool::with_config(&DEFAULT_CLASSES, DEFAULT_MAX_FREE_PER_CLASS)
    }

    /// Pool with an explicit ascending class ladder and per-class bound.
    ///
    /// # Panics
    /// Panics if `classes` is empty or not strictly ascending.
    #[must_use]
    pub fn with_config(classes: &[usize], max_free_per_class: usize) -> BufPool {
        assert!(!classes.is_empty(), "pool needs at least one size class");
        assert!(
            classes.windows(2).all(|w| w[0] < w[1]),
            "size classes must be strictly ascending"
        );
        BufPool {
            inner: Arc::new(PoolShared {
                classes: classes
                    .iter()
                    .map(|&size| (size, Mutex::new(Vec::new())))
                    .collect(),
                max_free_per_class,
                counters: PoolCountersAtomic::default(),
            }),
        }
    }

    /// An empty buffer with capacity for at least `capacity` bytes: a
    /// recycled one when the class has a free buffer (hit), fresh
    /// otherwise (miss). Requests beyond the largest class allocate
    /// exactly `capacity` and are counted as oversize.
    #[must_use]
    pub fn acquire(&self, capacity: usize) -> Vec<u8> {
        let c = &self.inner.counters;
        let Some((size, free)) = self
            .inner
            .classes
            .iter()
            .find(|(size, _)| *size >= capacity)
        else {
            c.oversize.fetch_add(1, Ordering::Relaxed);
            c.misses.fetch_add(1, Ordering::Relaxed);
            return Vec::with_capacity(capacity);
        };
        let recycled = free.lock().expect("pool free list poisoned").pop();
        match recycled {
            Some(buf) => {
                c.hits.fetch_add(1, Ordering::Relaxed);
                buf
            }
            None => {
                c.misses.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(*size)
            }
        }
    }

    /// Return a plain buffer to the pool without sealing it — the escape
    /// hatch for write-phase buffers that never became a frame (a decoder
    /// dropped mid-body, a response buffer already flushed to the socket).
    pub fn release(&self, buf: Vec<u8>) {
        self.inner.put_back(buf);
    }

    /// Wrap a filled buffer into a [`PooledBuf`] whose final drop recycles
    /// the backing storage here. Allocation-free.
    #[must_use]
    pub fn seal(&self, buf: Vec<u8>) -> PooledBuf {
        let end = buf.len();
        PooledBuf {
            inner: Inner::Exclusive(RawBuf {
                buf,
                pool: Arc::downgrade(&self.inner),
                poisoned: AtomicBool::new(false),
            }),
            start: 0,
            end,
        }
    }

    /// Current counter values.
    #[must_use]
    pub fn counters(&self) -> PoolCounters {
        let c = &self.inner.counters;
        PoolCounters {
            hits: c.hits.load(Ordering::Relaxed),
            misses: c.misses.load(Ordering::Relaxed),
            recycles: c.recycles.load(Ordering::Relaxed),
            trimmed: c.trimmed.load(Ordering::Relaxed),
            poisoned: c.poisoned.load(Ordering::Relaxed),
            oversize: c.oversize.load(Ordering::Relaxed),
        }
    }

    /// Buffers currently parked across all free lists (test/diagnostic).
    #[must_use]
    pub fn free_buffers(&self) -> usize {
        self.inner
            .classes
            .iter()
            .map(|(_, free)| free.lock().expect("pool free list poisoned").len())
            .sum()
    }

    /// Drop every parked buffer (memory-pressure valve; counted as trims).
    pub fn trim(&self) {
        for (_, free) in &self.inner.classes {
            let drained: Vec<Vec<u8>> =
                std::mem::take(&mut *free.lock().expect("pool free list poisoned"));
            self.inner
                .counters
                .trimmed
                .fetch_add(drained.len() as u64, Ordering::Relaxed);
        }
    }
}

/// The backing storage of a [`PooledBuf`]: the bytes, a weak handle back
/// to the pool (dangling for unpooled buffers), and the poison flag.
/// Dropping it returns the bytes to the pool — or frees them if poisoned,
/// unpooled, or the pool itself is gone.
#[derive(Debug)]
struct RawBuf {
    buf: Vec<u8>,
    pool: Weak<PoolShared>,
    poisoned: AtomicBool,
}

impl Drop for RawBuf {
    fn drop(&mut self) {
        let Some(pool) = self.pool.upgrade() else {
            return; // unpooled, or the pool outlived its last handle
        };
        if self.poisoned.load(Ordering::Relaxed) {
            pool.counters.poisoned.fetch_add(1, Ordering::Relaxed);
        } else {
            pool.put_back(std::mem::take(&mut self.buf));
        }
    }
}

/// Exclusive until shared: a freshly sealed buffer has one holder and
/// stores its bytes inline (no allocation); the first [`PooledBuf::share`]
/// upgrades to an `Arc` so multiple views can hold the same backing
/// buffer, which returns to the pool when the last view drops.
#[derive(Debug)]
enum Inner {
    Exclusive(RawBuf),
    Shared(Arc<RawBuf>),
}

impl Inner {
    fn raw(&self) -> &RawBuf {
        match self {
            Inner::Exclusive(raw) => raw,
            Inner::Shared(raw) => raw,
        }
    }
}

/// A view into a pool-backed (or plain) byte buffer. Dereferences to
/// `&[u8]`; [`PooledBuf::advance`]/[`PooledBuf::truncate`] narrow the view
/// without copying; [`PooledBuf::share`] hands out additional views. The
/// backing buffer returns to its pool when the last view drops — unless
/// someone called [`PooledBuf::poison`] first.
#[derive(Debug)]
pub struct PooledBuf {
    inner: Inner,
    start: usize,
    end: usize,
}

impl PooledBuf {
    /// Wrap a plain `Vec` with no pool attached: same API, ordinary
    /// drop-frees-it semantics. The owned-buffer fallback for the
    /// `--threaded` path and for pool-disabled servers.
    #[must_use]
    pub fn from_vec(buf: Vec<u8>) -> PooledBuf {
        let end = buf.len();
        PooledBuf {
            inner: Inner::Exclusive(RawBuf {
                buf,
                pool: Weak::new(),
                poisoned: AtomicBool::new(false),
            }),
            start: 0,
            end,
        }
    }

    /// Bytes visible through this view.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The viewed bytes.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.inner.raw().buf[self.start..self.end]
    }

    /// Drop the first `n` bytes from the view (no copy).
    ///
    /// # Panics
    /// Panics if `n > self.len()`.
    pub fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of view");
        self.start += n;
    }

    /// Shorten the view to its first `len` bytes (no copy; no-op when
    /// already shorter).
    pub fn truncate(&mut self, len: usize) {
        self.end = self.end.min(self.start + len);
    }

    /// Another view of the same backing buffer and range. The first share
    /// upgrades the buffer to reference counting (its only allocation);
    /// later shares are refcount bumps.
    pub fn share(&mut self) -> PooledBuf {
        if let Inner::Exclusive(raw) = &mut self.inner {
            let raw = std::mem::replace(
                raw,
                RawBuf {
                    buf: Vec::new(),
                    pool: Weak::new(),
                    poisoned: AtomicBool::new(false),
                },
            );
            self.inner = Inner::Shared(Arc::new(raw));
        }
        let Inner::Shared(raw) = &self.inner else {
            unreachable!("just upgraded to shared")
        };
        PooledBuf {
            inner: Inner::Shared(Arc::clone(raw)),
            start: self.start,
            end: self.end,
        }
    }

    /// A shared sub-view of `range` (relative to this view).
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&mut self, range: std::ops::Range<usize>) -> PooledBuf {
        assert!(range.start <= range.end && range.end <= self.len());
        let mut view = self.share();
        view.end = view.start + range.end;
        view.start += range.start;
        view
    }

    /// Mark the backing buffer corrupt: when the last view drops, the
    /// buffer is freed (and counted) instead of recycled.
    pub fn poison(&self) {
        self.inner.raw().poisoned.store(true, Ordering::Relaxed);
    }
}

impl std::ops::Deref for PooledBuf {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for PooledBuf {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq<[u8]> for PooledBuf {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_pool() -> BufPool {
        BufPool::with_config(&[16, 64, 256], 2)
    }

    #[test]
    fn acquire_miss_then_recycle_then_hit() {
        let pool = tiny_pool();
        let buf = pool.acquire(10);
        assert!(buf.capacity() >= 10);
        assert_eq!(pool.counters().misses, 1);

        let mut sealed = {
            let mut b = buf;
            b.extend_from_slice(b"0123456789");
            pool.seal(b)
        };
        assert_eq!(&sealed[..], b"0123456789");
        sealed.advance(3);
        assert_eq!(&sealed[..], b"3456789");
        sealed.truncate(4);
        assert_eq!(&sealed[..], b"3456");
        drop(sealed);
        assert_eq!(pool.counters().recycles, 1);
        assert_eq!(pool.free_buffers(), 1);

        let again = pool.acquire(12);
        assert!(again.is_empty(), "recycled buffer must come back cleared");
        assert_eq!(pool.counters().hits, 1);
    }

    #[test]
    fn shared_views_recycle_exactly_once_at_last_drop() {
        let pool = tiny_pool();
        let mut buf = pool.acquire(8);
        buf.extend_from_slice(b"abcdefgh");
        let mut whole = pool.seal(buf);
        let tail = whole.slice(4..8);
        assert_eq!(&tail[..], b"efgh");
        assert_eq!(&whole[..], b"abcdefgh", "slicing must not move the base");
        drop(whole);
        assert_eq!(
            pool.counters().recycles,
            0,
            "buffer still held by the slice"
        );
        drop(tail);
        assert_eq!(pool.counters().recycles, 1);
        assert_eq!(pool.free_buffers(), 1);
    }

    #[test]
    fn poisoned_buffers_are_never_recycled() {
        let pool = tiny_pool();
        let mut buf = pool.acquire(8);
        buf.extend_from_slice(b"badbytes");
        let mut sealed = pool.seal(buf);
        let view = sealed.share();
        view.poison(); // poison through any view
        drop(view);
        drop(sealed);
        let c = pool.counters();
        assert_eq!(c.poisoned, 1);
        assert_eq!(c.recycles, 0);
        assert_eq!(pool.free_buffers(), 0, "poisoned buffer must not park");

        // The pool still serves — the next acquire is just a miss.
        let _ = pool.acquire(8);
        assert_eq!(pool.counters().misses, 2);
    }

    #[test]
    fn release_returns_unsealed_buffers_including_partial_bodies() {
        let pool = tiny_pool();
        let mut partial = pool.acquire(32);
        partial.extend_from_slice(b"half a frame");
        pool.release(partial); // decoder dropped mid-body
        assert_eq!(pool.counters().recycles, 1);
        let back = pool.acquire(32);
        assert!(back.is_empty());
        assert_eq!(pool.counters().hits, 1);
    }

    #[test]
    fn high_water_bound_holds_under_churn() {
        let pool = BufPool::with_config(&[64, 1024], 3);
        // 10k-connection churn in bursts: each round holds 8 live buffers
        // (sizes alternating between classes) and then drops them all, the
        // way a burst of connections tears down together. The free lists
        // must stay at their bound, not grow with the churn.
        for round in 0..1_250 {
            let mut held = Vec::new();
            for i in 0..8 {
                let want = if i % 2 == 0 { 48 } else { 700 };
                let mut buf = pool.acquire(want);
                buf.extend_from_slice(&[0u8; 48]);
                held.push(pool.seal(buf));
            }
            drop(held);
            assert!(
                pool.free_buffers() <= 2 * 3,
                "free list grew past the bound in round {round}"
            );
        }
        let c = pool.counters();
        assert_eq!(c.hits + c.misses, 10_000);
        assert!(c.trimmed > 0, "churn past the bound must trim");
        assert_eq!(c.recycles + c.trimmed, 10_000, "every buffer accounted");
        assert_eq!(c.poisoned, 0);
    }

    #[test]
    fn oversize_acquires_are_exact_and_never_parked() {
        let pool = tiny_pool();
        let buf = pool.acquire(10_000); // largest class is 256
        assert!(buf.capacity() >= 10_000);
        assert_eq!(pool.counters().oversize, 1);
        drop(pool.seal(buf));
        assert_eq!(pool.free_buffers(), 0, "oversize must not park");
        assert_eq!(pool.counters().trimmed, 1);
    }

    #[test]
    fn slack_rule_rejects_overgrown_buffers() {
        let pool = BufPool::with_config(&[16], 8);
        let mut buf = pool.acquire(8);
        buf.reserve(1024); // user grew it far past the class
        pool.release(buf);
        assert_eq!(pool.counters().trimmed, 1);
        assert_eq!(pool.free_buffers(), 0);
    }

    #[test]
    fn unpooled_from_vec_has_the_same_view_api() {
        let mut buf = PooledBuf::from_vec(b"plain old vec".to_vec());
        buf.advance(6);
        assert_eq!(&buf[..], b"old vec");
        let shared = buf.share();
        assert_eq!(&shared[..], b"old vec");
        drop(buf);
        drop(shared); // no pool to return to; must simply free
    }

    #[test]
    fn trim_empties_every_free_list() {
        let pool = tiny_pool();
        for size in [8, 40, 200] {
            drop(pool.seal(pool.acquire(size)));
        }
        assert_eq!(pool.free_buffers(), 3);
        pool.trim();
        assert_eq!(pool.free_buffers(), 0);
        assert_eq!(pool.counters().trimmed, 3);
    }
}
