//! Property-based tests for the transport layer: frame decoding under
//! arbitrary chunking, and wire-codec round trips for arbitrary field
//! sequences.

use proptest::prelude::*;
use sse_net::frame::{encode_frame, FrameDecoder};
use sse_net::wire::{WireReader, WireWriter};

/// A field in a synthetic wire message.
#[derive(Clone, Debug)]
enum Field {
    U8(u8),
    U32(u32),
    U64(u64),
    Bytes(Vec<u8>),
    U64Vec(Vec<u64>),
}

fn field_strategy() -> impl Strategy<Value = Field> {
    prop_oneof![
        any::<u8>().prop_map(Field::U8),
        any::<u32>().prop_map(Field::U32),
        any::<u64>().prop_map(Field::U64),
        prop::collection::vec(any::<u8>(), 0..100).prop_map(Field::Bytes),
        prop::collection::vec(any::<u64>(), 0..20).prop_map(Field::U64Vec),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wire_round_trips_arbitrary_field_sequences(
        fields in prop::collection::vec(field_strategy(), 0..20)
    ) {
        let mut w = WireWriter::new();
        for f in &fields {
            match f {
                Field::U8(v) => { w.put_u8(*v); }
                Field::U32(v) => { w.put_u32(*v); }
                Field::U64(v) => { w.put_u64(*v); }
                Field::Bytes(v) => { w.put_bytes(v); }
                Field::U64Vec(v) => { w.put_u64_vec(v); }
            }
        }
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        for f in &fields {
            match f {
                Field::U8(v) => prop_assert_eq!(r.get_u8().unwrap(), *v),
                Field::U32(v) => prop_assert_eq!(r.get_u32().unwrap(), *v),
                Field::U64(v) => prop_assert_eq!(r.get_u64().unwrap(), *v),
                Field::Bytes(v) => prop_assert_eq!(r.get_bytes().unwrap(), &v[..]),
                Field::U64Vec(v) => prop_assert_eq!(&r.get_u64_vec().unwrap(), v),
            }
        }
        r.finish().unwrap();
    }

    #[test]
    fn truncated_wire_messages_never_panic(
        fields in prop::collection::vec(field_strategy(), 1..10),
        cut in any::<usize>(),
    ) {
        let mut w = WireWriter::new();
        for f in &fields {
            match f {
                Field::U8(v) => { w.put_u8(*v); }
                Field::U32(v) => { w.put_u32(*v); }
                Field::U64(v) => { w.put_u64(*v); }
                Field::Bytes(v) => { w.put_bytes(v); }
                Field::U64Vec(v) => { w.put_u64_vec(v); }
            }
        }
        let buf = w.finish();
        let cut = cut % (buf.len() + 1);
        // Reading the truncated buffer must return errors, never panic.
        let mut r = WireReader::new(&buf[..cut]);
        for f in &fields {
            let res = match f {
                Field::U8(_) => r.get_u8().map(|_| ()),
                Field::U32(_) => r.get_u32().map(|_| ()),
                Field::U64(_) => r.get_u64().map(|_| ()),
                Field::Bytes(_) => r.get_bytes().map(|_| ()),
                Field::U64Vec(_) => r.get_u64_vec().map(|_| ()),
            };
            if res.is_err() {
                break;
            }
        }
    }

    #[test]
    fn frames_survive_arbitrary_chunking(
        bodies in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..300), 1..10),
        chunk_size in 1usize..64,
    ) {
        let mut stream = Vec::new();
        for b in &bodies {
            stream.extend_from_slice(&encode_frame(b));
        }
        let mut decoder = FrameDecoder::new();
        let mut decoded = Vec::new();
        for chunk in stream.chunks(chunk_size) {
            decoder.push(chunk);
            while let Some(frame) = decoder.next_frame().unwrap() {
                decoded.push(frame);
            }
        }
        prop_assert_eq!(decoded, bodies);
        prop_assert_eq!(decoder.buffered(), 0);
    }
}
