//! Property-based tests for the transport layer: frame decoding under
//! arbitrary chunking, and wire-codec round trips for arbitrary field
//! sequences.

use proptest::prelude::*;
use sse_net::frame::{encode_frame, FrameDecoder, StreamingDecoder, MAX_FRAME_LEN};
use sse_net::pool::{BufPool, PooledBuf};
use sse_net::wire::{WireReader, WireWriter};

/// Split `stream` at the given (arbitrary) boundaries, producing the
/// adversarial TCP segmentation the streaming decoder must survive —
/// anything from byte-at-a-time to fully coalesced, including empty
/// segments.
fn segment(stream: &[u8], cuts: &[usize]) -> Vec<Vec<u8>> {
    let mut points: Vec<usize> = cuts.iter().map(|c| c % (stream.len() + 1)).collect();
    points.push(0);
    points.push(stream.len());
    points.sort_unstable();
    points
        .windows(2)
        .map(|w| stream[w[0]..w[1]].to_vec())
        .collect()
}

/// A field in a synthetic wire message.
#[derive(Clone, Debug)]
enum Field {
    U8(u8),
    U32(u32),
    U64(u64),
    Bytes(Vec<u8>),
    U64Vec(Vec<u64>),
}

fn field_strategy() -> impl Strategy<Value = Field> {
    prop_oneof![
        any::<u8>().prop_map(Field::U8),
        any::<u32>().prop_map(Field::U32),
        any::<u64>().prop_map(Field::U64),
        prop::collection::vec(any::<u8>(), 0..100).prop_map(Field::Bytes),
        prop::collection::vec(any::<u64>(), 0..20).prop_map(Field::U64Vec),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wire_round_trips_arbitrary_field_sequences(
        fields in prop::collection::vec(field_strategy(), 0..20)
    ) {
        let mut w = WireWriter::new();
        for f in &fields {
            match f {
                Field::U8(v) => { w.put_u8(*v); }
                Field::U32(v) => { w.put_u32(*v); }
                Field::U64(v) => { w.put_u64(*v); }
                Field::Bytes(v) => { w.put_bytes(v); }
                Field::U64Vec(v) => { w.put_u64_vec(v); }
            }
        }
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        for f in &fields {
            match f {
                Field::U8(v) => prop_assert_eq!(r.get_u8().unwrap(), *v),
                Field::U32(v) => prop_assert_eq!(r.get_u32().unwrap(), *v),
                Field::U64(v) => prop_assert_eq!(r.get_u64().unwrap(), *v),
                Field::Bytes(v) => prop_assert_eq!(r.get_bytes().unwrap(), &v[..]),
                Field::U64Vec(v) => prop_assert_eq!(&r.get_u64_vec().unwrap(), v),
            }
        }
        r.finish().unwrap();
    }

    #[test]
    fn truncated_wire_messages_never_panic(
        fields in prop::collection::vec(field_strategy(), 1..10),
        cut in any::<usize>(),
    ) {
        let mut w = WireWriter::new();
        for f in &fields {
            match f {
                Field::U8(v) => { w.put_u8(*v); }
                Field::U32(v) => { w.put_u32(*v); }
                Field::U64(v) => { w.put_u64(*v); }
                Field::Bytes(v) => { w.put_bytes(v); }
                Field::U64Vec(v) => { w.put_u64_vec(v); }
            }
        }
        let buf = w.finish();
        let cut = cut % (buf.len() + 1);
        // Reading the truncated buffer must return errors, never panic.
        let mut r = WireReader::new(&buf[..cut]);
        for f in &fields {
            let res = match f {
                Field::U8(_) => r.get_u8().map(|_| ()),
                Field::U32(_) => r.get_u32().map(|_| ()),
                Field::U64(_) => r.get_u64().map(|_| ()),
                Field::Bytes(_) => r.get_bytes().map(|_| ()),
                Field::U64Vec(_) => r.get_u64_vec().map(|_| ()),
            };
            if res.is_err() {
                break;
            }
        }
    }

    #[test]
    fn frames_survive_arbitrary_chunking(
        bodies in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..300), 1..10),
        chunk_size in 1usize..64,
    ) {
        let mut stream = Vec::new();
        for b in &bodies {
            stream.extend_from_slice(&encode_frame(b));
        }
        let mut decoder = FrameDecoder::new();
        let mut decoded = Vec::new();
        for chunk in stream.chunks(chunk_size) {
            decoder.push(chunk);
            while let Some(frame) = decoder.next_frame().unwrap() {
                decoded.push(frame);
            }
        }
        prop_assert_eq!(decoded, bodies);
        prop_assert_eq!(decoder.buffered(), 0);
    }

    /// The streaming decoder is observationally identical to the one-shot
    /// decoder under arbitrary segmentation: same frames out, in order,
    /// no partial bytes left when the stream ends on a boundary.
    #[test]
    fn streaming_decoder_matches_one_shot_under_any_segmentation(
        bodies in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..300), 1..10),
        cuts in prop::collection::vec(any::<usize>(), 0..40),
    ) {
        let mut stream = Vec::new();
        for b in &bodies {
            stream.extend_from_slice(&encode_frame(b));
        }

        let mut oracle = FrameDecoder::new();
        oracle.push(&stream);
        let mut expected = Vec::new();
        while let Some(frame) = oracle.next_frame().unwrap() {
            expected.push(frame);
        }

        let mut streaming = StreamingDecoder::new();
        let mut got = Vec::new();
        for chunk in segment(&stream, &cuts) {
            streaming.feed(&chunk, &mut got).unwrap();
        }
        prop_assert_eq!(&got, &expected);
        prop_assert_eq!(got, bodies);
        prop_assert_eq!(streaming.buffered(), 0);
    }

    /// Truncating the byte stream at every possible offset leaves both
    /// decoders agreeing: the same complete frames decoded, the same
    /// count of leftover partial bytes, and no error from a merely
    /// truncated (as opposed to forged) stream.
    #[test]
    fn streaming_decoder_matches_one_shot_under_truncation(
        bodies in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..120), 1..6),
        cut in any::<usize>(),
        cuts in prop::collection::vec(any::<usize>(), 0..10),
    ) {
        let mut stream = Vec::new();
        for b in &bodies {
            stream.extend_from_slice(&encode_frame(b));
        }
        let cut = cut % (stream.len() + 1);
        let stream = &stream[..cut];

        let mut oracle = FrameDecoder::new();
        oracle.push(stream);
        let mut expected = Vec::new();
        while let Some(frame) = oracle.next_frame().unwrap() {
            expected.push(frame);
        }

        let mut streaming = StreamingDecoder::new();
        let mut got = Vec::new();
        for chunk in segment(stream, &cuts) {
            streaming.feed(&chunk, &mut got).unwrap();
        }
        prop_assert_eq!(got, expected);
        prop_assert_eq!(streaming.buffered(), oracle.buffered());
    }

    /// The pooled decoder is observationally identical to the one-shot
    /// decoder for every segmentation **and** every pool shape: the same
    /// frame bytes come out whether bodies land in recycled class
    /// buffers, fresh ones, or oversize exact allocations — and when the
    /// views drop, the pool's books balance (nothing poisoned, free
    /// lists inside the configured bound, no buffer re-acquired without
    /// having been recycled first).
    #[test]
    fn pooled_decoder_matches_one_shot_for_any_chunking_and_pool_shape(
        bodies in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..300), 1..10),
        cuts in prop::collection::vec(any::<usize>(), 0..40),
        ladder_pick in 0usize..4,
        max_free in 0usize..5,
    ) {
        let ladders: [&[usize]; 4] = [
            &[16, 64, 256],
            &[32, 1024],
            &[8],
            &[64, 256, 1024, 4096],
        ];
        let ladder = ladders[ladder_pick];
        let pool = BufPool::with_config(ladder, max_free);

        let mut stream = Vec::new();
        for b in &bodies {
            stream.extend_from_slice(&encode_frame(b));
        }
        let mut oracle = FrameDecoder::new();
        oracle.push(&stream);
        let mut expected = Vec::new();
        while let Some(frame) = oracle.next_frame().unwrap() {
            expected.push(frame);
        }

        let mut pooled = StreamingDecoder::with_pool(MAX_FRAME_LEN, pool.clone());
        let mut got: Vec<PooledBuf> = Vec::new();
        for chunk in segment(&stream, &cuts) {
            pooled.feed_pooled(&chunk, &mut got).unwrap();
        }
        prop_assert_eq!(got.len(), expected.len());
        for (view, frame) in got.iter().zip(&expected) {
            prop_assert_eq!(&view[..], &frame[..]);
        }

        drop(got);
        drop(pooled);
        let c = pool.counters();
        prop_assert_eq!(c.poisoned, 0);
        prop_assert!(c.hits <= c.recycles, "a hit needs a prior recycle");
        prop_assert!(c.recycles <= c.hits + c.misses);
        prop_assert!(pool.free_buffers() <= ladder.len() * max_free);
    }

    /// A forged length prefix (beyond the configured limit) fails both
    /// decoders with the same declared length, at the same frame
    /// position, regardless of how the bytes were segmented — and any
    /// clean frames before it decode identically first.
    #[test]
    fn forged_length_prefixes_fail_both_decoders_identically(
        bodies in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..60), 0..4),
        forged_len in 1025u32..u32::MAX,
        tail in prop::collection::vec(any::<u8>(), 0..40),
        cuts in prop::collection::vec(any::<usize>(), 0..12),
    ) {
        const LIMIT: u32 = 1024;
        let mut stream = Vec::new();
        for b in &bodies {
            stream.extend_from_slice(&encode_frame(b));
        }
        stream.extend_from_slice(&forged_len.to_le_bytes());
        stream.extend_from_slice(&tail);

        let mut oracle = FrameDecoder::with_max_len(LIMIT);
        oracle.push(&stream);
        let mut expected = Vec::new();
        let oracle_err = loop {
            match oracle.next_frame() {
                Ok(Some(frame)) => expected.push(frame),
                Ok(None) => break None,
                Err(e) => break Some(e),
            }
        };
        let oracle_err = oracle_err.expect("forged prefix must error the oracle");

        let mut streaming = StreamingDecoder::with_max_len(LIMIT);
        let mut got = Vec::new();
        let mut streaming_err = None;
        for chunk in segment(&stream, &cuts) {
            if let Err(e) = streaming.feed(&chunk, &mut got) {
                streaming_err = Some(e);
                break;
            }
        }
        prop_assert_eq!(streaming_err, Some(oracle_err));
        prop_assert_eq!(got, expected);
    }
}
