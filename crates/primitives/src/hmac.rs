//! HMAC-SHA-256 (RFC 2104 / FIPS 198-1).
//!
//! HMAC instantiates the paper's pseudo-random functions `f` (keyword →
//! searchable-representation tag) and `f'` (chain-key commitment in
//! Scheme 2). Keys longer than the 64-byte block are hashed first, exactly
//! per the RFC.

use crate::sha256::{Sha256, BLOCK_LEN, DIGEST_LEN};

const IPAD: u8 = 0x36;
const OPAD: u8 = 0x5c;

/// Incremental HMAC-SHA-256 computation.
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    /// Key XOR opad, kept to finish the outer hash.
    opad_key: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Start an HMAC computation under `key` (any length).
    #[must_use]
    pub fn new(key: &[u8]) -> Self {
        let mut block_key = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let digest = crate::sha256::sha256(key);
            block_key[..DIGEST_LEN].copy_from_slice(&digest);
        } else {
            block_key[..key.len()].copy_from_slice(key);
        }

        let mut ipad_key = [0u8; BLOCK_LEN];
        let mut opad_key = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad_key[i] = block_key[i] ^ IPAD;
            opad_key[i] = block_key[i] ^ OPAD;
        }

        let mut inner = Sha256::new();
        inner.update(&ipad_key);
        HmacSha256 { inner, opad_key }
    }

    /// Absorb message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finish and return the 32-byte MAC.
    #[must_use]
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// Verify `tag` against the absorbed message in constant time.
    #[must_use]
    pub fn verify(self, tag: &[u8]) -> bool {
        crate::ct::ct_eq(&self.finalize(), tag)
    }
}

/// One-shot HMAC-SHA-256.
#[must_use]
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = HmacSha256::new(key);
    h.update(msg);
    h.finalize()
}

/// One-shot HMAC over the concatenation of several message parts.
#[must_use]
pub fn hmac_sha256_concat(key: &[u8], parts: &[&[u8]]) -> [u8; DIGEST_LEN] {
    let mut h = HmacSha256::new(key);
    for p in parts {
        h.update(p);
    }
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    // RFC 4231 test vectors for HMAC-SHA-256.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        assert_eq!(
            hex(&hmac_sha256(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        assert_eq!(
            hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let msg = [0xddu8; 50];
        assert_eq!(
            hex(&hmac_sha256(&key, &msg)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_4() {
        let key: Vec<u8> = (1u8..=25).collect();
        let msg = [0xcdu8; 50];
        assert_eq!(
            hex(&hmac_sha256(&key, &msg)),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        assert_eq!(
            hex(&hmac_sha256(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn rfc4231_case_7_long_key_long_msg() {
        let key = [0xaau8; 131];
        let msg = b"This is a test using a larger than block-size key and a larger than block-size data. The key needs to be hashed before being used by the HMAC algorithm.";
        assert_eq!(
            hex(&hmac_sha256(&key, msg)),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = b"some key";
        let msg: Vec<u8> = (0..300u16).map(|i| (i & 0xff) as u8).collect();
        let want = hmac_sha256(key, &msg);
        let mut h = HmacSha256::new(key);
        for chunk in msg.chunks(11) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), want);
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = hmac_sha256(b"k", b"m");
        let mut h = HmacSha256::new(b"k");
        h.update(b"m");
        assert!(h.clone().verify(&tag));
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(!h.verify(&bad));
    }

    #[test]
    fn different_keys_give_different_macs() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
    }

    #[test]
    fn concat_matches_manual() {
        assert_eq!(
            hmac_sha256_concat(b"k", &[b"ab", b"cd"]),
            hmac_sha256(b"k", b"abcd")
        );
    }
}
