//! Constant-time comparison helpers.
//!
//! The server-side `Search` algorithm compares PRF tags, and the
//! encrypt-then-MAC construction compares authentication tags. Both
//! comparisons must not leak *where* two byte strings first differ, so they
//! are implemented without data-dependent branches.

/// Compare two byte slices in time independent of their contents.
///
/// Returns `true` iff `a == b`. Slices of different lengths compare unequal
/// immediately — length is considered public.
#[must_use]
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    // Collapse to 0/1 without a data-dependent branch.
    acc == 0
}

/// Constant-time conditional select over byte slices: writes `a` into `out`
/// when `choice` is true, `b` otherwise. All three slices must share a length.
///
/// # Panics
/// Panics if the slice lengths differ (a programming error, not an input
/// error).
pub fn ct_select(choice: bool, a: &[u8], b: &[u8], out: &mut [u8]) {
    assert_eq!(a.len(), b.len(), "ct_select: operand length mismatch");
    assert_eq!(a.len(), out.len(), "ct_select: output length mismatch");
    let mask = if choice { 0xffu8 } else { 0x00u8 };
    for i in 0..out.len() {
        out[i] = (a[i] & mask) | (b[i] & !mask);
    }
}

/// XOR `src` into `dst` in place. Lengths must match.
///
/// # Panics
/// Panics if the slice lengths differ.
pub fn xor_in_place(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "xor_in_place: length mismatch");
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d ^= s;
    }
}

/// Return the XOR of two equal-length slices as a fresh vector.
///
/// # Panics
/// Panics if the slice lengths differ.
#[must_use]
pub fn xor(a: &[u8], b: &[u8]) -> Vec<u8> {
    assert_eq!(a.len(), b.len(), "xor: length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x ^ y).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_accepts_equal() {
        assert!(ct_eq(b"", b""));
        assert!(ct_eq(b"abc", b"abc"));
        assert!(ct_eq(&[0u8; 64], &[0u8; 64]));
    }

    #[test]
    fn eq_rejects_unequal_content() {
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(&[0u8; 32], &[1u8; 32]));
        // differ only in the last bit of the last byte
        let a = [0u8; 32];
        let mut b = [0u8; 32];
        b[31] = 1;
        assert!(!ct_eq(&a, &b));
    }

    #[test]
    fn eq_rejects_unequal_length() {
        assert!(!ct_eq(b"abc", b"abcd"));
        assert!(!ct_eq(b"", b"x"));
    }

    #[test]
    fn select_picks_correct_operand() {
        let a = [1u8, 2, 3];
        let b = [9u8, 8, 7];
        let mut out = [0u8; 3];
        ct_select(true, &a, &b, &mut out);
        assert_eq!(out, a);
        ct_select(false, &a, &b, &mut out);
        assert_eq!(out, b);
    }

    #[test]
    fn xor_roundtrip() {
        let a = [0xAAu8, 0x55, 0xFF, 0x00];
        let b = [0x0Fu8, 0xF0, 0x12, 0x34];
        let c = xor(&a, &b);
        let back = xor(&c, &b);
        assert_eq!(back, a);
    }

    #[test]
    fn xor_in_place_matches_xor() {
        let a = [1u8, 2, 3, 4];
        let b = [5u8, 6, 7, 8];
        let mut d = a;
        xor_in_place(&mut d, &b);
        assert_eq!(d.to_vec(), xor(&a, &b));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn xor_panics_on_length_mismatch() {
        let _ = xor(b"ab", b"abc");
    }
}
