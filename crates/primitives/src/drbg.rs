//! HMAC-DRBG (NIST SP 800-90A) — a deterministic random bit generator.
//!
//! The schemes and the security-game harness need *reproducible* randomness
//! (so that experiments and property tests are replayable from a seed) that
//! is still cryptographically strong. HMAC-DRBG over our HMAC-SHA-256
//! provides exactly that; production callers seed it from [`crate::os_random`].

use crate::hmac::HmacSha256;

/// Deterministic random bit generator (HMAC-SHA-256 variant).
pub struct HmacDrbg {
    key: [u8; 32],
    value: [u8; 32],
    reseed_counter: u64,
}

impl HmacDrbg {
    /// Instantiate from seed material (entropy || nonce || personalization).
    #[must_use]
    pub fn new(seed_material: &[u8]) -> Self {
        let mut drbg = HmacDrbg {
            key: [0u8; 32],
            value: [1u8; 32],
            reseed_counter: 1,
        };
        drbg.update(Some(seed_material));
        drbg
    }

    /// Instantiate from a 64-bit test seed (convenience for experiments).
    #[must_use]
    pub fn from_u64(seed: u64) -> Self {
        Self::new(&seed.to_be_bytes())
    }

    /// Mix optional data into the state (SP 800-90A HMAC_DRBG_Update).
    fn update(&mut self, provided: Option<&[u8]>) {
        let mut h = HmacSha256::new(&self.key);
        h.update(&self.value);
        h.update(&[0x00]);
        if let Some(p) = provided {
            h.update(p);
        }
        self.key = h.finalize();
        self.value = crate::hmac::hmac_sha256(&self.key, &self.value);

        if let Some(p) = provided {
            let mut h = HmacSha256::new(&self.key);
            h.update(&self.value);
            h.update(&[0x01]);
            h.update(p);
            self.key = h.finalize();
            self.value = crate::hmac::hmac_sha256(&self.key, &self.value);
        }
    }

    /// Mix fresh entropy into the generator.
    pub fn reseed(&mut self, entropy: &[u8]) {
        self.update(Some(entropy));
        self.reseed_counter = 1;
    }

    /// Fill `out` with pseudo-random bytes.
    pub fn fill(&mut self, out: &mut [u8]) {
        let mut filled = 0;
        while filled < out.len() {
            self.value = crate::hmac::hmac_sha256(&self.key, &self.value);
            let take = (out.len() - filled).min(32);
            out[filled..filled + take].copy_from_slice(&self.value[..take]);
            filled += take;
        }
        self.update(None);
        self.reseed_counter += 1;
    }

    /// Generate a 32-byte value.
    #[must_use]
    pub fn gen_key(&mut self) -> [u8; 32] {
        let mut k = [0u8; 32];
        self.fill(&mut k);
        k
    }

    /// Generate a uniform `u64`.
    #[must_use]
    pub fn gen_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill(&mut b);
        u64::from_be_bytes(b)
    }

    /// Generate a uniform value in `[0, bound)` by rejection sampling.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[must_use]
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range: bound must be positive");
        if bound.is_power_of_two() {
            return self.gen_u64() & (bound - 1);
        }
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % bound) - 1;
        loop {
            let v = self.gen_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// Generate a uniform `f64` in `[0, 1)`.
    #[must_use]
    pub fn gen_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.gen_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = HmacDrbg::from_u64(42);
        let mut b = HmacDrbg::from_u64(42);
        assert_eq!(a.gen_key(), b.gen_key());
        assert_eq!(a.gen_u64(), b.gen_u64());
    }

    #[test]
    fn seed_sensitive() {
        let mut a = HmacDrbg::from_u64(1);
        let mut b = HmacDrbg::from_u64(2);
        assert_ne!(a.gen_key(), b.gen_key());
    }

    #[test]
    fn successive_outputs_differ() {
        let mut d = HmacDrbg::from_u64(7);
        let k1 = d.gen_key();
        let k2 = d.gen_key();
        assert_ne!(k1, k2);
    }

    #[test]
    fn reseed_changes_stream() {
        let mut a = HmacDrbg::from_u64(5);
        let mut b = HmacDrbg::from_u64(5);
        b.reseed(b"extra entropy");
        assert_ne!(a.gen_key(), b.gen_key());
    }

    #[test]
    fn gen_range_respects_bound() {
        let mut d = HmacDrbg::from_u64(11);
        for bound in [1u64, 2, 3, 10, 1000, 1 << 33] {
            for _ in 0..100 {
                assert!(d.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut d = HmacDrbg::from_u64(13);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[d.gen_range(5) as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all residues should appear: {seen:?}"
        );
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut d = HmacDrbg::from_u64(17);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let x = d.gen_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 1000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }

    #[test]
    fn fill_is_chunking_invariant() {
        // Filling 64 bytes at once equals two 32-byte fills only if the
        // DRBG state advances identically — SP 800-90A updates state once
        // per generate call, so the streams legitimately differ. What must
        // hold is determinism per call pattern.
        let mut a = HmacDrbg::from_u64(3);
        let mut b = HmacDrbg::from_u64(3);
        let mut out_a = [0u8; 64];
        a.fill(&mut out_a);
        let mut out_b = [0u8; 64];
        b.fill(&mut out_b);
        assert_eq!(out_a, out_b);
    }
}
