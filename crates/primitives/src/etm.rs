//! Authenticated encryption: AES-128-CTR + HMAC-SHA-256, encrypt-then-MAC.
//!
//! This is the concrete `E_km` used to protect data items `M_i` before they
//! are shipped to the honest-but-curious server, and the `E_k` used to mask
//! posting-list generations in Scheme 2. The paper only requires IND-CPA
//! ("pseudo-random permutation") security from `E`; we add integrity because
//! any real deployment of the scheme would, and it costs nothing in the
//! reproduced measurements.
//!
//! Wire format: `IV (12 bytes) || ciphertext || tag (32 bytes)`.

use crate::ctr::{ctr_encrypt, IV_LEN};
use crate::error::{CryptoError, Result};
use crate::hmac::{hmac_sha256_concat, HmacSha256};
use crate::kdf::derive_subkeys;

/// Tag length in bytes.
pub const TAG_LEN: usize = 32;
/// Minimum valid ciphertext length (empty plaintext).
pub const MIN_CT_LEN: usize = IV_LEN + TAG_LEN;

/// An authenticated-encryption key: a 32-byte master secret from which the
/// CTR key and MAC key are derived by domain separation.
#[derive(Clone)]
pub struct EtmKey {
    enc_key: [u8; 16],
    mac_key: [u8; 32],
}

impl EtmKey {
    /// Derive the encryption and MAC subkeys from a 32-byte master key.
    #[must_use]
    pub fn new(master: &[u8; 32]) -> Self {
        let (enc, mac) = derive_subkeys(master);
        EtmKey {
            enc_key: enc,
            mac_key: mac,
        }
    }

    /// Encrypt `plaintext` with a caller-supplied IV (must be unique per
    /// message under this key). Prefer [`EtmKey::seal`] which draws the IV
    /// from OS entropy.
    #[must_use]
    pub fn seal_with_iv(&self, iv: &[u8; IV_LEN], plaintext: &[u8]) -> Vec<u8> {
        let body = ctr_encrypt(&self.enc_key, iv, plaintext);
        let tag = hmac_sha256_concat(&self.mac_key, &[iv, &body]);
        let mut out = Vec::with_capacity(IV_LEN + body.len() + TAG_LEN);
        out.extend_from_slice(iv);
        out.extend_from_slice(&body);
        out.extend_from_slice(&tag);
        out
    }

    /// Encrypt `plaintext` under a fresh random IV.
    #[must_use]
    pub fn seal(&self, plaintext: &[u8]) -> Vec<u8> {
        let mut iv = [0u8; IV_LEN];
        crate::os_random(&mut iv);
        self.seal_with_iv(&iv, plaintext)
    }

    /// Verify and decrypt a ciphertext produced by [`EtmKey::seal`].
    ///
    /// # Errors
    /// [`CryptoError::CiphertextTooShort`] if framing is impossible, and
    /// [`CryptoError::TagMismatch`] if authentication fails.
    pub fn open(&self, ciphertext: &[u8]) -> Result<Vec<u8>> {
        if ciphertext.len() < MIN_CT_LEN {
            return Err(CryptoError::CiphertextTooShort {
                min: MIN_CT_LEN,
                got: ciphertext.len(),
            });
        }
        let (iv, rest) = ciphertext.split_at(IV_LEN);
        let (body, tag) = rest.split_at(rest.len() - TAG_LEN);

        let mut mac = HmacSha256::new(&self.mac_key);
        mac.update(iv);
        mac.update(body);
        if !mac.verify(tag) {
            return Err(CryptoError::TagMismatch);
        }

        let iv_arr: [u8; IV_LEN] = iv.try_into().expect("split_at gives exact length");
        Ok(crate::ctr::ctr_decrypt(&self.enc_key, &iv_arr, body))
    }

    /// Ciphertext length for a plaintext of `len` bytes.
    #[must_use]
    pub const fn ciphertext_len(len: usize) -> usize {
        IV_LEN + len + TAG_LEN
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> EtmKey {
        EtmKey::new(&[0x42u8; 32])
    }

    #[test]
    fn seal_open_round_trip() {
        let k = key();
        for len in [0usize, 1, 16, 100, 4096] {
            let pt: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let ct = k.seal(&pt);
            assert_eq!(ct.len(), EtmKey::ciphertext_len(len));
            assert_eq!(k.open(&ct).unwrap(), pt, "len {len}");
        }
    }

    #[test]
    fn tampered_body_rejected() {
        let k = key();
        let mut ct = k.seal(b"attack at dawn");
        ct[IV_LEN] ^= 0x01;
        assert_eq!(k.open(&ct), Err(CryptoError::TagMismatch));
    }

    #[test]
    fn tampered_iv_rejected() {
        let k = key();
        let mut ct = k.seal(b"attack at dawn");
        ct[0] ^= 0x01;
        assert_eq!(k.open(&ct), Err(CryptoError::TagMismatch));
    }

    #[test]
    fn tampered_tag_rejected() {
        let k = key();
        let mut ct = k.seal(b"attack at dawn");
        let last = ct.len() - 1;
        ct[last] ^= 0x80;
        assert_eq!(k.open(&ct), Err(CryptoError::TagMismatch));
    }

    #[test]
    fn truncated_ciphertext_rejected() {
        let k = key();
        let ct = k.seal(b"hello");
        assert!(matches!(
            k.open(&ct[..MIN_CT_LEN - 1]),
            Err(CryptoError::CiphertextTooShort { .. })
        ));
    }

    #[test]
    fn wrong_key_rejected() {
        let k1 = key();
        let k2 = EtmKey::new(&[0x43u8; 32]);
        let ct = k1.seal(b"secret");
        assert_eq!(k2.open(&ct), Err(CryptoError::TagMismatch));
    }

    #[test]
    fn random_ivs_randomize_ciphertexts() {
        let k = key();
        let c1 = k.seal(b"same plaintext");
        let c2 = k.seal(b"same plaintext");
        assert_ne!(c1, c2, "IND-CPA requires randomized encryption");
    }

    #[test]
    fn deterministic_with_fixed_iv() {
        let k = key();
        let iv = [7u8; IV_LEN];
        assert_eq!(k.seal_with_iv(&iv, b"x"), k.seal_with_iv(&iv, b"x"));
    }
}
