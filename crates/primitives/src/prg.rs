//! The paper's pseudo-random generator `G : {0,1}^256 → {0,1}^*`.
//!
//! Scheme 1 masks the posting bit-array as `I(w) XOR G(r)` where the nonce
//! `r` is recoverable only by the client (via the trapdoor permutation `F`).
//! [`Prg`] wraps the ChaCha20 keystream with the exact interface the scheme
//! needs: deterministic expansion of a 32-byte seed to an arbitrary-length
//! mask, plus an XOR-mask convenience.

use crate::chacha20::prg_expand;

/// A 32-byte PRG seed — the nonce `r` of Scheme 1.
pub type Seed = [u8; 32];

/// Deterministic pseudo-random generator (the paper's `G`).
#[derive(Clone, Copy, Debug, Default)]
pub struct Prg;

impl Prg {
    /// Expand `seed` into `len` pseudo-random bytes: `G(r)`.
    #[must_use]
    pub fn expand(seed: &Seed, len: usize) -> Vec<u8> {
        prg_expand(seed, len)
    }

    /// Compute `data XOR G(seed)`, the masking operation of Scheme 1.
    ///
    /// Masking and unmasking are the same operation; applying twice with the
    /// same seed restores the input.
    #[must_use]
    pub fn mask(seed: &Seed, data: &[u8]) -> Vec<u8> {
        let mut out = data.to_vec();
        Self::mask_in_place(seed, &mut out);
        out
    }

    /// In-place variant of [`Prg::mask`].
    pub fn mask_in_place(seed: &Seed, data: &mut [u8]) {
        let ks = prg_expand(seed, data.len());
        crate::ct::xor_in_place(data, &ks);
    }
}

/// Sample a fresh random seed (nonce `r`) from OS entropy.
#[must_use]
pub fn random_seed() -> Seed {
    crate::random_key()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_is_involutive() {
        let seed = [0x5au8; 32];
        let data: Vec<u8> = (0..500u16).map(|i| (i % 256) as u8).collect();
        let masked = Prg::mask(&seed, &data);
        assert_ne!(masked, data);
        assert_eq!(Prg::mask(&seed, &masked), data);
    }

    #[test]
    fn different_seeds_produce_different_masks() {
        let d = vec![0u8; 64];
        assert_ne!(Prg::mask(&[1u8; 32], &d), Prg::mask(&[2u8; 32], &d));
    }

    #[test]
    fn expansion_is_length_exact() {
        for len in [0usize, 1, 63, 64, 65, 4096] {
            assert_eq!(Prg::expand(&[7u8; 32], len).len(), len);
        }
    }

    #[test]
    fn in_place_matches_copying() {
        let seed = [9u8; 32];
        let data = b"some plaintext bits".to_vec();
        let copied = Prg::mask(&seed, &data);
        let mut inplace = data.clone();
        Prg::mask_in_place(&seed, &mut inplace);
        assert_eq!(copied, inplace);
    }

    #[test]
    fn xor_homomorphism_enables_scheme1_update() {
        // The Scheme-1 update relies on:
        //   (I ^ G(r)) ^ (U ^ G(r) ^ G(r')) == (I ^ U) ^ G(r')
        let r = [1u8; 32];
        let r2 = [2u8; 32];
        let i_w = vec![0b1010_0001u8; 32];
        let u_w = vec![0b0100_0010u8; 32];
        let stored = Prg::mask(&r, &i_w);
        let update_msg = {
            let tmp = Prg::mask(&r, &u_w);
            Prg::mask(&r2, &tmp)
        };
        let server_result = crate::ct::xor(&stored, &update_msg);
        let expected = Prg::mask(&r2, &crate::ct::xor(&i_w, &u_w));
        assert_eq!(server_result, expected);
    }
}
