//! The paper's pseudo-random function `f : {0,1}* × K → {0,1}^256`.
//!
//! A thin, strongly-typed wrapper over HMAC-SHA-256. The schemes use two
//! independent PRFs: `f` maps a keyword to its searchable-representation tag
//! `f_kw(w)`, and `f'` commits to a chain key in Scheme 2. Both are
//! instances of [`Prf`] under domain-separated keys.

use crate::hmac::hmac_sha256_concat;
use crate::Key256;

/// Output of the PRF — a 32-byte tag.
///
/// Tags are ordered lexicographically, which is what lets the server keep
/// searchable representations in a B+-tree and locate one in `O(log u)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tag(pub [u8; 32]);

impl Tag {
    /// View as bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Construct from a byte slice.
    ///
    /// Returns `None` when `bytes.len() != 32`.
    #[must_use]
    pub fn from_slice(bytes: &[u8]) -> Option<Self> {
        bytes.try_into().ok().map(Tag)
    }

    /// Hex rendering (for logs and debugging only).
    #[must_use]
    pub fn to_hex(&self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl std::fmt::Debug for Tag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tag({}..)", &self.to_hex()[..12])
    }
}

/// A keyed PRF instance.
#[derive(Clone)]
pub struct Prf {
    key: Key256,
}

impl Prf {
    /// Instantiate the PRF under `key`.
    #[must_use]
    pub fn new(key: Key256) -> Self {
        Prf { key }
    }

    /// Evaluate `f_k(input)`.
    #[must_use]
    pub fn eval(&self, input: &[u8]) -> Tag {
        Tag(hmac_sha256_concat(&self.key, &[input]))
    }

    /// Evaluate over multiple parts with unambiguous (length-prefixed)
    /// encoding, so that `eval_parts(["ab","c"]) != eval_parts(["a","bc"])`.
    #[must_use]
    pub fn eval_parts(&self, parts: &[&[u8]]) -> Tag {
        let mut framed: Vec<&[u8]> = Vec::with_capacity(parts.len() * 2);
        let lens: Vec<[u8; 8]> = parts
            .iter()
            .map(|p| (p.len() as u64).to_be_bytes())
            .collect();
        for (p, l) in parts.iter().zip(lens.iter()) {
            framed.push(l);
            framed.push(p);
        }
        Tag(hmac_sha256_concat(&self.key, &framed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_key_sensitive() {
        let p1 = Prf::new([1u8; 32]);
        let p2 = Prf::new([2u8; 32]);
        assert_eq!(p1.eval(b"kw"), p1.eval(b"kw"));
        assert_ne!(p1.eval(b"kw"), p2.eval(b"kw"));
        assert_ne!(p1.eval(b"kw"), p1.eval(b"kx"));
    }

    #[test]
    fn parts_encoding_is_unambiguous() {
        let p = Prf::new([3u8; 32]);
        assert_ne!(p.eval_parts(&[b"ab", b"c"]), p.eval_parts(&[b"a", b"bc"]));
        assert_ne!(p.eval_parts(&[b"abc"]), p.eval(b"abc"));
    }

    #[test]
    fn tag_ordering_is_lexicographic() {
        let mut a = [0u8; 32];
        let mut b = [0u8; 32];
        a[0] = 1;
        b[0] = 2;
        assert!(Tag(a) < Tag(b));
        let mut c = [1u8; 32];
        c[31] = 0;
        let d = [1u8; 32];
        assert!(Tag(c) < Tag(d));
    }

    #[test]
    fn tag_slice_round_trip() {
        let p = Prf::new([9u8; 32]);
        let t = p.eval(b"word");
        let t2 = Tag::from_slice(t.as_bytes()).unwrap();
        assert_eq!(t, t2);
        assert!(Tag::from_slice(&[0u8; 31]).is_none());
    }

    #[test]
    fn debug_is_truncated_hex() {
        let t = Tag([0xabu8; 32]);
        let dbg = format!("{t:?}");
        assert!(dbg.starts_with("Tag(abababababab"));
    }
}
