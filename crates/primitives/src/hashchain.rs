//! Lamport hash chains (the paper's `h^l`, citing Lamport 1981).
//!
//! Scheme 2 keys its posting-list generations with
//! `k_j(w) = h^{l-ctr}(w || k_w)`: the *client* walks the chain backwards
//! (it knows the seed `w || k_w`), while the *server*, given some chain
//! element, can only walk *forwards* by re-applying `h`. This module
//! provides both walks plus the exhaustion bookkeeping of §5.6.

use crate::error::{CryptoError, Result};
use crate::sha256::{sha256_concat, Sha256};

/// A single chain element (32 bytes).
pub type ChainKey = [u8; 32];

/// One application of the chain function `h`.
///
/// Domain-separated from every other SHA-256 use in the workspace.
#[must_use]
pub fn chain_step(element: &ChainKey) -> ChainKey {
    sha256_concat(&[b"sse/chain-step", element])
}

/// Derive the chain's base element `h^0` from arbitrary seed material
/// (the paper's `w || k_w`).
#[must_use]
pub fn chain_seed(material: &[&[u8]]) -> ChainKey {
    // Stream the domain-separation prefix and each material part straight
    // into the hasher: same bytes as hashing the concatenation, but no
    // intermediate `Vec<&[u8]>` per call.
    let mut h = Sha256::new();
    h.update(b"sse/chain-seed");
    for part in material {
        h.update(part);
    }
    h.finalize()
}

/// Walk `steps` applications of `h` forward from `start`.
#[must_use]
pub fn walk_forward(start: &ChainKey, steps: usize) -> ChainKey {
    let mut cur = *start;
    for _ in 0..steps {
        cur = chain_step(&cur);
    }
    cur
}

/// A hash chain of fixed length `l`, owned by the party that knows the seed
/// (the client). Element `i` is `h^i(seed)` for `i in 0..=l`.
///
/// The client hands out elements with *decreasing* index over time
/// (`l - ctr`), so anyone holding an older (higher-index) element can verify
/// forward but cannot derive the newer (lower-index) ones.
///
/// Deriving element `l - ctr` from the seed alone costs `l - ctr` hash
/// applications; [`HashChain::with_checkpoints`] trades `O(√l)` memory for
/// `O(√l)` derivation (the classic pebbling compromise — Lamport chains in
/// deployed one-time-password systems do the same).
#[derive(Clone)]
pub struct HashChain {
    seed: ChainKey,
    length: usize,
    /// Element at index `i * interval` for each `i` (empty = no pebbling).
    checkpoints: Vec<ChainKey>,
    interval: usize,
}

impl HashChain {
    /// Build a chain of `length` steps from seed material (no pebbling:
    /// O(1) memory, O(l - ctr) per derivation).
    #[must_use]
    pub fn new(material: &[&[u8]], length: usize) -> Self {
        HashChain {
            seed: chain_seed(material),
            length,
            checkpoints: Vec::new(),
            interval: 0,
        }
    }

    /// Build a chain with `√l`-spaced checkpoints: one O(l) precomputation,
    /// then O(√l) per derivation. This is what the Scheme 2 client uses for
    /// its per-keyword chain cache.
    #[must_use]
    pub fn with_checkpoints(material: &[&[u8]], length: usize) -> Self {
        let seed = chain_seed(material);
        let interval = ((length as f64).sqrt().ceil() as usize).max(1);
        let mut checkpoints = Vec::with_capacity(length / interval + 1);
        let mut cur = seed;
        for i in 0..=length {
            if i % interval == 0 {
                checkpoints.push(cur);
            }
            if i < length {
                cur = chain_step(&cur);
            }
        }
        HashChain {
            seed,
            length,
            checkpoints,
            interval,
        }
    }

    /// Chain length `l`.
    #[must_use]
    pub fn length(&self) -> usize {
        self.length
    }

    /// Element at absolute index `idx` (`h^idx(seed)`).
    fn element_at(&self, idx: usize) -> ChainKey {
        debug_assert!(idx <= self.length);
        if self.checkpoints.is_empty() {
            return walk_forward(&self.seed, idx);
        }
        let cp = idx / self.interval;
        walk_forward(&self.checkpoints[cp], idx - cp * self.interval)
    }

    /// Element `h^{l - ctr}(seed)` — the key for counter value `ctr`
    /// (the paper's `k_j(w) = h^{l-ctr}(w || k_w)`).
    ///
    /// # Errors
    /// [`CryptoError::ChainExhausted`] once `ctr > l`: the chain cannot
    /// supply further keys and must be re-seeded (paper §5.6, Opt. 2
    /// discussion).
    pub fn key_for_counter(&self, ctr: u64) -> Result<ChainKey> {
        let ctr = usize::try_from(ctr).map_err(|_| CryptoError::ChainExhausted)?;
        if ctr > self.length {
            return Err(CryptoError::ChainExhausted);
        }
        Ok(self.element_at(self.length - ctr))
    }

    /// Remaining number of usable counter values after `ctr`.
    #[must_use]
    pub fn remaining(&self, ctr: u64) -> u64 {
        (self.length as u64).saturating_sub(ctr)
    }
}

/// Server-side forward walk: starting from a *claimed* newer element
/// `candidate`, find how many forward steps reach a commitment equality.
///
/// Scheme 2's server holds `f'(k_j(w))` (a commitment to the latest
/// generation key) and receives `t'_w = k_{latest}(w)` in the trapdoor; it
/// steps `candidate` forward until `commit(candidate) == stored`, learning
/// the per-generation keys along the way. Returns the number of steps taken,
/// or `None` within `max_steps`.
pub fn forward_search<F>(
    candidate: &ChainKey,
    matches: F,
    max_steps: usize,
) -> Option<(usize, ChainKey)>
where
    F: Fn(&ChainKey) -> bool,
{
    let mut cur = *candidate;
    for step in 0..=max_steps {
        if matches(&cur) {
            return Some((step, cur));
        }
        cur = chain_step(&cur);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_is_deterministic() {
        let c1 = HashChain::new(&[b"word", b"key"], 16);
        let c2 = HashChain::new(&[b"word", b"key"], 16);
        assert_eq!(
            c1.key_for_counter(3).unwrap(),
            c2.key_for_counter(3).unwrap()
        );
    }

    #[test]
    fn seed_material_is_unambiguous_enough() {
        // Different material gives different chains.
        let a = HashChain::new(&[b"w1", b"k"], 8);
        let b = HashChain::new(&[b"w2", b"k"], 8);
        assert_ne!(a.key_for_counter(0).unwrap(), b.key_for_counter(0).unwrap());
    }

    #[test]
    fn forward_step_links_consecutive_counters() {
        // key(ctr) steps forward to key(ctr - 1): the server can go from a
        // newer key to all older ones.
        let c = HashChain::new(&[b"w", b"k"], 32);
        for ctr in 1..=32u64 {
            let newer = c.key_for_counter(ctr).unwrap();
            let older = c.key_for_counter(ctr - 1).unwrap();
            assert_eq!(chain_step(&newer), older, "ctr {ctr}");
        }
    }

    #[test]
    fn exhaustion_is_detected() {
        let c = HashChain::new(&[b"w", b"k"], 4);
        assert!(c.key_for_counter(4).is_ok());
        assert_eq!(c.key_for_counter(5), Err(CryptoError::ChainExhausted));
        assert_eq!(c.remaining(1), 3);
        assert_eq!(c.remaining(9), 0);
    }

    #[test]
    fn forward_search_finds_older_element() {
        let c = HashChain::new(&[b"w", b"k"], 64);
        let newest = c.key_for_counter(40).unwrap();
        let older = c.key_for_counter(25).unwrap();
        // Searching forward from the newest key must reach the older one in
        // exactly 15 steps.
        let (steps, found) = forward_search(&newest, |k| k == &older, 64).expect("must be found");
        assert_eq!(steps, 15);
        assert_eq!(found, older);
    }

    #[test]
    fn forward_search_respects_bound() {
        let c = HashChain::new(&[b"w", b"k"], 64);
        let newest = c.key_for_counter(40).unwrap();
        let older = c.key_for_counter(20).unwrap();
        assert!(forward_search(&newest, |k| k == &older, 10).is_none());
    }

    #[test]
    fn backward_is_infeasible_by_construction() {
        // Sanity statement of the one-wayness *interface*: stepping forward
        // from key(ctr) never reproduces key(ctr + 1).
        let c = HashChain::new(&[b"w", b"k"], 16);
        let newer = c.key_for_counter(10).unwrap();
        let older = c.key_for_counter(9).unwrap();
        assert!(forward_search(&older, |k| k == &newer, 64).is_none());
    }

    #[test]
    fn checkpointed_chain_matches_plain_chain() {
        for l in [1usize, 2, 7, 16, 100, 1000] {
            let plain = HashChain::new(&[b"w", b"k"], l);
            let pebbled = HashChain::with_checkpoints(&[b"w", b"k"], l);
            for ctr in [0u64, 1, (l / 2) as u64, l as u64] {
                assert_eq!(
                    plain.key_for_counter(ctr).unwrap(),
                    pebbled.key_for_counter(ctr).unwrap(),
                    "l={l}, ctr={ctr}"
                );
            }
            assert_eq!(
                pebbled.key_for_counter(l as u64 + 1),
                Err(CryptoError::ChainExhausted)
            );
        }
    }

    #[test]
    fn checkpoint_memory_is_sublinear() {
        let l = 10_000usize;
        let pebbled = HashChain::with_checkpoints(&[b"w", b"k"], l);
        // interval = ceil(sqrt(10000)) = 100 -> ~101 checkpoints.
        assert!(
            pebbled.checkpoints.len() <= 110,
            "{}",
            pebbled.checkpoints.len()
        );
    }

    #[test]
    fn zero_counter_is_chain_tip() {
        let c = HashChain::new(&[b"w", b"k"], 8);
        assert_eq!(
            c.key_for_counter(0).unwrap(),
            walk_forward(&chain_seed(&[b"w", b"k"]), 8)
        );
    }
}
