//! Error type shared by all primitives.

use std::fmt;

/// Errors produced by the cryptographic primitives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// A key, nonce or tag had the wrong length.
    InvalidLength {
        /// What was being parsed or consumed.
        what: &'static str,
        /// The length that was expected.
        expected: usize,
        /// The length that was provided.
        got: usize,
    },
    /// An authentication tag did not verify.
    TagMismatch,
    /// Ciphertext too short to contain the mandatory framing (nonce/tag).
    CiphertextTooShort {
        /// Minimum number of bytes required.
        min: usize,
        /// Number of bytes provided.
        got: usize,
    },
    /// A big-integer operand was out of range for the requested operation
    /// (e.g. a group element not in `[1, p-1]`).
    OutOfRange(&'static str),
    /// A modular inverse does not exist (operand shares a factor with the
    /// modulus).
    NotInvertible,
    /// A Lamport hash chain has been fully consumed and must be re-seeded.
    ChainExhausted,
    /// Malformed serialized value.
    Malformed(&'static str),
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::InvalidLength {
                what,
                expected,
                got,
            } => write!(
                f,
                "invalid length for {what}: expected {expected}, got {got}"
            ),
            CryptoError::TagMismatch => write!(f, "authentication tag mismatch"),
            CryptoError::CiphertextTooShort { min, got } => {
                write!(
                    f,
                    "ciphertext too short: need at least {min} bytes, got {got}"
                )
            }
            CryptoError::OutOfRange(what) => write!(f, "operand out of range: {what}"),
            CryptoError::NotInvertible => write!(f, "element is not invertible"),
            CryptoError::ChainExhausted => write!(f, "hash chain exhausted; re-seed required"),
            CryptoError::Malformed(what) => write!(f, "malformed value: {what}"),
        }
    }
}

impl std::error::Error for CryptoError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, CryptoError>;
