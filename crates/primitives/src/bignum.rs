//! Arbitrary-precision unsigned integers.
//!
//! Implements exactly the operations the ElGamal trapdoor permutation needs:
//! comparison, add/sub/mul, Knuth Algorithm-D division, left/right shifts,
//! Montgomery-form modular exponentiation (for odd moduli — all our group
//! moduli are odd primes), extended-Euclid modular inverse, Miller–Rabin
//! primality testing, and big-endian (de)serialization.
//!
//! Representation: little-endian `u64` limbs, always *normalized* (no
//! most-significant zero limbs; zero is the empty limb vector).

use crate::drbg::HmacDrbg;
use crate::error::{CryptoError, Result};
use std::cmp::Ordering;

/// An arbitrary-precision unsigned integer.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct BigUint {
    /// Little-endian limbs, normalized.
    limbs: Vec<u64>,
}

impl std::fmt::Debug for BigUint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_zero() {
            return write!(f, "BigUint(0x0)");
        }
        write!(f, "BigUint(0x")?;
        for (i, limb) in self.limbs.iter().rev().enumerate() {
            if i == 0 {
                write!(f, "{limb:x}")?;
            } else {
                write!(f, "{limb:016x}")?;
            }
        }
        write!(f, ")")
    }
}

impl BigUint {
    /// The value zero.
    #[must_use]
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value one.
    #[must_use]
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Construct from a machine word.
    #[must_use]
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Construct from a big-endian byte string (leading zeros allowed).
    #[must_use]
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len().div_ceil(8));
        let mut iter = bytes.rchunks(8);
        for chunk in &mut iter {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | u64::from(b);
            }
            limbs.push(limb);
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Construct from a hex string (no `0x` prefix, whitespace ignored).
    ///
    /// # Errors
    /// Returns [`CryptoError::Malformed`] on any non-hex character.
    pub fn from_hex(s: &str) -> Result<Self> {
        let cleaned: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        let mut bytes = Vec::with_capacity(cleaned.len() / 2 + 1);
        let chars: Vec<char> = cleaned.chars().collect();
        let mut i = 0;
        // Odd-length strings get an implicit leading zero nibble.
        if chars.len() % 2 == 1 {
            let hi = chars[0]
                .to_digit(16)
                .ok_or(CryptoError::Malformed("hex digit"))?;
            bytes.push(hi as u8);
            i = 1;
        }
        while i < chars.len() {
            let hi = chars[i]
                .to_digit(16)
                .ok_or(CryptoError::Malformed("hex digit"))?;
            let lo = chars[i + 1]
                .to_digit(16)
                .ok_or(CryptoError::Malformed("hex digit"))?;
            bytes.push(((hi << 4) | lo) as u8);
            i += 2;
        }
        Ok(Self::from_bytes_be(&bytes))
    }

    /// Minimal big-endian byte encoding (empty for zero).
    #[must_use]
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        // Trim leading zero bytes of the most-significant limb.
        let first_nonzero = out
            .iter()
            .position(|&b| b != 0)
            .expect("normalized nonzero value has a nonzero byte");
        out.drain(..first_nonzero);
        out
    }

    /// Big-endian encoding left-padded with zeros to exactly `len` bytes.
    ///
    /// # Errors
    /// Returns [`CryptoError::OutOfRange`] if the value does not fit.
    pub fn to_bytes_be_padded(&self, len: usize) -> Result<Vec<u8>> {
        let raw = self.to_bytes_be();
        if raw.len() > len {
            return Err(CryptoError::OutOfRange("value too large for padding"));
        }
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        Ok(out)
    }

    /// True iff the value is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True iff the value is one.
    #[must_use]
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// True iff the value is even.
    #[must_use]
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|&l| l & 1 == 0)
    }

    /// Number of significant bits (0 for zero).
    #[must_use]
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() - 1) * 64 + (64 - top.leading_zeros() as usize),
        }
    }

    /// Test bit `i` (little-endian bit numbering).
    #[must_use]
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        let off = i % 64;
        self.limbs.get(limb).is_some_and(|&l| (l >> off) & 1 == 1)
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `self + other`.
    #[must_use]
    pub fn add(&self, other: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        #[allow(clippy::needless_range_loop)]
        for i in 0..long.len() {
            let b = short.get(i).copied().unwrap_or(0);
            let (s1, c1) = long[i].overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = u64::from(c1) + u64::from(c2);
        }
        if carry > 0 {
            out.push(carry);
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// `self - other`.
    ///
    /// # Panics
    /// Panics if `other > self` (callers guarantee the ordering).
    #[must_use]
    pub fn sub(&self, other: &BigUint) -> BigUint {
        assert!(
            self.cmp_big(other) != Ordering::Less,
            "BigUint::sub underflow"
        );
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = u64::from(b1) + u64::from(b2);
        }
        debug_assert_eq!(borrow, 0);
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Three-way comparison.
    #[must_use]
    pub fn cmp_big(&self, other: &BigUint) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// Schoolbook multiplication `self * other`.
    #[must_use]
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let t = u128::from(a) * u128::from(b) + u128::from(out[i + j]) + carry;
                out[i + j] = t as u64;
                carry = t >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry > 0 {
                let t = u128::from(out[k]) + carry;
                out[k] = t as u64;
                carry = t >> 64;
                k += 1;
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Left shift by `bits`.
    #[must_use]
    pub fn shl(&self, bits: usize) -> BigUint {
        if self.is_zero() || bits == 0 {
            let mut c = self.clone();
            c.normalize();
            return c;
        }
        let limb_shift = bits / 64;
        let bit_shift = bits % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry > 0 {
                out.push(carry);
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Right shift by `bits`.
    #[must_use]
    pub fn shr(&self, bits: usize) -> BigUint {
        let limb_shift = bits / 64;
        if limb_shift >= self.limbs.len() {
            return Self::zero();
        }
        let bit_shift = bits % 64;
        let mut out: Vec<u64> = self.limbs[limb_shift..].to_vec();
        if bit_shift > 0 {
            for i in 0..out.len() {
                let hi = if i + 1 < out.len() {
                    out[i + 1] << (64 - bit_shift)
                } else {
                    0
                };
                out[i] = (out[i] >> bit_shift) | hi;
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Quotient and remainder of `self / divisor` (Knuth TAOCP 4.3.1 D).
    ///
    /// # Panics
    /// Panics if `divisor` is zero.
    #[must_use]
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "BigUint division by zero");
        match self.cmp_big(divisor) {
            Ordering::Less => return (Self::zero(), self.clone()),
            Ordering::Equal => return (Self::one(), Self::zero()),
            Ordering::Greater => {}
        }
        // Single-limb fast path.
        if divisor.limbs.len() == 1 {
            let d = divisor.limbs[0];
            let mut q = vec![0u64; self.limbs.len()];
            let mut rem = 0u64;
            for i in (0..self.limbs.len()).rev() {
                let cur = (u128::from(rem) << 64) | u128::from(self.limbs[i]);
                q[i] = (cur / u128::from(d)) as u64;
                rem = (cur % u128::from(d)) as u64;
            }
            let mut qn = BigUint { limbs: q };
            qn.normalize();
            return (qn, BigUint::from_u64(rem));
        }

        // Normalize: shift so the divisor's top limb has its high bit set.
        let shift = divisor.limbs.last().unwrap().leading_zeros() as usize;
        let u = self.shl(shift);
        let v = divisor.shl(shift);
        let n = v.limbs.len();
        let m = u.limbs.len() - n;

        let mut un = u.limbs.clone();
        un.push(0); // extra high limb for the algorithm
        let vn = &v.limbs;
        let v_top = vn[n - 1];
        let v_second = vn[n - 2];

        let mut q = vec![0u64; m + 1];
        for j in (0..=m).rev() {
            // Estimate qhat from the top two limbs of the current remainder.
            let numer = (u128::from(un[j + n]) << 64) | u128::from(un[j + n - 1]);
            let mut qhat = numer / u128::from(v_top);
            let mut rhat = numer % u128::from(v_top);
            // Correct qhat (at most twice).
            while qhat >= (1u128 << 64)
                || qhat * u128::from(v_second) > ((rhat << 64) | u128::from(un[j + n - 2]))
            {
                qhat -= 1;
                rhat += u128::from(v_top);
                if rhat >= (1u128 << 64) {
                    break;
                }
            }
            // Multiply-subtract: un[j..j+n+1] -= qhat * vn.
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = qhat * u128::from(vn[i]) + carry;
                carry = p >> 64;
                let sub = i128::from(un[j + i]) - ((p as u64) as i128) + borrow;
                un[j + i] = sub as u64;
                borrow = sub >> 64; // arithmetic shift: 0 or -1
            }
            let sub = i128::from(un[j + n]) - (carry as i128) + borrow;
            un[j + n] = sub as u64;
            let went_negative = sub < 0;

            q[j] = qhat as u64;
            if went_negative {
                // Add back one multiple of v (D6).
                q[j] -= 1;
                let mut carry = 0u64;
                for i in 0..n {
                    let (s1, c1) = un[j + i].overflowing_add(vn[i]);
                    let (s2, c2) = s1.overflowing_add(carry);
                    un[j + i] = s2;
                    carry = u64::from(c1) + u64::from(c2);
                }
                un[j + n] = un[j + n].wrapping_add(carry);
            }
        }

        let mut quotient = BigUint { limbs: q };
        quotient.normalize();
        let mut rem = BigUint {
            limbs: un[..n].to_vec(),
        };
        rem.normalize();
        (quotient, rem.shr(shift))
    }

    /// `self mod modulus`.
    #[must_use]
    pub fn rem(&self, modulus: &BigUint) -> BigUint {
        self.div_rem(modulus).1
    }

    /// `(self + other) mod modulus`; operands must already be reduced.
    #[must_use]
    pub fn mod_add(&self, other: &BigUint, modulus: &BigUint) -> BigUint {
        let s = self.add(other);
        if s.cmp_big(modulus) == Ordering::Less {
            s
        } else {
            s.sub(modulus)
        }
    }

    /// `(self * other) mod modulus`.
    #[must_use]
    pub fn mod_mul(&self, other: &BigUint, modulus: &BigUint) -> BigUint {
        self.mul(other).rem(modulus)
    }

    /// Modular exponentiation `self^exp mod modulus`.
    ///
    /// Uses Montgomery multiplication when the modulus is odd (all group
    /// moduli in this workspace are odd primes); falls back to
    /// square-and-multiply with division otherwise.
    ///
    /// # Panics
    /// Panics if `modulus` is zero or one.
    #[must_use]
    pub fn mod_pow(&self, exp: &BigUint, modulus: &BigUint) -> BigUint {
        assert!(
            !modulus.is_zero() && !modulus.is_one(),
            "mod_pow: modulus must exceed 1"
        );
        if exp.is_zero() {
            return Self::one();
        }
        let base = self.rem(modulus);
        if base.is_zero() {
            return Self::zero();
        }
        if modulus.is_even() {
            return base.mod_pow_plain(exp, modulus);
        }
        let ctx = Montgomery::new(modulus);
        ctx.pow(&base, exp)
    }

    /// Square-and-multiply *without* Montgomery reduction (any modulus).
    ///
    /// Public for the ablation benchmark (`prim_elgamal` compares it
    /// against the Montgomery path) and used internally as the fallback
    /// for even moduli.
    ///
    /// # Panics
    /// Panics if `modulus` is zero or one.
    pub fn mod_pow_plain(&self, exp: &BigUint, modulus: &BigUint) -> BigUint {
        assert!(
            !modulus.is_zero() && !modulus.is_one(),
            "mod_pow_plain: modulus must exceed 1"
        );
        let mut result = Self::one();
        let mut base = self.rem(modulus);
        for i in 0..exp.bit_len() {
            if exp.bit(i) {
                result = result.mod_mul(&base, modulus);
            }
            base = base.mod_mul(&base, modulus);
        }
        result
    }

    /// Modular inverse via extended Euclid.
    ///
    /// # Errors
    /// Returns [`CryptoError::NotInvertible`] when `gcd(self, modulus) != 1`.
    pub fn mod_inverse(&self, modulus: &BigUint) -> Result<BigUint> {
        if modulus.is_zero() || modulus.is_one() {
            return Err(CryptoError::OutOfRange("modulus must exceed 1"));
        }
        // Extended Euclid with signed coefficients represented as
        // (magnitude, negative?) pairs.
        let mut r0 = modulus.clone();
        let mut r1 = self.rem(modulus);
        if r1.is_zero() {
            return Err(CryptoError::NotInvertible);
        }
        let mut t0 = (BigUint::zero(), false);
        let mut t1 = (BigUint::one(), false);
        while !r1.is_zero() {
            let (q, r2) = r0.div_rem(&r1);
            // t2 = t0 - q * t1 (signed arithmetic)
            let qt1 = q.mul(&t1.0);
            let t2 = signed_sub(&t0, &(qt1, t1.1));
            r0 = r1;
            r1 = r2;
            t0 = t1;
            t1 = t2;
        }
        if !r0.is_one() {
            return Err(CryptoError::NotInvertible);
        }
        let (mag, neg) = t0;
        Ok(if neg {
            modulus.sub(&mag.rem(modulus)).rem(modulus)
        } else {
            mag.rem(modulus)
        })
    }

    /// Uniform random value in `[0, bound)` from a DRBG, by rejection.
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    #[must_use]
    pub fn random_below(drbg: &mut HmacDrbg, bound: &BigUint) -> BigUint {
        assert!(!bound.is_zero(), "random_below: bound must be positive");
        let bits = bound.bit_len();
        let bytes = bits.div_ceil(8);
        let excess_bits = bytes * 8 - bits;
        loop {
            let mut buf = vec![0u8; bytes];
            drbg.fill(&mut buf);
            // Mask the excess high bits so the rejection rate stays < 1/2.
            if excess_bits > 0 {
                buf[0] &= 0xffu8 >> excess_bits;
            }
            let candidate = BigUint::from_bytes_be(&buf);
            if candidate.cmp_big(bound) == Ordering::Less {
                return candidate;
            }
        }
    }

    /// Uniform random value in `[low, high)`.
    ///
    /// # Panics
    /// Panics unless `low < high`.
    #[must_use]
    pub fn random_range(drbg: &mut HmacDrbg, low: &BigUint, high: &BigUint) -> BigUint {
        assert!(
            low.cmp_big(high) == Ordering::Less,
            "random_range: empty range"
        );
        let span = high.sub(low);
        Self::random_below(drbg, &span).add(low)
    }

    /// Miller–Rabin probabilistic primality test with `rounds` random bases.
    #[must_use]
    pub fn is_probable_prime(&self, rounds: usize, drbg: &mut HmacDrbg) -> bool {
        if self.is_zero() || self.is_one() {
            return false;
        }
        let two = BigUint::from_u64(2);
        if self.cmp_big(&two) == Ordering::Equal {
            return true;
        }
        if self.is_even() {
            return false;
        }
        // Quick trial division by small primes.
        for &p in &[3u64, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47] {
            let pb = BigUint::from_u64(p);
            match self.cmp_big(&pb) {
                Ordering::Equal => return true,
                Ordering::Less => return false,
                Ordering::Greater => {
                    if self.rem(&pb).is_zero() {
                        return false;
                    }
                }
            }
        }
        // Write self-1 = d * 2^s with d odd.
        let n_minus_1 = self.sub(&BigUint::one());
        let mut d = n_minus_1.clone();
        let mut s = 0usize;
        while d.is_even() {
            d = d.shr(1);
            s += 1;
        }
        'witness: for _ in 0..rounds {
            let a = BigUint::random_range(drbg, &two, &n_minus_1);
            let mut x = a.mod_pow(&d, self);
            if x.is_one() || x.cmp_big(&n_minus_1) == Ordering::Equal {
                continue;
            }
            for _ in 0..s - 1 {
                x = x.mod_mul(&x, self);
                if x.cmp_big(&n_minus_1) == Ordering::Equal {
                    continue 'witness;
                }
            }
            return false;
        }
        true
    }
}

/// Signed subtraction helper for extended Euclid: `a - b` where each operand
/// is `(magnitude, is_negative)`.
fn signed_sub(a: &(BigUint, bool), b: &(BigUint, bool)) -> (BigUint, bool) {
    match (a.1, b.1) {
        // a - b with both non-negative
        (false, false) => {
            if a.0.cmp_big(&b.0) != Ordering::Less {
                (a.0.sub(&b.0), false)
            } else {
                (b.0.sub(&a.0), true)
            }
        }
        // a - (-b) = a + b
        (false, true) => (a.0.add(&b.0), false),
        // (-a) - b = -(a + b)
        (true, false) => (a.0.add(&b.0), true),
        // (-a) - (-b) = b - a
        (true, true) => {
            if b.0.cmp_big(&a.0) != Ordering::Less {
                (b.0.sub(&a.0), false)
            } else {
                (a.0.sub(&b.0), true)
            }
        }
    }
}

/// Montgomery-multiplication context for a fixed odd modulus.
pub struct Montgomery {
    n: BigUint,
    /// Number of limbs in the modulus.
    k: usize,
    /// `-n^{-1} mod 2^64`.
    n_prime: u64,
    /// `R^2 mod n` where `R = 2^(64k)` — converts into Montgomery form.
    r2: BigUint,
}

impl Montgomery {
    /// Build a context for odd `modulus`.
    ///
    /// # Panics
    /// Panics if the modulus is even or < 3.
    #[must_use]
    pub fn new(modulus: &BigUint) -> Self {
        assert!(!modulus.is_even(), "Montgomery requires an odd modulus");
        assert!(modulus.bit_len() >= 2, "modulus too small");
        let k = modulus.limbs.len();
        // n' = -n^{-1} mod 2^64 via Newton–Hensel lifting.
        let n0 = modulus.limbs[0];
        let mut inv = 1u64; // inverse mod 2
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        let n_prime = inv.wrapping_neg();
        // R^2 mod n, with R = 2^(64k).
        let r2 = BigUint::one().shl(64 * k * 2).rem(modulus);
        Montgomery {
            n: modulus.clone(),
            k,
            n_prime,
            r2,
        }
    }

    /// Montgomery reduction of a (≤ 2k limb) product: returns `t * R^{-1} mod n`.
    fn redc(&self, t: &BigUint) -> BigUint {
        let k = self.k;
        let mut a = t.limbs.clone();
        a.resize(2 * k + 1, 0);
        for i in 0..k {
            let m = a[i].wrapping_mul(self.n_prime);
            // a += m * n << (64*i)
            let mut carry = 0u128;
            for j in 0..k {
                let p = u128::from(m) * u128::from(self.n.limbs[j]) + u128::from(a[i + j]) + carry;
                a[i + j] = p as u64;
                carry = p >> 64;
            }
            let mut idx = i + k;
            while carry > 0 {
                let s = u128::from(a[idx]) + carry;
                a[idx] = s as u64;
                carry = s >> 64;
                idx += 1;
            }
        }
        let mut res = BigUint {
            limbs: a[k..].to_vec(),
        };
        res.normalize();
        if res.cmp_big(&self.n) != Ordering::Less {
            res = res.sub(&self.n);
        }
        res
    }

    /// Montgomery product of two Montgomery-form operands.
    fn mont_mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        self.redc(&a.mul(b))
    }

    /// Convert into Montgomery form: `a * R mod n`.
    fn to_mont(&self, a: &BigUint) -> BigUint {
        self.redc(&a.mul(&self.r2))
    }

    /// `base^exp mod n` with `base` already reduced.
    #[must_use]
    pub fn pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        let base_m = self.to_mont(base);
        // 1 in Montgomery form is R mod n.
        let mut acc = self.redc(&self.r2); // R mod n
        let bits = exp.bit_len();
        for i in (0..bits).rev() {
            acc = self.mont_mul(&acc, &acc);
            if exp.bit(i) {
                acc = self.mont_mul(&acc, &base_m);
            }
        }
        self.redc(&acc) // convert out of Montgomery form
    }
}

/// Fixed-base modular exponentiation with a precomputed window table.
///
/// For a base that is exponentiated many times against the same odd modulus
/// (the group generator `g` in ElGamal), precomputing
/// `base^(d * 16^i) mod n` for every window position `i` and digit
/// `d in 1..=15` turns each exponentiation into roughly one Montgomery
/// multiplication per nonzero exponent nibble — about `bits/4` products
/// versus ~`1.5 * bits` for square-and-multiply.
pub struct FixedBase {
    ctx: Montgomery,
    /// The reduced base, kept for the rare fallback when an exponent
    /// exceeds the precomputed window count.
    base: BigUint,
    /// `table[i][d-1] = to_mont(base^(d * 16^i))` for `d in 1..=15`.
    table: Vec<Vec<BigUint>>,
    /// `R mod n`: the multiplicative identity in Montgomery form.
    one_m: BigUint,
}

impl FixedBase {
    /// Precompute the window table for `base` under odd `modulus`, sized
    /// for exponents up to `max_exp_bits` bits. Larger exponents still
    /// work via a non-precomputed fallback.
    ///
    /// # Panics
    /// Panics if the modulus is even or < 3 (same contract as
    /// [`Montgomery::new`]).
    #[must_use]
    pub fn new(base: &BigUint, modulus: &BigUint, max_exp_bits: usize) -> Self {
        let ctx = Montgomery::new(modulus);
        let base = base.rem(modulus);
        let one_m = ctx.redc(&ctx.r2); // R mod n
        let windows = max_exp_bits.div_ceil(4).max(1);
        let mut table = Vec::with_capacity(windows);
        if !base.is_zero() {
            // cur = to_mont(base^(16^i)) for the current window i.
            let mut cur = ctx.to_mont(&base);
            for _ in 0..windows {
                let mut row = Vec::with_capacity(15);
                row.push(cur.clone());
                for d in 1..15 {
                    let prev: &BigUint = &row[d - 1];
                    row.push(ctx.mont_mul(prev, &cur));
                }
                // base^(16^(i+1)) = base^(15 * 16^i) * base^(16^i).
                cur = ctx.mont_mul(&row[14], &cur);
                table.push(row);
            }
        }
        FixedBase {
            ctx,
            base,
            table,
            one_m,
        }
    }

    /// `base^exp mod n` using the precomputed table.
    #[must_use]
    pub fn pow(&self, exp: &BigUint) -> BigUint {
        if exp.is_zero() {
            return BigUint::one();
        }
        if self.base.is_zero() {
            return BigUint::zero();
        }
        let nibbles = exp.bit_len().div_ceil(4);
        if nibbles > self.table.len() {
            // Exponent exceeds the precomputed range; fall back to the
            // generic Montgomery ladder.
            return self.ctx.pow(&self.base, exp);
        }
        let mut acc = self.one_m.clone();
        for i in 0..nibbles {
            let limb = exp.limbs[i / 16];
            let d = ((limb >> (4 * (i % 16))) & 0xf) as usize;
            if d != 0 {
                acc = self.ctx.mont_mul(&acc, &self.table[i][d - 1]);
            }
        }
        self.ctx.redc(&acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn construction_and_serialization() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert_eq!(BigUint::from_bytes_be(&[]).bit_len(), 0);
        assert_eq!(
            BigUint::from_bytes_be(&[0, 0, 1, 2]).to_bytes_be(),
            vec![1, 2]
        );
        let x = BigUint::from_hex("0102030405060708090a").unwrap();
        assert_eq!(
            x.to_bytes_be(),
            vec![0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a]
        );
        assert_eq!(x.to_bytes_be_padded(12).unwrap().len(), 12);
        assert!(x.to_bytes_be_padded(9).is_err());
        assert!(BigUint::from_hex("xyz").is_err());
        // Odd-length hex.
        assert_eq!(BigUint::from_hex("f").unwrap(), n(15));
    }

    #[test]
    fn add_sub_round_trip() {
        let a = BigUint::from_hex("ffffffffffffffffffffffffffffffff").unwrap();
        let b = BigUint::from_hex("1").unwrap();
        let s = a.add(&b);
        assert_eq!(s.bit_len(), 129);
        assert_eq!(s.sub(&b), a);
        assert_eq!(s.sub(&a), b);
        assert_eq!(n(5).add(&n(7)), n(12));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = n(3).sub(&n(4));
    }

    #[test]
    fn mul_matches_u128() {
        for (a, b) in [(0u64, 5u64), (1, 1), (u64::MAX, u64::MAX), (12345, 67890)] {
            let want = u128::from(a) * u128::from(b);
            let got = n(a).mul(&n(b));
            let mut bytes = [0u8; 16];
            let gb = got.to_bytes_be();
            bytes[16 - gb.len()..].copy_from_slice(&gb);
            assert_eq!(u128::from_be_bytes(bytes), want, "{a} * {b}");
        }
    }

    #[test]
    fn shifts() {
        let x = BigUint::from_hex("1234567890abcdef").unwrap();
        assert_eq!(x.shl(0), x);
        assert_eq!(x.shl(64).shr(64), x);
        assert_eq!(x.shl(3).shr(3), x);
        assert_eq!(x.shr(200), BigUint::zero());
        assert_eq!(n(1).shl(64).bit_len(), 65);
    }

    #[test]
    fn div_rem_small() {
        let (q, r) = n(100).div_rem(&n(7));
        assert_eq!(q, n(14));
        assert_eq!(r, n(2));
        let (q, r) = n(5).div_rem(&n(10));
        assert_eq!(q, BigUint::zero());
        assert_eq!(r, n(5));
        let (q, r) = n(10).div_rem(&n(10));
        assert_eq!(q, BigUint::one());
        assert_eq!(r, BigUint::zero());
    }

    #[test]
    fn div_rem_multi_limb() {
        // (a*b + r) / b == a with remainder r, for multi-limb values.
        let a = BigUint::from_hex("deadbeefcafebabe1234567890abcdef00112233").unwrap();
        let b = BigUint::from_hex("fedcba9876543210ffffffff").unwrap();
        let r = BigUint::from_hex("1234").unwrap();
        let prod = a.mul(&b).add(&r);
        let (q, rem) = prod.div_rem(&b);
        assert_eq!(q, a);
        assert_eq!(rem, r);
    }

    #[test]
    fn div_rem_exercises_add_back_path() {
        // Values engineered so Algorithm D's rare D6 "add back" step runs:
        // classic trigger is dividend 0x7fff...8000...0000 style patterns.
        let u = BigUint {
            limbs: vec![0, 0, 0x8000_0000_0000_0000, 0x7fff_ffff_ffff_ffff],
        };
        let v = BigUint {
            limbs: vec![1, 0, 0x8000_0000_0000_0000],
        };
        let (q, r) = u.div_rem(&v);
        // Verify by reconstruction.
        assert_eq!(q.mul(&v).add(&r), u);
        assert!(r.cmp_big(&v) == Ordering::Less);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = n(1).div_rem(&BigUint::zero());
    }

    #[test]
    fn mod_pow_small_cases() {
        assert_eq!(n(2).mod_pow(&n(10), &n(1000)), n(24));
        assert_eq!(n(3).mod_pow(&n(0), &n(7)), n(1));
        assert_eq!(n(0).mod_pow(&n(5), &n(7)), n(0));
        // Fermat: a^(p-1) = 1 mod p
        assert_eq!(n(5).mod_pow(&n(12), &n(13)), n(1));
        // Even modulus falls back to the plain path.
        assert_eq!(n(3).mod_pow(&n(4), &n(16)), n(1));
        assert_eq!(n(7).mod_pow(&n(3), &n(10)), n(3));
    }

    #[test]
    fn mod_pow_matches_plain_on_big_odd_modulus() {
        let m = BigUint::from_hex(
            "ffffffffffffffffc90fdaa22168c234c4c6628b80dc1cd129024e088a67cc74\
020bbea63b139b22514a08798e3404dd",
        )
        .unwrap();
        let base = BigUint::from_hex("abcdef0123456789").unwrap();
        let exp = BigUint::from_hex("10001").unwrap();
        assert_eq!(base.mod_pow(&exp, &m), base.mod_pow_plain(&exp, &m));
    }

    #[test]
    fn montgomery_matches_naive_mod_mul() {
        let m = BigUint::from_hex("f123456789abcdef0123456789abcdef1").unwrap();
        let ctx = Montgomery::new(&m);
        let a = BigUint::from_hex("1234567890").unwrap();
        let b = BigUint::from_hex("fedcba98765432100").unwrap();
        let am = ctx.to_mont(&a.rem(&m));
        let bm = ctx.to_mont(&b.rem(&m));
        let prod = ctx.redc(&ctx.mont_mul(&am, &bm));
        assert_eq!(prod, a.mod_mul(&b, &m));
    }

    #[test]
    fn fixed_base_matches_mod_pow() {
        let m = BigUint::from_hex(
            "ffffffffffffffffc90fdaa22168c234c4c6628b80dc1cd129024e088a67cc74\
020bbea63b139b22514a08798e3404dd",
        )
        .unwrap();
        let g = n(2);
        let fb = FixedBase::new(&g, &m, m.bit_len());
        let mut drbg = HmacDrbg::from_u64(424242);
        for _ in 0..20 {
            let exp = BigUint::random_below(&mut drbg, &m);
            assert_eq!(fb.pow(&exp), g.mod_pow(&exp, &m));
        }
        // Edge exponents.
        assert_eq!(fb.pow(&BigUint::zero()), BigUint::one());
        assert_eq!(fb.pow(&BigUint::one()), n(2));
        assert_eq!(fb.pow(&n(16)), n(65536));
    }

    #[test]
    fn fixed_base_falls_back_past_table_size() {
        let m = BigUint::from_hex("f123456789abcdef0123456789abcdef1").unwrap();
        let g = n(3);
        // Table sized for 16-bit exponents only.
        let fb = FixedBase::new(&g, &m, 16);
        let big_exp = BigUint::from_hex("123456789abcdef01").unwrap();
        assert_eq!(fb.pow(&big_exp), g.mod_pow(&big_exp, &m));
        // In-range exponents use the table.
        assert_eq!(fb.pow(&n(0xffff)), g.mod_pow(&n(0xffff), &m));
    }

    #[test]
    fn fixed_base_zero_base() {
        let m = BigUint::from_hex("f123456789abcdef0123456789abcdef1").unwrap();
        let fb = FixedBase::new(&BigUint::zero(), &m, 64);
        assert_eq!(fb.pow(&BigUint::zero()), BigUint::one());
        assert_eq!(fb.pow(&n(5)), BigUint::zero());
    }

    #[test]
    fn mod_inverse_basics() {
        let inv = n(3).mod_inverse(&n(11)).unwrap();
        assert_eq!(inv, n(4)); // 3*4 = 12 = 1 mod 11
        assert_eq!(n(3).mul(&inv).rem(&n(11)), n(1));
        // Non-invertible.
        assert_eq!(n(6).mod_inverse(&n(9)), Err(CryptoError::NotInvertible));
        assert_eq!(n(0).mod_inverse(&n(7)), Err(CryptoError::NotInvertible));
    }

    #[test]
    fn mod_inverse_large() {
        let m = BigUint::from_hex(
            "ffffffffffffffffc90fdaa22168c234c4c6628b80dc1cd129024e088a67cc74\
020bbea63b139b22514a08798e3404ddef9519b3cd3a431b",
        )
        .unwrap();
        let a = BigUint::from_hex("deadbeef12345678900987654321").unwrap();
        let inv = a.mod_inverse(&m).unwrap();
        assert_eq!(a.mod_mul(&inv, &m), BigUint::one());
    }

    #[test]
    fn random_below_is_in_range_and_varies() {
        let mut drbg = HmacDrbg::from_u64(99);
        let bound = BigUint::from_hex("10000000000000001").unwrap();
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..50 {
            let v = BigUint::random_below(&mut drbg, &bound);
            assert!(v.cmp_big(&bound) == Ordering::Less);
            distinct.insert(v.to_bytes_be());
        }
        assert!(distinct.len() > 40, "RNG output should vary");
    }

    #[test]
    fn miller_rabin_classifies_known_values() {
        let mut drbg = HmacDrbg::from_u64(7);
        for p in [2u64, 3, 5, 7, 13, 61, 2147483647] {
            assert!(n(p).is_probable_prime(16, &mut drbg), "{p} is prime");
        }
        for c in [1u64, 4, 9, 15, 21, 561, 41041, 2147483645] {
            assert!(!n(c).is_probable_prime(16, &mut drbg), "{c} is composite");
        }
        // A 128-bit prime (2^127 - 1, a Mersenne prime).
        let m127 = BigUint::one().shl(127).sub(&BigUint::one());
        assert!(m127.is_probable_prime(12, &mut drbg));
        // 2^128 - 1 is composite.
        let c128 = BigUint::one().shl(128).sub(&BigUint::one());
        assert!(!c128.is_probable_prime(12, &mut drbg));
    }

    #[test]
    fn bit_access() {
        let x = BigUint::from_hex("8000000000000001").unwrap();
        assert!(x.bit(0));
        assert!(x.bit(63));
        assert!(!x.bit(1));
        assert!(!x.bit(64));
        assert_eq!(x.bit_len(), 64);
    }
}
