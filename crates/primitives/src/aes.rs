//! AES-128 block cipher (FIPS 197).
//!
//! AES instantiates the paper's pseudo-random permutation `E` — the "secure
//! permutation function" used to mask posting-list generations in Scheme 2 —
//! and, in CTR mode (see [`crate::ctr`]), the data-item encryption `E_km`.
//!
//! This is a straightforward table-free implementation (the S-box is a table
//! but round transforms are computed); it favours clarity and auditability
//! over raw speed, which is fine because AES is never the bottleneck in the
//! reproduced experiments (the paper's costs are dominated by modexp and
//! hash-chain walks).

use crate::error::{CryptoError, Result};

/// Block size in bytes.
pub const BLOCK_LEN: usize = 16;
/// Key size in bytes (AES-128).
pub const KEY_LEN: usize = 16;
const ROUNDS: usize = 10;

/// Forward S-box (FIPS 197 Fig. 7).
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// Inverse S-box (FIPS 197 Fig. 14).
const INV_SBOX: [u8; 256] = [
    0x52, 0x09, 0x6a, 0xd5, 0x30, 0x36, 0xa5, 0x38, 0xbf, 0x40, 0xa3, 0x9e, 0x81, 0xf3, 0xd7, 0xfb,
    0x7c, 0xe3, 0x39, 0x82, 0x9b, 0x2f, 0xff, 0x87, 0x34, 0x8e, 0x43, 0x44, 0xc4, 0xde, 0xe9, 0xcb,
    0x54, 0x7b, 0x94, 0x32, 0xa6, 0xc2, 0x23, 0x3d, 0xee, 0x4c, 0x95, 0x0b, 0x42, 0xfa, 0xc3, 0x4e,
    0x08, 0x2e, 0xa1, 0x66, 0x28, 0xd9, 0x24, 0xb2, 0x76, 0x5b, 0xa2, 0x49, 0x6d, 0x8b, 0xd1, 0x25,
    0x72, 0xf8, 0xf6, 0x64, 0x86, 0x68, 0x98, 0x16, 0xd4, 0xa4, 0x5c, 0xcc, 0x5d, 0x65, 0xb6, 0x92,
    0x6c, 0x70, 0x48, 0x50, 0xfd, 0xed, 0xb9, 0xda, 0x5e, 0x15, 0x46, 0x57, 0xa7, 0x8d, 0x9d, 0x84,
    0x90, 0xd8, 0xab, 0x00, 0x8c, 0xbc, 0xd3, 0x0a, 0xf7, 0xe4, 0x58, 0x05, 0xb8, 0xb3, 0x45, 0x06,
    0xd0, 0x2c, 0x1e, 0x8f, 0xca, 0x3f, 0x0f, 0x02, 0xc1, 0xaf, 0xbd, 0x03, 0x01, 0x13, 0x8a, 0x6b,
    0x3a, 0x91, 0x11, 0x41, 0x4f, 0x67, 0xdc, 0xea, 0x97, 0xf2, 0xcf, 0xce, 0xf0, 0xb4, 0xe6, 0x73,
    0x96, 0xac, 0x74, 0x22, 0xe7, 0xad, 0x35, 0x85, 0xe2, 0xf9, 0x37, 0xe8, 0x1c, 0x75, 0xdf, 0x6e,
    0x47, 0xf1, 0x1a, 0x71, 0x1d, 0x29, 0xc5, 0x89, 0x6f, 0xb7, 0x62, 0x0e, 0xaa, 0x18, 0xbe, 0x1b,
    0xfc, 0x56, 0x3e, 0x4b, 0xc6, 0xd2, 0x79, 0x20, 0x9a, 0xdb, 0xc0, 0xfe, 0x78, 0xcd, 0x5a, 0xf4,
    0x1f, 0xdd, 0xa8, 0x33, 0x88, 0x07, 0xc7, 0x31, 0xb1, 0x12, 0x10, 0x59, 0x27, 0x80, 0xec, 0x5f,
    0x60, 0x51, 0x7f, 0xa9, 0x19, 0xb5, 0x4a, 0x0d, 0x2d, 0xe5, 0x7a, 0x9f, 0x93, 0xc9, 0x9c, 0xef,
    0xa0, 0xe0, 0x3b, 0x4d, 0xae, 0x2a, 0xf5, 0xb0, 0xc8, 0xeb, 0xbb, 0x3c, 0x83, 0x53, 0x99, 0x61,
    0x17, 0x2b, 0x04, 0x7e, 0xba, 0x77, 0xd6, 0x26, 0xe1, 0x69, 0x14, 0x63, 0x55, 0x21, 0x0c, 0x7d,
];

/// Round constants for key expansion.
const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// Multiply by x (i.e. {02}) in GF(2^8) with the AES polynomial.
#[inline]
fn xtime(b: u8) -> u8 {
    let hi = b & 0x80;
    let shifted = b << 1;
    if hi != 0 {
        shifted ^ 0x1b
    } else {
        shifted
    }
}

/// General GF(2^8) multiplication.
#[inline]
fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    p
}

/// An expanded AES-128 key, ready to encrypt and decrypt blocks.
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; ROUNDS + 1],
}

impl Aes128 {
    /// Expand a 16-byte key.
    #[must_use]
    pub fn new(key: &[u8; KEY_LEN]) -> Self {
        let mut w = [[0u8; 4]; 4 * (ROUNDS + 1)];
        for i in 0..4 {
            w[i] = [key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]];
        }
        for i in 4..4 * (ROUNDS + 1) {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                // RotWord + SubWord + Rcon
                temp = [
                    SBOX[temp[1] as usize] ^ RCON[i / 4 - 1],
                    SBOX[temp[2] as usize],
                    SBOX[temp[3] as usize],
                    SBOX[temp[0] as usize],
                ];
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; ROUNDS + 1];
        for r in 0..=ROUNDS {
            for c in 0..4 {
                round_keys[r][4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
        }
        Aes128 { round_keys }
    }

    /// Construct from a slice, validating the length.
    ///
    /// # Errors
    /// Returns [`CryptoError::InvalidLength`] unless `key.len() == 16`.
    pub fn from_slice(key: &[u8]) -> Result<Self> {
        let arr: [u8; KEY_LEN] = key.try_into().map_err(|_| CryptoError::InvalidLength {
            what: "AES-128 key",
            expected: KEY_LEN,
            got: key.len(),
        })?;
        Ok(Self::new(&arr))
    }

    /// Encrypt one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; BLOCK_LEN]) {
        add_round_key(block, &self.round_keys[0]);
        for r in 1..ROUNDS {
            sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &self.round_keys[r]);
        }
        sub_bytes(block);
        shift_rows(block);
        add_round_key(block, &self.round_keys[ROUNDS]);
    }

    /// Decrypt one 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; BLOCK_LEN]) {
        add_round_key(block, &self.round_keys[ROUNDS]);
        for r in (1..ROUNDS).rev() {
            inv_shift_rows(block);
            inv_sub_bytes(block);
            add_round_key(block, &self.round_keys[r]);
            inv_mix_columns(block);
        }
        inv_shift_rows(block);
        inv_sub_bytes(block);
        add_round_key(block, &self.round_keys[0]);
    }

    /// Encrypt a copy of `block`.
    #[must_use]
    pub fn encrypt(&self, block: &[u8; BLOCK_LEN]) -> [u8; BLOCK_LEN] {
        let mut b = *block;
        self.encrypt_block(&mut b);
        b
    }

    /// Decrypt a copy of `block`.
    #[must_use]
    pub fn decrypt(&self, block: &[u8; BLOCK_LEN]) -> [u8; BLOCK_LEN] {
        let mut b = *block;
        self.decrypt_block(&mut b);
        b
    }
}

// State layout: byte i of the flat block is row i%4, column i/4 (FIPS 197
// column-major convention).

#[inline]
fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for i in 0..16 {
        state[i] ^= rk[i];
    }
}

#[inline]
fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

#[inline]
fn inv_sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = INV_SBOX[*b as usize];
    }
}

#[inline]
fn shift_rows(state: &mut [u8; 16]) {
    // Row r (bytes r, r+4, r+8, r+12) rotates left by r.
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[r + 4 * c] = s[r + 4 * ((c + r) % 4)];
        }
    }
}

#[inline]
fn inv_shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[r + 4 * ((c + r) % 4)] = s[r + 4 * c];
        }
    }
}

#[inline]
fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] = xtime(col[0]) ^ (xtime(col[1]) ^ col[1]) ^ col[2] ^ col[3];
        state[4 * c + 1] = col[0] ^ xtime(col[1]) ^ (xtime(col[2]) ^ col[2]) ^ col[3];
        state[4 * c + 2] = col[0] ^ col[1] ^ xtime(col[2]) ^ (xtime(col[3]) ^ col[3]);
        state[4 * c + 3] = (xtime(col[0]) ^ col[0]) ^ col[1] ^ col[2] ^ xtime(col[3]);
    }
}

#[inline]
fn inv_mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] =
            gmul(col[0], 0x0e) ^ gmul(col[1], 0x0b) ^ gmul(col[2], 0x0d) ^ gmul(col[3], 0x09);
        state[4 * c + 1] =
            gmul(col[0], 0x09) ^ gmul(col[1], 0x0e) ^ gmul(col[2], 0x0b) ^ gmul(col[3], 0x0d);
        state[4 * c + 2] =
            gmul(col[0], 0x0d) ^ gmul(col[1], 0x09) ^ gmul(col[2], 0x0e) ^ gmul(col[3], 0x0b);
        state[4 * c + 3] =
            gmul(col[0], 0x0b) ^ gmul(col[1], 0x0d) ^ gmul(col[2], 0x09) ^ gmul(col[3], 0x0e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    /// FIPS 197 Appendix B worked example.
    #[test]
    fn fips197_appendix_b() {
        let key: [u8; 16] = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let pt: [u8; 16] = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let aes = Aes128::new(&key);
        let ct = aes.encrypt(&pt);
        assert_eq!(hex(&ct), "3925841d02dc09fbdc118597196a0b32");
        assert_eq!(aes.decrypt(&ct), pt);
    }

    /// FIPS 197 Appendix C.1 (AES-128) example vector.
    #[test]
    fn fips197_appendix_c1() {
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let pt: [u8; 16] = core::array::from_fn(|i| (i as u8) * 0x11);
        let aes = Aes128::new(&key);
        let ct = aes.encrypt(&pt);
        assert_eq!(hex(&ct), "69c4e0d86a7b0430d8cdb78070b4c55a");
        assert_eq!(aes.decrypt(&ct), pt);
    }

    /// NIST SP 800-38A F.1.1 ECB-AES128 vectors (all four blocks).
    #[test]
    fn sp800_38a_ecb_vectors() {
        let key: [u8; 16] = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let aes = Aes128::new(&key);
        let cases: [([u8; 16], &str); 4] = [
            (
                [
                    0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96, 0xe9, 0x3d, 0x7e, 0x11, 0x73,
                    0x93, 0x17, 0x2a,
                ],
                "3ad77bb40d7a3660a89ecaf32466ef97",
            ),
            (
                [
                    0xae, 0x2d, 0x8a, 0x57, 0x1e, 0x03, 0xac, 0x9c, 0x9e, 0xb7, 0x6f, 0xac, 0x45,
                    0xaf, 0x8e, 0x51,
                ],
                "f5d3d58503b9699de785895a96fdbaaf",
            ),
            (
                [
                    0x30, 0xc8, 0x1c, 0x46, 0xa3, 0x5c, 0xe4, 0x11, 0xe5, 0xfb, 0xc1, 0x19, 0x1a,
                    0x0a, 0x52, 0xef,
                ],
                "43b1cd7f598ece23881b00e3ed030688",
            ),
            (
                [
                    0xf6, 0x9f, 0x24, 0x45, 0xdf, 0x4f, 0x9b, 0x17, 0xad, 0x2b, 0x41, 0x7b, 0xe6,
                    0x6c, 0x37, 0x10,
                ],
                "7b0c785e27e8ad3f8223207104725dd4",
            ),
        ];
        for (pt, want) in cases {
            assert_eq!(hex(&aes.encrypt(&pt)), want);
        }
    }

    #[test]
    fn decrypt_inverts_encrypt_for_many_blocks() {
        let aes = Aes128::new(&[0xA5u8; 16]);
        for i in 0..64u8 {
            let pt: [u8; 16] = core::array::from_fn(|j| i.wrapping_mul(17).wrapping_add(j as u8));
            assert_eq!(aes.decrypt(&aes.encrypt(&pt)), pt);
        }
    }

    #[test]
    fn from_slice_validates_length() {
        assert!(Aes128::from_slice(&[0u8; 16]).is_ok());
        assert!(matches!(
            Aes128::from_slice(&[0u8; 15]),
            Err(CryptoError::InvalidLength { .. })
        ));
    }

    #[test]
    fn gf_mul_basics() {
        // {57} x {83} = {c1} (FIPS 197 §4.2 example)
        assert_eq!(gmul(0x57, 0x83), 0xc1);
        // {57} x {13} = {fe}
        assert_eq!(gmul(0x57, 0x13), 0xfe);
        assert_eq!(gmul(0x01, 0xab), 0xab);
        assert_eq!(gmul(0x00, 0xab), 0x00);
    }

    #[test]
    fn shift_rows_round_trips() {
        let mut s: [u8; 16] = core::array::from_fn(|i| i as u8);
        let orig = s;
        shift_rows(&mut s);
        assert_ne!(s, orig);
        inv_shift_rows(&mut s);
        assert_eq!(s, orig);
    }

    #[test]
    fn mix_columns_round_trips() {
        let mut s: [u8; 16] = core::array::from_fn(|i| (i as u8).wrapping_mul(31));
        let orig = s;
        mix_columns(&mut s);
        inv_mix_columns(&mut s);
        assert_eq!(s, orig);
    }
}
