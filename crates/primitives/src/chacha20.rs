//! ChaCha20 stream cipher (RFC 8439), used as the pseudo-random generator
//! `G` of Scheme 1.
//!
//! The paper masks the posting bit-array as `I(w) XOR G(r)` where `r` is a
//! per-keyword nonce; here `G(r)` is a ChaCha20 keystream whose key is
//! derived from the 32-byte nonce and whose length matches `|I(w)|`.

const CONSTANTS: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];

/// ChaCha20 block function state.
#[derive(Clone)]
pub struct ChaCha20 {
    state: [u32; 16],
}

impl ChaCha20 {
    /// Create a cipher instance from a 32-byte key, 12-byte nonce and an
    /// initial 32-bit block counter (RFC 8439 layout).
    #[must_use]
    pub fn new(key: &[u8; 32], nonce: &[u8; 12], counter: u32) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        for i in 0..8 {
            state[4 + i] =
                u32::from_le_bytes([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
        }
        state[12] = counter;
        for i in 0..3 {
            state[13 + i] = u32::from_le_bytes([
                nonce[4 * i],
                nonce[4 * i + 1],
                nonce[4 * i + 2],
                nonce[4 * i + 3],
            ]);
        }
        ChaCha20 { state }
    }

    #[inline]
    fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        s[a] = s[a].wrapping_add(s[b]);
        s[d] ^= s[a];
        s[d] = s[d].rotate_left(16);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] ^= s[c];
        s[b] = s[b].rotate_left(12);
        s[a] = s[a].wrapping_add(s[b]);
        s[d] ^= s[a];
        s[d] = s[d].rotate_left(8);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] ^= s[c];
        s[b] = s[b].rotate_left(7);
    }

    /// Produce the 64-byte keystream block for the current counter, then
    /// advance the counter.
    pub fn next_block(&mut self) -> [u8; 64] {
        let mut working = self.state;
        for _ in 0..10 {
            // column rounds
            Self::quarter_round(&mut working, 0, 4, 8, 12);
            Self::quarter_round(&mut working, 1, 5, 9, 13);
            Self::quarter_round(&mut working, 2, 6, 10, 14);
            Self::quarter_round(&mut working, 3, 7, 11, 15);
            // diagonal rounds
            Self::quarter_round(&mut working, 0, 5, 10, 15);
            Self::quarter_round(&mut working, 1, 6, 11, 12);
            Self::quarter_round(&mut working, 2, 7, 8, 13);
            Self::quarter_round(&mut working, 3, 4, 9, 14);
        }
        let mut out = [0u8; 64];
        for i in 0..16 {
            let word = working[i].wrapping_add(self.state[i]);
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
        }
        self.state[12] = self.state[12].wrapping_add(1);
        out
    }

    /// Fill `out` with keystream bytes.
    pub fn keystream(&mut self, out: &mut [u8]) {
        for chunk in out.chunks_mut(64) {
            let block = self.next_block();
            chunk.copy_from_slice(&block[..chunk.len()]);
        }
    }

    /// XOR the keystream into `data` in place (encrypt/decrypt).
    pub fn apply(&mut self, data: &mut [u8]) {
        for chunk in data.chunks_mut(64) {
            let block = self.next_block();
            for (d, k) in chunk.iter_mut().zip(block.iter()) {
                *d ^= k;
            }
        }
    }
}

/// The paper's PRG `G`: expand a 32-byte seed into `len` pseudo-random bytes.
///
/// Deterministic: the same seed always yields the same stream, which is what
/// lets the client re-derive `G(r)` during updates after recovering `r` from
/// `F(r)`.
#[must_use]
pub fn prg_expand(seed: &[u8; 32], len: usize) -> Vec<u8> {
    let mut out = vec![0u8; len];
    // Fixed nonce: each seed is used for exactly one logical stream.
    let mut c = ChaCha20::new(seed, &[0u8; 12], 0);
    c.keystream(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    /// RFC 8439 §2.3.2 block-function test vector.
    #[test]
    fn rfc8439_block_vector() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let mut c = ChaCha20::new(&key, &nonce, 1);
        let block = c.next_block();
        assert_eq!(
            hex(&block),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    /// RFC 8439 §2.4.2 encryption test vector.
    #[test]
    fn rfc8439_encryption_vector() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let mut data = plaintext.to_vec();
        let mut c = ChaCha20::new(&key, &nonce, 1);
        c.apply(&mut data);
        assert_eq!(
            hex(&data),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b\
f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8\
07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736\
5af90bbf74a35be6b40b8eedf2785e42874d"
        );
    }

    #[test]
    fn apply_is_an_involution() {
        let key = [7u8; 32];
        let nonce = [3u8; 12];
        let mut data: Vec<u8> = (0..1000u32).map(|i| (i % 256) as u8).collect();
        let orig = data.clone();
        ChaCha20::new(&key, &nonce, 0).apply(&mut data);
        assert_ne!(data, orig);
        ChaCha20::new(&key, &nonce, 0).apply(&mut data);
        assert_eq!(data, orig);
    }

    #[test]
    fn prg_is_deterministic_and_seed_sensitive() {
        let s1 = [1u8; 32];
        let s2 = [2u8; 32];
        assert_eq!(prg_expand(&s1, 128), prg_expand(&s1, 128));
        assert_ne!(prg_expand(&s1, 128), prg_expand(&s2, 128));
        // Prefix property: a longer expansion starts with the shorter one.
        let long = prg_expand(&s1, 256);
        assert_eq!(&long[..128], &prg_expand(&s1, 128)[..]);
    }

    #[test]
    fn prg_output_looks_balanced() {
        // Crude sanity check: ones-density of a long stream is near 50%.
        let stream = prg_expand(&[9u8; 32], 1 << 16);
        let ones: u32 = stream.iter().map(|b| b.count_ones()).sum();
        let total = (stream.len() * 8) as f64;
        let density = f64::from(ones) / total;
        assert!((0.49..=0.51).contains(&density), "density {density}");
    }

    #[test]
    fn keystream_chunking_is_consistent() {
        let key = [5u8; 32];
        let nonce = [1u8; 12];
        let mut a = vec![0u8; 200];
        ChaCha20::new(&key, &nonce, 0).keystream(&mut a);
        // Same stream read as one 200-byte request must match 64-byte blocks.
        let mut c = ChaCha20::new(&key, &nonce, 0);
        let mut b = Vec::new();
        while b.len() < 200 {
            b.extend_from_slice(&c.next_block());
        }
        assert_eq!(&a[..], &b[..200]);
    }
}
