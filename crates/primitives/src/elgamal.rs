//! ElGamal encryption — the paper's IND-CPA "trapdoor permutation" `F`.
//!
//! Scheme 1 stores `F(r)` next to the masked posting array so that only the
//! client (who holds the trapdoor, i.e. the ElGamal secret key) can recover
//! the PRG nonce `r = F^{-1}(F(r))`. The paper names ElGamal explicitly as
//! the intended instantiation; we implement textbook multiplicative ElGamal
//! over a [`crate::modp::ModpGroup`], with the 32-byte nonce embedded into a
//! group element.
//!
//! Nonce embedding: for the 2048/1536-bit groups a 32-byte nonce `r`
//! interpreted as a big-endian integer is far below `p`, so `r + 2` (offset
//! avoids the degenerate values 0 and 1) is itself a valid plaintext group
//! element. For the 256-bit fast profile the nonce is reduced into the
//! group; the scheme keys the PRG off the *embedded* value so correctness
//! is preserved in every profile.

use crate::bignum::BigUint;
use crate::drbg::HmacDrbg;
use crate::error::{CryptoError, Result};
use crate::modp::ModpGroup;
use crate::sha256::sha256_concat;

/// An ElGamal ciphertext `(c1, c2) = (g^k, m * y^k)`.
#[derive(Clone, PartialEq, Eq)]
pub struct ElGamalCiphertext {
    /// `g^k mod p`.
    pub c1: BigUint,
    /// `m * y^k mod p`.
    pub c2: BigUint,
}

impl std::fmt::Debug for ElGamalCiphertext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ElGamalCiphertext(..)")
    }
}

impl ElGamalCiphertext {
    /// Serialize as two fixed-width big-endian elements.
    #[must_use]
    pub fn to_bytes(&self, group: &ModpGroup) -> Vec<u8> {
        let mut out = Vec::with_capacity(group.element_len * 2);
        out.extend_from_slice(
            &self
                .c1
                .to_bytes_be_padded(group.element_len)
                .expect("group element fits element_len"),
        );
        out.extend_from_slice(
            &self
                .c2
                .to_bytes_be_padded(group.element_len)
                .expect("group element fits element_len"),
        );
        out
    }

    /// Parse from the fixed-width serialization.
    ///
    /// # Errors
    /// [`CryptoError::InvalidLength`] on a wrong-size buffer and
    /// [`CryptoError::OutOfRange`] when a component is not a group element.
    pub fn from_bytes(group: &ModpGroup, bytes: &[u8]) -> Result<Self> {
        if bytes.len() != group.element_len * 2 {
            return Err(CryptoError::InvalidLength {
                what: "ElGamal ciphertext",
                expected: group.element_len * 2,
                got: bytes.len(),
            });
        }
        let (a, b) = bytes.split_at(group.element_len);
        let c1 = BigUint::from_bytes_be(a);
        let c2 = BigUint::from_bytes_be(b);
        if !group.contains(&c1) || !group.contains(&c2) {
            return Err(CryptoError::OutOfRange("ciphertext component"));
        }
        Ok(ElGamalCiphertext { c1, c2 })
    }
}

/// ElGamal key pair over a MODP group.
pub struct ElGamal {
    group: ModpGroup,
    /// Secret exponent `x` — the trapdoor.
    secret: BigUint,
    /// Public element `y = g^x`.
    public: BigUint,
}

impl ElGamal {
    /// Generate a key pair, drawing the secret exponent from `drbg`.
    #[must_use]
    pub fn keygen(group: ModpGroup, drbg: &mut HmacDrbg) -> Self {
        let secret = group.random_exponent(drbg);
        let public = group.pow_g(&secret);
        ElGamal {
            group,
            secret,
            public,
        }
    }

    /// Deterministically derive a key pair from a 32-byte master secret.
    ///
    /// Both client sessions of the paper's protocols need the *same* `F`;
    /// deriving it from `k_w` lets the client be stateless across sessions.
    #[must_use]
    pub fn from_master_key(group: ModpGroup, master: &[u8; 32]) -> Self {
        let mut drbg = HmacDrbg::new(master);
        Self::keygen(group, &mut drbg)
    }

    /// The group this key pair lives in.
    #[must_use]
    pub fn group(&self) -> &ModpGroup {
        &self.group
    }

    /// The public element `y = g^x` (what a server could see; unused by it).
    #[must_use]
    pub fn public(&self) -> &BigUint {
        &self.public
    }

    /// Encrypt a group element `m` under fresh randomness from `drbg`.
    #[must_use]
    pub fn encrypt_element(&self, m: &BigUint, drbg: &mut HmacDrbg) -> ElGamalCiphertext {
        debug_assert!(self.group.contains(m), "plaintext must be a group element");
        let k = self.group.random_exponent(drbg);
        let c1 = self.group.pow_g(&k);
        let c2 = self.group.mul(m, &self.group.pow(&self.public, &k));
        ElGamalCiphertext { c1, c2 }
    }

    /// Decrypt to the group element: `m = c2 * (c1^x)^{-1}`.
    ///
    /// # Errors
    /// [`CryptoError::OutOfRange`] if a component is not a group element.
    pub fn decrypt_element(&self, ct: &ElGamalCiphertext) -> Result<BigUint> {
        if !self.group.contains(&ct.c1) || !self.group.contains(&ct.c2) {
            return Err(CryptoError::OutOfRange("ciphertext component"));
        }
        let s = self.group.pow(&ct.c1, &self.secret);
        Ok(self.group.mul(&ct.c2, &self.group.inv(&s)))
    }

    /// Embed a 32-byte nonce into a group element.
    ///
    /// The embedded element — not the raw nonce — is what the schemes feed
    /// to the PRG, so embedding need not be injective in the fast profile.
    #[must_use]
    pub fn embed_nonce(&self, nonce: &[u8; 32]) -> BigUint {
        let n = BigUint::from_bytes_be(nonce).add(&BigUint::from_u64(2));
        if n.cmp_big(&self.group.p) == std::cmp::Ordering::Less {
            n
        } else {
            // Fast profile: reduce into [2, p) to stay a valid element.
            let span = self.group.p.sub(&BigUint::from_u64(2));
            n.rem(&span).add(&BigUint::from_u64(2))
        }
    }

    /// Encrypt a 32-byte nonce: the scheme-level `F(r)`.
    #[must_use]
    pub fn encrypt_nonce(&self, nonce: &[u8; 32], drbg: &mut HmacDrbg) -> ElGamalCiphertext {
        let m = self.embed_nonce(nonce);
        self.encrypt_element(&m, drbg)
    }

    /// Decrypt `F(r)` and hash the recovered element down to the 32-byte
    /// PRG seed: the scheme-level `r = F^{-1}(F(r))`.
    ///
    /// # Errors
    /// Propagates decryption errors on malformed ciphertexts.
    pub fn decrypt_to_seed(&self, ct: &ElGamalCiphertext) -> Result<[u8; 32]> {
        let m = self.decrypt_element(ct)?;
        Ok(element_to_seed(&self.group, &m))
    }
}

/// Hash a group element to a uniform 32-byte PRG seed.
///
/// Both the client (after decrypting `F(r)`) and the scheme internals (when
/// first creating `r`) derive the mask seed through this single function, so
/// the two sides always agree.
#[must_use]
pub fn element_to_seed(group: &ModpGroup, element: &BigUint) -> [u8; 32] {
    let bytes = element
        .to_bytes_be_padded(group.element_len)
        .expect("group element fits element_len");
    sha256_concat(&[b"sse/elgamal-seed", group.name.as_bytes(), &bytes])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_keys(seed: u64) -> (ElGamal, HmacDrbg) {
        let mut drbg = HmacDrbg::from_u64(seed);
        let eg = ElGamal::keygen(ModpGroup::modp_256(), &mut drbg);
        (eg, drbg)
    }

    #[test]
    fn encrypt_decrypt_round_trip() {
        let (eg, mut drbg) = fast_keys(1);
        for _ in 0..10 {
            let m = BigUint::random_range(&mut drbg, &BigUint::from_u64(2), &eg.group().p);
            let ct = eg.encrypt_element(&m, &mut drbg);
            assert_eq!(eg.decrypt_element(&ct).unwrap(), m);
        }
    }

    #[test]
    fn encryption_is_randomized() {
        let (eg, mut drbg) = fast_keys(2);
        let m = BigUint::from_u64(42);
        let c1 = eg.encrypt_element(&m, &mut drbg);
        let c2 = eg.encrypt_element(&m, &mut drbg);
        assert_ne!(c1, c2, "IND-CPA requires fresh randomness per encryption");
        assert_eq!(eg.decrypt_element(&c1).unwrap(), m);
        assert_eq!(eg.decrypt_element(&c2).unwrap(), m);
    }

    #[test]
    fn nonce_round_trip_through_seed() {
        let (eg, mut drbg) = fast_keys(3);
        let nonce = [0xabu8; 32];
        let ct = eg.encrypt_nonce(&nonce, &mut drbg);
        let seed = eg.decrypt_to_seed(&ct).unwrap();
        // The seed equals hashing the embedded element directly.
        let expect = element_to_seed(eg.group(), &eg.embed_nonce(&nonce));
        assert_eq!(seed, expect);
    }

    #[test]
    fn distinct_nonces_give_distinct_seeds() {
        let (eg, mut drbg) = fast_keys(4);
        let ct1 = eg.encrypt_nonce(&[1u8; 32], &mut drbg);
        let ct2 = eg.encrypt_nonce(&[2u8; 32], &mut drbg);
        assert_ne!(
            eg.decrypt_to_seed(&ct1).unwrap(),
            eg.decrypt_to_seed(&ct2).unwrap()
        );
    }

    #[test]
    fn serialization_round_trip() {
        let (eg, mut drbg) = fast_keys(5);
        let ct = eg.encrypt_nonce(&[7u8; 32], &mut drbg);
        let bytes = ct.to_bytes(eg.group());
        assert_eq!(bytes.len(), eg.group().element_len * 2);
        let back = ElGamalCiphertext::from_bytes(eg.group(), &bytes).unwrap();
        assert_eq!(back, ct);
    }

    #[test]
    fn deserialization_rejects_bad_input() {
        let (eg, mut drbg) = fast_keys(6);
        let ct = eg.encrypt_nonce(&[7u8; 32], &mut drbg);
        let mut bytes = ct.to_bytes(eg.group());
        assert!(matches!(
            ElGamalCiphertext::from_bytes(eg.group(), &bytes[1..]),
            Err(CryptoError::InvalidLength { .. })
        ));
        // All-zero first component is not a group element.
        for b in bytes[..eg.group().element_len].iter_mut() {
            *b = 0;
        }
        assert!(matches!(
            ElGamalCiphertext::from_bytes(eg.group(), &bytes),
            Err(CryptoError::OutOfRange(_))
        ));
    }

    #[test]
    fn master_key_derivation_is_deterministic() {
        let g = ModpGroup::modp_256();
        let a = ElGamal::from_master_key(g.clone(), &[9u8; 32]);
        let b = ElGamal::from_master_key(g.clone(), &[9u8; 32]);
        let c = ElGamal::from_master_key(g, &[10u8; 32]);
        assert_eq!(a.public(), b.public());
        assert_ne!(a.public(), c.public());
    }

    #[test]
    fn cross_key_decryption_garbles() {
        let (eg1, mut drbg) = fast_keys(7);
        let (eg2, _) = fast_keys(8);
        let nonce = [3u8; 32];
        let ct = eg1.encrypt_nonce(&nonce, &mut drbg);
        let right = eg1.decrypt_to_seed(&ct).unwrap();
        let wrong = eg2.decrypt_to_seed(&ct).unwrap();
        assert_ne!(right, wrong);
    }

    #[test]
    fn works_in_2048_bit_group_smoke() {
        // One round trip in the security profile (slow; keep it single).
        let mut drbg = HmacDrbg::from_u64(11);
        let eg = ElGamal::keygen(ModpGroup::modp_2048(), &mut drbg);
        let nonce = [0x5au8; 32];
        let ct = eg.encrypt_nonce(&nonce, &mut drbg);
        let seed = eg.decrypt_to_seed(&ct).unwrap();
        assert_eq!(seed, element_to_seed(eg.group(), &eg.embed_nonce(&nonce)));
    }
}
